// Figure 5: "CDF of the segment size (left) and segment inter-arrival time
// (right) for encrypted and unencrypted traffic."
//
// Paper anchors: strong overlap between the two size distributions, ~10%
// of segments above 1 MB, bulk at or below 500 KB; encrypted inter-arrival
// times slightly shorter for ~60% of the chunks (worse radio conditions
// while commuting).
#include "bench_common.h"

#include "vqoe/ts/ecdf.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto clear = bench::cleartext_sessions(
      args.sessions ? args.sessions : 8000, args.seed ? args.seed : 42);
  const auto encrypted = bench::encrypted_sessions(722, 4242);

  bench::banner("Figure 5 — segment size and inter-arrival CDFs, "
                "encrypted vs cleartext",
                "distributions overlap; encrypted inter-arrivals slightly "
                "shorter; ~10% of segments > 1 MB");

  auto collect = [](const std::vector<core::SessionRecord>& sessions,
                    std::vector<double>& sizes_kb, std::vector<double>& dt_s) {
    for (const auto& s : sessions) {
      for (std::size_t i = 0; i < s.chunks.size(); ++i) {
        sizes_kb.push_back(s.chunks[i].size_bytes / 1000.0);
        if (i > 0) {
          dt_s.push_back(s.chunks[i].arrival_time_s -
                         s.chunks[i - 1].arrival_time_s);
        }
      }
    }
  };

  std::vector<double> clear_sizes, clear_dt, enc_sizes, enc_dt;
  collect(clear, clear_sizes, clear_dt);
  collect(encrypted, enc_sizes, enc_dt);

  const ts::Ecdf cs{clear_sizes}, es{enc_sizes}, cd{clear_dt}, ed{enc_dt};

  std::printf("left: segment size CDF (KB); cleartext n=%zu, encrypted n=%zu\n",
              clear_sizes.size(), enc_sizes.size());
  std::printf("%-12s %-14s %-14s\n", "size_KB", "F_cleartext", "F_encrypted");
  for (double x : {25.0, 50.0, 100.0, 200.0, 300.0, 500.0, 750.0, 1000.0,
                   1500.0, 2000.0, 3000.0}) {
    std::printf("%-12.0f %-14.4f %-14.4f\n", x, cs(x), es(x));
  }
  std::printf("\nsegments > 1 MB: cleartext %.1f%%, encrypted %.1f%% "
              "(paper: ~10%%)\n",
              100.0 * (1.0 - cs(1000.0)), 100.0 * (1.0 - es(1000.0)));

  std::printf("\nright: inter-arrival time CDF (s)\n");
  std::printf("%-12s %-14s %-14s\n", "dt_s", "F_cleartext", "F_encrypted");
  for (double x : {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 20.0}) {
    std::printf("%-12.2f %-14.4f %-14.4f\n", x, cd(x), ed(x));
  }

  // The paper's "60% of encrypted chunks have slightly lower values":
  // compare medians and the fraction of the encrypted mass below the
  // cleartext median.
  const double clear_median = cd.quantile(0.5);
  std::printf("\ncleartext median dt %.2f s, encrypted median dt %.2f s; "
              "%.0f%% of encrypted inter-arrivals below the cleartext median\n",
              clear_median, ed.quantile(0.5), 100.0 * ed(clear_median));
  return 0;
}

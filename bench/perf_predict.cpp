// Forest-inference benchmarks (google-benchmark, JSON to BENCH_predict.json
// by default): CompactForest against the legacy pointer-chasing walk.
//
// Two model scales, matching the two deployment hot paths:
//  * monitor scale — the standard stall-detector workload (1500 sessions,
//    60 trees, ~160 KB flattened): single-row latency, the per-session
//    cost inside OnlineMonitor / engine shards;
//  * operator scale — a corpus-scale model (12000 sessions, 160 trees,
//    several MB flattened, larger than L2): blocked batch throughput at
//    1/2/4/8 vqoe::par threads, the regime the tree-tiled kernel targets
//    (the legacy walk re-misses the whole model once per row there).
//
// The tracked number is the compact-vs-legacy batch rows/sec ratio at one
// thread (ISSUE-3 acceptance: >= 2x); both paths emit equivalent classes,
// so the speedup carries no accuracy trade-off. The forest_bytes counter
// records each flattened model footprint.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "vqoe/core/detectors.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/ml/compact_forest.h"
#include "vqoe/ml/random_forest.h"
#include "vqoe/par/parallel.h"
#include "vqoe/workload/corpus.h"

namespace {

using namespace vqoe;

ml::Dataset make_stall_dataset(std::size_t sessions, std::uint64_t seed) {
  auto options = workload::cleartext_corpus_options(sessions, seed);
  options.keep_session_results = false;
  const auto corpus =
      core::sessions_from_corpus(workload::generate_corpus(options));
  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::StallLabel> labels;
  for (const auto& s : corpus) {
    chunks.push_back(s.chunks);
    labels.push_back(core::stall_label(s.truth));
  }
  return core::build_stall_dataset(chunks, labels);
}

const ml::Dataset& stall_dataset() {
  static const auto data = make_stall_dataset(1500, 42);
  return data;
}

/// Scoring + training set of the operator-scale batch benchmarks.
const ml::Dataset& corpus_dataset() {
  static const auto data = make_stall_dataset(12000, 43);
  return data;
}

ml::RandomForest fit_forest(const ml::Dataset& data, int num_trees) {
  ml::ForestParams params;
  params.num_trees = num_trees;
  return ml::RandomForest::fit(data, params);
}

/// Monitor-scale forest shared by the single-row benchmarks.
const ml::RandomForest& compact_forest() {
  static const auto forest = fit_forest(stall_dataset(), 60);
  return forest;
}

/// Operator-scale forest shared by the batch benchmarks.
const ml::RandomForest& corpus_compact_forest() {
  static const auto forest = fit_forest(corpus_dataset(), 160);
  return forest;
}

/// The same trees with compact dispatch off — the pre-CompactForest path.
ml::RandomForest legacy_view(const ml::RandomForest& forest) {
  ml::RandomForest legacy = forest;
  legacy.set_use_compact(false);
  return legacy;
}

const ml::RandomForest& legacy_forest() {
  static const auto forest = legacy_view(compact_forest());
  return forest;
}

const ml::RandomForest& corpus_legacy_forest() {
  static const auto forest = legacy_view(corpus_compact_forest());
  return forest;
}

void report_forest_size(benchmark::State& state,
                        const ml::RandomForest& forest) {
  state.counters["forest_bytes"] =
      static_cast<double>(forest.compact()->bytes());
}

void BM_SingleRowPredictLegacy(benchmark::State& state) {
  const auto& forest = legacy_forest();
  const auto& data = stall_dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(data.row(i)));
    if (++i == data.rows()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleRowPredictLegacy)->Apply(vqoe::bench::perf_defaults);

void BM_SingleRowPredictCompact(benchmark::State& state) {
  const auto& forest = compact_forest();
  const auto& data = stall_dataset();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(data.row(i)));
    if (++i == data.rows()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
  report_forest_size(state, compact_forest());
}
BENCHMARK(BM_SingleRowPredictCompact)->Apply(vqoe::bench::perf_defaults);

void BM_SingleRowProbaCompact(benchmark::State& state) {
  const auto& forest = compact_forest();
  const auto& data = stall_dataset();
  std::vector<double> proba(forest.num_classes());
  std::size_t i = 0;
  for (auto _ : state) {
    forest.predict_proba_into(data.row(i), proba);
    benchmark::DoNotOptimize(proba.data());
    if (++i == data.rows()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleRowProbaCompact)->Apply(vqoe::bench::perf_defaults);

void BM_BatchPredictLegacy(benchmark::State& state) {
  par::set_threads(static_cast<int>(state.range(0)));
  const auto& forest = corpus_legacy_forest();
  const auto& data = corpus_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_all(data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.rows()));
  state.counters["threads"] = static_cast<double>(state.range(0));
  par::set_threads(0);
}
BENCHMARK(BM_BatchPredictLegacy)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

void BM_BatchPredictCompact(benchmark::State& state) {
  par::set_threads(static_cast<int>(state.range(0)));
  const auto& forest = corpus_compact_forest();
  const auto& data = corpus_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_all(data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.rows()));
  state.counters["threads"] = static_cast<double>(state.range(0));
  report_forest_size(state, corpus_compact_forest());
  par::set_threads(0);
}
BENCHMARK(BM_BatchPredictCompact)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

void BM_BatchProbaCompact(benchmark::State& state) {
  par::set_threads(static_cast<int>(state.range(0)));
  const auto& forest = corpus_compact_forest();
  const auto& data = corpus_dataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_proba_all(data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.rows()));
  state.counters["threads"] = static_cast<double>(state.range(0));
  par::set_threads(0);
}
BENCHMARK(BM_BatchProbaCompact)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

void BM_CompileCompact(benchmark::State& state) {
  const auto& forest = corpus_compact_forest();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::CompactForest::compile(forest));
  }
  report_forest_size(state, corpus_compact_forest());
}
BENCHMARK(BM_CompileCompact)
    ->Unit(benchmark::kMicrosecond)
    ->Apply(vqoe::bench::perf_defaults);

}  // namespace

VQOE_BENCHMARK_MAIN_JSON("BENCH_predict.json")

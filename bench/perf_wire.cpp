// Wire throughput benchmarks (google-benchmark, JSON to BENCH_wire.json).
//
// The ISSUE-4 acceptance bar is a single-threaded encode+decode round trip
// of at least 1M records/sec — the codec must never be the bottleneck in
// front of an engine that ingests millions of records per second. The
// spool benchmarks price durability (one write(2) per frame, batched
// fsync), and the loopback pair measures the full probe → collector →
// engine path over real TCP against direct in-process ingest, so the
// transport's overhead is a tracked number rather than a guess.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "vqoe/engine/engine.h"
#include "vqoe/wire/codec.h"
#include "vqoe/wire/crc32c.h"
#include "vqoe/wire/spool.h"
#include "vqoe/wire/transport.h"
#include "vqoe/workload/corpus.h"

namespace {

using namespace vqoe;
namespace fs = std::filesystem;

const core::QoePipeline& trained_pipeline() {
  static const auto pipeline = [] {
    auto options = workload::has_corpus_options(400, 42);
    options.keep_session_results = false;
    return core::QoePipeline::train(
        core::sessions_from_corpus(workload::generate_corpus(options)));
  }();
  return pipeline;
}

/// The same multi-subscriber encrypted feed perf_engine measures against.
const std::vector<trace::WeblogRecord>& live_records() {
  static const auto records = [] {
    auto options = workload::cleartext_corpus_options(800, 99);
    options.adaptive_fraction = 1.0;
    options.subscribers = 64;
    options.keep_session_results = false;
    return trace::encrypt_view(workload::generate_corpus(options).weblogs);
  }();
  return records;
}

fs::path bench_spool_dir() {
  return fs::temp_directory_path() /
         ("vqoe_perf_wire_" + std::to_string(::getpid()));
}

void BM_EncodeRecords(benchmark::State& state) {
  const auto& records = live_records();
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    wire::encode_batch(records, wire::kWireVersionMax, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
  state.counters["bytes_per_record"] =
      static_cast<double>(buf.size()) / static_cast<double>(records.size());
}
BENCHMARK(BM_EncodeRecords)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_DecodeRecords(benchmark::State& state) {
  const auto& records = live_records();
  std::vector<std::uint8_t> buf;
  wire::encode_batch(records, wire::kWireVersionMax, buf);
  for (auto _ : state) {
    auto decoded = wire::decode_batch(buf.data(), buf.size(),
                                      wire::kWireVersionMax);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_DecodeRecords)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

/// The acceptance number: full encode+decode round trip, single thread —
/// items/sec here must clear 1M records/sec.
void BM_CodecRoundTrip(benchmark::State& state) {
  const auto& records = live_records();
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    wire::encode_batch(records, wire::kWireVersionMax, buf);
    auto decoded = wire::decode_batch(buf.data(), buf.size(),
                                      wire::kWireVersionMax);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_CodecRoundTrip)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_Crc32c(benchmark::State& state) {
  const auto& records = live_records();
  std::vector<std::uint8_t> buf;
  wire::encode_batch(records, wire::kWireVersionMax, buf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::crc32c(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32c)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_SpoolWrite(benchmark::State& state) {
  const auto& records = live_records();
  const auto dir = bench_spool_dir();
  constexpr std::size_t kBatch = 512;
  for (auto _ : state) {
    wire::SpoolWriter writer{dir};  // O_TRUNC: each iteration rewrites
    for (std::size_t i = 0; i < records.size(); i += kBatch) {
      writer.append(records.data() + i,
                    std::min(kBatch, records.size() - i));
    }
    writer.close();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(fs::file_size(dir / "spool-000000.vqs")));
  fs::remove_all(dir);
}
BENCHMARK(BM_SpoolWrite)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_SpoolRead(benchmark::State& state) {
  const auto& records = live_records();
  const auto dir = bench_spool_dir();
  {
    wire::SpoolWriter writer{dir};
    constexpr std::size_t kBatch = 512;
    for (std::size_t i = 0; i < records.size(); i += kBatch) {
      writer.append(records.data() + i,
                    std::min(kBatch, records.size() - i));
    }
    writer.close();
  }
  for (auto _ : state) {
    auto replayed = wire::read_spool(dir);
    benchmark::DoNotOptimize(replayed.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_SpoolRead)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

/// Baseline for the loopback number: the same feed pushed straight into
/// Engine::ingest from this thread (no sockets, no codec).
void BM_DirectEngineIngest(benchmark::State& state) {
  const auto& records = live_records();
  std::size_t completed = 0;
  for (auto _ : state) {
    engine::EngineConfig config;
    config.shards = 4;
    engine::MonitorEngine eng{trained_pipeline(), config};
    for (const auto& record : records) eng.ingest(record);
    completed += eng.drain().size();
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_DirectEngineIngest)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

/// End-to-end over real TCP loopback: encode → frame+CRC → socket →
/// decode → merge → Engine::ingest, one probe, unthrottled.
void BM_LoopbackProbeToEngine(benchmark::State& state) {
  const auto& records = live_records();
  std::size_t completed = 0;
  for (auto _ : state) {
    engine::EngineConfig engine_config;
    engine_config.shards = 4;
    engine::MonitorEngine eng{trained_pipeline(), engine_config};

    wire::CollectorConfig config;
    config.port = 0;
    config.expected_probes = 1;
    wire::Collector collector{config};
    std::thread server([&] {
      (void)collector.run(
          [&](const trace::WeblogRecord& record) { eng.ingest(record); });
    });

    wire::ProbeOptions probe_options;
    probe_options.port = collector.port();
    wire::Probe probe{probe_options};
    probe.send(records);
    probe.finish();
    server.join();
    completed += eng.drain().size();
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_LoopbackProbeToEngine)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

}  // namespace

VQOE_BENCHMARK_MAIN_JSON("BENCH_wire.json")

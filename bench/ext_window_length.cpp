// Extension experiment: detection accuracy vs window length.
//
// The paper classifies per session; the vqoe::window monitors classify per
// window while the session is still running. The window length is the
// operator's latency/accuracy dial: short windows react in seconds but see
// few chunks (noisy transport statistics, stall signatures split across
// boundaries), long windows approach the session-level accuracy but defer
// the verdict. We slice the simulated HAS corpus into tumbling windows at
// 2/5/10/30/60 seconds, label each window from the simulator's windowed
// ground truth (sim::windowed_truth), train random forests on the windowed
// feature vector (window::WindowAccumulator — the exact state the live
// monitor scores), and evaluate on held-out windows.
#include "bench_common.h"

#include "vqoe/core/labels.h"
#include "vqoe/ml/metrics.h"
#include "vqoe/ml/random_forest.h"
#include "vqoe/sim/window_truth.h"
#include "vqoe/window/window.h"

namespace {

using namespace vqoe;

struct WindowedDatasets {
  ml::Dataset stall;
  ml::Dataset repr;
  std::size_t windows_total = 0;
  std::size_t windows_skipped = 0;  ///< < 2 chunks or nothing playing
};

/// Slices every session into tumbling windows of `length_s`, pairing the
/// operator view (accumulator features over the chunks requested inside
/// the window) with the player view (windowed ground truth) — the same
/// alignment the live monitor has, since both anchor window 0 at the
/// session's first request.
WindowedDatasets windowed_datasets(const std::vector<sim::SessionResult>& pool,
                                   double length_s) {
  WindowedDatasets out{
      ml::Dataset{window::window_feature_names(), core::stall_class_names()},
      ml::Dataset{window::window_feature_names(), core::repr_class_names()},
      0,
      0};
  std::vector<double> row;
  for (const auto& session : pool) {
    const auto truths = sim::windowed_truth(session, length_s);
    out.windows_total += truths.size();
    std::size_t next_chunk = 0;
    for (const auto& w : truths) {
      window::WindowAccumulator acc;
      // Chunks are chronological and windows tumble, so one forward scan
      // assigns every chunk to its window.
      while (next_chunk < session.chunks.size() &&
             session.chunks[next_chunk].request_time_s < w.end_s) {
        const auto& c = session.chunks[next_chunk];
        if (c.request_time_s >= w.start_s) {
          acc.add(c.request_time_s, c.arrival_time_s,
                  static_cast<double>(c.size_bytes), c.transport);
        }
        ++next_chunk;
      }
      // Mirror the monitor's min_chunks = 2 gate; representation labels
      // additionally need something to have been playing.
      if (acc.chunks() < 2) {
        ++out.windows_skipped;
        continue;
      }
      acc.features_into(row);
      out.stall.add(row, static_cast<int>(
                             core::stall_label_from_rr(w.rebuffering_ratio)));
      if (w.active_s > 0.0) {
        out.repr.add(row, static_cast<int>(
                              core::repr_label_from_height(w.average_height)));
      } else {
        ++out.windows_skipped;
      }
    }
  }
  return out;
}

struct Scores {
  double accuracy = 0.0;
  double worst_class_tp = 0.0;
};

Scores evaluate(const ml::Dataset& data, std::mt19937_64& rng) {
  auto [train, test] = data.stratified_split(0.3, rng);
  train = train.balanced_undersample(rng);
  ml::ForestParams params;
  params.num_trees = 40;
  const auto forest = ml::RandomForest::fit(train, params);
  ml::ConfusionMatrix cm{test.class_names()};
  for (std::size_t i = 0; i < test.rows(); ++i) {
    cm.add(test.label(i), forest.predict(test.row(i)));
  }
  Scores s;
  s.accuracy = cm.accuracy();
  s.worst_class_tp = 1.0;
  for (int c = 0; c < static_cast<int>(test.num_classes()); ++c) {
    s.worst_class_tp = std::min(s.worst_class_tp, cm.tp_rate(c));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::uint64_t seed = args.seed ? args.seed : 42;

  bench::banner(
      "Extension — detection accuracy vs window length (vqoe::window)",
      "not in the paper (per-session labels only); quantifies the "
      "latency/accuracy dial of mid-session windowed verdicts");

  auto options =
      workload::has_corpus_options(args.sessions ? args.sessions : 2500, seed);
  options.keep_session_results = true;  // windowed_truth needs the raw runs
  const auto corpus = workload::generate_corpus(options);
  std::printf("corpus: %zu HAS sessions; features: %zu windowed "
              "(WindowAccumulator), forests: 40 trees, 30%% held out\n\n",
              corpus.sessions.size(), window::window_feature_names().size());

  std::printf("%-10s %-10s %-10s %-12s %-10s %-12s %-10s\n", "window s",
              "windows", "skipped", "stall acc.", "worst TP", "repr acc.",
              "worst TP");
  for (const double length_s : {2.0, 5.0, 10.0, 30.0, 60.0}) {
    const auto data = windowed_datasets(corpus.sessions, length_s);
    std::mt19937_64 rng{seed ^ 0x77f0ULL ^ static_cast<std::uint64_t>(length_s)};
    const auto stall = evaluate(data.stall, rng);
    const auto repr = evaluate(data.repr, rng);
    std::printf("%-10.0f %-10zu %-10zu %-12.3f %-10.3f %-12.3f %-10.3f\n",
                length_s, data.windows_total, data.windows_skipped,
                stall.accuracy, stall.worst_class_tp, repr.accuracy,
                repr.worst_class_tp);
  }

  std::printf(
      "\nreading: both tasks peak around 10-second windows. Shorter windows\n"
      "rarely hold enough chunks (most are skipped by the min-chunk gate)\n"
      "and a 2s slice of a stall's drain/recovery signature is ambiguous;\n"
      "representation holds up better there because the rung shows in every\n"
      "chunk's size. Much longer windows blur in the other direction — a\n"
      "60s window mixes stalled and clean intervals into one label, so\n"
      "accuracy drifts back toward the per-session numbers. 10s is the\n"
      "latency/accuracy sweet spot this dial exists to find.\n");
  return 0;
}

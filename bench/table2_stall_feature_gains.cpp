// Table 2: the stall-model features selected by CfsSubsetEval + Best First
// and their information gains.
//
// Paper: 70 constructed features reduce to 4 — chunk size minimum (0.45),
// chunk size std. deviation (0.25), BDP mean (0.18), packet retransmissions
// max (0.12). The headline finding is that chunk-size statistics carry the
// most information about stalling.
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/ml/feature_selection.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto sessions = bench::cleartext_sessions(
      args.sessions ? args.sessions : 12000, args.seed ? args.seed : 42);

  bench::banner("Table 2 — CFS-selected stall features and information gains",
                "chunk_size:min 0.45, chunk_size:std 0.25, bdp:mean 0.18, "
                "retrans:max 0.12");

  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::StallLabel> labels;
  for (const auto& s : sessions) {
    chunks.push_back(s.chunks);
    labels.push_back(core::stall_label(s.truth));
  }
  const auto data = core::build_stall_dataset(chunks, labels);
  std::printf("dataset: %zu sessions x %zu features\n\n", data.rows(),
              data.cols());

  const auto selected = ml::cfs_best_first_feature_names(data);
  std::printf("%-12s %s\n", "info. gain", "feature");
  for (const auto& name : selected) {
    std::printf("%-12.3f %s\n",
                ml::information_gain(data, data.feature_index(name)),
                name.c_str());
  }

  // Context: the top-10 features by raw information gain (before the
  // redundancy-aware CFS step).
  std::printf("\ntop 10 features by raw information gain:\n");
  const auto ranked = ml::rank_by_information_gain(data);
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    std::printf("%-12.3f %s\n", ranked[i].second, ranked[i].first.c_str());
  }

  std::size_t chunk_metrics = 0;
  for (const auto& name : selected) {
    if (name.rfind("chunk", 0) == 0) ++chunk_metrics;
  }
  std::printf("\n%zu of %zu selected features are chunk-derived "
              "(paper: 2 of 4)\n",
              chunk_metrics, selected.size());
  return 0;
}

// Windowed-inference overhead benchmarks (google-benchmark, JSON to
// BENCH_window.json): what the vqoe::window machinery costs per ingested
// record on the streaming hot path.
//
// This backs the vqoe::window acceptance claim: enabling mid-session
// windowed verdicts must cost < ~20% per-record overhead on the ingest hot
// path. The monitor's design makes that a measurable property rather than
// a hope: ingest only maintains the O(1) accumulators and queues closed
// windows; the forest runs at harvest (take_verdicts) — on the shard
// workers' publish step in the engine. So the benchmarks split the two
// costs: BM_MonitorIngestWindowed times the ingest path alone (the <20%
// claim), BM_WindowVerdictScoring times the harvest-side inference as
// verdicts/sec, and BM_MonitorWindowedEndToEnd reports the honest total
// for a single thread doing both. The raw WindowAccumulator add rate
// bounds the per-chunk state update from below.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <vector>

#include "bench_json.h"
#include "vqoe/core/online.h"
#include "vqoe/window/window.h"
#include "vqoe/workload/corpus.h"

namespace {

using namespace vqoe;

const core::QoePipeline& trained_pipeline() {
  static const auto pipeline = [] {
    auto options = workload::has_corpus_options(400, 42);
    options.keep_session_results = false;
    return core::QoePipeline::train(
        core::sessions_from_corpus(workload::generate_corpus(options)));
  }();
  return pipeline;
}

/// The same multi-subscriber encrypted feed perf_engine measures against,
/// so the windowed-vs-baseline delta reads off one corpus.
const std::vector<trace::WeblogRecord>& live_records() {
  static const auto records = [] {
    auto options = workload::cleartext_corpus_options(800, 99);
    options.adaptive_fraction = 1.0;
    options.subscribers = 64;
    options.keep_session_results = false;
    return trace::encrypt_view(workload::generate_corpus(options).weblogs);
  }();
  return records;
}

core::OnlineMonitorConfig windowed_config(double length_s) {
  core::OnlineMonitorConfig config;
  config.window.length_s = length_s;
  config.window.min_chunks = 2;
  return config;
}

/// How often the windowed benchmarks harvest verdicts (in records) — the
/// deployed cadence: the engine drains each shard's verdicts periodically,
/// so pending windows never pile up to stream length.
constexpr std::size_t kHarvestEvery = 8192;

/// The pre-window behaviour: session bookkeeping + one classification at
/// session close. The denominator of the overhead claim.
void BM_MonitorIngestBaseline(benchmark::State& state) {
  const auto& records = live_records();
  for (auto _ : state) {
    core::OnlineMonitor monitor{trained_pipeline(),
                                core::OnlineMonitorConfig{}};
    std::size_t completed = 0;
    for (const auto& record : records) {
      completed += monitor.ingest(record).size();
    }
    completed += monitor.flush().size();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_MonitorIngestBaseline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

/// The ingest hot path with 2/10/60-second tumbling windows: O(1)
/// accumulator updates per media chunk, window close bookkeeping, and the
/// move-only detach of unharvested windows when sessions close. Verdicts
/// are harvested every kHarvestEvery records with the clock paused — the
/// deployed cadence; their scoring cost is BM_WindowVerdictScoring's. The
/// per-record delta against the baseline is the windowing overhead the
/// <20% acceptance bound is about (BM_MonitorIngestOverheadPaired below
/// measures that ratio directly).
void BM_MonitorIngestWindowed(benchmark::State& state) {
  const auto& records = live_records();
  const auto config = windowed_config(static_cast<double>(state.range(0)));
  std::uint64_t windows = 0;
  for (auto _ : state) {
    core::OnlineMonitor monitor{trained_pipeline(), config};
    std::size_t completed = 0;
    std::size_t fed = 0;
    for (const auto& record : records) {
      completed += monitor.ingest(record).size();
      if (++fed % kHarvestEvery == 0) {
        state.PauseTiming();  // harvest-side inference measured separately
        benchmark::DoNotOptimize(monitor.take_verdicts());
        state.ResumeTiming();
      }
    }
    completed += monitor.flush().size();
    benchmark::DoNotOptimize(completed);
    state.PauseTiming();
    benchmark::DoNotOptimize(monitor.take_verdicts());
    windows += monitor.windows_closed();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  state.counters["window_s"] = static_cast<double>(state.range(0));
  state.counters["windows"] = static_cast<double>(windows) /
                              static_cast<double>(state.iterations());
}
BENCHMARK(BM_MonitorIngestWindowed)
    ->Arg(2)
    ->Arg(10)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

/// The <20% claim itself, measured noise-robustly: each iteration feeds
/// the same records through a baseline monitor and a windowed monitor
/// back-to-back and reports the ratio as overhead_pct. Machine-load noise
/// hits both phases of a pair roughly equally, so the ratio stays stable
/// where the split benchmarks above drift run-to-run (this host is a
/// single-core VM). Harvest-side scoring stays outside the windowed
/// phase's clock, as in BM_MonitorIngestWindowed.
void BM_MonitorIngestOverheadPaired(benchmark::State& state) {
  const auto& records = live_records();
  const auto config = windowed_config(static_cast<double>(state.range(0)));
  using clock = std::chrono::steady_clock;
  double baseline_s = 0.0;
  double windowed_s = 0.0;
  for (auto _ : state) {
    std::size_t completed = 0;
    const auto t0 = clock::now();
    {
      core::OnlineMonitor monitor{trained_pipeline(),
                                  core::OnlineMonitorConfig{}};
      for (const auto& record : records) {
        completed += monitor.ingest(record).size();
      }
      completed += monitor.flush().size();
    }
    const auto t1 = clock::now();
    baseline_s += std::chrono::duration<double>(t1 - t0).count();
    core::OnlineMonitor monitor{trained_pipeline(), config};
    std::size_t fed = 0;
    auto segment = clock::now();
    for (const auto& record : records) {
      completed += monitor.ingest(record).size();
      if (++fed % kHarvestEvery == 0) {
        windowed_s += std::chrono::duration<double>(clock::now() - segment)
                          .count();
        benchmark::DoNotOptimize(monitor.take_verdicts());  // off the clock
        segment = clock::now();
      }
    }
    completed += monitor.flush().size();
    windowed_s += std::chrono::duration<double>(clock::now() - segment).count();
    benchmark::DoNotOptimize(monitor.take_verdicts());
    benchmark::DoNotOptimize(completed);
  }
  state.counters["window_s"] = static_cast<double>(state.range(0));
  state.counters["overhead_pct"] =
      baseline_s > 0.0 ? 100.0 * (windowed_s / baseline_s - 1.0) : 0.0;
}
BENCHMARK(BM_MonitorIngestOverheadPaired)
    ->Arg(2)
    ->Arg(10)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults)
    ->Repetitions(9);  // the acceptance number: worth the extra samples

/// The harvest side: forest inference over every pending window of the
/// stream, measured alone (the feed runs with the clock paused).
/// items_per_second is the verdict scoring rate one thread sustains — in
/// the engine this work lands on the shard workers, so it scales with
/// shard count, not with ingest rate.
void BM_WindowVerdictScoring(benchmark::State& state) {
  const auto& records = live_records();
  const auto config = windowed_config(static_cast<double>(state.range(0)));
  std::uint64_t verdicts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::OnlineMonitor monitor{trained_pipeline(), config};
    for (const auto& record : records) (void)monitor.ingest(record);
    (void)monitor.flush();
    state.ResumeTiming();
    const auto scored = monitor.take_verdicts();
    benchmark::DoNotOptimize(scored.data());
    verdicts += scored.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(verdicts));
  state.counters["window_s"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowVerdictScoring)
    ->Arg(2)
    ->Arg(10)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

/// Full transparency row: one thread doing both the ingest path and the
/// harvest-side scoring (the single-core worst case; a sequential deploy
/// pays this, a sharded engine spreads the scoring over workers).
void BM_MonitorWindowedEndToEnd(benchmark::State& state) {
  const auto& records = live_records();
  const auto config = windowed_config(10.0);
  std::uint64_t verdicts = 0;
  for (auto _ : state) {
    core::OnlineMonitor monitor{trained_pipeline(), config};
    std::size_t completed = 0;
    for (const auto& record : records) {
      completed += monitor.ingest(record).size();
    }
    completed += monitor.flush().size();
    benchmark::DoNotOptimize(completed);
    const auto scored = monitor.take_verdicts();
    benchmark::DoNotOptimize(scored.data());
    verdicts += scored.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  state.counters["verdicts_per_s"] = benchmark::Counter(
      static_cast<double>(verdicts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MonitorWindowedEndToEnd)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

/// Raw per-chunk state update: every Table-1 metric under running
/// min/mean/max/std plus the incremental CUSUM, no scheduling or scoring.
/// Upper bound on the accumulator's share of the ingest overhead.
void BM_WindowAccumulatorAdd(benchmark::State& state) {
  constexpr std::size_t kChunks = 1 << 14;
  net::TransportStats transport;
  transport.rtt_min_ms = 32.0;
  transport.rtt_avg_ms = 48.0;
  transport.rtt_max_ms = 90.0;
  transport.bdp_bytes = 120'000.0;
  transport.bif_avg_bytes = 60'000.0;
  transport.bif_max_bytes = 140'000.0;
  transport.loss_pct = 0.4;
  transport.retrans_pct = 0.9;
  for (auto _ : state) {
    window::WindowAccumulator acc;
    double t = 0.0;
    for (std::size_t i = 0; i < kChunks; ++i) {
      const double size = 600'000.0 + 40'000.0 * static_cast<double>(i % 7);
      acc.add(t, t + 0.4, size, transport);
      t += 1.0;
    }
    benchmark::DoNotOptimize(acc.cusum_std());
    benchmark::DoNotOptimize(acc.bytes_kb());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kChunks));
}
BENCHMARK(BM_WindowAccumulatorAdd)
    ->UseRealTime()
    ->Apply(vqoe::bench::perf_defaults);

}  // namespace

VQOE_BENCHMARK_MAIN_JSON("BENCH_window.json")

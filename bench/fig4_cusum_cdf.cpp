// Figure 4: "CDF of change detection output for videos with and without
// resolution changes" — the distribution of STD(CUSUM(Δsize x Δt)) for the
// two populations, and the fixed decision threshold of 500 which the paper
// reports separates 78% of no-switch sessions from 76% of switch sessions.
//
// Also prints the ablations DESIGN.md calls out:
//   * Δsize x Δt product vs either delta alone,
//   * the first-10-seconds start-up filter on/off,
//   * the ML alternative the paper rejected (a Random Forest on the
//     representation feature set, classifying switch/no-switch).
#include "bench_common.h"

#include "vqoe/core/features.h"
#include "vqoe/ml/random_forest.h"
#include "vqoe/ts/cusum.h"
#include "vqoe/ts/ecdf.h"

namespace {

using namespace vqoe;

// Per-session Δ-series after the start-up filter, as raw components.
struct DeltaSeries {
  std::vector<double> dsize_kb;
  std::vector<double> dt_s;
};

DeltaSeries delta_series(const std::vector<core::ChunkObs>& chunks,
                         double skip_initial_s) {
  DeltaSeries out;
  if (chunks.empty()) return out;
  const double cutoff = chunks.front().request_time_s + skip_initial_s;
  std::vector<double> sizes, arrivals;
  for (const core::ChunkObs& c : chunks) {
    if (c.arrival_time_s < cutoff) continue;
    sizes.push_back(c.size_bytes / 1000.0);
    arrivals.push_back(c.arrival_time_s);
  }
  if (sizes.size() < 3) return out;
  out.dsize_kb = ts::deltas(sizes);
  out.dt_s = ts::deltas(arrivals);
  return out;
}

struct Split {
  std::vector<double> with_switches;
  std::vector<double> without_switches;
};

double frac_below(const std::vector<double>& v, double t) {
  if (v.empty()) return 0.0;
  std::size_t below = 0;
  for (double x : v) below += x <= t ? 1 : 0;
  return static_cast<double>(below) / static_cast<double>(v.size());
}

void report(const char* name, const Split& split, double threshold) {
  std::printf("%-28s correct without: %5.1f%%   detected with: %5.1f%%\n", name,
              100.0 * frac_below(split.without_switches, threshold),
              100.0 * (1.0 - frac_below(split.with_switches, threshold)));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto sessions =
      bench::has_sessions(args.sessions ? args.sessions : 5000,
                          args.seed ? args.seed : 43);

  bench::banner(
      "Figure 4 — CDF of STD(CUSUM(Δsize x Δt)), with vs without switches",
      "threshold 500 separates 78% (without) / 76% (with)");

  // Main statistic and the ablation variants.
  Split product, product_nofilter, dsize_only, dt_only;
  for (const auto& s : sessions) {
    const bool has_var =
        core::variation_label(s.truth) != core::VariationLabel::none;
    auto push = [&](Split& split, double score) {
      (has_var ? split.with_switches : split.without_switches).push_back(score);
    };
    const auto d10 = delta_series(s.chunks, 10.0);
    const auto d0 = delta_series(s.chunks, 0.0);
    push(product, ts::cusum_std(ts::product(d10.dsize_kb, d10.dt_s)));
    push(product_nofilter, ts::cusum_std(ts::product(d0.dsize_kb, d0.dt_s)));
    push(dsize_only, ts::cusum_std(d10.dsize_kb));
    push(dt_only, ts::cusum_std(d10.dt_s));
  }

  std::printf("sessions: %zu without switches, %zu with switches\n\n",
              product.without_switches.size(), product.with_switches.size());

  // The figure itself: both CDFs on a shared grid.
  const ts::Ecdf without_cdf{product.without_switches};
  const ts::Ecdf with_cdf{product.with_switches};
  std::printf("%-12s %-16s %-16s\n", "score", "F_no_switch", "F_with_switch");
  for (double x = 0; x <= 3000.0001; x += 150.0) {
    std::printf("%-12.0f %-16.4f %-16.4f\n", x, without_cdf(x), with_cdf(x));
  }

  std::printf("\nAt the paper's fixed threshold of 500 KB·s:\n");
  report("Δsize x Δt (10 s filter)", product, 500.0);
  std::printf("(paper: 78.0%% / 76.0%%)\n");

  std::printf("\nAblations:\n");
  report("Δsize x Δt, no filter", product_nofilter, 500.0);
  report("Δsize alone", dsize_only, 100.0);
  report("Δt alone", dt_only, 10.0);
  std::printf("(single-delta thresholds rescaled to each statistic's units)\n");

  // Balanced-accuracy comparison at each statistic's own best threshold —
  // the fair version of the ablation.
  auto best_balanced = [](const Split& split) {
    const double t = core::SwitchDetector::calibrate_threshold(
        split.without_switches, split.with_switches);
    return 0.5 * frac_below(split.without_switches, t) +
           0.5 * (1.0 - frac_below(split.with_switches, t));
  };
  std::printf("\nbest-threshold balanced accuracy:\n");
  std::printf("  Δsize x Δt : %.1f%%\n", 100.0 * best_balanced(product));
  std::printf("  Δsize only : %.1f%%\n", 100.0 * best_balanced(dsize_only));
  std::printf("  Δt only    : %.1f%%\n", 100.0 * best_balanced(dt_only));

  // The ML alternative the paper considered and rejected (Section 4.3):
  // Random Forest on the 210 representation features, binary target.
  {
    ml::Dataset data{core::representation_feature_names(),
                     {"no variation", "variation"}};
    for (const auto& s : sessions) {
      const int label =
          core::variation_label(s.truth) != core::VariationLabel::none ? 1 : 0;
      data.add(core::representation_features(s.chunks), label);
    }
    std::mt19937_64 rng{7};
    auto [train, test] = data.stratified_split(0.3, rng);
    train = train.balanced_undersample(rng);
    ml::ForestParams params;
    params.num_trees = 40;
    const auto forest = ml::RandomForest::fit(train, params);
    std::size_t correct_with = 0, n_with = 0, correct_without = 0, n_without = 0;
    for (std::size_t i = 0; i < test.rows(); ++i) {
      const int pred = forest.predict(test.row(i));
      if (test.label(i) == 1) {
        ++n_with;
        correct_with += pred == 1 ? 1 : 0;
      } else {
        ++n_without;
        correct_without += pred == 0 ? 1 : 0;
      }
    }
    std::printf("\nML alternative (RF, held-out 30%%): correct without %.1f%%, "
                "detected with %.1f%%\n",
                100.0 * correct_without / std::max<std::size_t>(1, n_without),
                100.0 * correct_with / std::max<std::size_t>(1, n_with));
    std::printf("(the paper found ML *under*-performing the time-series method "
                "on real traffic;\n on this cleaner simulated corpus the RF "
                "keeps up — a documented deviation, see EXPERIMENTS.md)\n");
  }
  return 0;
}

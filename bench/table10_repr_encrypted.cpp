// Tables 10 & 11: the representation model evaluated on encrypted traffic
// (Section 5.5).
//
// Paper: 81.9% overall (~2.5 points below cleartext); LD/SD still solid,
// HD drops hard (tiny HD support on a 3G handset); extra LD -> SD confusion
// because the encrypted LD class skews toward 240p.
#include "bench_common.h"

#include "vqoe/core/detectors.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto has = bench::has_sessions(args.sessions ? args.sessions : 5000,
                                       args.seed ? args.seed : 43);
  const auto encrypted = bench::encrypted_sessions(722, 4242);

  bench::banner("Tables 10 & 11 — average representation on encrypted traffic",
                "81.9% accuracy (−2.5 vs cleartext); HD class collapses to "
                "51% on scarce support");

  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::ReprLabel> labels;
  for (const auto& s : has) {
    chunks.push_back(s.chunks);
    labels.push_back(core::repr_label(s.truth));
  }
  const auto data = core::build_representation_dataset(chunks, labels);
  const auto detector = core::RepresentationDetector::train(data);

  std::size_t enc_counts[3] = {0, 0, 0};
  for (const auto& s : encrypted) {
    enc_counts[static_cast<int>(core::repr_label(s.truth))]++;
  }
  std::printf("training: %zu cleartext HAS sessions; evaluation: %zu "
              "encrypted sessions (LD %zu / SD %zu / HD %zu)\n\n",
              has.size(), encrypted.size(), enc_counts[0], enc_counts[1],
              enc_counts[2]);

  const auto enc_cm =
      core::evaluate_representation(detector, encrypted, /*adaptive_only=*/true);
  bench::print_classifier_tables(enc_cm);

  const auto clear_cm = core::evaluate_representation(detector, has);
  std::printf("cleartext accuracy with the same model: %.1f%% "
              "(delta %.1f points; paper: −2.5)\n",
              100.0 * clear_cm.accuracy(),
              100.0 * (clear_cm.accuracy() - enc_cm.accuracy()));
  return 0;
}

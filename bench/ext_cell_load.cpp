// Extension experiment: QoE vs cell load — the capacity-planning curve.
//
// Not a paper artifact, but the paper's motivating use case ("operators
// have to radically rethink and optimize their network", Section 1). We
// attach adaptive sessions to a shared cell whose background population is
// swept from idle to saturated, and report per-load QoE: stall share,
// severe share, mean truth MOS, LD share, switch rate — plus what the
// traffic-only detectors report, showing the monitoring loop closing on
// the planning question.
#include "bench_common.h"

#include "vqoe/core/mos.h"
#include "vqoe/core/startup.h"
#include "vqoe/net/cell.h"
#include "vqoe/sim/player.h"
#include "vqoe/sim/video.h"

namespace {

using namespace vqoe;

struct LoadPoint {
  double erlangs = 0.0;
  double stalled_pct = 0.0;
  double severe_pct = 0.0;
  double ld_pct = 0.0;
  double mean_switches = 0.0;
  double mean_mos_truth = 0.0;
  double mean_mos_detected = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t runs = args.sessions ? args.sessions : 250;

  bench::banner("Extension — QoE vs cell load (capacity planning curve)",
                "not in the paper; its motivating operator use case");

  // Detectors trained on the standard corpus; the cell sweep is unseen data.
  const auto pipeline = core::QoePipeline::train(bench::cleartext_sessions(4000, 42));

  sim::Catalog catalog{64, 9};
  const sim::HasPlayer player{sim::PlayerConfig{}};

  std::printf("%zu sessions per load point, 30 Mbit/s cell, mixed radio "
              "quality\n\n",
              runs);
  std::printf("%-9s %-10s %-10s %-8s %-10s %-10s %-12s\n", "erlangs",
              "stalled%", "severe%", "LD%", "switches", "MOS(true)",
              "MOS(detected)");

  for (const double arrivals : {0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.45}) {
    net::CellConfig cell;
    cell.mean_arrivals_per_s = arrivals;  // x 120 s holding = Erlangs
    LoadPoint point;
    point.erlangs = net::offered_load_erlangs(cell);

    std::mt19937_64 rng{1234};
    std::uniform_real_distribution<double> quality(0.4, 1.0);
    std::size_t stalled = 0, severe = 0, ld = 0;
    for (std::size_t i = 0; i < runs; ++i) {
      net::CellLoadChannel channel{cell, quality(rng), 1000 + i};
      const auto& video = catalog.sample(rng);
      const auto session = player.play(video, channel, 5000 + i);

      if (!session.stalls.empty()) ++stalled;
      if (session.rebuffering_ratio() > core::kSevereRebufferingRatio) ++severe;
      if (session.average_height() < core::kSdMinHeight) ++ld;
      point.mean_switches += static_cast<double>(session.switch_count());

      trace::SessionGroundTruth truth;
      truth.total_duration_s = session.total_duration_s;
      truth.startup_delay_s = session.startup_delay_s;
      truth.stall_count = static_cast<int>(session.stalls.size());
      truth.stall_duration_s = session.stall_total_s();
      truth.average_height = session.average_height();
      truth.switch_count = session.switch_count();
      truth.switch_amplitude = session.switch_amplitude();
      point.mean_mos_truth += core::mos_from_ground_truth(truth);

      std::vector<core::ChunkObs> chunks;
      for (const auto& c : session.chunks) {
        chunks.push_back({c.request_time_s, c.arrival_time_s,
                          static_cast<double>(c.size_bytes), c.transport});
      }
      point.mean_mos_detected += core::mos_from_report(
          pipeline.assess(chunks), core::estimate_startup_delay(chunks));
    }

    const double n = static_cast<double>(runs);
    point.stalled_pct = 100.0 * static_cast<double>(stalled) / n;
    point.severe_pct = 100.0 * static_cast<double>(severe) / n;
    point.ld_pct = 100.0 * static_cast<double>(ld) / n;
    point.mean_switches /= n;
    point.mean_mos_truth /= n;
    point.mean_mos_detected /= n;

    std::printf("%-9.1f %-10.1f %-10.1f %-8.1f %-10.2f %-10.2f %-12.2f\n",
                point.erlangs, point.stalled_pct, point.severe_pct,
                point.ld_pct, point.mean_switches, point.mean_mos_truth,
                point.mean_mos_detected);
  }

  std::printf("\nreading: QoE degrades smoothly with offered load until the\n"
              "cell saturates; the traffic-only detected MOS tracks the\n"
              "ground-truth MOS across the sweep — an operator can read the\n"
              "planning curve from encrypted traffic alone.\n");
  return 0;
}

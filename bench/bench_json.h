// Shared google-benchmark entry point that makes every perf binary emit
// machine-readable results by default: unless the caller already passed
// --benchmark_out, results are also written as JSON to a fixed file
// (BENCH_pipeline.json / BENCH_engine.json / BENCH_train.json) in the
// working directory, so the perf trajectory is tracked across PRs without
// remembering the flags. Console output is unchanged.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace vqoe::bench {

inline int run_benchmarks_with_default_json(int argc, char** argv,
                                            const char* default_out) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    out_flag = std::string{"--benchmark_out="} + default_out;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }

  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace vqoe::bench

#define VQOE_BENCHMARK_MAIN_JSON(default_out)                                \
  int main(int argc, char** argv) {                                          \
    return vqoe::bench::run_benchmarks_with_default_json(argc, argv,         \
                                                         default_out);       \
  }

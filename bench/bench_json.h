// Shared google-benchmark entry point that makes every perf binary emit
// machine-readable results by default: unless the caller already passed
// --benchmark_out, results are also written as JSON to a fixed file
// (BENCH_pipeline.json / BENCH_engine.json / BENCH_train.json /
// BENCH_predict.json) in the working directory, so the perf trajectory is
// tracked across PRs without remembering the flags. Console output is
// unchanged.
//
// The entry point also defaults to repeated trials (3 repetitions,
// aggregates only) so every BENCH_*.json row is a median with min/max
// spread rather than a single noisy sample; pass --benchmark_repetitions
// explicitly to override. Register benchmarks through perf_defaults() to
// pick up the warmup window and the min/max aggregate statistics.
// Every BENCH_*.json additionally carries provenance in its `context`
// block — git SHA and build type (stamped in by bench/CMakeLists.txt at
// configure time), hardware thread count and a UTC run timestamp — so a
// number in the perf trajectory can always be traced back to the commit
// and machine shape that produced it.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

namespace vqoe::bench {

/// Standard registration defaults for perf_* binaries, applied with
/// ->Apply(vqoe::bench::perf_defaults): a short warmup so first-touch page
/// faults and cold caches stay out of the measured window, plus min/max
/// across repetitions next to the default mean/median/stddev aggregates.
inline void perf_defaults(benchmark::internal::Benchmark* b) {
  b->MinWarmUpTime(0.1);
  b->ComputeStatistics("min", [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  });
  b->ComputeStatistics("max", [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end());
  });
}

/// Stamps run provenance into the benchmark context (console and JSON).
/// VQOE_GIT_SHA / VQOE_BUILD_TYPE come from bench/CMakeLists.txt; a build
/// outside a git checkout reports "unknown".
inline void add_run_metadata() {
#ifdef VQOE_GIT_SHA
  benchmark::AddCustomContext("git_sha", VQOE_GIT_SHA);
#endif
#ifdef VQOE_BUILD_TYPE
  benchmark::AddCustomContext("build_type", VQOE_BUILD_TYPE);
#endif
  benchmark::AddCustomContext(
      "hardware_threads", std::to_string(std::thread::hardware_concurrency()));
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  benchmark::AddCustomContext("run_timestamp_utc", stamp);
}

inline int run_benchmarks_with_default_json(int argc, char** argv,
                                            const char* default_out) {
  bool has_out = false;
  bool has_repetitions = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_repetitions", 23) == 0) {
      has_repetitions = true;
    }
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    out_flag = std::string{"--benchmark_out="} + default_out;
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  // Repeated trials by default; aggregates-only keeps the per-repetition
  // rows out of the JSON so downstream tooling always reads the median.
  std::string repetitions_flag = "--benchmark_repetitions=3";
  std::string aggregates_flag = "--benchmark_report_aggregates_only=true";
  if (!has_repetitions) {
    args.push_back(repetitions_flag.data());
    args.push_back(aggregates_flag.data());
  }

  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  add_run_metadata();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace vqoe::bench

#define VQOE_BENCHMARK_MAIN_JSON(default_out)                                \
  int main(int argc, char** argv) {                                          \
    return vqoe::bench::run_benchmarks_with_default_json(argc, argv,         \
                                                         default_out);       \
  }

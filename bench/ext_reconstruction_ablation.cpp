// Extension experiment: sensitivity of encrypted-session reconstruction.
//
// Section 5.2 reconstructs sessions with three rules (domain filter,
// watch-page markers, idle gaps) and reports that "the vast majority" of
// sessions were identified. This bench quantifies each rule's contribution
// and the idle-gap threshold sensitivity, and shows how reconstruction
// errors propagate into stall-detection accuracy.
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/session/reconstruct.h"

namespace {

using namespace vqoe;

struct Row {
  std::string name;
  session::ReconstructionOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  bench::banner("Extension — session reconstruction sensitivity (Section 5.2)",
                "paper reports 'the vast majority' recovered; here: per-rule "
                "contribution and downstream cost");

  auto options = workload::encrypted_corpus_options(722, 4242);
  options.keep_session_results = false;
  auto corpus = workload::generate_corpus(options);
  corpus.weblogs = trace::encrypt_view(std::move(corpus.weblogs));

  // A trained stall model to measure downstream impact.
  const auto pipeline =
      core::QoePipeline::train(bench::cleartext_sessions(
          args.sessions ? args.sessions : 8000, args.seed ? args.seed : 42));

  std::vector<Row> rows;
  rows.push_back({"default (markers + 30 s gap)", {}});
  {
    session::ReconstructionOptions o;
    o.use_page_markers = false;
    rows.push_back({"no page markers", o});
  }
  for (double gap : {10.0, 60.0, 120.0}) {
    session::ReconstructionOptions o;
    o.idle_gap_s = gap;
    char buf[32];
    std::snprintf(buf, sizeof buf, "idle gap %.0f s", gap);
    rows.push_back({buf, o});
  }
  {
    session::ReconstructionOptions o;
    o.use_page_markers = false;
    o.idle_gap_s = 600.0;
    rows.push_back({"gaps only, 600 s (degenerate)", o});
  }

  std::printf("%-32s %-10s %-12s %-12s %-12s\n", "configuration", "sessions",
              "exact-chunk", "matched", "stall acc.");
  for (const Row& row : rows) {
    const auto reconstructed = session::reconstruct(corpus.weblogs, row.options);
    const double exact =
        session::reconstruction_accuracy(reconstructed, corpus.truths);
    const auto sessions = core::sessions_from_encrypted(
        corpus.weblogs, corpus.truths, row.options);
    const auto cm = core::evaluate_stall(pipeline.stall_detector(), sessions);
    std::printf("%-32s %-10zu %-12.1f %-12zu %-12.1f\n", row.name.c_str(),
                reconstructed.size(), 100.0 * exact, sessions.size(),
                100.0 * cm.accuracy());
  }

  std::printf("\nreading: page markers carry most of the boundary signal\n"
              "(sequential mobile viewing rarely pauses 30 s between videos);\n"
              "over-long idle gaps glue sessions together, and the glued\n"
              "sessions drag stall accuracy down with them.\n");
  return 0;
}

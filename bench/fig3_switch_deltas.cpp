// Figure 3: "Δt and Δsize in a video session with a representation switch."
//
// The paper plots one adaptive session switching 144p -> 480p: at the
// switch, both the chunk inter-arrival time and the chunk size delta spike,
// then the new representation ramps through its own start-up phase.
#include "bench_common.h"

#include "vqoe/core/features.h"
#include "vqoe/ts/cusum.h"
#include "vqoe/workload/corpus.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const std::uint64_t base_seed = args.seed ? args.seed : 21;

  bench::banner("Figure 3 — Δt and Δsize around a representation switch",
                "both deltas spike at the 144p->480p switch, then ramp back");

  // Find a session with a clean upward switch.
  sim::SessionResult session;
  std::uint64_t used_seed = base_seed;
  for (std::uint64_t s = base_seed; s < base_seed + 200; ++s) {
    session = workload::demo_switch_session(s);
    if (session.switch_count() >= 1 && session.stalls.empty() &&
        session.average_height() > 200.0) {
      used_seed = s;
      break;
    }
  }

  std::printf("session: %zu chunks, %zu switches, amplitude %.2f (seed %llu)\n\n",
              session.chunks.size(), session.switch_count(),
              session.switch_amplitude(),
              static_cast<unsigned long long>(used_seed));

  std::printf("%-10s %-12s %-10s %-12s %-12s\n", "arrival_s", "size_KB",
              "itag", "dt_s", "dsize_KB");
  double prev_arrival = 0.0;
  double prev_size = 0.0;
  bool first = true;
  for (const sim::ChunkEvent& c : session.chunks) {
    const double size_kb = static_cast<double>(c.size_bytes) / 1000.0;
    if (first) {
      std::printf("%-10.2f %-12.1f %-10s %-12s %-12s\n", c.arrival_time_s,
                  size_kb, sim::to_string(c.resolution).c_str(), "-", "-");
      first = false;
    } else {
      std::printf("%-10.2f %-12.1f %-10s %-12.2f %-12.1f\n", c.arrival_time_s,
                  size_kb, sim::to_string(c.resolution).c_str(),
                  c.arrival_time_s - prev_arrival, size_kb - prev_size);
    }
    prev_arrival = c.arrival_time_s;
    prev_size = size_kb;
  }

  // The downstream use of this signature: the session's CUSUM-std detector
  // statistic (Section 4.3) versus a no-switch session of the same length.
  std::vector<core::ChunkObs> chunks;
  for (const sim::ChunkEvent& c : session.chunks) {
    chunks.push_back({c.request_time_s, c.arrival_time_s,
                      static_cast<double>(c.size_bytes), c.transport});
  }
  const auto signal = core::switch_signal(chunks);
  std::printf("\nSTD(CUSUM(Δsize x Δt)) for this session: %.0f KB·s "
              "(paper threshold: 500)\n",
              ts::cusum_std(signal));
  return 0;
}

// Shared scaffolding for the per-table/per-figure reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper from a
// freshly simulated corpus. Corpus sizes default to values that keep a full
// `for b in build/bench/*; do $b; done` sweep under a couple of minutes while
// remaining statistically stable; override with --sessions=N / --seed=N.
#pragma once

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "vqoe/core/pipeline.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::bench {

struct Args {
  std::size_t sessions = 0;  ///< 0 = bench-specific default
  std::uint64_t seed = 0;    ///< 0 = bench-specific default
};

/// Whole-string unsigned parse; exits loudly on garbage or overflow so a
/// typo'd --sessions never silently benchmarks the default corpus size.
inline std::uint64_t parse_u64(const std::string& arg, std::size_t prefix) {
  std::uint64_t out = 0;
  const char* begin = arg.c_str() + prefix;
  const char* end = arg.c_str() + arg.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) {
    std::fprintf(stderr, "invalid number in '%s'\n", arg.c_str());
    std::exit(2);
  }
  return out;
}

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sessions=", 0) == 0) {
      args.sessions = parse_u64(arg, 11);
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = parse_u64(arg, 7);
    } else if (arg == "--help") {
      std::printf("usage: %s [--sessions=N] [--seed=N]\n", argv[0]);
      std::exit(0);
    }
  }
  return args;
}

inline void banner(const char* experiment, const char* paper_result) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_result);
  std::printf("==============================================================\n");
}

/// The Section 3 cleartext operator corpus (mixed progressive/HAS), as
/// labelled sessions.
inline std::vector<core::SessionRecord> cleartext_sessions(
    std::size_t sessions = 12000, std::uint64_t seed = 42) {
  auto options = workload::cleartext_corpus_options(sessions, seed);
  options.keep_session_results = false;
  return core::sessions_from_corpus(workload::generate_corpus(options));
}

/// The adaptive (HAS) subset at scale — training population of the
/// representation and switch models (Sections 4.2/4.3).
inline std::vector<core::SessionRecord> has_sessions(std::size_t sessions = 5000,
                                                     std::uint64_t seed = 43) {
  auto options = workload::has_corpus_options(sessions, seed);
  options.keep_session_results = false;
  return core::sessions_from_corpus(workload::generate_corpus(options));
}

/// The Section 5.2 encrypted corpus: generated, TLS-stripped, session-
/// reconstructed, and ground-truth joined.
inline std::vector<core::SessionRecord> encrypted_sessions(
    std::size_t sessions = 722, std::uint64_t seed = 4242) {
  auto options = workload::encrypted_corpus_options(sessions, seed);
  options.keep_session_results = false;
  auto corpus = workload::generate_corpus(options);
  corpus.weblogs = trace::encrypt_view(std::move(corpus.weblogs));
  return core::sessions_from_encrypted(corpus.weblogs, corpus.truths);
}

inline void print_classifier_tables(const ml::ConfusionMatrix& cm) {
  std::printf("overall accuracy: %.1f%%\n\n", 100.0 * cm.accuracy());
  std::printf("%s\n", cm.metrics_table().c_str());
  std::printf("%s\n", cm.confusion_table().c_str());
}

}  // namespace vqoe::bench

// Extension experiment: QoE detection from flow records instead of proxy
// weblogs — the degraded-observability sweep.
//
// The paper's vantage point is an HTTP proxy (per-transaction logs with
// transport annotations). Operators without one see NetFlow/IPFIX-style
// per-connection counters at some export granularity. This bench re-runs
// the stall and switch detection pipeline when BOTH training and evaluation
// data pass through flow export + burst reassembly, sweeping the export
// interval from packet-tap-like (0.1 s) to coarse router export (2 s).
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/flow/export.h"
#include "vqoe/flow/reassembly.h"

namespace {

using namespace vqoe;

// Passes a corpus' weblogs through the flow pipeline and rebuilds labelled
// sessions via timestamp matching (no URIs survive flow export).
std::vector<core::SessionRecord> flow_view_sessions(
    const workload::Corpus& corpus, double slice_s) {
  flow::FlowExportOptions options;
  options.slice_s = slice_s;
  const auto slices = flow::export_flows(corpus.weblogs, options);

  flow::BurstOptions burst_options;
  burst_options.quiet_gap_s = std::max(2.0, 2.0 * slice_s);
  const auto bursts = flow::segment_bursts(slices, burst_options);
  const auto records = flow::bursts_to_weblogs(bursts);
  return core::sessions_from_encrypted(records, corpus.truths);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  bench::banner("Extension — detection from flow records (NetFlow view)",
                "not in the paper (proxy weblogs assumed); observability "
                "granularity sweep");

  auto train_options = workload::cleartext_corpus_options(
      args.sessions ? args.sessions : 8000, args.seed ? args.seed : 42);
  train_options.keep_session_results = false;
  const auto train_corpus = workload::generate_corpus(train_options);

  auto eval_options = workload::encrypted_corpus_options(722, 4242);
  eval_options.keep_session_results = false;
  auto eval_corpus = workload::generate_corpus(eval_options);
  eval_corpus.weblogs = trace::encrypt_view(std::move(eval_corpus.weblogs));

  // Proxy-weblog baseline (the paper's observation mode).
  {
    const auto train = core::sessions_from_corpus(train_corpus);
    const auto eval =
        core::sessions_from_encrypted(eval_corpus.weblogs, eval_corpus.truths);
    const auto pipeline = core::QoePipeline::train(train);
    const auto cm = core::evaluate_stall(pipeline.stall_detector(), eval);
    const auto sw = core::evaluate_switch(core::SwitchDetector{}, eval);
    std::printf("%-18s %-10s %-12s %-12s %-14s %-12s\n", "observation",
                "sessions", "stall acc.", "healthy TP", "switch w/o",
                "switch with");
    std::printf("%-18s %-10zu %-12.1f %-12.3f %-14.1f %-12.1f\n",
                "proxy weblogs", eval.size(), 100.0 * cm.accuracy(),
                cm.tp_rate(0), 100.0 * sw.accuracy_without,
                100.0 * sw.accuracy_with);
  }

  for (const double slice_s : {0.1, 0.5, 1.0, 2.0}) {
    const auto train = flow_view_sessions(train_corpus, slice_s);
    const auto eval = flow_view_sessions(eval_corpus, slice_s);
    if (train.size() < 100 || eval.size() < 50) {
      std::printf("flow %.1fs: too few sessions recovered (train %zu, eval %zu)\n",
                  slice_s, train.size(), eval.size());
      continue;
    }
    const auto pipeline = core::QoePipeline::train(train);
    const auto cm = core::evaluate_stall(pipeline.stall_detector(), eval);
    const auto sw = core::evaluate_switch(core::SwitchDetector{}, eval);
    char label[32];
    std::snprintf(label, sizeof label, "flow @ %.1f s", slice_s);
    std::printf("%-18s %-10zu %-12.1f %-12.3f %-14.1f %-12.1f\n", label,
                eval.size(), 100.0 * cm.accuracy(), cm.tp_rate(0),
                100.0 * sw.accuracy_without, 100.0 * sw.accuracy_with);
  }

  std::printf(
      "\nreading: burst reassembly preserves most of the stall signal at\n"
      "sub-second export granularity and degrades gracefully toward coarse\n"
      "router export — transaction-level visibility (the paper's proxy) is\n"
      "helpful but not a hard requirement for QoE monitoring.\n");
  return 0;
}

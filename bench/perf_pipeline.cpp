// Performance micro-benchmarks (google-benchmark): the operator-side cost
// of running the framework online — feature construction, model inference,
// the CUSUM statistic, session reconstruction, and simulation throughput.
//
// These back the paper's deployability claim (Section 8: models "can be
// then directly applied on the passively monitored traffic and report
// issues in real time").
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "vqoe/core/detectors.h"
#include "vqoe/par/parallel.h"
#include "vqoe/core/features.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/flow/export.h"
#include "vqoe/flow/reassembly.h"
#include "vqoe/session/reconstruct.h"
#include "vqoe/workload/corpus.h"

namespace {

using namespace vqoe;

const std::vector<core::SessionRecord>& training_sessions() {
  static const auto sessions = [] {
    auto options = workload::cleartext_corpus_options(1500, 42);
    options.keep_session_results = false;
    return core::sessions_from_corpus(workload::generate_corpus(options));
  }();
  return sessions;
}

const core::QoePipeline& trained_pipeline() {
  static const auto pipeline = core::QoePipeline::train(training_sessions());
  return pipeline;
}

const std::vector<core::ChunkObs>& sample_chunks() {
  static const auto chunks = [] {
    // A representative mid-length session.
    const auto& sessions = training_sessions();
    std::size_t best = 0;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (sessions[i].chunks.size() > sessions[best].chunks.size()) best = i;
    }
    return sessions[best].chunks;
  }();
  return chunks;
}

void BM_StallFeatureConstruction(benchmark::State& state) {
  const auto& chunks = sample_chunks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::stall_features(chunks));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunks.size()));
}
BENCHMARK(BM_StallFeatureConstruction)->Apply(vqoe::bench::perf_defaults);

void BM_RepresentationFeatureConstruction(benchmark::State& state) {
  const auto& chunks = sample_chunks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::representation_features(chunks));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunks.size()));
}
BENCHMARK(BM_RepresentationFeatureConstruction)->Apply(vqoe::bench::perf_defaults);

void BM_StallInference(benchmark::State& state) {
  const auto& pipeline = trained_pipeline();
  const auto features = core::stall_features(sample_chunks());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.stall_detector().classify_features(features));
  }
}
BENCHMARK(BM_StallInference)->Apply(vqoe::bench::perf_defaults);

void BM_FullSessionAssessment(benchmark::State& state) {
  const auto& pipeline = trained_pipeline();
  const auto& chunks = sample_chunks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.assess(chunks));
  }
}
BENCHMARK(BM_FullSessionAssessment)->Apply(vqoe::bench::perf_defaults);

void BM_CusumScore(benchmark::State& state) {
  const core::SwitchDetector detector;
  const auto& chunks = sample_chunks();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(chunks));
  }
}
BENCHMARK(BM_CusumScore)->Apply(vqoe::bench::perf_defaults);

void BM_SessionReconstruction(benchmark::State& state) {
  static const auto weblogs = [] {
    auto options = workload::encrypted_corpus_options(100, 7);
    options.keep_session_results = false;
    auto corpus = workload::generate_corpus(options);
    return trace::encrypt_view(std::move(corpus.weblogs));
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session::reconstruct(weblogs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(weblogs.size()));
}
BENCHMARK(BM_SessionReconstruction)->Apply(vqoe::bench::perf_defaults);

void BM_FlowExport(benchmark::State& state) {
  static const auto weblogs = [] {
    auto options = workload::cleartext_corpus_options(200, 3);
    options.keep_session_results = false;
    return workload::generate_corpus(options).weblogs;
  }();
  flow::FlowExportOptions options;
  options.slice_s = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::export_flows(weblogs, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(weblogs.size()));
}
BENCHMARK(BM_FlowExport)->Unit(benchmark::kMillisecond)->Apply(vqoe::bench::perf_defaults);

void BM_BurstReassembly(benchmark::State& state) {
  static const auto slices = [] {
    auto options = workload::cleartext_corpus_options(200, 3);
    options.keep_session_results = false;
    flow::FlowExportOptions export_options;
    export_options.slice_s = 0.5;
    return flow::export_flows(workload::generate_corpus(options).weblogs,
                              export_options);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::segment_bursts(slices, {}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slices.size()));
}
BENCHMARK(BM_BurstReassembly)->Unit(benchmark::kMillisecond)->Apply(vqoe::bench::perf_defaults);

void BM_SimulateSession(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::demo_switch_session(seed++));
  }
}
BENCHMARK(BM_SimulateSession)->Apply(vqoe::bench::perf_defaults);

void BM_ForestTraining(benchmark::State& state) {
  par::set_threads(static_cast<int>(state.range(1)));
  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::StallLabel> labels;
  for (const auto& s : training_sessions()) {
    chunks.push_back(s.chunks);
    labels.push_back(core::stall_label(s.truth));
  }
  const auto data = core::build_stall_dataset(chunks, labels);
  for (auto _ : state) {
    core::ForestDetectorConfig config;
    config.feature_selection = false;  // isolate forest cost
    config.forest.num_trees = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(core::StallDetector::train(data, config));
  }
  state.counters["threads"] = static_cast<double>(state.range(1));
  par::set_threads(0);
}
BENCHMARK(BM_ForestTraining)
    ->ArgsProduct({{10, 40}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Apply(vqoe::bench::perf_defaults);

}  // namespace

VQOE_BENCHMARK_MAIN_JSON("BENCH_pipeline.json")

// Tables 3 & 4: the stall-severity classifier on cleartext data.
//
// Paper: Random Forest, balanced training, 10-fold cross-validation;
// overall accuracy 93.5%; healthy sessions easiest (TP 0.977); errors
// concentrate between neighbouring severity classes; the binary-
// classification prior art (Prometheus) reached only ~84%.
//
// Ablation rows (DESIGN.md):
//   * QoS-only features (no chunk statistics) — the Prometheus-style
//     baseline, showing what chunk features buy;
//   * no class balancing before training;
//   * binary (stall / no stall) formulation for direct comparison with the
//     84% prior-art number.
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/ml/cross_validation.h"
#include "vqoe/ml/feature_selection.h"
#include "vqoe/ml/knn.h"
#include "vqoe/ml/naive_bayes.h"

namespace {

using namespace vqoe;

ml::ConfusionMatrix cv(const ml::Dataset& data, bool balance = true) {
  ml::CrossValidationOptions options;
  options.balance_training = balance;
  ml::ForestParams forest;
  forest.num_trees = 60;
  return ml::cross_validate(data, forest, options);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto sessions = bench::cleartext_sessions(
      args.sessions ? args.sessions : 12000, args.seed ? args.seed : 42);

  bench::banner("Tables 3 & 4 — stall detection model (cleartext, 10-fold CV)",
                "93.5% accuracy; no/mild/severe TP rates .977/.809/.793; "
                "errors between neighbouring classes");

  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::StallLabel> labels;
  for (const auto& s : sessions) {
    chunks.push_back(s.chunks);
    labels.push_back(core::stall_label(s.truth));
  }
  const auto data = core::build_stall_dataset(chunks, labels);
  const auto counts = data.class_counts();
  std::printf("sessions: %zu (no stalls %zu / mild %zu / severe %zu)\n\n",
              data.rows(), counts[0], counts[1], counts[2]);

  // Feature selection on the full set, then CV on the selected columns —
  // the paper's Section 4.1 procedure.
  const auto selected = ml::cfs_best_first_feature_names(data);
  const auto projected = data.project(selected);
  const auto main_cm = cv(projected);
  bench::print_classifier_tables(main_cm);

  // --- Ablations ---------------------------------------------------------
  std::printf("--- ablations -------------------------------------------\n");

  // QoS-only baseline: strip every chunk-derived metric.
  std::vector<std::string> qos_features;
  for (const auto& name : data.feature_names()) {
    if (name.rfind("chunk", 0) != 0) qos_features.push_back(name);
  }
  const auto qos_cm = cv(data.project(qos_features));
  std::printf("QoS-only features (Prometheus-style): accuracy %.1f%% "
              "(full model %.1f%%)\n",
              100.0 * qos_cm.accuracy(), 100.0 * main_cm.accuracy());

  // Chunk-only: the converse ablation.
  std::vector<std::string> chunk_features;
  for (const auto& name : data.feature_names()) {
    if (name.rfind("chunk", 0) == 0) chunk_features.push_back(name);
  }
  const auto chunk_cm = cv(data.project(chunk_features));
  std::printf("chunk-only features: accuracy %.1f%%\n",
              100.0 * chunk_cm.accuracy());

  // No balancing.
  const auto unbalanced_cm = cv(projected, /*balance=*/false);
  std::printf("no class balancing: accuracy %.1f%%, but mild TP rate %.3f "
              "(balanced: %.3f)\n",
              100.0 * unbalanced_cm.accuracy(), unbalanced_cm.tp_rate(1),
              main_cm.tp_rate(1));

  // Classifier comparison: what does the Random Forest choice buy over the
  // other Weka-toolbox learners of the period?
  const auto nb_cm = ml::cross_validate_with(
      projected,
      [](const ml::Dataset& train) {
        auto model = ml::GaussianNaiveBayes::fit(train);
        return [model = std::move(model)](std::span<const double> x) {
          return model.predict(x);
        };
      },
      {});
  const auto knn_cm = ml::cross_validate_with(
      projected,
      [](const ml::Dataset& train) {
        auto model = ml::KnnClassifier::fit(train, 7);
        return [model = std::move(model)](std::span<const double> x) {
          return model.predict(x);
        };
      },
      {});
  std::printf("classifier comparison (same features, same CV): "
              "RF %.1f%%, Naive Bayes %.1f%%, 7-NN %.1f%%\n",
              100.0 * main_cm.accuracy(), 100.0 * nb_cm.accuracy(),
              100.0 * knn_cm.accuracy());

  // Binary formulation (prior art comparison).
  ml::Dataset binary{projected.feature_names(), {"no stalls", "stalls"}};
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    const auto row = projected.row(i);
    binary.add({row.begin(), row.end()}, projected.label(i) == 0 ? 0 : 1);
  }
  const auto binary_cm = cv(binary);
  std::printf("binary stall/no-stall: accuracy %.1f%% "
              "(Prometheus reported ~84%% for this formulation)\n",
              100.0 * binary_cm.accuracy());
  return 0;
}

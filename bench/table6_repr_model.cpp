// Tables 6 & 7: the average-representation classifier on cleartext HAS
// sessions.
//
// Paper: Random Forest over the CFS-selected features, balanced training,
// tested on the full set; overall accuracy 84.5%; LD detected best
// (TP 0.90), HD confusions flow toward SD (downscales during playback).
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/ml/cross_validation.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto sessions = bench::has_sessions(
      args.sessions ? args.sessions : 5000, args.seed ? args.seed : 43);

  bench::banner("Tables 6 & 7 — average representation model (cleartext)",
                "84.5% accuracy; LD/SD/HD TP rates .90/.768/.756");

  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::ReprLabel> labels;
  for (const auto& s : sessions) {
    chunks.push_back(s.chunks);
    labels.push_back(core::repr_label(s.truth));
  }
  const auto data = core::build_representation_dataset(chunks, labels);
  const auto counts = data.class_counts();
  std::printf("HAS sessions: %zu (LD %zu / SD %zu / HD %zu — paper mix "
              "57/38/5%%)\n\n",
              data.rows(), counts[0], counts[1], counts[2]);

  // The paper's procedure: balanced training, test on the entire set. The
  // resubstitution bias is mitigated here by 10-fold CV over the selected
  // features, which is the stricter reading.
  const auto detector = core::RepresentationDetector::train(data);
  std::printf("CFS kept %zu of %zu features\n\n",
              detector.selected_features().size(), data.cols());

  const auto projected = data.project(detector.selected_features());
  ml::ForestParams forest_params;
  forest_params.num_trees = 60;
  const auto cm = ml::cross_validate(projected, forest_params, {});
  bench::print_classifier_tables(cm);

  // Paper-faithful variant (train balanced, evaluate on everything) for
  // completeness.
  const auto resub_cm = core::evaluate_representation(detector, sessions);
  std::printf("paper-procedure (balanced train, full-set test) accuracy: "
              "%.1f%%\n",
              100.0 * resub_cm.accuracy());
  return 0;
}

// Extension experiment: how much labelled data does an operator need?
//
// The paper trains on ~390k sessions; operators bootstrapping the approach
// (or re-training after a delivery change, Section 7) want the learning
// curve. We train the stall model on growing subsets of the cleartext
// corpus and evaluate on a fixed held-out set, also comparing the four
// classifiers' sample efficiency.
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/ml/adaboost.h"
#include "vqoe/ml/importance.h"
#include "vqoe/ml/knn.h"
#include "vqoe/ml/naive_bayes.h"

namespace {

using namespace vqoe;

ml::Dataset stall_dataset(const std::vector<core::SessionRecord>& sessions) {
  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::StallLabel> labels;
  for (const auto& s : sessions) {
    chunks.push_back(s.chunks);
    labels.push_back(core::stall_label(s.truth));
  }
  return core::build_stall_dataset(chunks, labels);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::uint64_t seed = args.seed ? args.seed : 42;

  bench::banner("Extension — labelled-data learning curve (stall model)",
                "not in the paper (trained on ~390k sessions); answers how "
                "small a labelled bootstrap can be");

  // One big pool, split into a fixed test set and a training pool.
  const auto pool = bench::cleartext_sessions(
      args.sessions ? args.sessions : 14000, seed);
  const std::size_t test_size = 4000;
  const std::vector<core::SessionRecord> test_sessions(
      pool.begin(), pool.begin() + test_size);
  const std::vector<core::SessionRecord> train_pool(pool.begin() + test_size,
                                                    pool.end());
  const auto test_full = stall_dataset(test_sessions);

  // Feature set fixed once on the full pool (selection stability is part of
  // the curve in reality, but mixing both effects muddies the reading).
  const auto reference =
      core::StallDetector::train(stall_dataset(train_pool), {});
  const auto& features = reference.selected_features();
  const auto test = test_full.project(features);

  std::printf("test set: %zu sessions; features: %zu (CFS on the full pool)\n\n",
              test_sessions.size(), features.size());
  std::printf("%-10s %-10s %-12s %-12s %-10s %-10s\n", "train N", "RF acc.",
              "RF mild TP", "NaiveBayes", "7-NN", "AdaBoost");

  std::mt19937_64 rng{seed ^ 0xabcdULL};
  for (const std::size_t n : {250ul, 500ul, 1000ul, 2000ul, 4000ul, 8000ul}) {
    if (n > train_pool.size()) break;
    const std::vector<core::SessionRecord> subset(train_pool.begin(),
                                                  train_pool.begin() + n);
    auto train = stall_dataset(subset).project(features);
    train = train.balanced_undersample(rng);
    if (train.class_counts()[2] == 0) {
      std::printf("%-10zu (no severe examples yet)\n", n);
      continue;
    }

    ml::ForestParams forest_params;
    forest_params.num_trees = 60;
    const auto forest = ml::RandomForest::fit(train, forest_params);
    const auto nb = ml::GaussianNaiveBayes::fit(train);
    const auto knn = ml::KnnClassifier::fit(train, 7);
    const auto boost = ml::AdaBoost::fit(train, {});

    auto acc = [&](auto&& model) {
      return ml::predictor_accuracy(
          [&](std::span<const double> x) { return model.predict(x); }, test);
    };
    // RF per-class detail.
    ml::ConfusionMatrix cm{test.class_names()};
    for (std::size_t i = 0; i < test.rows(); ++i) {
      cm.add(test.label(i), forest.predict(test.row(i)));
    }

    std::printf("%-10zu %-10.3f %-12.3f %-12.3f %-10.3f %-10.3f\n", n,
                cm.accuracy(), cm.tp_rate(1), acc(nb), acc(knn), acc(boost));
  }

  std::printf("\nreading: the headline accuracy saturates within a few\n"
              "thousand labelled sessions; the mild-stall class is what\n"
              "keeps improving with data — small bootstraps misjudge\n"
              "borderline rebuffering, not healthy traffic.\n");
  return 0;
}

// Section 7 (limitations / future work): does the methodology generalize to
// other streaming services?
//
// The paper argues that Vevo, Vimeo, Dailymotion etc. "have adopted the
// same technologies that YouTube is using" — adaptive streaming, rate
// limiting, a range of qualities — and that the approach should carry
// over; evaluating that is named as future work. This bench performs the
// experiment on simulated services that differ in segment length, encode
// bitrates, audio handling and pacing:
//
//   * train the stall model ONCE on the YouTube-like cleartext corpus,
//   * evaluate it, plus the fixed-threshold switch detector, on encrypted
//     corpora of each alternative service (session reconstruction uses that
//     service's host names — the only per-service adaptation an operator
//     needs).
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/workload/service.h"

namespace {

using namespace vqoe;

std::vector<core::SessionRecord> encrypted_service_sessions(
    const workload::ServiceTraits& service, std::size_t sessions,
    std::uint64_t seed) {
  auto options = workload::encrypted_corpus_options(sessions, seed);
  options.service = service;
  options.keep_session_results = false;
  auto corpus = workload::generate_corpus(options);
  corpus.weblogs = trace::encrypt_view(std::move(corpus.weblogs));

  session::ReconstructionOptions reconstruction;
  reconstruction.cdn_suffixes = service.cdn_suffixes();
  reconstruction.page_marker_hosts = service.page_marker_hosts();
  reconstruction.service_suffixes = service.service_suffixes();
  return core::sessions_from_encrypted(corpus.weblogs, corpus.truths,
                                       reconstruction);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto clear = bench::cleartext_sessions(
      args.sessions ? args.sessions : 12000, args.seed ? args.seed : 42);

  bench::banner("Section 7 — generalization to other streaming services",
                "named future work: same technologies, methodology should "
                "transfer");

  const auto pipeline = core::QoePipeline::train(clear);
  const core::SwitchDetector switch_detector;  // fixed threshold 500 KB·s

  std::printf("stall model trained once on the YouTube-like corpus "
              "(%zu sessions)\n\n",
              clear.size());
  std::printf("%-18s %-10s %-12s %-12s %-13s %-10s %-12s %-13s %-10s\n",
              "service", "sessions", "stall acc.", "healthy TP", "sw.w/o@500",
              "sw.w@500", "recal.thr", "sw.w/o@rec", "sw.w@rec");

  const std::vector<workload::ServiceTraits> services = {
      workload::youtube_service(), workload::vimeo_like_service(),
      workload::dailymotion_like_service(), workload::netflix_like_service()};

  for (const auto& service : services) {
    const auto sessions = encrypted_service_sessions(service, 722, 4242);
    const auto cm = core::evaluate_stall(pipeline.stall_detector(), sessions);
    const auto sw = core::evaluate_switch(switch_detector, sessions);

    // Per-service threshold recalibration from a small labelled sample (the
    // first 150 sessions), evaluated on the remainder — the one adaptation
    // the CUSUM statistic genuinely needs, since its KB·s units depend on
    // segment sizing.
    const std::size_t calib = std::min<std::size_t>(150, sessions.size() / 2);
    std::vector<double> with_scores, without_scores;
    for (std::size_t i = 0; i < calib; ++i) {
      const double score = switch_detector.score(sessions[i].chunks);
      if (core::variation_label(sessions[i].truth) !=
          core::VariationLabel::none) {
        with_scores.push_back(score);
      } else {
        without_scores.push_back(score);
      }
    }
    const double recal =
        core::SwitchDetector::calibrate_threshold(without_scores, with_scores);
    const core::SwitchDetector recal_detector{
        {.threshold = recal, .skip_initial_s = 10.0}};
    const std::span rest{sessions.data() + calib, sessions.size() - calib};
    const auto sw_recal = core::evaluate_switch(recal_detector, rest);

    std::printf(
        "%-18s %-10zu %-12.1f %-12.3f %-13.1f %-10.1f %-12.0f %-13.1f %-10.1f\n",
        service.name.c_str(), sessions.size(), 100.0 * cm.accuracy(),
        cm.tp_rate(0), 100.0 * sw.accuracy_without, 100.0 * sw.accuracy_with,
        recal, 100.0 * sw_recal.accuracy_without, 100.0 * sw_recal.accuracy_with);
  }

  std::printf(
      "\nreading: the YouTube-trained stall model transfers with a "
      "several-point\npenalty; the switch statistic separates the two "
      "populations on every service\nbut its KB·s scale tracks segment "
      "sizing, so the FIXED 500 threshold breaks\noff-service — a ~150-"
      "session labelled sample to recalibrate the threshold\nrestores "
      "detection. Host names for session reconstruction are the only other\n"
      "per-service adaptation.\n");
  return 0;
}

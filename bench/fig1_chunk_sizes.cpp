// Figure 1: "Changes in chunk sizes in a video session with stalls."
//
// The paper plots per-chunk sizes over session time for one session with
// two stalls: sizes collapse at each buffer outage (the player requests
// small ranges to refill fast) and grow back to the steady value.
//
// This harness simulates one progressive session on a poor channel and
// prints the (time, size) series plus the stall windows so the same plot
// can be regenerated.
#include "bench_common.h"

#include "vqoe/workload/corpus.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const std::uint64_t base_seed = args.seed ? args.seed : 11;

  bench::banner("Figure 1 — chunk sizes in a session with stalls",
                "sizes collapse at each stall, then grow back to steady state");

  // Scan seeds for a session with >= 2 stalls that still finishes — the
  // shape Figure 1 shows.
  sim::SessionResult session;
  std::uint64_t used_seed = base_seed;
  for (std::uint64_t s = base_seed; s < base_seed + 200; ++s) {
    session = workload::demo_stall_session(s);
    if (session.stalls.size() >= 2 && !session.abandoned) {
      used_seed = s;
      break;
    }
  }

  std::printf("session: %zu chunks, %zu stalls, duration %.1f s, RR %.3f "
              "(seed %llu)\n\n",
              session.chunks.size(), session.stalls.size(),
              session.total_duration_s, session.rebuffering_ratio(),
              static_cast<unsigned long long>(used_seed));

  std::printf("%-14s %-14s %-12s\n", "request_s", "arrival_s", "size_KB");
  for (const sim::ChunkEvent& c : session.chunks) {
    std::printf("%-14.2f %-14.2f %-12.1f\n", c.request_time_s, c.arrival_time_s,
                static_cast<double>(c.size_bytes) / 1000.0);
  }

  std::printf("\nstall windows:\n");
  for (const sim::StallEvent& s : session.stalls) {
    std::printf("  [%.2f s .. %.2f s]  duration %.2f s\n", s.start_s,
                s.start_s + s.duration_s, s.duration_s);
  }

  // The Figure-1 claim, checked numerically: the smallest chunk of a
  // stalled session is far below its steady-state (maximum) chunk.
  std::uint64_t min_size = ~0ull, max_size = 0;
  for (const sim::ChunkEvent& c : session.chunks) {
    min_size = std::min(min_size, c.size_bytes);
    max_size = std::max(max_size, c.size_bytes);
  }
  std::printf("\nmin chunk %.1f KB vs steady %.1f KB (ratio %.2f)\n",
              min_size / 1000.0, max_size / 1000.0,
              static_cast<double>(min_size) / static_cast<double>(max_size));
  return 0;
}

// Section 5.6: representation-quality-switch detection on encrypted
// traffic, reusing the threshold fixed on cleartext data (eq. 3).
//
// Paper: with STD(CUSUM(Δsize x Δt)) thresholded at 500, 76.9% of the
// no-switch sessions fall below and 71.7% of the switch sessions above —
// 1.1 and 4.3 points below the cleartext evaluation respectively.
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/ts/ecdf.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto has = bench::has_sessions(args.sessions ? args.sessions : 5000,
                                       args.seed ? args.seed : 43);
  const auto encrypted = bench::encrypted_sessions(722, 4242);

  bench::banner("Section 5.6 — switch detection on encrypted traffic",
                "76.9% (without) / 71.7% (with) at the pre-set threshold 500");

  const core::SwitchDetector detector;  // fixed threshold 500 KB·s

  const auto clear_eval = core::evaluate_switch(detector, has);
  const auto enc_eval = core::evaluate_switch(detector, encrypted);

  std::printf("cleartext HAS  (n=%zu without / %zu with): "
              "correct without %.1f%%, detected with %.1f%%\n",
              clear_eval.sessions_without, clear_eval.sessions_with,
              100.0 * clear_eval.accuracy_without,
              100.0 * clear_eval.accuracy_with);
  std::printf("encrypted      (n=%zu without / %zu with): "
              "correct without %.1f%%, detected with %.1f%%\n",
              enc_eval.sessions_without, enc_eval.sessions_with,
              100.0 * enc_eval.accuracy_without, 100.0 * enc_eval.accuracy_with);
  std::printf("deltas: %.1f / %.1f points (paper: -1.1 / -4.3)\n\n",
              100.0 * (clear_eval.accuracy_without - enc_eval.accuracy_without),
              100.0 * (clear_eval.accuracy_with - enc_eval.accuracy_with));

  // Distribution shift behind the deltas: the encrypted score CDFs.
  std::vector<double> enc_without, enc_with;
  for (const auto& s : encrypted) {
    const double score = detector.score(s.chunks);
    if (core::variation_label(s.truth) != core::VariationLabel::none) {
      enc_with.push_back(score);
    } else {
      enc_without.push_back(score);
    }
  }
  const ts::Ecdf without_cdf{enc_without}, with_cdf{enc_with};
  std::printf("encrypted score CDFs:\n%-12s %-16s %-16s\n", "score",
              "F_no_switch", "F_with_switch");
  for (double x = 0; x <= 3000.0001; x += 250.0) {
    std::printf("%-12.0f %-16.4f %-16.4f\n", x, without_cdf(x), with_cdf(x));
  }
  return 0;
}

// Training-path scaling benchmarks (google-benchmark, JSON to
// BENCH_train.json by default): RandomForest::fit, predict_all,
// cross-validation and corpus generation at 1/2/4/8 vqoe::par threads on
// the standard 1500-session corpus.
//
// The tracked number is the parallel-fit speedup over the 1-thread
// baseline (ISSUE-2 acceptance: >= 3x at 8 threads on 8+ cores); outputs
// are bit-identical at every thread count, so the speedup is free of any
// quality trade-off.
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "vqoe/core/detectors.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/ml/cross_validation.h"
#include "vqoe/par/parallel.h"
#include "vqoe/workload/corpus.h"

namespace {

using namespace vqoe;

const ml::Dataset& stall_dataset() {
  static const auto data = [] {
    auto options = workload::cleartext_corpus_options(1500, 42);
    options.keep_session_results = false;
    const auto sessions =
        core::sessions_from_corpus(workload::generate_corpus(options));
    std::vector<std::vector<core::ChunkObs>> chunks;
    std::vector<core::StallLabel> labels;
    for (const auto& s : sessions) {
      chunks.push_back(s.chunks);
      labels.push_back(core::stall_label(s.truth));
    }
    return core::build_stall_dataset(chunks, labels);
  }();
  return data;
}

void BM_ParallelForestFit(benchmark::State& state) {
  par::set_threads(static_cast<int>(state.range(0)));
  const auto& data = stall_dataset();
  ml::ForestParams params;
  params.num_trees = 60;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::RandomForest::fit(data, params));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  par::set_threads(0);
}
BENCHMARK(BM_ParallelForestFit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_ParallelPredictAll(benchmark::State& state) {
  const auto& data = stall_dataset();
  static const auto forest = [] {
    ml::ForestParams params;
    params.num_trees = 60;
    return ml::RandomForest::fit(stall_dataset(), params);
  }();
  par::set_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_all(data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.rows()));
  state.counters["threads"] = static_cast<double>(state.range(0));
  par::set_threads(0);
}
BENCHMARK(BM_ParallelPredictAll)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_ParallelCrossValidation(benchmark::State& state) {
  par::set_threads(static_cast<int>(state.range(0)));
  const auto& data = stall_dataset();
  ml::ForestParams params;
  params.num_trees = 20;
  ml::CrossValidationOptions options;
  options.folds = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::cross_validate(data, params, options));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  par::set_threads(0);
}
BENCHMARK(BM_ParallelCrossValidation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_ParallelCorpusGeneration(benchmark::State& state) {
  par::set_threads(static_cast<int>(state.range(0)));
  auto options = workload::cleartext_corpus_options(300, 7);
  options.keep_session_results = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate_corpus(options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(options.sessions));
  state.counters["threads"] = static_cast<double>(state.range(0));
  par::set_threads(0);
}
BENCHMARK(BM_ParallelCorpusGeneration)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Apply(vqoe::bench::perf_defaults);

}  // namespace

VQOE_BENCHMARK_MAIN_JSON("BENCH_train.json")

// Engine throughput benchmarks (google-benchmark, same JSON shape as
// perf_pipeline via --benchmark_format=json): records/sec of the sharded
// MonitorEngine at 1/2/4/8 shards against the single-threaded
// OnlineMonitor baseline, plus the raw SPSC ring transfer rate.
//
// This backs the ISSUE-1 scaling claim: the per-record monitor work
// (session bookkeeping + model inference at close) is what bounds a
// single ingest thread, and hash-sharding by subscriber parallelizes it
// without giving up the per-subscriber ordering the monitor needs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "bench_json.h"
#include "vqoe/core/online.h"
#include "vqoe/engine/engine.h"
#include "vqoe/workload/corpus.h"

namespace {

using namespace vqoe;

const core::QoePipeline& trained_pipeline() {
  static const auto pipeline = [] {
    auto options = workload::has_corpus_options(400, 42);
    options.keep_session_results = false;
    return core::QoePipeline::train(
        core::sessions_from_corpus(workload::generate_corpus(options)));
  }();
  return pipeline;
}

/// A multi-subscriber encrypted day of traffic — the operator's live feed.
const std::vector<trace::WeblogRecord>& live_records() {
  static const auto records = [] {
    auto options = workload::cleartext_corpus_options(800, 99);
    options.adaptive_fraction = 1.0;
    options.subscribers = 64;
    options.keep_session_results = false;
    return trace::encrypt_view(workload::generate_corpus(options).weblogs);
  }();
  return records;
}

void BM_SingleThreadedMonitor(benchmark::State& state) {
  const auto& records = live_records();
  for (auto _ : state) {
    core::OnlineMonitor monitor{trained_pipeline()};
    std::size_t completed = 0;
    for (const auto& record : records) completed += monitor.ingest(record).size();
    completed += monitor.flush().size();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_SingleThreadedMonitor)->Unit(benchmark::kMillisecond)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

void BM_EngineThroughput(benchmark::State& state) {
  const auto& records = live_records();
  std::size_t completed = 0;
  std::size_t queue_peak = 0;
  for (auto _ : state) {
    engine::EngineConfig config;
    config.shards = static_cast<std::size_t>(state.range(0));
    config.queue_capacity = 4096;
    config.backpressure = engine::BackpressurePolicy::Block;
    engine::MonitorEngine eng{trained_pipeline(), config};
    for (const auto& record : records) eng.ingest(record);
    completed += eng.drain().size();
    for (const auto& shard : eng.stats().shards) {
      queue_peak = std::max(queue_peak, shard.queue_peak);
    }
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  state.counters["shards"] = static_cast<double>(state.range(0));
  // How full the busiest shard queue got: capacity here means ingest was
  // fully backpressured, small numbers mean the workers kept up.
  state.counters["queue_peak"] = static_cast<double>(queue_peak);
}
BENCHMARK(BM_EngineThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Apply(vqoe::bench::perf_defaults);

/// Engine throughput with the live verdict stream on: every shard's
/// monitor runs 10-second tumbling windows and a harvester thread drains
/// verdicts concurrently — the full operator deployment shape. The
/// windows/verdicts counters surface the ShardStats accounting so the JSON
/// row records how much mid-session output the run produced.
void BM_EngineThroughputWindowed(benchmark::State& state) {
  const auto& records = live_records();
  std::uint64_t windows = 0;
  std::uint64_t verdicts = 0;
  std::size_t harvested = 0;
  for (auto _ : state) {
    engine::EngineConfig config;
    config.shards = static_cast<std::size_t>(state.range(0));
    config.queue_capacity = 4096;
    config.backpressure = engine::BackpressurePolicy::Block;
    config.monitor.window.length_s = 10.0;
    config.monitor.window.min_chunks = 2;
    engine::MonitorEngine eng{trained_pipeline(), config};
    std::size_t fed = 0;
    for (const auto& record : records) {
      eng.ingest(record);
      if (++fed % 4096 == 0) harvested += eng.harvest_verdicts().size();
    }
    benchmark::DoNotOptimize(eng.drain().size());
    harvested += eng.harvest_verdicts().size();
    const auto stats = eng.stats();
    windows += stats.windows_emitted;
    verdicts += stats.verdicts_emitted;
  }
  benchmark::DoNotOptimize(harvested);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
  const double per_iter = 1.0 / static_cast<double>(state.iterations());
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["windows"] = static_cast<double>(windows) * per_iter;
  state.counters["verdicts"] = static_cast<double>(verdicts) * per_iter;
}
BENCHMARK(BM_EngineThroughputWindowed)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()->Apply(vqoe::bench::perf_defaults);

/// Raw ring transfer rate: how fast the ingest channel itself moves items
/// (upper bound on per-shard routing throughput).
void BM_SpscQueueTransfer(benchmark::State& state) {
  constexpr std::size_t kBatch = 1 << 16;
  for (auto _ : state) {
    engine::SpscQueue<std::uint64_t> queue(1024);
    std::thread consumer([&queue] {
      std::uint64_t value = 0;
      std::size_t seen = 0;
      while (seen < kBatch) {
        if (queue.try_pop(value)) {
          ++seen;
        } else {
          std::this_thread::yield();
        }
      }
    });
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      std::uint64_t value = i;
      while (!queue.try_push(std::move(value))) std::this_thread::yield();
    }
    consumer.join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_SpscQueueTransfer)->UseRealTime()->Apply(vqoe::bench::perf_defaults);

}  // namespace

VQOE_BENCHMARK_MAIN_JSON("BENCH_engine.json")

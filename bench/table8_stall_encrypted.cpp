// Tables 8 & 9: the cleartext-trained stall model evaluated on encrypted
// traffic (Section 5.4).
//
// Paper: 91.8% overall (1.7 points below cleartext); healthy detection
// improves (mostly static sessions), severe-stall detection drops (RR mass
// just above the 0.1 boundary), severe -> mild is the dominant confusion.
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/ml/cross_validation.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto clear = bench::cleartext_sessions(
      args.sessions ? args.sessions : 12000, args.seed ? args.seed : 42);
  const auto encrypted = bench::encrypted_sessions(722, 4242);

  bench::banner("Tables 8 & 9 — stall detection on encrypted traffic",
                "91.8% accuracy (−1.7 vs cleartext); severe -> mild dominates "
                "the confusion");

  std::printf("training: %zu cleartext sessions; evaluation: %zu encrypted "
              "sessions (reconstructed from %d launched)\n\n",
              clear.size(), encrypted.size(), 722);

  // Section 5.4: feature construction is repeated, but the feature *set*
  // is the one selected on cleartext data — no re-selection.
  const auto pipeline = core::QoePipeline::train(clear);
  std::printf("features reused from the cleartext model:");
  for (const auto& f : pipeline.stall_detector().selected_features()) {
    std::printf(" %s", f.c_str());
  }
  std::printf("\n\n");

  const auto enc_cm = core::evaluate_stall(pipeline.stall_detector(), encrypted);
  bench::print_classifier_tables(enc_cm);

  // Fair cleartext reference: 10-fold CV on the same selected features
  // (evaluating the trained model on its own training set would flatter
  // the cleartext side).
  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::StallLabel> labels;
  for (const auto& s : clear) {
    chunks.push_back(s.chunks);
    labels.push_back(core::stall_label(s.truth));
  }
  const auto data = core::build_stall_dataset(chunks, labels)
                        .project(pipeline.stall_detector().selected_features());
  ml::ForestParams forest_params;
  forest_params.num_trees = 60;
  const auto clear_cm = ml::cross_validate(data, forest_params, {});
  std::printf("cleartext 10-fold CV accuracy with the same features: %.1f%% "
              "(delta %.1f points; paper: −1.7)\n",
              100.0 * clear_cm.accuracy(),
              100.0 * (clear_cm.accuracy() - enc_cm.accuracy()));
  return 0;
}

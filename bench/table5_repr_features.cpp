// Table 5: the 15 features CFS + Best First keeps for the average
// representation model, ranked by information gain.
//
// Paper: chunk-size statistics dominate (chunk size 75%/85%/90%/50%, max,
// running-average size), with BIF, throughput cusum, Δsize/Δt and BDP/RTT
// tails at the bottom. Gains range 0.41 down to 0.03.
#include "bench_common.h"

#include "vqoe/core/detectors.h"
#include "vqoe/ml/feature_selection.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto sessions = bench::has_sessions(
      args.sessions ? args.sessions : 5000, args.seed ? args.seed : 43);

  bench::banner("Table 5 — CFS-selected average-representation features",
                "15 features, chunk-size statistics on top (0.41 .. 0.03)");

  std::vector<std::vector<core::ChunkObs>> chunks;
  std::vector<core::ReprLabel> labels;
  for (const auto& s : sessions) {
    chunks.push_back(s.chunks);
    labels.push_back(core::repr_label(s.truth));
  }
  const auto data = core::build_representation_dataset(chunks, labels);
  std::printf("dataset: %zu HAS sessions x %zu features\n\n", data.rows(),
              data.cols());

  const auto selected = ml::cfs_best_first_feature_names(data);
  std::printf("%-12s %s\n", "info. gain", "feature");
  for (const auto& name : selected) {
    std::printf("%-12.3f %s\n",
                ml::information_gain(data, data.feature_index(name)),
                name.c_str());
  }

  std::size_t size_derived = 0;
  for (const auto& name : selected) {
    if (name.find("size") != std::string::npos) ++size_derived;
  }
  std::printf("\n%zu of %zu selected features are size-derived "
              "(paper: 11 of 15)\n",
              size_derived, selected.size());
  return 0;
}

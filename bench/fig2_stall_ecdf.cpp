// Figure 2: ECDF of the number of stalls (left) and of the rebuffering
// ratio (right) per session, over the cleartext corpus.
//
// Paper anchors: ~12% of sessions suffered rebuffering, ~8% more than one
// event, and sessions with RR >= 0.1 are roughly the top tenth of the
// distribution.
#include "bench_common.h"

#include "vqoe/ts/ecdf.h"

int main(int argc, char** argv) {
  using namespace vqoe;
  const auto args = bench::parse_args(argc, argv);
  const auto sessions = bench::cleartext_sessions(
      args.sessions ? args.sessions : 12000, args.seed ? args.seed : 42);

  bench::banner("Figure 2 — ECDF of stalls per session and rebuffering ratio",
                "12% of sessions stalled; 8% more than once; RR >= 0.1 ~ 10%");

  std::vector<double> stall_counts, ratios;
  stall_counts.reserve(sessions.size());
  for (const auto& s : sessions) {
    stall_counts.push_back(static_cast<double>(s.truth.stall_count));
    ratios.push_back(s.truth.rebuffering_ratio);
  }
  const ts::Ecdf count_ecdf{stall_counts};
  const ts::Ecdf rr_ecdf{ratios};

  std::printf("left: ECDF of number of stalls per session (n=%zu)\n",
              sessions.size());
  std::printf("%-10s %-10s\n", "stalls<=x", "F(x)");
  for (int k = 0; k <= 10; ++k) {
    std::printf("%-10d %-10.4f\n", k, count_ecdf(static_cast<double>(k)));
  }

  std::printf("\nmeasured: %.1f%% of sessions stalled (paper: ~12%%), "
              "%.1f%% stalled more than once (paper: ~8%%)\n",
              100.0 * (1.0 - count_ecdf(0.0)), 100.0 * (1.0 - count_ecdf(1.0)));

  std::printf("\nright: ECDF of rebuffering ratio per session\n");
  std::printf("%-10s %-10s\n", "RR<=x", "F(x)");
  for (double x = 0.0; x <= 0.5001; x += 0.025) {
    std::printf("%-10.3f %-10.4f\n", x, rr_ecdf(x));
  }
  std::printf("\nmeasured: %.1f%% of sessions have RR >= 0.1 "
              "(the paper's severe-stalling share)\n",
              100.0 * (1.0 - rr_ecdf(0.1 - 1e-12)));
  return 0;
}

// Extension experiment: initial-delay estimation from traffic.
//
// Not a paper artifact — the paper measures initial delay (Section 2.2) but
// excludes it from its models. This bench evaluates the traffic-only
// estimator of core/startup.h against ground truth on both corpora,
// reporting MAE, median absolute error and Pearson correlation, plus the
// threshold-assumption sensitivity.
#include "bench_common.h"

#include <cmath>

#include "vqoe/core/startup.h"
#include "vqoe/ts/summary.h"

namespace {

using namespace vqoe;

struct Outcome {
  double mae = 0.0;
  double median_abs_error = 0.0;
  double correlation = 0.0;
  double mean_truth = 0.0;
  std::size_t sessions = 0;
};

Outcome evaluate(const std::vector<core::SessionRecord>& sessions,
                 const core::StartupEstimatorConfig& config) {
  std::vector<double> errors, truths, estimates;
  for (const auto& s : sessions) {
    if (s.chunks.size() < 3) continue;
    const double estimate = core::estimate_startup_delay(s.chunks, config);
    const double truth = s.truth.startup_delay_s;
    errors.push_back(std::abs(estimate - truth));
    truths.push_back(truth);
    estimates.push_back(estimate);
  }
  Outcome o;
  o.sessions = errors.size();
  if (errors.empty()) return o;
  o.mae = ts::mean(errors);
  o.median_abs_error = ts::percentile(errors, 50.0);
  o.mean_truth = ts::mean(truths);

  const double mt = ts::mean(truths);
  const double me = ts::mean(estimates);
  double cov = 0.0, vt = 0.0, ve = 0.0;
  for (std::size_t i = 0; i < truths.size(); ++i) {
    cov += (truths[i] - mt) * (estimates[i] - me);
    vt += (truths[i] - mt) * (truths[i] - mt);
    ve += (estimates[i] - me) * (estimates[i] - me);
  }
  o.correlation = vt > 0 && ve > 0 ? cov / std::sqrt(vt * ve) : 0.0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto clear = bench::cleartext_sessions(
      args.sessions ? args.sessions : 6000, args.seed ? args.seed : 42);
  const auto encrypted = bench::encrypted_sessions(722, 4242);

  bench::banner("Extension — initial delay estimated from traffic",
                "not in the paper's models (Section 2.2 cites low QoE "
                "impact); estimator: pacing-calibrated buffer-fill tracking");

  std::printf("%-22s %-10s %-12s %-10s %-12s %-14s\n", "corpus", "sessions",
              "truth mean", "MAE (s)", "median (s)", "correlation");
  for (const auto& [name, sessions] :
       {std::pair{"cleartext", &clear}, std::pair{"encrypted", &encrypted}}) {
    const auto o = evaluate(*sessions, {});
    std::printf("%-22s %-10zu %-12.2f %-10.2f %-12.2f %-14.3f\n", name,
                o.sessions, o.mean_truth, o.mae, o.median_abs_error,
                o.correlation);
  }

  std::printf("\nthreshold-assumption sensitivity (cleartext):\n");
  std::printf("%-22s %-10s %-12s %-14s\n", "assumed threshold", "MAE (s)",
              "median (s)", "correlation");
  for (double threshold : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    core::StartupEstimatorConfig config;
    config.assumed_threshold_s = threshold;
    const auto o = evaluate(clear, config);
    std::printf("%-22.1f %-10.2f %-12.2f %-14.3f\n", threshold, o.mae,
                o.median_abs_error, o.correlation);
  }
  std::printf("\n(player start thresholds vary 3-5 s in the corpus; the "
              "estimator assumes one value for all — its MAE floor)\n");
  return 0;
}

#include "vqoe/trace/weblog.h"

#include <gtest/gtest.h>

#include "vqoe/net/channel.h"
#include "vqoe/net/profile.h"
#include "vqoe/sim/player.h"

namespace vqoe::trace {
namespace {

sim::SessionResult simulate_session(std::uint64_t seed = 1) {
  sim::VideoDescription v;
  v.video_id = "t";
  v.duration_s = 90.0;
  for (int r = 0; r < sim::kNumResolutions; ++r) {
    const auto res = static_cast<sim::Resolution>(r);
    v.ladder.push_back({res, sim::nominal_bitrate_bps(res)});
  }
  auto channel = net::make_channel(net::profile_cell_fair(), seed);
  const sim::HasPlayer player{sim::PlayerConfig{}};
  return player.play(v, *channel, seed);
}

TEST(MakeSessionId, FormatAndUniqueness) {
  std::mt19937_64 rng{1};
  const auto a = make_session_id(rng);
  const auto b = make_session_id(rng);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
  for (char c : a) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_');
  }
}

TEST(ToWeblogs, EmitsAllRecordKinds) {
  const auto session = simulate_session();
  std::mt19937_64 rng{2};
  WeblogOptions options;
  options.subscriber_id = "sub-9";
  options.start_time_s = 1000.0;
  const auto rendered = to_weblogs(session, options, rng);

  std::size_t media = 0, page = 0, report = 0;
  for (const WeblogRecord& r : rendered.records) {
    EXPECT_EQ(r.subscriber_id, "sub-9");
    EXPECT_FALSE(r.encrypted);
    switch (r.kind) {
      case RecordKind::media: ++media; break;
      case RecordKind::page_object: ++page; break;
      case RecordKind::playback_report: ++report; break;
    }
  }
  EXPECT_EQ(media, session.chunks.size());
  EXPECT_EQ(page, static_cast<std::size_t>(options.page_objects));
  EXPECT_GE(report, 1u);
}

TEST(ToWeblogs, RecordsSortedAndAfterStart) {
  const auto session = simulate_session(3);
  std::mt19937_64 rng{4};
  WeblogOptions options;
  options.start_time_s = 500.0;
  const auto rendered = to_weblogs(session, options, rng);
  double prev = 0.0;
  for (const WeblogRecord& r : rendered.records) {
    EXPECT_GE(r.timestamp_s, 500.0);
    EXPECT_GE(r.timestamp_s, prev);
    prev = r.timestamp_s;
  }
}

TEST(ToWeblogs, TruthMatchesSession) {
  const auto session = simulate_session(5);
  std::mt19937_64 rng{6};
  const auto rendered = to_weblogs(session, WeblogOptions{}, rng);
  const SessionGroundTruth& t = rendered.truth;
  EXPECT_EQ(t.media_chunk_count, session.chunks.size());
  EXPECT_EQ(t.stall_count, static_cast<int>(session.stalls.size()));
  EXPECT_DOUBLE_EQ(t.stall_duration_s, session.stall_total_s());
  EXPECT_DOUBLE_EQ(t.rebuffering_ratio, session.rebuffering_ratio());
  EXPECT_DOUBLE_EQ(t.average_height, session.average_height());
  EXPECT_EQ(t.switch_count, session.switch_count());
  EXPECT_TRUE(t.adaptive);
  EXPECT_EQ(t.session_id.size(), 16u);
}

TEST(ToWeblogs, PlaybackReportsSumToTotalStalls) {
  // Reports partition the timeline: their stall payloads must add up to the
  // session's ground truth.
  const auto session = simulate_session(7);
  std::mt19937_64 rng{8};
  const auto rendered = to_weblogs(session, WeblogOptions{}, rng);
  int reported = 0;
  for (const WeblogRecord& r : rendered.records) {
    if (r.kind == RecordKind::playback_report) reported += r.report_stall_count;
  }
  EXPECT_EQ(reported, static_cast<int>(session.stalls.size()));
}

TEST(ToWeblogs, ExplicitSessionIdUsed) {
  const auto session = simulate_session(9);
  std::mt19937_64 rng{10};
  WeblogOptions options;
  options.session_id = "fixed-session-0001";
  const auto rendered = to_weblogs(session, options, rng);
  EXPECT_EQ(rendered.truth.session_id, "fixed-session-0001");
  for (const WeblogRecord& r : rendered.records) {
    EXPECT_EQ(r.session_id, "fixed-session-0001");
  }
}

TEST(ToWeblogs, MediaCarriesItagGroundTruth) {
  const auto session = simulate_session(11);
  std::mt19937_64 rng{12};
  const auto rendered = to_weblogs(session, WeblogOptions{}, rng);
  std::size_t media_idx = 0;
  for (const WeblogRecord& r : rendered.records) {
    if (r.kind != RecordKind::media) continue;
    EXPECT_GT(r.itag_height, 0);
    EXPECT_EQ(r.object_size_bytes, session.chunks[media_idx].size_bytes);
    ++media_idx;
  }
}

TEST(EncryptView, StripsUriMetadataKeepsTransport) {
  const auto session = simulate_session(13);
  std::mt19937_64 rng{14};
  const auto rendered = to_weblogs(session, WeblogOptions{}, rng);
  const auto encrypted = encrypt_view(rendered.records);
  ASSERT_EQ(encrypted.size(), rendered.records.size());
  for (std::size_t i = 0; i < encrypted.size(); ++i) {
    const WeblogRecord& e = encrypted[i];
    const WeblogRecord& c = rendered.records[i];
    EXPECT_TRUE(e.encrypted);
    EXPECT_TRUE(e.session_id.empty());
    EXPECT_EQ(e.itag_height, 0);
    EXPECT_FALSE(e.is_audio);
    EXPECT_EQ(e.report_stall_count, 0);
    // The operator still sees host, sizes, timing, transport annotations.
    EXPECT_EQ(e.host, c.host);
    EXPECT_EQ(e.object_size_bytes, c.object_size_bytes);
    EXPECT_DOUBLE_EQ(e.timestamp_s, c.timestamp_s);
    EXPECT_DOUBLE_EQ(e.transport.rtt_avg_ms, c.transport.rtt_avg_ms);
  }
}

TEST(RemoveCached, DropsOnlyCacheHits) {
  std::vector<WeblogRecord> records(4);
  records[1].served_from_cache = true;
  records[3].served_from_cache = true;
  const auto cleaned = remove_cached(records);
  EXPECT_EQ(cleaned.size(), 2u);
  for (const WeblogRecord& r : cleaned) EXPECT_FALSE(r.served_from_cache);
}

TEST(GroupBySessionId, GroupsMediaOnlyCleartext) {
  const auto s1 = simulate_session(15);
  const auto s2 = simulate_session(16);
  std::mt19937_64 rng{17};
  WeblogOptions o1, o2;
  o1.session_id = "aaaaaaaaaaaaaaaa";
  o2.session_id = "bbbbbbbbbbbbbbbb";
  auto r1 = to_weblogs(s1, o1, rng);
  auto r2 = to_weblogs(s2, o2, rng);

  std::vector<WeblogRecord> all;
  all.insert(all.end(), r1.records.begin(), r1.records.end());
  all.insert(all.end(), r2.records.begin(), r2.records.end());

  const auto groups = group_by_session_id(all);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at("aaaaaaaaaaaaaaaa").size(), s1.chunks.size());
  EXPECT_EQ(groups.at("bbbbbbbbbbbbbbbb").size(), s2.chunks.size());
  for (const auto& [id, records] : groups) {
    for (const WeblogRecord& r : records) {
      EXPECT_EQ(r.kind, RecordKind::media);
    }
  }
}

TEST(GroupBySessionId, IgnoresEncryptedRecords) {
  const auto session = simulate_session(18);
  std::mt19937_64 rng{19};
  const auto rendered = to_weblogs(session, WeblogOptions{}, rng);
  const auto encrypted = encrypt_view(rendered.records);
  EXPECT_TRUE(group_by_session_id(encrypted).empty());
}

}  // namespace
}  // namespace vqoe::trace

#include "vqoe/trace/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "vqoe/workload/corpus.h"

namespace vqoe::trace {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vqoe_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, WeblogRoundTrip) {
  auto options = workload::cleartext_corpus_options(20, 7);
  options.keep_session_results = false;
  const auto corpus = workload::generate_corpus(options);
  ASSERT_FALSE(corpus.weblogs.empty());

  const auto path = dir_ / "weblogs.csv";
  write_weblogs_csv(path, corpus.weblogs);
  const auto loaded = read_weblogs_csv(path);

  ASSERT_EQ(loaded.size(), corpus.weblogs.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const WeblogRecord& a = corpus.weblogs[i];
    const WeblogRecord& b = loaded[i];
    EXPECT_EQ(a.subscriber_id, b.subscriber_id);
    EXPECT_NEAR(a.timestamp_s, b.timestamp_s, 1e-4);
    EXPECT_EQ(a.object_size_bytes, b.object_size_bytes);
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.encrypted, b.encrypted);
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.itag_height, b.itag_height);
    EXPECT_EQ(a.is_audio, b.is_audio);
    EXPECT_NEAR(a.transport.rtt_avg_ms, b.transport.rtt_avg_ms, 1e-4);
    EXPECT_NEAR(a.transport.bdp_bytes, b.transport.bdp_bytes, 1e-2);
    EXPECT_NEAR(a.transport.loss_pct, b.transport.loss_pct, 1e-6);
  }
}

TEST_F(CsvTest, GroundTruthRoundTrip) {
  auto options = workload::cleartext_corpus_options(15, 8);
  options.keep_session_results = false;
  const auto corpus = workload::generate_corpus(options);

  const auto path = dir_ / "truth.csv";
  write_ground_truth_csv(path, corpus.truths);
  const auto loaded = read_ground_truth_csv(path);

  ASSERT_EQ(loaded.size(), corpus.truths.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const SessionGroundTruth& a = corpus.truths[i];
    const SessionGroundTruth& b = loaded[i];
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.subscriber_id, b.subscriber_id);
    EXPECT_EQ(a.adaptive, b.adaptive);
    EXPECT_EQ(a.abandoned, b.abandoned);
    EXPECT_EQ(a.media_chunk_count, b.media_chunk_count);
    EXPECT_EQ(a.stall_count, b.stall_count);
    EXPECT_NEAR(a.rebuffering_ratio, b.rebuffering_ratio, 1e-6);
    EXPECT_NEAR(a.average_height, b.average_height, 1e-4);
    EXPECT_NEAR(a.startup_delay_s, b.startup_delay_s, 1e-6);
    EXPECT_EQ(a.switch_count, b.switch_count);
  }
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_weblogs_csv(dir_ / "nope.csv"), std::runtime_error);
  EXPECT_THROW(read_ground_truth_csv(dir_ / "nope.csv"), std::runtime_error);
}

TEST_F(CsvTest, MalformedRowThrows) {
  const auto path = dir_ / "bad.csv";
  {
    std::ofstream os{path};
    os << "header\n";
    os << "only,three,fields\n";
  }
  EXPECT_THROW(read_weblogs_csv(path), std::runtime_error);
}

TEST_F(CsvTest, EmptyRecordListProducesHeaderOnly) {
  const auto path = dir_ / "empty.csv";
  write_weblogs_csv(path, {});
  const auto loaded = read_weblogs_csv(path);
  EXPECT_TRUE(loaded.empty());
}

}  // namespace
}  // namespace vqoe::trace

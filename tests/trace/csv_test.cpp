#include "vqoe/trace/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "vqoe/workload/corpus.h"

namespace vqoe::trace {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vqoe_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, WeblogRoundTrip) {
  auto options = workload::cleartext_corpus_options(20, 7);
  options.keep_session_results = false;
  const auto corpus = workload::generate_corpus(options);
  ASSERT_FALSE(corpus.weblogs.empty());

  const auto path = dir_ / "weblogs.csv";
  write_weblogs_csv(path, corpus.weblogs);
  const auto loaded = read_weblogs_csv(path);

  ASSERT_EQ(loaded.size(), corpus.weblogs.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const WeblogRecord& a = corpus.weblogs[i];
    const WeblogRecord& b = loaded[i];
    EXPECT_EQ(a.subscriber_id, b.subscriber_id);
    EXPECT_NEAR(a.timestamp_s, b.timestamp_s, 1e-4);
    EXPECT_EQ(a.object_size_bytes, b.object_size_bytes);
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.encrypted, b.encrypted);
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.itag_height, b.itag_height);
    EXPECT_EQ(a.is_audio, b.is_audio);
    EXPECT_NEAR(a.transport.rtt_avg_ms, b.transport.rtt_avg_ms, 1e-4);
    EXPECT_NEAR(a.transport.bdp_bytes, b.transport.bdp_bytes, 1e-2);
    EXPECT_NEAR(a.transport.loss_pct, b.transport.loss_pct, 1e-6);
  }
}

TEST_F(CsvTest, GroundTruthRoundTrip) {
  auto options = workload::cleartext_corpus_options(15, 8);
  options.keep_session_results = false;
  const auto corpus = workload::generate_corpus(options);

  const auto path = dir_ / "truth.csv";
  write_ground_truth_csv(path, corpus.truths);
  const auto loaded = read_ground_truth_csv(path);

  ASSERT_EQ(loaded.size(), corpus.truths.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const SessionGroundTruth& a = corpus.truths[i];
    const SessionGroundTruth& b = loaded[i];
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.subscriber_id, b.subscriber_id);
    EXPECT_EQ(a.adaptive, b.adaptive);
    EXPECT_EQ(a.abandoned, b.abandoned);
    EXPECT_EQ(a.media_chunk_count, b.media_chunk_count);
    EXPECT_EQ(a.stall_count, b.stall_count);
    EXPECT_NEAR(a.rebuffering_ratio, b.rebuffering_ratio, 1e-6);
    EXPECT_NEAR(a.average_height, b.average_height, 1e-4);
    EXPECT_NEAR(a.startup_delay_s, b.startup_delay_s, 1e-6);
    EXPECT_EQ(a.switch_count, b.switch_count);
  }
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_weblogs_csv(dir_ / "nope.csv"), std::runtime_error);
  EXPECT_THROW(read_ground_truth_csv(dir_ / "nope.csv"), std::runtime_error);
}

TEST_F(CsvTest, MalformedRowThrows) {
  const auto path = dir_ / "bad.csv";
  {
    std::ofstream os{path};
    os << "header\n";
    os << "only,three,fields\n";
  }
  EXPECT_THROW(read_weblogs_csv(path), std::runtime_error);
}

TEST_F(CsvTest, EmptyRecordListProducesHeaderOnly) {
  const auto path = dir_ / "empty.csv";
  write_weblogs_csv(path, {});
  const auto loaded = read_weblogs_csv(path);
  EXPECT_TRUE(loaded.empty());
}

// RFC-4180 regression: string fields come from the outside world, and a
// subscriber id or host carrying a comma, quote or newline must not shear
// the row — the writer quotes such fields (doubling embedded quotes) and
// the reader restores the original bytes, including line breaks inside a
// quoted field.
TEST_F(CsvTest, HostileStringsRoundTrip) {
  WeblogRecord hostile;
  hostile.subscriber_id = "sub,with,commas";
  hostile.host = "evil\"quoted\".example.com";
  hostile.session_id = "line\nbreak,and \"both\"";
  hostile.timestamp_s = 12.5;
  hostile.object_size_bytes = 4096;
  hostile.kind = RecordKind::media;
  hostile.itag_height = 720;

  WeblogRecord crlf;
  crlf.subscriber_id = "crlf\r\nsub";
  crlf.host = "plain.example.com";
  crlf.session_id = "\"leading quote";
  crlf.timestamp_s = 13.0;

  WeblogRecord plain;
  plain.subscriber_id = "sub-ordinary";
  plain.host = "r3---sn-h5q7dne7.googlevideo.com";
  plain.session_id = "abcDEF0123456789";
  plain.timestamp_s = 14.0;

  const auto path = dir_ / "hostile.csv";
  const std::vector<WeblogRecord> written = {hostile, crlf, plain};
  write_weblogs_csv(path, written);
  const auto loaded = read_weblogs_csv(path);

  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const WeblogRecord& a = written[i];
    const WeblogRecord& b = loaded[i];
    EXPECT_EQ(a.subscriber_id, b.subscriber_id);
    EXPECT_EQ(a.host, b.host);
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.itag_height, b.itag_height);
  }
}

TEST_F(CsvTest, HostileGroundTruthRoundTrip) {
  SessionGroundTruth truth;
  truth.session_id = "id,with\n\"everything\"";
  truth.subscriber_id = "sub \"quoted\"";
  truth.media_chunk_count = 42;
  truth.stall_count = 2;

  const auto path = dir_ / "hostile_truth.csv";
  write_ground_truth_csv(path, {truth});
  const auto loaded = read_ground_truth_csv(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].session_id, truth.session_id);
  EXPECT_EQ(loaded[0].subscriber_id, truth.subscriber_id);
  EXPECT_EQ(loaded[0].media_chunk_count, truth.media_chunk_count);
}

TEST_F(CsvTest, QuotingOnlyTouchesFieldsThatNeedIt) {
  // Generator-produced data never needs quoting: the file must not grow
  // quotes (older readers of these files split on commas).
  WeblogRecord plain;
  plain.subscriber_id = "sub-7";
  plain.host = "m.youtube.com";
  plain.session_id = "abcDEF0123456789";
  const auto path = dir_ / "plain.csv";
  write_weblogs_csv(path, {plain});
  std::ifstream is{path};
  std::string content{std::istreambuf_iterator<char>{is},
                      std::istreambuf_iterator<char>{}};
  EXPECT_EQ(content.find('"'), std::string::npos);
}

TEST_F(CsvTest, UnterminatedQuoteThrows) {
  const auto path = dir_ / "torn.csv";
  {
    std::ofstream os{path};
    os << "header\n";
    os << "\"never closed,1,2\n";
  }
  EXPECT_THROW(read_weblogs_csv(path), std::runtime_error);
}

}  // namespace
}  // namespace vqoe::trace

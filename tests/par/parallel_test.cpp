#include "vqoe/par/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vqoe::par {
namespace {

// Every test restores the automatic thread resolution on exit so ordering
// between tests (and with other suites in this binary) doesn't matter.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_threads(0); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    set_threads(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(0, kN, 7, [&](std::size_t lo, std::size_t hi, std::size_t) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST_F(ParallelTest, RespectsRangeAndGrainBounds) {
  set_threads(4);
  std::atomic<std::size_t> total{0};
  parallel_for(10, 25, 4, [&](std::size_t lo, std::size_t hi, std::size_t) {
    ASSERT_GE(lo, 10u);
    ASSERT_LE(hi, 25u);
    ASSERT_LE(hi - lo, 4u);
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 15u);

  // Empty ranges are a no-op.
  parallel_for(5, 5, 1, [](std::size_t, std::size_t, std::size_t) { FAIL(); });
}

TEST_F(ParallelTest, SlotsStayBelowMaxThreads) {
  set_threads(3);
  std::mutex m;
  std::set<std::size_t> seen;
  parallel_for(0, 64, 1, [&](std::size_t, std::size_t, std::size_t slot) {
    const std::lock_guard<std::mutex> lock{m};
    seen.insert(slot);
  });
  for (const std::size_t slot : seen) EXPECT_LT(slot, 3u);
}

TEST_F(ParallelTest, PropagatesBodyException) {
  for (const int threads : {1, 4}) {
    set_threads(threads);
    EXPECT_THROW(
        parallel_for(0, 100, 1,
                     [](std::size_t lo, std::size_t, std::size_t) {
                       if (lo == 42) throw std::runtime_error{"boom"};
                     }),
        std::runtime_error)
        << "threads " << threads;
    // The pool must stay usable after an exception drained.
    std::atomic<std::size_t> total{0};
    parallel_for(0, 10, 1, [&](std::size_t lo, std::size_t hi, std::size_t) {
      total.fetch_add(hi - lo);
    });
    EXPECT_EQ(total.load(), 10u);
  }
}

TEST_F(ParallelTest, NestedUseIsRejectedByThePoolAndRunsInline) {
  set_threads(4);
  std::atomic<std::size_t> inner_total{0};
  std::atomic<bool> saw_region_flag{false};
  parallel_for(0, 8, 1, [&](std::size_t, std::size_t, std::size_t slot) {
    if (in_parallel_region()) saw_region_flag.store(true);
    // Nested call: must not deadlock, must run the full range, and must
    // keep reporting the outer worker's slot.
    parallel_for(0, 10, 3, [&](std::size_t lo, std::size_t hi,
                               std::size_t inner_slot) {
      EXPECT_EQ(inner_slot, slot);
      inner_total.fetch_add(hi - lo);
    });
  });
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_EQ(inner_total.load(), 80u);
  EXPECT_FALSE(in_parallel_region());
}

TEST_F(ParallelTest, SetThreadsInsideRegionThrows) {
  set_threads(2);
  EXPECT_THROW(
      parallel_for(0, 4, 1,
                   [](std::size_t, std::size_t, std::size_t) { set_threads(3); }),
      std::logic_error);
  EXPECT_THROW(set_threads(-1), std::invalid_argument);
}

TEST_F(ParallelTest, SequentialFallbackRunsOnCallingThread) {
  set_threads(1);
  const auto caller = std::this_thread::get_id();
  parallel_for(0, 16, 4, [&](std::size_t, std::size_t, std::size_t slot) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(slot, 0u);
  });
  EXPECT_EQ(max_threads(), 1);
}

TEST_F(ParallelTest, TaskGroupRunsEveryTaskAndPropagates) {
  set_threads(4);
  std::atomic<int> ran{0};
  TaskGroup group;
  for (int i = 0; i < 16; ++i) {
    group.run([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(group.pending(), 16u);
  group.wait();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(group.pending(), 0u);
  // Reusable after a wait cycle; exceptions surface from wait().
  group.run([] { throw std::logic_error{"task"}; });
  EXPECT_THROW(group.wait(), std::logic_error);
  group.wait();  // empty group: no-op
}

TEST_F(ParallelTest, WorkerLocalHasOneSlotPerThread) {
  set_threads(4);
  WorkerLocal<std::vector<int>> scratch;
  EXPECT_EQ(scratch.size(), 4u);
  parallel_for(0, 128, 1, [&](std::size_t lo, std::size_t, std::size_t slot) {
    scratch.at(slot).push_back(static_cast<int>(lo));
  });
  std::size_t total = 0;
  for (std::size_t s = 0; s < scratch.size(); ++s) total += scratch.at(s).size();
  EXPECT_EQ(total, 128u);
}

TEST(DeriveSeed, StreamsAreDistinctAndStable) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL}) {
    for (std::uint64_t index = 0; index < 100; ++index) {
      seeds.insert(derive_seed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 300u);
}

}  // namespace
}  // namespace vqoe::par

// The determinism invariant of the parallel runtime (DESIGN.md section 5c):
// every batch path — forest training, batch inference, cross-validation,
// permutation importance, corpus generation — produces bit-identical
// results for any thread count, because all randomness is derived from
// (seed, item index) and all reductions merge in item order.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "vqoe/ml/cross_validation.h"
#include "vqoe/ml/importance.h"
#include "vqoe/ml/random_forest.h"
#include "vqoe/par/parallel.h"
#include "vqoe/workload/corpus.h"

namespace vqoe {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { par::set_threads(0); }
};

ml::Dataset blob_dataset(std::size_t per_class, std::uint64_t seed) {
  ml::Dataset d{{"f0", "f1", "f2", "noise"}, {"a", "b", "c"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({n(rng), n(rng) + 1.0, n(rng), n(rng)}, 0);
    d.add({n(rng) + 3.0, n(rng), n(rng), n(rng)}, 1);
    d.add({n(rng), n(rng) + 4.0, n(rng) + 2.0, n(rng)}, 2);
  }
  return d;
}

std::string saved_forest(const ml::Dataset& data, int threads) {
  par::set_threads(threads);
  ml::ForestParams params;
  params.num_trees = 24;
  params.seed = 99;
  params.compute_oob = true;
  const auto forest = ml::RandomForest::fit(data, params);
  std::ostringstream os;
  forest.save(os);
  return os.str();
}

TEST_F(DeterminismTest, ForestSaveIsByteIdenticalAcrossThreadCounts) {
  const auto data = blob_dataset(80, 3);
  const std::string baseline = saved_forest(data, 1);
  EXPECT_FALSE(baseline.empty());
  for (const int threads : {4, 8}) {
    EXPECT_EQ(saved_forest(data, threads), baseline) << "threads " << threads;
  }
}

TEST_F(DeterminismTest, PredictAllIsIdenticalAcrossThreadCounts) {
  const auto train = blob_dataset(80, 5);
  const auto test = blob_dataset(50, 6);
  par::set_threads(1);
  ml::ForestParams params;
  params.num_trees = 16;
  const auto forest = ml::RandomForest::fit(train, params);
  const auto baseline = forest.predict_all(test);
  const auto baseline_proba = forest.predict_proba_all(test);
  for (const int threads : {4, 8}) {
    par::set_threads(threads);
    EXPECT_EQ(forest.predict_all(test), baseline) << "threads " << threads;
    EXPECT_EQ(forest.predict_proba_all(test), baseline_proba)
        << "threads " << threads;
  }
  // Row-by-row prediction agrees with the batch path.
  for (std::size_t i = 0; i < test.rows(); i += 5) {
    EXPECT_EQ(forest.predict(test.row(i)), baseline[i]);
  }
}

TEST_F(DeterminismTest, CrossValidationConfusionIsIdenticalAcrossThreadCounts) {
  const auto data = blob_dataset(40, 7);
  ml::ForestParams params;
  params.num_trees = 8;
  ml::CrossValidationOptions options;
  options.folds = 5;
  par::set_threads(1);
  const auto baseline = ml::cross_validate(data, params, options);
  for (const int threads : {4, 8}) {
    par::set_threads(threads);
    const auto cm = ml::cross_validate(data, params, options);
    ASSERT_EQ(cm.total(), baseline.total()) << "threads " << threads;
    for (int a = 0; a < static_cast<int>(cm.num_classes()); ++a) {
      for (int p = 0; p < static_cast<int>(cm.num_classes()); ++p) {
        EXPECT_EQ(cm.count(a, p), baseline.count(a, p))
            << "threads " << threads << " cell " << a << "," << p;
      }
    }
  }
}

TEST_F(DeterminismTest, PermutationImportanceMatchesAcrossThreadCounts) {
  const auto data = blob_dataset(40, 9);
  par::set_threads(1);
  ml::ForestParams params;
  params.num_trees = 8;
  const auto forest = ml::RandomForest::fit(data, params);
  const auto predict = [&forest](std::span<const double> x) {
    return forest.predict(x);
  };
  std::mt19937_64 rng_a{11};
  const auto baseline = ml::permutation_importance(predict, data, rng_a, 2);
  const std::uint64_t next_draw = rng_a();
  for (const int threads : {4, 8}) {
    par::set_threads(threads);
    std::mt19937_64 rng_b{11};
    EXPECT_EQ(ml::permutation_importance(predict, data, rng_b, 2), baseline)
        << "threads " << threads;
    // The caller-visible RNG stream advanced identically.
    EXPECT_EQ(rng_b(), next_draw);
  }
}

TEST_F(DeterminismTest, GeneratedCorpusIsIdenticalAcrossThreadCounts) {
  auto options = workload::cleartext_corpus_options(50, 21);
  options.keep_session_results = true;
  par::set_threads(1);
  const auto baseline = workload::generate_corpus(options);
  for (const int threads : {4, 8}) {
    par::set_threads(threads);
    const auto corpus = workload::generate_corpus(options);
    ASSERT_EQ(corpus.weblogs.size(), baseline.weblogs.size())
        << "threads " << threads;
    ASSERT_EQ(corpus.truths.size(), baseline.truths.size());
    ASSERT_EQ(corpus.sessions.size(), baseline.sessions.size());
    for (std::size_t i = 0; i < corpus.truths.size(); ++i) {
      EXPECT_EQ(corpus.truths[i].session_id, baseline.truths[i].session_id);
      EXPECT_EQ(corpus.truths[i].subscriber_id, baseline.truths[i].subscriber_id);
      EXPECT_EQ(corpus.truths[i].start_time_s, baseline.truths[i].start_time_s);
      EXPECT_EQ(corpus.truths[i].rebuffering_ratio,
                baseline.truths[i].rebuffering_ratio);
      EXPECT_EQ(corpus.truths[i].media_chunk_count,
                baseline.truths[i].media_chunk_count);
    }
    for (std::size_t i = 0; i < corpus.weblogs.size(); ++i) {
      ASSERT_EQ(corpus.weblogs[i].timestamp_s, baseline.weblogs[i].timestamp_s);
      ASSERT_EQ(corpus.weblogs[i].session_id, baseline.weblogs[i].session_id);
      ASSERT_EQ(corpus.weblogs[i].object_size_bytes,
                baseline.weblogs[i].object_size_bytes);
      ASSERT_EQ(corpus.weblogs[i].host, baseline.weblogs[i].host);
    }
    for (std::size_t i = 0; i < corpus.sessions.size(); ++i) {
      EXPECT_EQ(corpus.sessions[i].total_duration_s,
                baseline.sessions[i].total_duration_s);
      EXPECT_EQ(corpus.sessions[i].stalls.size(),
                baseline.sessions[i].stalls.size());
    }
  }
}

}  // namespace
}  // namespace vqoe

#include "vqoe/workload/service.h"

#include <gtest/gtest.h>

#include "vqoe/session/reconstruct.h"

namespace vqoe::workload {
namespace {

TEST(ServiceTraits, YoutubeDefaultsMatchPaper) {
  const auto s = youtube_service();
  EXPECT_EQ(s.name, "youtube");
  EXPECT_DOUBLE_EQ(s.segment_duration_s, 5.0);
  EXPECT_DOUBLE_EQ(s.bitrate_scale, 1.0);
  EXPECT_FALSE(s.separate_audio);
  EXPECT_NE(s.cdn_host.find("googlevideo"), std::string::npos);
}

TEST(ServiceTraits, AlternativesDifferInDelivery) {
  const auto yt = youtube_service();
  for (const auto& s : {vimeo_like_service(), dailymotion_like_service(),
                        netflix_like_service()}) {
    EXPECT_NE(s.name, yt.name);
    EXPECT_NE(s.segment_duration_s, yt.segment_duration_s) << s.name;
    EXPECT_NE(s.cdn_host, yt.cdn_host) << s.name;
    EXPECT_GT(s.segment_duration_s, 0.0) << s.name;
    EXPECT_GT(s.bitrate_scale, 0.0) << s.name;
  }
}

TEST(ServiceTraits, SuffixesMatchOwnHosts) {
  for (const auto& s : {youtube_service(), vimeo_like_service(),
                        dailymotion_like_service(), netflix_like_service()}) {
    session::ReconstructionOptions options;
    options.cdn_suffixes = s.cdn_suffixes();
    options.page_marker_hosts = s.page_marker_hosts();
    options.service_suffixes = s.service_suffixes();

    EXPECT_TRUE(options.is_cdn(s.cdn_host)) << s.name;
    EXPECT_FALSE(options.is_cdn(s.page_host)) << s.name;
    EXPECT_TRUE(options.is_page_marker(s.page_host)) << s.name;
    for (const auto& host :
         {s.cdn_host, s.page_host, s.thumbnail_host, s.report_host}) {
      EXPECT_TRUE(options.is_service(host)) << s.name << " " << host;
    }
    EXPECT_FALSE(options.is_service("cdn.unrelated.example")) << s.name;
  }
}

TEST(ServiceTraits, ServicesDoNotMatchEachOther) {
  const auto yt = youtube_service();
  const auto vimeo = vimeo_like_service();
  session::ReconstructionOptions yt_options;
  yt_options.cdn_suffixes = yt.cdn_suffixes();
  yt_options.service_suffixes = yt.service_suffixes();
  EXPECT_FALSE(yt_options.is_cdn(vimeo.cdn_host));
  EXPECT_FALSE(yt_options.is_service(vimeo.page_host));
}

}  // namespace
}  // namespace vqoe::workload

#include "vqoe/workload/corpus.h"

#include <gtest/gtest.h>

#include <set>

#include "vqoe/core/labels.h"
#include "vqoe/core/pipeline.h"

namespace vqoe::workload {
namespace {

TEST(GenerateCorpus, DeterministicForSeed) {
  auto options = cleartext_corpus_options(60, 5);
  options.keep_session_results = false;
  const auto a = generate_corpus(options);
  const auto b = generate_corpus(options);
  ASSERT_EQ(a.weblogs.size(), b.weblogs.size());
  ASSERT_EQ(a.truths.size(), b.truths.size());
  for (std::size_t i = 0; i < a.truths.size(); ++i) {
    EXPECT_EQ(a.truths[i].session_id, b.truths[i].session_id);
    EXPECT_DOUBLE_EQ(a.truths[i].rebuffering_ratio, b.truths[i].rebuffering_ratio);
  }
}

TEST(GenerateCorpus, DifferentSeedsDiffer) {
  auto o1 = cleartext_corpus_options(30, 6);
  auto o2 = cleartext_corpus_options(30, 7);
  o1.keep_session_results = o2.keep_session_results = false;
  const auto a = generate_corpus(o1);
  const auto b = generate_corpus(o2);
  EXPECT_NE(a.truths.front().session_id, b.truths.front().session_id);
}

TEST(GenerateCorpus, SessionResultsKeptOnRequest) {
  auto options = cleartext_corpus_options(10, 8);
  options.keep_session_results = true;
  const auto corpus = generate_corpus(options);
  EXPECT_EQ(corpus.sessions.size(), 10u);
  options.keep_session_results = false;
  const auto lean = generate_corpus(options);
  EXPECT_TRUE(lean.sessions.empty());
}

TEST(GenerateCorpus, WeblogsTimeSortedAndConsistent) {
  auto options = cleartext_corpus_options(40, 9);
  options.keep_session_results = false;
  const auto corpus = generate_corpus(options);
  double prev = -1.0;
  for (const auto& r : corpus.weblogs) {
    EXPECT_GE(r.timestamp_s, prev);
    prev = r.timestamp_s;
  }
  // Every truth has matching media records.
  const auto groups = trace::group_by_session_id(corpus.weblogs);
  for (const auto& t : corpus.truths) {
    const auto it = groups.find(t.session_id);
    ASSERT_NE(it, groups.end());
    EXPECT_EQ(it->second.size(), t.media_chunk_count);
  }
}

TEST(GenerateCorpus, AdaptiveFractionRespected) {
  auto options = cleartext_corpus_options(200, 10);
  options.adaptive_fraction = 0.0;
  options.keep_session_results = false;
  for (const auto& t : generate_corpus(options).truths) {
    EXPECT_FALSE(t.adaptive);
  }
  options.adaptive_fraction = 1.0;
  for (const auto& t : generate_corpus(options).truths) {
    EXPECT_TRUE(t.adaptive);
  }
}

TEST(GenerateCorpus, EncryptedOptionsSingleSubscriberAllAdaptive) {
  auto options = encrypted_corpus_options(25, 11);
  options.keep_session_results = false;
  const auto corpus = generate_corpus(options);
  std::set<std::string> subscribers;
  for (const auto& t : corpus.truths) {
    subscribers.insert(t.subscriber_id);
    EXPECT_TRUE(t.adaptive);
  }
  EXPECT_EQ(subscribers.size(), 1u);
}

TEST(GenerateCorpus, DeviceStallsInvisibleInTraffic) {
  // With a forced 100% device-stall rate every session gets one stall in
  // its ground truth; the traffic of a good channel stays clean (no small
  // recovery chunks), which is exactly the point of the injection.
  auto options = cleartext_corpus_options(30, 12);
  options.device_stall_rate = 1.0;
  options.mix = {.static_good = 1.0,
                 .cell_fair = 0.0,
                 .cell_congested = 0.0,
                 .cell_poor = 0.0,
                 .commute = 0.0};
  options.keep_session_results = false;
  const auto corpus = generate_corpus(options);
  std::size_t with_stall = 0;
  for (const auto& t : corpus.truths) with_stall += t.stall_count > 0 ? 1 : 0;
  EXPECT_GT(with_stall, corpus.truths.size() * 8 / 10);
}

TEST(GenerateCorpus, ServiceTraitsChangeDelivery) {
  // Shorter segments => more chunks per session, different hosts.
  auto yt = has_corpus_options(40, 13);
  yt.keep_session_results = false;
  auto dm = yt;
  dm.service = dailymotion_like_service();

  const auto yt_corpus = generate_corpus(yt);
  const auto dm_corpus = generate_corpus(dm);

  double yt_chunks = 0, dm_chunks = 0;
  for (const auto& t : yt_corpus.truths) yt_chunks += static_cast<double>(t.media_chunk_count);
  for (const auto& t : dm_corpus.truths) dm_chunks += static_cast<double>(t.media_chunk_count);
  EXPECT_GT(dm_chunks, yt_chunks * 1.5);  // 2 s vs 5 s segments

  bool saw_dm_host = false;
  for (const auto& r : dm_corpus.weblogs) {
    EXPECT_EQ(r.host.find("googlevideo"), std::string::npos);
    if (r.host.find("dm-cdn-video") != std::string::npos) saw_dm_host = true;
  }
  EXPECT_TRUE(saw_dm_host);
}

TEST(DemoSessions, HaveTheirSignatures) {
  bool found_stalls = false;
  for (std::uint64_t seed = 11; seed < 40 && !found_stalls; ++seed) {
    const auto s = demo_stall_session(seed);
    if (s.stalls.size() >= 2) found_stalls = true;
  }
  EXPECT_TRUE(found_stalls);

  bool found_switch = false;
  for (std::uint64_t seed = 21; seed < 50 && !found_switch; ++seed) {
    const auto s = demo_switch_session(seed);
    if (s.switch_count() >= 1) found_switch = true;
  }
  EXPECT_TRUE(found_switch);
}

TEST(CorpusShape, MatchesPaperAnchors) {
  auto options = cleartext_corpus_options(2000, 42);
  options.keep_session_results = false;
  const auto corpus = generate_corpus(options);
  std::size_t stalled = 0;
  for (const auto& t : corpus.truths) stalled += t.stall_count > 0 ? 1 : 0;
  const double frac = static_cast<double>(stalled) / 2000.0;
  EXPECT_GT(frac, 0.06);  // paper: ~12%
  EXPECT_LT(frac, 0.25);
}

}  // namespace
}  // namespace vqoe::workload

// Spool durability contract.
//
// The failure modes a capture log must get right (ISSUE 4): a torn final
// frame (writer died mid-append) is recovered silently — everything before
// it reads back and torn_tail() reports the loss; a flipped byte in the
// durable middle of the log is a hard WireError with the offending offset;
// a segment header from a future format version is a version-skew error,
// not a misparse; and a zero-byte segment (crash between create and header
// write) reads as cleanly empty.
#include "vqoe/wire/spool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <vector>

#include "vqoe/trace/weblog.h"
#include "vqoe/wire/codec.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::wire {
namespace {

namespace fs = std::filesystem;

std::vector<trace::WeblogRecord> make_records() {
  auto options = workload::cleartext_corpus_options(10, 77);
  options.subscribers = 5;
  options.keep_session_results = false;
  return trace::encrypt_view(workload::generate_corpus(options).weblogs);
}

void expect_identical(const trace::WeblogRecord& a,
                      const trace::WeblogRecord& b) {
  EXPECT_EQ(a.subscriber_id, b.subscriber_id);
  EXPECT_EQ(a.timestamp_s, b.timestamp_s);
  EXPECT_EQ(a.transaction_time_s, b.transaction_time_s);
  EXPECT_EQ(a.object_size_bytes, b.object_size_bytes);
  EXPECT_EQ(a.host, b.host);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.encrypted, b.encrypted);
  EXPECT_EQ(a.transport.rtt_avg_ms, b.transport.rtt_avg_ms);
  EXPECT_EQ(a.transport.bif_max_bytes, b.transport.bif_max_bytes);
}

class SpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vqoe_spool_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Writes `records` as `frames` equal-ish frames into a fresh spool.
  void write_spool(const std::vector<trace::WeblogRecord>& records,
                   std::size_t frames, SpoolWriterOptions options = {}) {
    SpoolWriter writer{dir_, options};
    const std::size_t per = (records.size() + frames - 1) / frames;
    for (std::size_t i = 0; i < records.size(); i += per) {
      writer.append(records.data() + i, std::min(per, records.size() - i));
    }
    writer.close();
  }

  [[nodiscard]] fs::path segment(std::size_t index) const {
    char name[32];
    std::snprintf(name, sizeof name, "spool-%06zu.vqs", index);
    return dir_ / name;
  }

  static void flip_byte(const fs::path& path, std::uint64_t offset) {
    std::fstream f{path, std::ios::binary | std::ios::in | std::ios::out};
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  static void set_byte(const fs::path& path, std::uint64_t offset,
                       std::uint8_t value) {
    std::fstream f{path, std::ios::binary | std::ios::in | std::ios::out};
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    const char byte = static_cast<char>(value);
    f.write(&byte, 1);
  }

  fs::path dir_;
};

TEST_F(SpoolTest, RoundTripSingleSegment) {
  const auto records = make_records();
  write_spool(records, 4);

  SpoolReader reader{dir_};
  const auto got = reader.read_all();
  ASSERT_EQ(got.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_identical(records[i], got[i]);
  }
  EXPECT_FALSE(reader.torn_tail());
  EXPECT_EQ(reader.frames_read(), 4u);
  EXPECT_EQ(reader.segments_read(), 1u);
}

TEST_F(SpoolTest, WriterCountsFramesRecordsBytes) {
  const auto records = make_records();
  SpoolWriter writer{dir_};
  writer.append(records);
  writer.append(records.data(), 3);
  EXPECT_EQ(writer.frames_written(), 2u);
  EXPECT_EQ(writer.records_written(), records.size() + 3);
  EXPECT_EQ(writer.segments(), 1u);
  writer.close();
  EXPECT_EQ(writer.bytes_written(),
            static_cast<std::uint64_t>(fs::file_size(segment(0))));
  // Appending zero records is a no-op, not an empty frame.
  SpoolWriter writer2{dir_ / "empty_appends"};
  writer2.append(records.data(), 0);
  EXPECT_EQ(writer2.frames_written(), 0u);
}

TEST_F(SpoolTest, RotationSplitsSegmentsAndPreservesOrder) {
  const auto records = make_records();
  SpoolWriterOptions options;
  options.segment_bytes = 1;  // every frame lands in its own segment
  write_spool(records, 5, options);

  // The header alone exceeds the bound, so segment 0 is header-only and
  // each of the 5 frames rotated into its own segment: 6 files total.
  SpoolReader reader{dir_};
  const auto got = reader.read_all();
  ASSERT_EQ(got.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_identical(records[i], got[i]);
  }
  EXPECT_EQ(reader.segments_read(), 6u);
  EXPECT_FALSE(reader.torn_tail());
  EXPECT_TRUE(fs::exists(segment(5)));
}

TEST_F(SpoolTest, TruncatedFinalFrameRecoversAsTornTail) {
  const auto records = make_records();
  write_spool(records, 4);  // frame size ~= records.size()/4 records

  // Chop a few bytes off the final frame's payload: the writer died
  // mid-append. The first three frames must read back, nothing must throw.
  fs::resize_file(segment(0), fs::file_size(segment(0)) - 5);

  SpoolReader reader{dir_};
  const auto got = reader.read_all();
  EXPECT_TRUE(reader.torn_tail());
  EXPECT_EQ(reader.frames_read(), 3u);
  EXPECT_LT(got.size(), records.size());
  EXPECT_EQ(got.size(), reader.records_read());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_identical(records[i], got[i]);
  }
}

TEST_F(SpoolTest, TruncatedFinalFrameHeaderRecoversAsTornTail) {
  const auto records = make_records();
  write_spool(records, 2);
  // Leave only 3 of the 8 header bytes of the final frame.
  std::uint64_t second_frame_at = kSpoolHeaderBytes;
  {
    std::ifstream in{segment(0), std::ios::binary};
    in.seekg(static_cast<std::streamoff>(kSpoolHeaderBytes));
    std::uint8_t len[4];
    in.read(reinterpret_cast<char*>(len), 4);
    second_frame_at += kFrameHeaderBytes +
                       (static_cast<std::uint32_t>(len[0]) |
                        static_cast<std::uint32_t>(len[1]) << 8 |
                        static_cast<std::uint32_t>(len[2]) << 16 |
                        static_cast<std::uint32_t>(len[3]) << 24);
  }
  fs::resize_file(segment(0), second_frame_at + 3);

  SpoolReader reader{dir_};
  const auto got = reader.read_all();
  EXPECT_TRUE(reader.torn_tail());
  EXPECT_EQ(reader.frames_read(), 1u);
  EXPECT_FALSE(got.empty());
}

TEST_F(SpoolTest, FlippedByteMidFileIsHardError) {
  const auto records = make_records();
  write_spool(records, 4);

  // Damage the first frame's payload: that data was durable, losing it
  // silently is not acceptable — must be a CRC error with an offset.
  flip_byte(segment(0), kSpoolHeaderBytes + kFrameHeaderBytes + 2);

  SpoolReader reader{dir_};
  trace::WeblogRecord r;
  try {
    while (reader.next(r)) {
    }
    FAIL() << "corrupt frame read back silently";
  } catch (const WireError& e) {
    EXPECT_EQ(e.offset(), kSpoolHeaderBytes);  // frame start
    EXPECT_NE(std::string{e.what()}.find("CRC"), std::string::npos);
  }
  EXPECT_FALSE(reader.torn_tail());
}

TEST_F(SpoolTest, FlippedCrcFieldIsHardError) {
  const auto records = make_records();
  write_spool(records, 2);
  // Flip a bit in the stored CRC itself rather than the payload.
  flip_byte(segment(0), kSpoolHeaderBytes + 4);
  EXPECT_THROW((void)read_spool(dir_), WireError);
}

TEST_F(SpoolTest, TornFrameInNonFinalSegmentIsHardError) {
  const auto records = make_records();
  SpoolWriterOptions options;
  options.segment_bytes = 1;  // one frame per segment
  write_spool(records, 3, options);
  // A truncation that is NOT the tail of the log: only the final segment
  // may be torn; anywhere else the data was durable. (Frames sit in
  // segments 1..3; segment 0 is the header-only pre-rotation stub.)
  fs::resize_file(segment(1), fs::file_size(segment(1)) - 3);
  EXPECT_THROW((void)read_spool(dir_), WireError);
}

TEST_F(SpoolTest, VersionSkewHeaderIsExplicitError) {
  const auto records = make_records();
  write_spool(records, 2);
  set_byte(segment(0), 4, 99);  // header version byte

  try {
    (void)read_spool(dir_);
    FAIL() << "version-skew segment read back";
  } catch (const WireError& e) {
    EXPECT_NE(std::string{e.what()}.find("version skew"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("99"), std::string::npos);
  }
}

TEST_F(SpoolTest, BadMagicIsHardError) {
  const auto records = make_records();
  write_spool(records, 1);
  flip_byte(segment(0), 0);
  EXPECT_THROW((void)read_spool(dir_), WireError);
}

TEST_F(SpoolTest, ZeroByteSegmentReadsAsEmpty) {
  fs::create_directories(dir_);
  { std::ofstream created{segment(0), std::ios::binary}; }
  ASSERT_EQ(fs::file_size(segment(0)), 0u);

  SpoolReader reader{dir_};
  EXPECT_TRUE(reader.read_all().empty());
  EXPECT_FALSE(reader.torn_tail());
  EXPECT_EQ(reader.records_read(), 0u);
}

TEST_F(SpoolTest, HeaderOnlySegmentReadsAsEmpty) {
  {
    SpoolWriter writer{dir_};
    writer.close();  // header written, no frames
  }
  SpoolReader reader{dir_};
  EXPECT_TRUE(reader.read_all().empty());
  EXPECT_FALSE(reader.torn_tail());
}

TEST_F(SpoolTest, PartialHeaderInFinalSegmentIsTornTail) {
  const auto records = make_records();
  SpoolWriterOptions options;
  options.segment_bytes = 1;
  write_spool(records, 2, options);  // frames in segments 1 and 2
  fs::resize_file(segment(2), 4);    // crash mid-header-write

  SpoolReader reader{dir_};
  const auto got = reader.read_all();
  EXPECT_TRUE(reader.torn_tail());
  EXPECT_FALSE(got.empty());  // segment 0 still reads back
}

TEST_F(SpoolTest, MissingSpoolThrows) {
  EXPECT_THROW(SpoolReader{dir_ / "nope"}, std::runtime_error);
  fs::create_directories(dir_);
  EXPECT_THROW(SpoolReader{dir_}, std::runtime_error);  // no segments
}

TEST_F(SpoolTest, SingleSegmentFileIsReadable) {
  const auto records = make_records();
  write_spool(records, 2);
  SpoolReader reader{segment(0)};  // a file path, not a directory
  EXPECT_EQ(reader.read_all().size(), records.size());
}

TEST_F(SpoolTest, UnsupportedWriterVersionThrows) {
  SpoolWriterOptions options;
  options.version = kWireVersionMax + 1;
  EXPECT_THROW(SpoolWriter(dir_, options), WireError);
}

}  // namespace
}  // namespace vqoe::wire

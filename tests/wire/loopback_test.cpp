// Probe → collector → engine loopback equivalence (ISSUE 4 acceptance).
//
// Replaying a corpus over real TCP loopback — encode, frame, CRC, k-way
// merge across probe connections, decode — must be invisible to the
// monitoring pipeline: the engine's per-session detector outputs and
// per-shard records_out must be *bit-identical* to direct in-process
// Engine::ingest, at 1/2/4/8 shards and with 4 concurrent probes. Also
// covered here: the merged feed stays time-sorted, the spool tee captures
// a replayable copy, version negotiation refuses unsupported peers, and a
// probe that violates stream order is cut off rather than merged.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "vqoe/engine/engine.h"
#include "vqoe/wire/spool.h"
#include "vqoe/wire/transport.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::wire {
namespace {

namespace fs = std::filesystem;
using core::CompletedSession;
using core::QoePipeline;

/// Everything externally observable about a completed session; doubles
/// compared exactly — both paths run identical code on identical bits
/// (tests/engine/engine_test.cpp uses the same key).
using SessionKey = std::tuple<std::string, double, double, std::size_t, int,
                              int, bool, double>;

SessionKey key_of(const CompletedSession& s) {
  return {s.subscriber_id,
          s.start_time_s,
          s.end_time_s,
          s.chunk_count,
          static_cast<int>(s.report.stall),
          static_cast<int>(s.report.representation),
          s.report.quality_switches,
          s.report.switch_score};
}

std::vector<SessionKey> sorted_keys(const std::vector<CompletedSession>& all) {
  std::vector<SessionKey> keys;
  keys.reserve(all.size());
  for (const auto& s : all) keys.push_back(key_of(s));
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// What one end-to-end run produced: session reports plus the engine's
/// per-shard consumption counters.
struct Outcome {
  std::vector<SessionKey> keys;
  std::vector<std::uint64_t> per_shard_records_out;
};

class LoopbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto train_options = workload::has_corpus_options(250, 171);
    train_options.keep_session_results = false;
    pipeline_ = std::make_unique<QoePipeline>(QoePipeline::train(
        core::sessions_from_corpus(workload::generate_corpus(train_options))));

    auto live_options = workload::encrypted_corpus_options(60, 1844);
    live_options.subscribers = 24;  // spread load over shards and probes
    live_options.keep_session_results = false;
    live_ = std::make_unique<std::vector<trace::WeblogRecord>>(
        workload::generate_corpus(live_options).weblogs);
  }
  static void TearDownTestSuite() {
    pipeline_.reset();
    live_.reset();
  }

  static Outcome direct_outcome(const std::vector<trace::WeblogRecord>& records,
                                std::size_t shards) {
    engine::EngineConfig config;
    config.shards = shards;
    engine::MonitorEngine eng{*pipeline_, config};
    for (const auto& record : records) eng.ingest(record);
    Outcome out;
    out.keys = sorted_keys(eng.drain());
    for (const auto& s : eng.stats().shards) {
      out.per_shard_records_out.push_back(s.records_out);
    }
    return out;
  }

  /// Full loop: `probes` concurrent Probe connections, each streaming its
  /// subscriber partition, merged by one Collector into Engine::ingest.
  static Outcome loopback_outcome(
      const std::vector<trace::WeblogRecord>& records, std::size_t shards,
      std::size_t probes, CollectorStats* stats_out = nullptr,
      SpoolWriter* tee = nullptr) {
    engine::EngineConfig engine_config;
    engine_config.shards = shards;
    engine::MonitorEngine eng{*pipeline_, engine_config};

    CollectorConfig config;
    config.port = 0;
    config.expected_probes = probes;
    config.tee = tee;
    Collector collector{config};

    CollectorStats stats;
    std::thread server([&] {
      stats = collector.run(
          [&](const trace::WeblogRecord& record) { eng.ingest(record); });
    });

    std::vector<std::thread> senders;
    for (std::size_t i = 0; i < probes; ++i) {
      senders.emplace_back([&, i] {
        try {
          ProbeOptions options;
          options.port = collector.port();
          options.batch_records = 64;
          Probe probe{options};
          probe.send(partition_for_probe(records, i, probes));
          probe.finish();
        } catch (const std::exception& e) {
          ADD_FAILURE() << "probe " << i << " failed: " << e.what();
          collector.stop();
        }
      });
    }
    for (auto& t : senders) t.join();
    server.join();

    EXPECT_EQ(stats.probes_completed, probes);
    EXPECT_EQ(stats.records_emitted, records.size());
    EXPECT_EQ(stats.protocol_errors, 0u);
    if (stats_out) *stats_out = stats;

    Outcome out;
    out.keys = sorted_keys(eng.drain());
    for (const auto& s : eng.stats().shards) {
      out.per_shard_records_out.push_back(s.records_out);
    }
    return out;
  }

  static std::unique_ptr<QoePipeline> pipeline_;
  static std::unique_ptr<std::vector<trace::WeblogRecord>> live_;
};

std::unique_ptr<QoePipeline> LoopbackTest::pipeline_;
std::unique_ptr<std::vector<trace::WeblogRecord>> LoopbackTest::live_;

TEST_F(LoopbackTest, PartitionForProbeIsDisjointOrderPreservingAndComplete) {
  const auto& records = *live_;
  constexpr std::size_t kProbes = 4;
  std::size_t total = 0;
  for (std::size_t i = 0; i < kProbes; ++i) {
    const auto part = partition_for_probe(records, i, kProbes);
    total += part.size();
    double last = -1.0;
    for (const auto& r : part) {
      EXPECT_EQ(probe_of_subscriber(r.subscriber_id, kProbes), i);
      EXPECT_GE(r.timestamp_s, last);  // feed order survives partitioning
      last = r.timestamp_s;
    }
    EXPECT_FALSE(part.empty());  // 24 subscribers spread over 4 probes
  }
  EXPECT_EQ(total, records.size());
}

TEST_F(LoopbackTest, SingleProbeMatchesDirectIngestAcrossShardCounts) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const Outcome direct = direct_outcome(*live_, shards);
    const Outcome looped = loopback_outcome(*live_, shards, 1);
    EXPECT_EQ(direct.keys, looped.keys);
    EXPECT_EQ(direct.per_shard_records_out, looped.per_shard_records_out);
  }
}

TEST_F(LoopbackTest, FourConcurrentProbesMatchDirectIngestAcrossShardCounts) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const Outcome direct = direct_outcome(*live_, shards);
    const Outcome looped = loopback_outcome(*live_, shards, 4);
    EXPECT_EQ(direct.keys, looped.keys);
    EXPECT_EQ(direct.per_shard_records_out, looped.per_shard_records_out);
  }
}

TEST_F(LoopbackTest, MergedFeedIsGloballyTimeSorted) {
  // No engine: collect the merged feed itself and check the watermark
  // precondition the collector exists to restore.
  constexpr std::size_t kProbes = 3;
  CollectorConfig config;
  config.port = 0;
  config.expected_probes = kProbes;
  Collector collector{config};

  std::vector<double> merged;
  std::thread server([&] {
    (void)collector.run([&](const trace::WeblogRecord& record) {
      merged.push_back(record.timestamp_s);
    });
  });
  std::vector<std::thread> senders;
  for (std::size_t i = 0; i < kProbes; ++i) {
    senders.emplace_back([&, i] {
      ProbeOptions options;
      options.port = collector.port();
      options.batch_records = 32;
      Probe probe{options};
      probe.send(partition_for_probe(*live_, i, kProbes));
      probe.finish();
    });
  }
  for (auto& t : senders) t.join();
  server.join();

  ASSERT_EQ(merged.size(), live_->size());
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
  // Same multiset of timestamps as the original feed.
  std::vector<double> original;
  original.reserve(live_->size());
  for (const auto& r : *live_) original.push_back(r.timestamp_s);
  std::sort(original.begin(), original.end());
  std::vector<double> sorted_merged = merged;
  std::sort(sorted_merged.begin(), sorted_merged.end());
  EXPECT_EQ(original, sorted_merged);
}

TEST_F(LoopbackTest, SpoolTeeCapturesReplayableMergedFeed) {
  const auto dir = fs::temp_directory_path() /
                   ("vqoe_loopback_tee_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  Outcome looped;
  {
    SpoolWriter tee{dir};
    looped = loopback_outcome(*live_, 4, 2, nullptr, &tee);
    tee.close();
  }

  // The tee holds the merged feed: replaying it through direct ingest must
  // reproduce the loopback run exactly — the crash-recovery story.
  SpoolReader reader{dir};
  const auto replayed = reader.read_all();
  ASSERT_EQ(replayed.size(), live_->size());
  EXPECT_FALSE(reader.torn_tail());
  double last = replayed.front().timestamp_s;
  for (const auto& r : replayed) {
    EXPECT_GE(r.timestamp_s, last);
    last = r.timestamp_s;
  }

  const Outcome from_spool = direct_outcome(replayed, 4);
  EXPECT_EQ(from_spool.keys, looped.keys);
  EXPECT_EQ(from_spool.per_shard_records_out, looped.per_shard_records_out);
  fs::remove_all(dir);
}

TEST_F(LoopbackTest, RefusesPeerWithUnsupportedVersion) {
  CollectorConfig config;
  config.port = 0;
  config.expected_probes = 1;
  Collector collector{config};

  CollectorStats stats;
  std::thread server([&] { stats = collector.run([](const auto&) {}); });

  // Hand-rolled hello from a build that only speaks a future version.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(collector.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::uint8_t hello[kHelloBytes] = {};
  std::memcpy(hello, "VQOW", 4);
  hello[4] = 99;  // min
  hello[5] = 99;  // max
  ASSERT_EQ(::send(fd, hello, sizeof hello, 0),
            static_cast<ssize_t>(sizeof hello));

  std::uint8_t ack[kHelloAckBytes] = {};
  std::size_t got = 0;
  while (got < sizeof ack) {
    const ssize_t n = ::recv(fd, ack + got, sizeof ack - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  server.join();

  ASSERT_EQ(got, sizeof ack);
  EXPECT_EQ(std::memcmp(ack, "VQOA", 4), 0);
  EXPECT_EQ(ack[4], 0u);  // version 0 = refused
  EXPECT_EQ(stats.probes_completed, 0u);
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.records_emitted, 0u);
}

TEST_F(LoopbackTest, OutOfOrderStreamIsCutOffNotMerged) {
  CollectorConfig config;
  config.port = 0;
  config.expected_probes = 1;
  Collector collector{config};

  CollectorStats stats;
  std::vector<double> emitted;
  std::thread server([&] {
    stats = collector.run([&](const trace::WeblogRecord& record) {
      emitted.push_back(record.timestamp_s);
    });
  });

  // Two frames with the clock running backwards between them.
  std::vector<trace::WeblogRecord> bad(2);
  bad[0].subscriber_id = "sub-a";
  bad[0].timestamp_s = 10.0;
  bad[0].host = "r3---sn-h5q7dne7.googlevideo.com";
  bad[1] = bad[0];
  bad[1].timestamp_s = 5.0;

  try {
    ProbeOptions options;
    options.port = collector.port();
    options.batch_records = 1;
    Probe probe{options};
    probe.send(bad);
    probe.finish();
    // The collector may have consumed the valid prefix before cutting the
    // connection, so reaching here without a throw is itself a failure
    // only if the collector ALSO merged the regression.
  } catch (const std::exception&) {
    // Expected: the collector drops the connection; the probe sees EOF
    // while waiting for acks.
  }
  server.join();

  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.probes_completed, 0u);
  // The out-of-order record never reached the sink.
  for (const double t : emitted) EXPECT_EQ(t, 10.0);
}

}  // namespace
}  // namespace vqoe::wire

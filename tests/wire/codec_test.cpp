// Wire codec invariants.
//
// The contract the spool and the transport both lean on: decode(encode(r))
// is bit-identical for every record the workload generator can produce
// (doubles travel as raw IEEE-754 bits, unlike CSV), the encrypted view
// pays zero bytes for the metadata TLS hides, and *every* malformed input
// — truncations at any byte, unknown flag bits, out-of-range enums,
// oversized lengths, trailing garbage — raises WireError instead of
// misparsing.
#include "vqoe/wire/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "vqoe/trace/weblog.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::wire {
namespace {

/// Field-by-field equality with exact double comparison: the codec
/// promises bit-identical round trips, so == is the right bar.
void expect_identical(const trace::WeblogRecord& a,
                      const trace::WeblogRecord& b) {
  EXPECT_EQ(a.subscriber_id, b.subscriber_id);
  EXPECT_EQ(a.timestamp_s, b.timestamp_s);
  EXPECT_EQ(a.transaction_time_s, b.transaction_time_s);
  EXPECT_EQ(a.object_size_bytes, b.object_size_bytes);
  EXPECT_EQ(a.host, b.host);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.encrypted, b.encrypted);
  EXPECT_EQ(a.served_from_cache, b.served_from_cache);
  EXPECT_EQ(a.transport.rtt_min_ms, b.transport.rtt_min_ms);
  EXPECT_EQ(a.transport.rtt_avg_ms, b.transport.rtt_avg_ms);
  EXPECT_EQ(a.transport.rtt_max_ms, b.transport.rtt_max_ms);
  EXPECT_EQ(a.transport.bdp_bytes, b.transport.bdp_bytes);
  EXPECT_EQ(a.transport.bif_avg_bytes, b.transport.bif_avg_bytes);
  EXPECT_EQ(a.transport.bif_max_bytes, b.transport.bif_max_bytes);
  EXPECT_EQ(a.transport.loss_pct, b.transport.loss_pct);
  EXPECT_EQ(a.transport.retrans_pct, b.transport.retrans_pct);
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.itag_height, b.itag_height);
  EXPECT_EQ(a.is_audio, b.is_audio);
  EXPECT_EQ(a.report_stall_count, b.report_stall_count);
  EXPECT_EQ(a.report_stall_duration_s, b.report_stall_duration_s);
}

std::vector<trace::WeblogRecord> cleartext_records() {
  auto options = workload::cleartext_corpus_options(12, 424);
  options.subscribers = 6;
  options.keep_session_results = false;
  return workload::generate_corpus(options).weblogs;
}

TEST(WireCodecTest, VarintRoundTrip) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : values) {
    std::vector<std::uint8_t> buf;
    put_varint(value, buf);
    std::size_t offset = 0;
    EXPECT_EQ(get_varint(buf.data(), buf.size(), offset), value);
    EXPECT_EQ(offset, buf.size());  // consumed exactly, no trailing read
  }
}

TEST(WireCodecTest, VarintTruncationThrows) {
  std::vector<std::uint8_t> buf;
  put_varint(std::numeric_limits<std::uint64_t>::max(), buf);
  // Every strict prefix ends on a continuation bit.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::size_t offset = 0;
    EXPECT_THROW((void)get_varint(buf.data(), cut, offset), WireError)
        << "prefix of " << cut << " bytes";
  }
}

TEST(WireCodecTest, VarintOverflowThrows) {
  // Ten continuation bytes then more: wider than 64 bits.
  std::vector<std::uint8_t> buf(10, 0x80u);
  buf.push_back(0x02u);
  std::size_t offset = 0;
  EXPECT_THROW((void)get_varint(buf.data(), buf.size(), offset), WireError);
  // 2^64 exactly (tenth byte contributes bit 64).
  std::vector<std::uint8_t> overflow(9, 0x80u);
  overflow.push_back(0x02u);
  offset = 0;
  EXPECT_THROW((void)get_varint(overflow.data(), overflow.size(), offset),
               WireError);
}

TEST(WireCodecTest, CleartextRecordsRoundTripBitIdentical) {
  const auto records = cleartext_records();
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    std::vector<std::uint8_t> buf;
    encode_record(record, kWireVersionMax, buf);
    std::size_t offset = 0;
    const auto decoded =
        decode_record(buf.data(), buf.size(), offset, kWireVersionMax);
    EXPECT_EQ(offset, buf.size());
    expect_identical(record, decoded);
  }
}

TEST(WireCodecTest, EncryptedViewOmitsMetadataBytes) {
  auto records = cleartext_records();
  // Find a record that actually carries URI metadata.
  const trace::WeblogRecord* cleartext = nullptr;
  for (const auto& r : records) {
    if (!r.session_id.empty()) {
      cleartext = &r;
      break;
    }
  }
  ASSERT_NE(cleartext, nullptr);

  std::vector<std::uint8_t> clear_buf;
  encode_record(*cleartext, kWireVersionMax, clear_buf);

  const auto encrypted = trace::encrypt_view({*cleartext});
  std::vector<std::uint8_t> enc_buf;
  encode_record(encrypted[0], kWireVersionMax, enc_buf);

  // The TLS view drops the whole metadata trailer, not just its values.
  EXPECT_LT(enc_buf.size(), clear_buf.size());

  std::size_t offset = 0;
  const auto decoded =
      decode_record(enc_buf.data(), enc_buf.size(), offset, kWireVersionMax);
  expect_identical(encrypted[0], decoded);
  EXPECT_TRUE(decoded.encrypted);
  EXPECT_TRUE(decoded.session_id.empty());
  EXPECT_EQ(decoded.itag_height, 0);
}

TEST(WireCodecTest, BatchRoundTrip) {
  const auto records = cleartext_records();
  std::vector<std::uint8_t> buf;
  encode_batch(records, kWireVersionMax, buf);
  const auto decoded = decode_batch(buf.data(), buf.size(), kWireVersionMax);
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_identical(records[i], decoded[i]);
  }
}

TEST(WireCodecTest, EmptyBatchRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_batch(nullptr, 0, kWireVersionMax, buf);
  EXPECT_TRUE(decode_batch(buf.data(), buf.size(), kWireVersionMax).empty());
}

TEST(WireCodecTest, TrailingBytesAfterBatchThrow) {
  const auto records = cleartext_records();
  std::vector<std::uint8_t> buf;
  encode_batch(records.data(), 2, kWireVersionMax, buf);
  buf.push_back(0x00u);
  EXPECT_THROW((void)decode_batch(buf.data(), buf.size(), kWireVersionMax),
               WireError);
}

TEST(WireCodecTest, EveryTruncationOfARecordThrows) {
  const auto records = cleartext_records();
  // Cover both shapes: a metadata-carrying record and an encrypted one.
  const auto encrypted = trace::encrypt_view({records[0]});
  for (const auto& record : {records[0], encrypted[0]}) {
    std::vector<std::uint8_t> buf;
    encode_record(record, kWireVersionMax, buf);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
      std::size_t offset = 0;
      EXPECT_THROW(
          (void)decode_record(buf.data(), cut, offset, kWireVersionMax),
          WireError)
          << "prefix of " << cut << " of " << buf.size() << " bytes";
    }
    // And the full buffer still parses.
    std::size_t offset = 0;
    EXPECT_NO_THROW(
        (void)decode_record(buf.data(), buf.size(), offset, kWireVersionMax));
  }
}

TEST(WireCodecTest, UnknownFlagBitsThrow) {
  const auto records = cleartext_records();
  std::vector<std::uint8_t> buf;
  encode_record(records[0], kWireVersionMax, buf);
  buf[0] |= 0x80u;  // a flag bit version 1 does not define
  std::size_t offset = 0;
  try {
    (void)decode_record(buf.data(), buf.size(), offset, kWireVersionMax);
    FAIL() << "unknown flag bit accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.offset(), 0u);
  }
}

TEST(WireCodecTest, OutOfRangeKindThrows) {
  const auto records = cleartext_records();
  std::vector<std::uint8_t> buf;
  encode_record(records[0], kWireVersionMax, buf);
  buf[1] = 0x07u;  // beyond RecordKind::playback_report
  std::size_t offset = 0;
  try {
    (void)decode_record(buf.data(), buf.size(), offset, kWireVersionMax);
    FAIL() << "out-of-range kind accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.offset(), 1u);
  }
}

TEST(WireCodecTest, OversizedStringLengthThrows) {
  // flags, kind, then a subscriber length far beyond kMaxStringBytes.
  std::vector<std::uint8_t> buf = {0x00u, 0x00u};
  put_varint(static_cast<std::uint64_t>(kMaxStringBytes) + 1, buf);
  std::size_t offset = 0;
  EXPECT_THROW(
      (void)decode_record(buf.data(), buf.size(), offset, kWireVersionMax),
      WireError);
}

TEST(WireCodecTest, OversizedBatchCountThrows) {
  std::vector<std::uint8_t> buf;
  put_varint(static_cast<std::uint64_t>(kMaxBatchRecords) + 1, buf);
  EXPECT_THROW((void)decode_batch(buf.data(), buf.size(), kWireVersionMax),
               WireError);
}

TEST(WireCodecTest, UnsupportedVersionIsRejectedBothWays) {
  static_assert(!version_supported(0));
  static_assert(version_supported(kWireVersionMin));
  static_assert(version_supported(kWireVersionMax));
  static_assert(!version_supported(kWireVersionMax + 1));

  const auto records = cleartext_records();
  std::vector<std::uint8_t> buf;
  EXPECT_THROW(encode_record(records[0], kWireVersionMax + 1, buf), WireError);
  EXPECT_THROW(encode_batch(records, 0, buf), WireError);

  encode_record(records[0], kWireVersionMax, buf);
  std::size_t offset = 0;
  EXPECT_THROW((void)decode_record(buf.data(), buf.size(), offset,
                                   kWireVersionMax + 1),
               WireError);
}

TEST(WireCodecTest, NegativeMetadataFieldsAreNotEncodable) {
  auto record = cleartext_records()[0];
  record.itag_height = -1;
  std::vector<std::uint8_t> buf;
  EXPECT_THROW(encode_record(record, kWireVersionMax, buf), WireError);
}

TEST(WireCodecTest, WireErrorCarriesOffset) {
  const WireError e{"boom", 42};
  EXPECT_EQ(e.offset(), 42u);
  EXPECT_NE(std::string{e.what()}.find("42"), std::string::npos);
}

}  // namespace
}  // namespace vqoe::wire

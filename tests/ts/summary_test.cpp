#include "vqoe/ts/summary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace vqoe::ts {
namespace {

TEST(StatisticName, CanonicalNames) {
  EXPECT_EQ((Statistic{Statistic::Kind::minimum, 0}).name(), "min");
  EXPECT_EQ((Statistic{Statistic::Kind::maximum, 0}).name(), "max");
  EXPECT_EQ((Statistic{Statistic::Kind::mean, 0}).name(), "mean");
  EXPECT_EQ((Statistic{Statistic::Kind::std_dev, 0}).name(), "std");
  EXPECT_EQ((Statistic{Statistic::Kind::percentile, 25}).name(), "p25");
  EXPECT_EQ((Statistic{Statistic::Kind::percentile, 5}).name(), "p5");
}

TEST(StatisticSets, PaperCardinalities) {
  // Section 4.1: 7 statistics; Section 4.2: 15 statistics.
  EXPECT_EQ(stall_statistic_set().size(), 7u);
  EXPECT_EQ(representation_statistic_set().size(), 15u);
}

TEST(StatisticSets, NamesAreUnique) {
  for (const auto* set : {&stall_statistic_set(), &representation_statistic_set()}) {
    std::vector<std::string> names;
    for (const Statistic& s : *set) names.push_back(s.name());
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  }
}

TEST(Mean, HandValues) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(StdDev, PopulationConvention) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(std_dev(v), 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(std_dev({}), 0.0);
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(std_dev(one), 0.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 17.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 99), 7.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150), 3.0);
}

TEST(Compute, MatchesDirectFunctions) {
  const std::vector<double> v{3, 1, 4, 1, 5, 9, 2, 6};
  EXPECT_DOUBLE_EQ(compute({Statistic::Kind::minimum, 0}, v), 1.0);
  EXPECT_DOUBLE_EQ(compute({Statistic::Kind::maximum, 0}, v), 9.0);
  EXPECT_DOUBLE_EQ(compute({Statistic::Kind::mean, 0}, v), mean(v));
  EXPECT_DOUBLE_EQ(compute({Statistic::Kind::std_dev, 0}, v), std_dev(v));
  EXPECT_DOUBLE_EQ(compute({Statistic::Kind::percentile, 75}, v),
                   percentile(v, 75));
}

TEST(ComputeAll, ConsistentWithCompute) {
  std::mt19937_64 rng{7};
  std::uniform_real_distribution<double> value(-100, 100);
  std::vector<double> v(57);
  for (double& x : v) x = value(rng);

  const auto& stats = representation_statistic_set();
  const auto all = compute_all(stats, v);
  ASSERT_EQ(all.size(), stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_NEAR(all[i], compute(stats[i], v), 1e-9) << stats[i].name();
  }
}

TEST(ComputeAll, EmptySampleAllZeros) {
  const auto all = compute_all(stall_statistic_set(), {});
  for (double v : all) EXPECT_DOUBLE_EQ(v, 0.0);
}

// Property: percentiles are monotone non-decreasing in p.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, NonDecreasingInP) {
  std::mt19937_64 rng{static_cast<std::uint64_t>(GetParam())};
  std::lognormal_distribution<double> value(2.0, 1.5);
  std::vector<double> v(1 + static_cast<std::size_t>(GetParam()) * 13 % 200);
  for (double& x : v) x = value(rng);

  double prev = percentile(v, 0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
  EXPECT_GE(percentile(v, 0), *std::min_element(v.begin(), v.end()) - 1e-12);
  EXPECT_LE(percentile(v, 100), *std::max_element(v.begin(), v.end()) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Range(1, 12));

// Property: every summary statistic lies within [min, max] except std.
class StatsBounded : public ::testing::TestWithParam<int> {};

TEST_P(StatsBounded, WithinRange) {
  std::mt19937_64 rng{static_cast<std::uint64_t>(GetParam()) * 31 + 5};
  std::normal_distribution<double> value(50.0, 20.0);
  std::vector<double> v(64);
  for (double& x : v) x = value(rng);
  const double lo = *std::min_element(v.begin(), v.end());
  const double hi = *std::max_element(v.begin(), v.end());

  for (const Statistic& s : representation_statistic_set()) {
    if (s.kind == Statistic::Kind::std_dev) continue;
    const double val = compute(s, v);
    EXPECT_GE(val, lo - 1e-9) << s.name();
    EXPECT_LE(val, hi + 1e-9) << s.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsBounded, ::testing::Range(1, 9));

}  // namespace
}  // namespace vqoe::ts

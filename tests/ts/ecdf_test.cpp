#include "vqoe/ts/ecdf.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace vqoe::ts {
namespace {

TEST(Ecdf, EmptyEvaluatesToZero) {
  const Ecdf e{{}};
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e(1e9), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 0.0);
  EXPECT_TRUE(e.grid(10).empty());
}

TEST(Ecdf, HandValues) {
  const std::vector<double> v{1, 2, 2, 3};
  const Ecdf e{v};
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e(2.5), 0.75);
  EXPECT_DOUBLE_EQ(e(3.0), 1.0);
  EXPECT_DOUBLE_EQ(e(99.0), 1.0);
}

TEST(Ecdf, QuantileHandValues) {
  const std::vector<double> v{10, 20, 30, 40};
  const Ecdf e{v};
  EXPECT_DOUBLE_EQ(e.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
}

TEST(Ecdf, MinMaxAndSize) {
  const std::vector<double> v{5, -1, 3};
  const Ecdf e{v};
  EXPECT_EQ(e.size(), 3u);
  EXPECT_DOUBLE_EQ(e.min(), -1.0);
  EXPECT_DOUBLE_EQ(e.max(), 5.0);
}

TEST(Ecdf, GridCoversRangeAndIsMonotone) {
  std::mt19937_64 rng{3};
  std::exponential_distribution<double> value(0.1);
  std::vector<double> v(300);
  for (double& x : v) x = value(rng);
  const Ecdf e{v};

  const auto g = e.grid(50);
  ASSERT_EQ(g.size(), 50u);
  EXPECT_DOUBLE_EQ(g.front().first, e.min());
  EXPECT_DOUBLE_EQ(g.back().first, e.max());
  EXPECT_DOUBLE_EQ(g.back().second, 1.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_GE(g[i].first, g[i - 1].first);
    EXPECT_GE(g[i].second, g[i - 1].second);
  }
}

TEST(Ecdf, GridDegenerateSample) {
  const std::vector<double> v{7, 7, 7};
  const Ecdf e{v};
  const auto g = e.grid(5);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.front().first, 7.0);
  EXPECT_DOUBLE_EQ(g.front().second, 1.0);
}

// Property: F(quantile(q)) >= q for all q.
class EcdfInverse : public ::testing::TestWithParam<int> {};

TEST_P(EcdfInverse, QuantileIsGeneralizedInverse) {
  std::mt19937_64 rng{static_cast<std::uint64_t>(GetParam())};
  std::normal_distribution<double> value(0.0, 5.0);
  std::vector<double> v(1 + GetParam() * 17 % 97);
  for (double& x : v) x = value(rng);
  const Ecdf e{v};
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    EXPECT_GE(e(e.quantile(q)), q - 1e-12) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfInverse, ::testing::Range(1, 10));

}  // namespace
}  // namespace vqoe::ts

#include "vqoe/ts/cusum.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "vqoe/ts/summary.h"

namespace vqoe::ts {
namespace {

TEST(CusumChart, EndsNearZeroWithSampleMean) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const auto chart = cusum_chart(v);
  ASSERT_EQ(chart.size(), v.size());
  EXPECT_NEAR(chart.back(), 0.0, 1e-9);
}

TEST(CusumChart, ExplicitReferenceMean) {
  const std::vector<double> v{1, 1, 1};
  const auto chart = cusum_chart(v, 0.0);
  EXPECT_DOUBLE_EQ(chart[0], 1.0);
  EXPECT_DOUBLE_EQ(chart[1], 2.0);
  EXPECT_DOUBLE_EQ(chart[2], 3.0);
}

TEST(CusumChart, EmptyInput) { EXPECT_TRUE(cusum_chart({}).empty()); }

TEST(CusumStd, ZeroForShortSeries) {
  EXPECT_DOUBLE_EQ(cusum_std({}), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(cusum_std(one), 0.0);
}

TEST(CusumStd, ConstantSeriesIsZero) {
  const std::vector<double> v(50, 3.14);
  EXPECT_NEAR(cusum_std(v), 0.0, 1e-9);
}

TEST(CusumStd, MeanShiftScoresHigherThanNoise) {
  std::mt19937_64 rng{11};
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> flat(100), shifted(100);
  for (std::size_t i = 0; i < 100; ++i) {
    flat[i] = noise(rng);
    shifted[i] = noise(rng) + (i >= 50 ? 8.0 : 0.0);
  }
  EXPECT_GT(cusum_std(shifted), 5.0 * cusum_std(flat));
}

// Property: the detector statistic grows with the shift magnitude.
class CusumShift : public ::testing::TestWithParam<double> {};

TEST_P(CusumShift, MonotoneInShiftMagnitude) {
  std::mt19937_64 rng{5};
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> base(80);
  for (double& x : base) x = noise(rng);

  auto with_shift = [&](double amp) {
    std::vector<double> v = base;
    for (std::size_t i = 40; i < v.size(); ++i) v[i] += amp;
    return cusum_std(v);
  };
  const double amp = GetParam();
  EXPECT_GT(with_shift(amp), with_shift(amp / 4.0));
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, CusumShift,
                         ::testing::Values(2.0, 4.0, 8.0, 16.0, 32.0));

// The O(1) incremental form (vqoe::window's per-window CUSUM) agrees with
// the batch statistic to floating-point rounding at every prefix length.
TEST(CusumStdIncremental, TracksBatchAtEveryPrefix) {
  std::mt19937_64 rng{29};
  std::normal_distribution<double> noise(0.0, 50.0);
  std::vector<double> series;
  CusumStd inc;
  for (int i = 0; i < 300; ++i) {
    const double x = noise(rng) + (i >= 150 ? 200.0 : 0.0);
    series.push_back(x);
    inc.add(x);
    const double batch = cusum_std(series);
    EXPECT_NEAR(inc.value(), batch, 1e-9 * std::max(1.0, batch)) << i;
  }
}

TEST(CusumStdIncremental, ShortAndConstantSeries) {
  CusumStd inc;
  EXPECT_DOUBLE_EQ(inc.value(), 0.0);
  inc.add(5.0);
  EXPECT_DOUBLE_EQ(inc.value(), 0.0);  // < 2 samples, like cusum_std
  inc.reset();
  EXPECT_EQ(inc.count(), 0u);
  for (int i = 0; i < 40; ++i) inc.add(3.14);  // constant series
  EXPECT_NEAR(inc.value(), 0.0, 1e-9);
}

TEST(PageCusum, RejectsBadParameters) {
  EXPECT_THROW(PageCusum(0.0, -1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(PageCusum(0.0, 0.5, 0.0), std::invalid_argument);
}

TEST(PageCusum, NoAlarmOnInControlSeries) {
  std::mt19937_64 rng{17};
  std::normal_distribution<double> noise(10.0, 1.0);
  PageCusum detector{10.0, 1.0, 8.0};
  std::vector<double> v(500);
  for (double& x : v) x = noise(rng);
  EXPECT_TRUE(detector.detect(v).empty());
}

TEST(PageCusum, AlarmsShortlyAfterUpwardShift) {
  std::mt19937_64 rng{23};
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> v(200);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = noise(rng) + (i >= 100 ? 5.0 : 0.0);
  }
  PageCusum detector{0.0, 1.0, 10.0};
  const auto alarms = detector.detect(v);
  ASSERT_FALSE(alarms.empty());
  EXPECT_GE(alarms.front(), 100u);
  EXPECT_LE(alarms.front(), 110u);
}

TEST(PageCusum, DetectsDownwardShiftToo) {
  std::vector<double> v(60, 10.0);
  for (std::size_t i = 30; i < v.size(); ++i) v[i] = 2.0;
  PageCusum detector{10.0, 1.0, 12.0};
  const auto alarms = detector.detect(v);
  ASSERT_FALSE(alarms.empty());
  EXPECT_GE(alarms.front(), 30u);
}

TEST(PageCusum, ResetsAfterAlarm) {
  PageCusum detector{0.0, 0.0, 5.0};
  EXPECT_FALSE(detector.step(3.0));
  EXPECT_TRUE(detector.step(3.0));  // 6 > 5 -> alarm + reset
  EXPECT_DOUBLE_EQ(detector.positive_statistic(), 0.0);
  EXPECT_DOUBLE_EQ(detector.negative_statistic(), 0.0);
}

TEST(Deltas, HandValues) {
  const std::vector<double> v{1, 4, 2, 2};
  const auto d = deltas(v);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -2.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(Deltas, ShortInputs) {
  EXPECT_TRUE(deltas({}).empty());
  const std::vector<double> one{1.0};
  EXPECT_TRUE(deltas(one).empty());
}

TEST(Product, ElementWise) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5, -6};
  const auto p = product(a, b);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 4.0);
  EXPECT_DOUBLE_EQ(p[1], 10.0);
  EXPECT_DOUBLE_EQ(p[2], -18.0);
}

}  // namespace
}  // namespace vqoe::ts

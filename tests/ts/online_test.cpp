#include "vqoe/ts/online.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "vqoe/ts/summary.h"

namespace vqoe::ts {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, MatchesBatchComputation) {
  std::mt19937_64 rng{13};
  std::lognormal_distribution<double> value(1.0, 0.8);
  std::vector<double> v(1000);
  OnlineStats s;
  for (double& x : v) {
    x = value(rng);
    s.add(x);
  }
  EXPECT_EQ(s.count(), v.size());
  EXPECT_NEAR(s.mean(), mean(v), 1e-9);
  EXPECT_NEAR(s.std_dev(), std_dev(v), 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(s.max(), *std::max_element(v.begin(), v.end()));
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  const OnlineStats before = a;
  a.merge(OnlineStats{});
  EXPECT_EQ(a.count(), before.count());
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());

  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

// Property: merging two halves equals processing the whole stream.
class OnlineMerge : public ::testing::TestWithParam<int> {};

TEST_P(OnlineMerge, SplitMergeEqualsWhole) {
  std::mt19937_64 rng{static_cast<std::uint64_t>(GetParam()) * 7 + 1};
  std::normal_distribution<double> value(-3.0, 11.0);
  const std::size_t n = 200 + static_cast<std::size_t>(GetParam()) * 37;
  const std::size_t split = n / 3 + static_cast<std::size_t>(GetParam());

  OnlineStats whole, left, right;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = value(rng);
    whole.add(x);
    (i < split ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Splits, OnlineMerge, ::testing::Range(1, 10));

}  // namespace
}  // namespace vqoe::ts

#include "vqoe/flow/export.h"

#include <gtest/gtest.h>

namespace vqoe::flow {
namespace {

trace::WeblogRecord media(const std::string& sub, double t, double duration,
                          std::uint64_t bytes,
                          const std::string& host = "r1---sn-x.googlevideo.com") {
  trace::WeblogRecord r;
  r.subscriber_id = sub;
  r.host = host;
  r.timestamp_s = t;
  r.transaction_time_s = duration;
  r.object_size_bytes = bytes;
  r.kind = trace::RecordKind::media;
  return r;
}

TEST(FlowExport, ConservesDownstreamBytes) {
  std::vector<trace::WeblogRecord> records{
      media("a", 0.0, 2.5, 500'000), media("a", 5.0, 1.5, 300'000),
      media("a", 10.0, 0.7, 100'000)};
  const auto slices = export_flows(records, {.slice_s = 1.0});
  std::uint64_t total = 0;
  for (const auto& s : slices) total += s.bytes_down;
  // Uniform spreading rounds each window; allow 1 byte per window of slack.
  EXPECT_NEAR(static_cast<double>(total), 900'000.0, 16.0);
}

TEST(FlowExport, SlicesAlignedToGrid) {
  std::vector<trace::WeblogRecord> records{media("a", 3.7, 2.0, 100'000)};
  const auto slices = export_flows(records, {.slice_s = 1.0});
  for (const auto& s : slices) {
    EXPECT_DOUBLE_EQ(s.start_s, std::floor(s.start_s));
    EXPECT_DOUBLE_EQ(s.end_s - s.start_s, 1.0);
    EXPECT_GE(s.end_s, 3.7);
    EXPECT_LE(s.start_s, 5.7);
  }
}

TEST(FlowExport, PersistentConnectionSharesFlow) {
  std::vector<trace::WeblogRecord> records{media("a", 0.0, 1.0, 100'000),
                                           media("a", 5.0, 1.0, 100'000)};
  const auto slices = export_flows(records, {.slice_s = 1.0});
  ASSERT_FALSE(slices.empty());
  for (const auto& s : slices) {
    EXPECT_EQ(s.key.connection_id, slices.front().key.connection_id);
  }
}

TEST(FlowExport, IdleTimeoutOpensNewConnection) {
  std::vector<trace::WeblogRecord> records{media("a", 0.0, 1.0, 100'000),
                                           media("a", 100.0, 1.0, 100'000)};
  FlowExportOptions options;
  options.idle_timeout_s = 15.0;
  const auto slices = export_flows(records, options);
  std::set<std::uint32_t> connections;
  for (const auto& s : slices) connections.insert(s.key.connection_id);
  EXPECT_EQ(connections.size(), 2u);
}

TEST(FlowExport, SubscribersAndHostsSeparateFlows) {
  std::vector<trace::WeblogRecord> records{
      media("a", 0.0, 1.0, 100'000), media("b", 0.0, 1.0, 100'000),
      media("a", 0.0, 1.0, 100'000, "i.ytimg.com")};
  const auto slices = export_flows(records, {});
  std::set<std::pair<std::string, std::string>> flows;
  for (const auto& s : slices) flows.insert({s.key.subscriber_id, s.key.server_host});
  EXPECT_EQ(flows.size(), 3u);
}

TEST(FlowExport, UpstreamRequestBytesPresent) {
  std::vector<trace::WeblogRecord> records{media("a", 0.0, 1.0, 1'000'000)};
  const auto slices = export_flows(records, {});
  std::uint64_t up = 0;
  for (const auto& s : slices) up += s.bytes_up;
  EXPECT_GT(up, 400u);           // at least the request
  EXPECT_LT(up, 1'000'000u / 10);  // far less than the payload
}

TEST(FlowExport, PacketCountsTrackBytes) {
  std::vector<trace::WeblogRecord> records{media("a", 0.0, 1.0, 144'800)};
  const auto slices = export_flows(records, {.slice_s = 10.0});
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_NEAR(slices.front().packets_down, 100, 2);
}

TEST(FlowExport, EmptyInput) { EXPECT_TRUE(export_flows({}, {}).empty()); }

}  // namespace
}  // namespace vqoe::flow

#include "vqoe/flow/reassembly.h"

#include <gtest/gtest.h>

#include "vqoe/core/pipeline.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::flow {
namespace {

FlowSlice slice(double start, std::uint64_t bytes,
                std::uint32_t connection = 1) {
  FlowSlice s;
  s.key = {"sub", "r1---sn-x.googlevideo.com", connection};
  s.start_s = start;
  s.end_s = start + 1.0;
  s.bytes_down = bytes;
  return s;
}

TEST(SegmentBursts, QuietGapSplits) {
  std::vector<FlowSlice> slices{slice(0, 100'000), slice(1, 100'000),
                                slice(10, 200'000)};
  const auto bursts = segment_bursts(slices, {.quiet_gap_s = 2.0,
                                              .min_burst_bytes = 1});
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].bytes, 200'000u);
  EXPECT_DOUBLE_EQ(bursts[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(bursts[0].end_s, 2.0);
  EXPECT_EQ(bursts[1].bytes, 200'000u);
}

TEST(SegmentBursts, ContiguousSlicesMerge) {
  std::vector<FlowSlice> slices{slice(0, 50'000), slice(1, 50'000),
                                slice(2, 50'000)};
  const auto bursts = segment_bursts(slices, {.quiet_gap_s = 2.0,
                                              .min_burst_bytes = 1});
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].bytes, 150'000u);
}

TEST(SegmentBursts, MinBytesFiltersChatter) {
  std::vector<FlowSlice> slices{slice(0, 500), slice(10, 500'000)};
  const auto bursts = segment_bursts(slices, {.quiet_gap_s = 2.0,
                                              .min_burst_bytes = 4'000});
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].bytes, 500'000u);
}

TEST(SegmentBursts, FlowsNeverMerge) {
  std::vector<FlowSlice> slices{slice(0, 100'000, 1), slice(1, 100'000, 2)};
  const auto bursts = segment_bursts(slices, {.quiet_gap_s = 5.0,
                                              .min_burst_bytes = 1});
  EXPECT_EQ(bursts.size(), 2u);
}

TEST(SegmentBursts, UnsortedInputHandled) {
  std::vector<FlowSlice> slices{slice(10, 100'000), slice(0, 100'000),
                                slice(1, 100'000)};
  const auto bursts = segment_bursts(slices, {.quiet_gap_s = 2.0,
                                              .min_burst_bytes = 1});
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_DOUBLE_EQ(bursts[0].start_s, 0.0);
}

TEST(BurstsToWeblogs, MediaRecordsSorted) {
  std::vector<FlowSlice> slices{slice(10, 300'000), slice(0, 100'000)};
  const auto bursts = segment_bursts(slices, {.quiet_gap_s = 2.0,
                                              .min_burst_bytes = 1});
  const auto records = bursts_to_weblogs(bursts);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[0].timestamp_s, records[1].timestamp_s);
  for (const auto& r : records) {
    EXPECT_EQ(r.kind, trace::RecordKind::media);
    EXPECT_TRUE(r.encrypted);
    EXPECT_EQ(r.subscriber_id, "sub");
    EXPECT_GT(r.transaction_time_s, 0.0);
  }
}

TEST(FlowPipeline, EndToEndRecoversSessions) {
  // Weblogs -> flow slices -> bursts -> pseudo records -> session
  // reconstruction: session count should be close to the ground truth.
  auto options = workload::encrypted_corpus_options(30, 31);
  options.keep_session_results = false;
  auto corpus = workload::generate_corpus(options);
  corpus.weblogs = trace::encrypt_view(std::move(corpus.weblogs));

  const auto slices = export_flows(corpus.weblogs, {.slice_s = 0.5});
  const auto bursts = segment_bursts(slices, {});
  const auto records = bursts_to_weblogs(bursts);
  const auto sessions =
      core::sessions_from_encrypted(records, corpus.truths);
  EXPECT_GT(sessions.size(), 24u);
  for (const auto& s : sessions) {
    EXPECT_GE(s.chunks.size(), 1u);
  }
}

TEST(FlowPipeline, ByteConservationThroughBursts) {
  auto options = workload::encrypted_corpus_options(10, 32);
  options.keep_session_results = false;
  auto corpus = workload::generate_corpus(options);

  std::uint64_t media_bytes = 0;
  for (const auto& r : corpus.weblogs) {
    if (r.kind == trace::RecordKind::media) media_bytes += r.object_size_bytes;
  }
  const auto slices = export_flows(corpus.weblogs, {.slice_s = 0.5});
  BurstOptions no_filter;
  no_filter.min_burst_bytes = 1;
  const auto bursts = segment_bursts(slices, no_filter);
  std::uint64_t burst_bytes = 0;
  for (const auto& b : bursts) burst_bytes += b.bytes;
  // Bursts also contain page objects and reports; media dominates. Allow 5%.
  EXPECT_GT(static_cast<double>(burst_bytes),
            0.95 * static_cast<double>(media_bytes));
}

}  // namespace
}  // namespace vqoe::flow

#include "vqoe/core/labels.h"

#include <gtest/gtest.h>

namespace vqoe::core {
namespace {

TEST(StallLabel, RuleBoundaries) {
  EXPECT_EQ(stall_label_from_rr(0.0), StallLabel::no_stalls);
  EXPECT_EQ(stall_label_from_rr(-0.1), StallLabel::no_stalls);
  EXPECT_EQ(stall_label_from_rr(0.0001), StallLabel::mild_stalls);
  EXPECT_EQ(stall_label_from_rr(0.1), StallLabel::mild_stalls);  // boundary inclusive
  EXPECT_EQ(stall_label_from_rr(0.1000001), StallLabel::severe_stalls);
  EXPECT_EQ(stall_label_from_rr(1.0), StallLabel::severe_stalls);
}

TEST(ReprLabel, RuleBoundaries) {
  EXPECT_EQ(repr_label_from_height(144.0), ReprLabel::ld);
  EXPECT_EQ(repr_label_from_height(359.9), ReprLabel::ld);
  EXPECT_EQ(repr_label_from_height(360.0), ReprLabel::sd);  // SD includes 360
  EXPECT_EQ(repr_label_from_height(480.0), ReprLabel::sd);  // and 480
  EXPECT_EQ(repr_label_from_height(480.1), ReprLabel::hd);
  EXPECT_EQ(repr_label_from_height(1080.0), ReprLabel::hd);
}

TEST(VariationLabel, RuleBoundaries) {
  const VariationRule rule{.amplitude_weight = 2.0,
                           .mild_threshold = 1.5,
                           .high_threshold = 6.0};
  EXPECT_EQ(variation_label(0, 0.0, rule), VariationLabel::none);
  // One switch with tiny amplitude: Var ~ 1 + small -> none.
  EXPECT_EQ(variation_label(1, 0.05, rule), VariationLabel::none);
  // Two switches: Var > 1.5 -> mild.
  EXPECT_EQ(variation_label(2, 0.1, rule), VariationLabel::mild);
  // Frequent large-amplitude switching -> high.
  EXPECT_EQ(variation_label(5, 1.0, rule), VariationLabel::high);
}

TEST(VariationLabel, AmplitudeAloneCanEscalate) {
  const VariationRule rule;
  // One giant switch (e.g. 144p -> 1080p, amplitude 5 rungs over few pairs).
  EXPECT_NE(variation_label(1, 3.0, rule), VariationLabel::none);
}

TEST(ClassNames, MatchPaperTables) {
  ASSERT_EQ(stall_class_names().size(), 3u);
  EXPECT_EQ(stall_class_names()[0], "no stalls");
  EXPECT_EQ(stall_class_names()[1], "mild stalls");
  EXPECT_EQ(stall_class_names()[2], "severe stalls");
  ASSERT_EQ(repr_class_names().size(), 3u);
  EXPECT_EQ(repr_class_names()[0], "LD");
  EXPECT_EQ(repr_class_names()[1], "SD");
  EXPECT_EQ(repr_class_names()[2], "HD");
  ASSERT_EQ(variation_class_names().size(), 3u);
}

TEST(Labels, FromGroundTruth) {
  trace::SessionGroundTruth truth;
  truth.rebuffering_ratio = 0.05;
  truth.average_height = 700.0;
  truth.switch_count = 3;
  truth.switch_amplitude = 0.5;
  EXPECT_EQ(stall_label(truth), StallLabel::mild_stalls);
  EXPECT_EQ(repr_label(truth), ReprLabel::hd);
  EXPECT_NE(variation_label(truth), VariationLabel::none);
}

TEST(Labels, EnumValuesAlignWithClassNameOrder) {
  EXPECT_EQ(static_cast<int>(StallLabel::no_stalls), 0);
  EXPECT_EQ(static_cast<int>(StallLabel::mild_stalls), 1);
  EXPECT_EQ(static_cast<int>(StallLabel::severe_stalls), 2);
  EXPECT_EQ(static_cast<int>(ReprLabel::ld), 0);
  EXPECT_EQ(static_cast<int>(ReprLabel::sd), 1);
  EXPECT_EQ(static_cast<int>(ReprLabel::hd), 2);
}

}  // namespace
}  // namespace vqoe::core

#include "vqoe/core/startup.h"

#include <gtest/gtest.h>

#include "vqoe/core/pipeline.h"
#include "vqoe/ts/summary.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::core {
namespace {

ChunkObs chunk(double request, double arrival, double size) {
  ChunkObs c;
  c.request_time_s = request;
  c.arrival_time_s = arrival;
  c.size_bytes = size;
  return c;
}

TEST(StartupEstimator, ShortSessionsReturnZero) {
  EXPECT_DOUBLE_EQ(estimate_startup_delay({}), 0.0);
  const std::vector<ChunkObs> two{chunk(0, 1, 100), chunk(1, 2, 100)};
  EXPECT_DOUBLE_EQ(estimate_startup_delay(two), 0.0);
}

TEST(StartupEstimator, SyntheticSteadySession) {
  // 400 KB chunks paced 5 s apart (one chunk = 5 s of media), with the
  // first three arriving back-to-back during start-up. With a 2.5 s assumed
  // threshold the first chunk (5 s of media) already crosses it.
  std::vector<ChunkObs> chunks;
  chunks.push_back(chunk(0.0, 1.0, 400'000));
  chunks.push_back(chunk(1.0, 2.0, 400'000));
  chunks.push_back(chunk(2.0, 3.0, 400'000));
  for (int i = 0; i < 20; ++i) {
    chunks.push_back(chunk(3.0 + i * 5.0, 4.0 + i * 5.0, 400'000));
  }
  const double estimate = estimate_startup_delay(chunks);
  EXPECT_NEAR(estimate, 1.0, 1e-9);  // arrival of the first chunk
}

TEST(StartupEstimator, HigherThresholdNeedsMoreChunks) {
  std::vector<ChunkObs> chunks;
  for (int i = 0; i < 20; ++i) {
    const double t = i < 4 ? i * 1.0 : 4.0 + (i - 4) * 5.0;
    chunks.push_back(chunk(t, t + 0.9, 400'000));
  }
  StartupEstimatorConfig low, high;
  low.assumed_threshold_s = 2.0;
  high.assumed_threshold_s = 12.0;
  EXPECT_LT(estimate_startup_delay(chunks, low),
            estimate_startup_delay(chunks, high));
}

TEST(StartupEstimator, ClampedToSessionSpan) {
  // A session that never fills the assumed buffer: the estimate is the
  // last arrival, never beyond.
  std::vector<ChunkObs> chunks;
  for (int i = 0; i < 5; ++i) chunks.push_back(chunk(i * 2.0, i * 2.0 + 1, 1'000));
  StartupEstimatorConfig config;
  config.assumed_threshold_s = 1e9;
  const double estimate = estimate_startup_delay(chunks, config);
  EXPECT_DOUBLE_EQ(estimate, chunks.back().arrival_time_s);
}

TEST(StartupEstimator, TracksGroundTruthOnCorpus) {
  auto options = workload::cleartext_corpus_options(400, 77);
  options.keep_session_results = false;
  const auto sessions = sessions_from_corpus(workload::generate_corpus(options));

  std::vector<double> errors;
  for (const auto& s : sessions) {
    if (s.chunks.size() < 3) continue;
    errors.push_back(std::abs(estimate_startup_delay(s.chunks) -
                              s.truth.startup_delay_s));
  }
  ASSERT_GT(errors.size(), 300u);
  // Median error within a couple of seconds of a quantity that averages
  // ~2-3 s: the estimator carries real signal.
  EXPECT_LT(ts::percentile(errors, 50.0), 2.5);
}

TEST(StartupEstimator, EstimateNonNegative) {
  auto options = workload::encrypted_corpus_options(40, 78);
  options.keep_session_results = false;
  auto corpus = workload::generate_corpus(options);
  corpus.weblogs = trace::encrypt_view(std::move(corpus.weblogs));
  const auto sessions = sessions_from_encrypted(corpus.weblogs, corpus.truths);
  for (const auto& s : sessions) {
    EXPECT_GE(estimate_startup_delay(s.chunks), 0.0);
  }
}

}  // namespace
}  // namespace vqoe::core

#include "vqoe/core/model_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <unistd.h>

#include "vqoe/core/pipeline.h"

namespace vqoe::core {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto options = workload::has_corpus_options(400, 91);
    options.keep_session_results = false;
    sessions_ = std::make_unique<std::vector<SessionRecord>>(
        sessions_from_corpus(workload::generate_corpus(options)));
    pipeline_ = std::make_unique<QoePipeline>(QoePipeline::train(*sessions_));
  }
  static void TearDownTestSuite() {
    sessions_.reset();
    pipeline_.reset();
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vqoe_model_io_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::unique_ptr<std::vector<SessionRecord>> sessions_;
  static std::unique_ptr<QoePipeline> pipeline_;
  std::filesystem::path dir_;
};

std::unique_ptr<std::vector<SessionRecord>> ModelIoTest::sessions_;
std::unique_ptr<QoePipeline> ModelIoTest::pipeline_;

TEST_F(ModelIoTest, StallDetectorRoundTrip) {
  std::stringstream stream;
  save(pipeline_->stall_detector(), stream);
  const auto loaded = load_stall_detector(stream);
  EXPECT_EQ(loaded.selected_features(),
            pipeline_->stall_detector().selected_features());
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& s = (*sessions_)[i * 7 % sessions_->size()];
    EXPECT_EQ(loaded.classify(s.chunks),
              pipeline_->stall_detector().classify(s.chunks));
  }
}

TEST_F(ModelIoTest, RepresentationDetectorRoundTrip) {
  std::stringstream stream;
  save(pipeline_->representation_detector(), stream);
  const auto loaded = load_representation_detector(stream);
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& s = (*sessions_)[i * 5 % sessions_->size()];
    EXPECT_EQ(loaded.classify(s.chunks),
              pipeline_->representation_detector().classify(s.chunks));
  }
}

TEST_F(ModelIoTest, SwitchDetectorRoundTrip) {
  SwitchDetector::Config config;
  config.threshold = 312.5;
  config.skip_initial_s = 7.25;
  const SwitchDetector original{config};
  std::stringstream stream;
  save(original, stream);
  const auto loaded = load_switch_detector(stream);
  EXPECT_DOUBLE_EQ(loaded.config().threshold, 312.5);
  EXPECT_DOUBLE_EQ(loaded.config().skip_initial_s, 7.25);
}

TEST_F(ModelIoTest, SavingUntrainedDetectorThrows) {
  const StallDetector untrained;
  std::stringstream stream;
  EXPECT_THROW(save(untrained, stream), std::logic_error);
}

TEST_F(ModelIoTest, WrongHeaderTypeThrows) {
  std::stringstream stream;
  save(pipeline_->stall_detector(), stream);
  EXPECT_THROW(load_representation_detector(stream), std::runtime_error);
}

TEST_F(ModelIoTest, PipelineDirectoryRoundTrip) {
  save_pipeline(*pipeline_, dir_);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "stall.model"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "representation.model"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "switch.model"));

  const auto loaded = load_pipeline(dir_);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& s = (*sessions_)[i * 11 % sessions_->size()];
    const auto a = pipeline_->assess(s.chunks);
    const auto b = loaded.assess(s.chunks);
    EXPECT_EQ(a.stall, b.stall);
    EXPECT_EQ(a.representation, b.representation);
    EXPECT_EQ(a.quality_switches, b.quality_switches);
    EXPECT_DOUBLE_EQ(a.switch_score, b.switch_score);
  }
}

TEST_F(ModelIoTest, MissingStallModelThrows) {
  std::filesystem::create_directories(dir_);
  EXPECT_THROW(load_pipeline(dir_), std::runtime_error);
}

TEST_F(ModelIoTest, FromPartsValidatesLayout) {
  // A representation forest cannot masquerade as a stall detector.
  std::stringstream stream;
  save(pipeline_->representation_detector(), stream);
  std::string text = stream.str();
  text.replace(text.find("vqoe-representation-detector"),
               std::string{"vqoe-representation-detector"}.size(),
               "vqoe-stall-detector");
  std::stringstream renamed{text};
  EXPECT_THROW(load_stall_detector(renamed), std::invalid_argument);
}

}  // namespace
}  // namespace vqoe::core

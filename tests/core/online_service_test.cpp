// OnlineMonitor with non-YouTube service host lists: the monitor and the
// batch reconstructor must honour the same service configuration.
#include <gtest/gtest.h>

#include "vqoe/core/online.h"
#include "vqoe/workload/corpus.h"
#include "vqoe/workload/service.h"

namespace vqoe::core {
namespace {

TEST(OnlineMonitorService, VimeoLikeHostsRecognized) {
  const auto service = workload::vimeo_like_service();

  auto train_options = workload::has_corpus_options(250, 61);
  train_options.keep_session_results = false;
  const auto pipeline = QoePipeline::train(
      sessions_from_corpus(workload::generate_corpus(train_options)));

  auto live_options = workload::encrypted_corpus_options(25, 62);
  live_options.service = service;
  live_options.keep_session_results = false;
  auto corpus = workload::generate_corpus(live_options);
  const auto records = trace::encrypt_view(std::move(corpus.weblogs));

  // Default (YouTube) host lists must see nothing...
  OnlineMonitor youtube_monitor{pipeline};
  for (const auto& r : records) youtube_monitor.ingest(r);
  EXPECT_TRUE(youtube_monitor.flush().empty());

  // ...the service's own lists must recover the sessions.
  OnlineMonitorConfig config;
  config.reconstruction.cdn_suffixes = service.cdn_suffixes();
  config.reconstruction.page_marker_hosts = service.page_marker_hosts();
  config.reconstruction.service_suffixes = service.service_suffixes();
  OnlineMonitor monitor{pipeline, config};
  std::size_t completed = 0;
  for (const auto& r : records) completed += monitor.ingest(r).size();
  completed += monitor.flush().size();
  EXPECT_GE(completed, 20u);
  EXPECT_LE(completed, 30u);
}

}  // namespace
}  // namespace vqoe::core

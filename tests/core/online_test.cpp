#include "vqoe/core/online.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace vqoe::core {
namespace {

class OnlineMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto train_options = workload::has_corpus_options(400, 17);
    train_options.keep_session_results = false;
    pipeline_ = std::make_unique<QoePipeline>(QoePipeline::train(
        sessions_from_corpus(workload::generate_corpus(train_options))));

    auto live_options = workload::encrypted_corpus_options(60, 18);
    live_options.keep_session_results = false;
    auto corpus = workload::generate_corpus(live_options);
    records_ = std::make_unique<std::vector<trace::WeblogRecord>>(
        trace::encrypt_view(std::move(corpus.weblogs)));
    truths_ = std::make_unique<std::vector<trace::SessionGroundTruth>>(
        std::move(corpus.truths));
  }
  static void TearDownTestSuite() {
    pipeline_.reset();
    records_.reset();
    truths_.reset();
  }

  static std::unique_ptr<QoePipeline> pipeline_;
  static std::unique_ptr<std::vector<trace::WeblogRecord>> records_;
  static std::unique_ptr<std::vector<trace::SessionGroundTruth>> truths_;
};

std::unique_ptr<QoePipeline> OnlineMonitorTest::pipeline_;
std::unique_ptr<std::vector<trace::WeblogRecord>> OnlineMonitorTest::records_;
std::unique_ptr<std::vector<trace::SessionGroundTruth>> OnlineMonitorTest::truths_;

TEST_F(OnlineMonitorTest, MatchesBatchReconstruction) {
  OnlineMonitor monitor{*pipeline_};
  std::vector<CompletedSession> online;
  for (const auto& record : *records_) {
    auto done = monitor.ingest(record);
    online.insert(online.end(), done.begin(), done.end());
  }
  auto rest = monitor.flush();
  online.insert(online.end(), rest.begin(), rest.end());

  const auto batch = session::reconstruct(*records_);
  ASSERT_EQ(online.size(), batch.size());

  // Same boundaries: compare sorted (start, chunk_count) pairs.
  auto key = [](double start, std::size_t chunks) {
    return std::pair{start, chunks};
  };
  std::vector<std::pair<double, std::size_t>> a, b;
  for (const auto& s : online) a.push_back(key(s.start_time_s, s.chunk_count));
  for (const auto& s : batch) {
    b.push_back(key(s.media.empty() ? s.start_time_s : s.start_time_s,
                    s.media.size()));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << "session " << i;
  }
}

TEST_F(OnlineMonitorTest, ReportsMatchBatchAssessment) {
  OnlineMonitor monitor{*pipeline_};
  std::vector<CompletedSession> online;
  for (const auto& record : *records_) {
    auto done = monitor.ingest(record);
    online.insert(online.end(), done.begin(), done.end());
  }
  auto rest = monitor.flush();
  online.insert(online.end(), rest.begin(), rest.end());

  const auto batch = session::reconstruct(*records_);
  // Index batch sessions by first media timestamp.
  std::map<double, const session::ReconstructedSession*> by_start;
  for (const auto& s : batch) {
    if (!s.media.empty()) by_start[s.media.front().timestamp_s] = &s;
  }
  std::size_t compared = 0;
  for (const auto& s : online) {
    // Online start time is the first service record; find the batch session
    // covering it.
    for (const auto& [start, batch_session] : by_start) {
      if (std::abs(start - s.start_time_s) < 5.0 &&
          batch_session->media.size() == s.chunk_count) {
        const auto expected =
            pipeline_->assess(chunks_from_session(*batch_session));
        EXPECT_EQ(s.report.stall, expected.stall);
        EXPECT_DOUBLE_EQ(s.report.switch_score, expected.switch_score);
        ++compared;
        break;
      }
    }
  }
  EXPECT_GT(compared, online.size() / 2);
}

TEST_F(OnlineMonitorTest, AdvanceToFlushesIdleSessions) {
  OnlineMonitor monitor{*pipeline_};
  // Feed roughly the first half of the records, cutting right after a
  // media record so the session left open holds at least one chunk (a cut
  // inside a session's page-object prefix would flush an empty session,
  // which the monitor drops without a report).
  std::size_t half = records_->size() / 2;
  while (half > 1 &&
         (*records_)[half - 1].kind != trace::RecordKind::media) {
    --half;
  }
  for (std::size_t i = 0; i < half; ++i) monitor.ingest((*records_)[i]);
  EXPECT_GT(monitor.open_sessions(), 0u);

  const double far_future = (*records_)[half - 1].timestamp_s + 1e6;
  const auto done = monitor.advance_to(far_future);
  EXPECT_EQ(monitor.open_sessions(), 0u);
  EXPECT_FALSE(done.empty());
}

// The engine's watermark clock broadcasts advance_to(last ingest ts). A
// tick landing exactly on last_activity + idle_gap must NOT close the
// session, because a record at that same timestamp would still extend it
// (ingest splits only on a STRICTLY larger gap) — otherwise the engine
// would diverge from the sequential monitor at the boundary.
TEST_F(OnlineMonitorTest, AdvanceToBoundaryTickKeepsExtendableSession) {
  const double gap = OnlineMonitorConfig{}.reconstruction.idle_gap_s;
  auto media = [](double t_s) {
    trace::WeblogRecord r;
    r.subscriber_id = "s";
    r.timestamp_s = t_s;
    r.transaction_time_s = 0.0;
    r.object_size_bytes = 900'000;
    r.host = "r3---sn-h5q7dne7.googlevideo.com";
    r.kind = trace::RecordKind::media;
    return r;
  };

  OnlineMonitor monitor{*pipeline_};
  EXPECT_TRUE(monitor.ingest(media(0.0)).empty());
  // Tick exactly at the gap boundary: session must survive...
  EXPECT_TRUE(monitor.advance_to(gap).empty());
  EXPECT_EQ(monitor.open_sessions(), 1u);
  // ...so a same-timestamp record extends it rather than opening a new one.
  EXPECT_TRUE(monitor.ingest(media(gap)).empty());
  EXPECT_EQ(monitor.open_sessions(), 1u);
  const auto done = monitor.flush();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done.front().chunk_count, 2u);

  // Strictly past the boundary the tick does close the session, exactly as
  // an ingest-side gap split would.
  OnlineMonitor late{*pipeline_};
  EXPECT_TRUE(late.ingest(media(0.0)).empty());
  const auto closed = late.advance_to(gap + 1e-6);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed.front().chunk_count, 1u);
  EXPECT_EQ(late.open_sessions(), 0u);
}

TEST_F(OnlineMonitorTest, MinChunksDiscardsNoise) {
  OnlineMonitorConfig config;
  config.min_chunks = 1000000;  // nothing qualifies
  OnlineMonitor monitor{*pipeline_, config};
  for (const auto& record : *records_) monitor.ingest(record);
  const auto done = monitor.flush();
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(monitor.sessions_reported(), 0u);
  EXPECT_GT(monitor.sessions_discarded(), 0u);
}

TEST_F(OnlineMonitorTest, IgnoresForeignTraffic) {
  OnlineMonitor monitor{*pipeline_};
  trace::WeblogRecord alien;
  alien.subscriber_id = "x";
  alien.host = "cdn.example.net";
  alien.timestamp_s = 1.0;
  alien.object_size_bytes = 1'000'000;
  EXPECT_TRUE(monitor.ingest(alien).empty());
  EXPECT_EQ(monitor.open_sessions(), 0u);
}

TEST_F(OnlineMonitorTest, CountersConsistent) {
  OnlineMonitor monitor{*pipeline_};
  std::size_t emitted = 0;
  for (const auto& record : *records_) emitted += monitor.ingest(record).size();
  emitted += monitor.flush().size();
  EXPECT_EQ(monitor.sessions_reported(), emitted);
  EXPECT_EQ(monitor.open_sessions(), 0u);
}

}  // namespace
}  // namespace vqoe::core

#include "vqoe/core/features.h"

#include <gtest/gtest.h>

#include <set>

namespace vqoe::core {
namespace {

ChunkObs make_chunk(double t, double size_bytes, double dur = 1.0) {
  ChunkObs c;
  c.request_time_s = t;
  c.arrival_time_s = t + dur;
  c.size_bytes = size_bytes;
  c.transport.rtt_min_ms = 40;
  c.transport.rtt_avg_ms = 55;
  c.transport.rtt_max_ms = 90;
  c.transport.bdp_bytes = 30'000;
  c.transport.bif_avg_bytes = 20'000;
  c.transport.bif_max_bytes = 45'000;
  c.transport.loss_pct = 0.5;
  c.transport.retrans_pct = 0.7;
  return c;
}

std::vector<ChunkObs> steady_session(std::size_t n = 30, double spacing = 5.0) {
  std::vector<ChunkObs> chunks;
  for (std::size_t i = 0; i < n; ++i) {
    chunks.push_back(make_chunk(static_cast<double>(i) * spacing, 400'000));
  }
  return chunks;
}

TEST(FeatureNames, PaperCardinalities) {
  // 10 metrics x 7 stats and 14 metrics x 15 stats (Sections 4.1, 4.2).
  EXPECT_EQ(stall_feature_names().size(), 70u);
  EXPECT_EQ(representation_feature_names().size(), 210u);
}

TEST(FeatureNames, Unique) {
  for (const auto* names : {&stall_feature_names(), &representation_feature_names()}) {
    std::set<std::string> unique(names->begin(), names->end());
    EXPECT_EQ(unique.size(), names->size());
  }
}

TEST(FeatureNames, ContainPaperSelectedFeatures) {
  // Table 2's stall features and a sample of Table 5's representation
  // features must exist under our naming scheme.
  const auto& stall = stall_feature_names();
  for (const char* name : {"chunk_size:min", "chunk_size:std", "bdp:mean",
                           "retrans:max"}) {
    EXPECT_NE(std::find(stall.begin(), stall.end(), name), stall.end()) << name;
  }
  const auto& repr = representation_feature_names();
  for (const char* name :
       {"chunk_size:p75", "chunk_avg_size:mean", "bif_avg:max",
        "cusum_throughput:min", "chunk_dsize:max", "chunk_dt:p25", "bdp:p90",
        "bif_max:min", "rtt_min:min"}) {
    EXPECT_NE(std::find(repr.begin(), repr.end(), name), repr.end()) << name;
  }
}

TEST(StallFeatures, SizeMatchesNames) {
  const auto chunks = steady_session();
  EXPECT_EQ(stall_features(chunks).size(), stall_feature_names().size());
}

TEST(RepresentationFeatures, SizeMatchesNames) {
  const auto chunks = steady_session();
  EXPECT_EQ(representation_features(chunks).size(),
            representation_feature_names().size());
}

TEST(Features, EmptySessionYieldsZeros) {
  for (double v : stall_features({})) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : representation_features({})) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Features, SingleChunkDefined) {
  const std::vector<ChunkObs> one{make_chunk(0.0, 100'000)};
  const auto f = stall_features(one);
  EXPECT_EQ(f.size(), 70u);
  // chunk_size:min should be 100 KB.
  const auto& names = stall_feature_names();
  const auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "chunk_size:min") - names.begin());
  EXPECT_DOUBLE_EQ(f[idx], 100.0);
}

TEST(Features, ChunkSizeInKilobytes) {
  const auto chunks = steady_session();
  const auto f = stall_features(chunks);
  const auto& names = stall_feature_names();
  const auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "chunk_size:mean") - names.begin());
  EXPECT_NEAR(f[idx], 400.0, 1e-9);
}

TEST(Features, SessionRelativeTime) {
  // Shifting all timestamps must not change any feature.
  auto a = steady_session();
  auto b = a;
  for (ChunkObs& c : b) {
    c.request_time_s += 5000.0;
    c.arrival_time_s += 5000.0;
  }
  const auto fa = stall_features(a);
  const auto fb = stall_features(b);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_NEAR(fa[i], fb[i], 1e-6) << stall_feature_names()[i];
  }
}

TEST(ChunksFromWeblogs, FiltersToMediaAndSorts) {
  std::vector<trace::WeblogRecord> records(3);
  records[0].kind = trace::RecordKind::page_object;
  records[0].timestamp_s = 0.0;
  records[1].kind = trace::RecordKind::media;
  records[1].timestamp_s = 10.0;
  records[1].transaction_time_s = 1.0;
  records[1].object_size_bytes = 100;
  records[2].kind = trace::RecordKind::media;
  records[2].timestamp_s = 5.0;
  records[2].transaction_time_s = 1.0;
  records[2].object_size_bytes = 200;

  const auto chunks = chunks_from_weblogs(records);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_DOUBLE_EQ(chunks[0].request_time_s, 5.0);
  EXPECT_DOUBLE_EQ(chunks[0].size_bytes, 200.0);
  EXPECT_DOUBLE_EQ(chunks[1].request_time_s, 10.0);
}

TEST(ChunkObs, GoodputComputation) {
  const ChunkObs c = make_chunk(0.0, 500'000, 2.0);
  EXPECT_NEAR(c.goodput_kbps(), 500'000 * 8.0 / 2.0 / 1000.0, 1e-9);
  ChunkObs degenerate;
  degenerate.size_bytes = 100;
  degenerate.request_time_s = degenerate.arrival_time_s = 1.0;
  EXPECT_DOUBLE_EQ(degenerate.goodput_kbps(), 0.0);
}

TEST(SwitchSignal, DropsStartupSeconds) {
  auto chunks = steady_session(40, 1.0);  // arrivals at 1,2,...,40 s
  const auto full = switch_signal(chunks, 0.0);
  const auto filtered = switch_signal(chunks, 10.0);
  EXPECT_GT(full.size(), filtered.size());
  // 40 chunks arriving at 1..40 s; arrivals >= 10 s leaves 31 -> 30 deltas.
  EXPECT_EQ(filtered.size(), 30u);
}

TEST(SwitchSignal, TooFewChunksIsEmpty) {
  EXPECT_TRUE(switch_signal({}).empty());
  const auto two = steady_session(2);
  EXPECT_TRUE(switch_signal(two, 0.0).empty());
}

TEST(SwitchSignal, SteadySessionHasSmallSignal) {
  const auto chunks = steady_session(40);
  const auto signal = switch_signal(chunks);
  for (double v : signal) EXPECT_NEAR(v, 0.0, 1e-9);  // identical sizes
}

TEST(SwitchSignal, LevelShiftCreatesSpike) {
  std::vector<ChunkObs> chunks;
  for (int i = 0; i < 20; ++i) {
    chunks.push_back(make_chunk(i * 5.0, 200'000));
  }
  // Quality switch: a gap then bigger chunks.
  for (int i = 0; i < 20; ++i) {
    chunks.push_back(make_chunk(120.0 + i * 5.0, 800'000));
  }
  const auto signal = switch_signal(chunks);
  double max_abs = 0.0;
  for (double v : signal) max_abs = std::max(max_abs, std::abs(v));
  // Spike ~ 600 KB x 25 s at the boundary.
  EXPECT_GT(max_abs, 1000.0);
}

}  // namespace
}  // namespace vqoe::core

#include "vqoe/core/pipeline.h"

#include <gtest/gtest.h>

#include <memory>

namespace vqoe::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto options = workload::has_corpus_options(500, 33);
    corpus_ = std::make_unique<workload::Corpus>(workload::generate_corpus(options));
    sessions_ = std::make_unique<std::vector<SessionRecord>>(
        sessions_from_corpus(*corpus_));
  }
  static void TearDownTestSuite() {
    corpus_.reset();
    sessions_.reset();
  }
  static std::unique_ptr<workload::Corpus> corpus_;
  static std::unique_ptr<std::vector<SessionRecord>> sessions_;
};

std::unique_ptr<workload::Corpus> PipelineTest::corpus_;
std::unique_ptr<std::vector<SessionRecord>> PipelineTest::sessions_;

TEST_F(PipelineTest, SessionsFromCorpusCoverAllTruths) {
  EXPECT_EQ(sessions_->size(), corpus_->truths.size());
  for (const auto& s : *sessions_) {
    EXPECT_FALSE(s.chunks.empty());
    EXPECT_EQ(s.chunks.size(), s.truth.media_chunk_count);
  }
}

TEST_F(PipelineTest, TrainAndAssessRoundTrip) {
  const auto pipeline = QoePipeline::train(*sessions_);
  EXPECT_TRUE(pipeline.stall_detector().trained());
  EXPECT_TRUE(pipeline.representation_detector().trained());

  const auto report = pipeline.assess(sessions_->front().chunks);
  EXPECT_GE(static_cast<int>(report.stall), 0);
  EXPECT_LE(static_cast<int>(report.stall), 2);
  EXPECT_GE(report.switch_score, 0.0);
  EXPECT_EQ(report.quality_switches,
            report.switch_score > pipeline.switch_detector().config().threshold);
}

TEST_F(PipelineTest, TrainRejectsEmptyInput) {
  EXPECT_THROW(QoePipeline::train({}), std::invalid_argument);
}

TEST_F(PipelineTest, AssessmentsTrackGroundTruthBetterThanChance) {
  const auto pipeline = QoePipeline::train(*sessions_);
  std::size_t repr_correct = 0;
  for (const auto& s : *sessions_) {
    const auto report = pipeline.assess(s.chunks);
    if (report.representation == repr_label(s.truth)) ++repr_correct;
  }
  EXPECT_GT(static_cast<double>(repr_correct) /
                static_cast<double>(sessions_->size()),
            0.6);
}

TEST_F(PipelineTest, EvaluateHelpersCountCorrectly) {
  const auto pipeline = QoePipeline::train(*sessions_);
  const auto stall_cm = evaluate_stall(pipeline.stall_detector(), *sessions_);
  EXPECT_EQ(stall_cm.total(), sessions_->size());
  const auto repr_cm =
      evaluate_representation(pipeline.representation_detector(), *sessions_);
  EXPECT_EQ(repr_cm.total(), sessions_->size());  // all-adaptive corpus
  const auto sw = evaluate_switch(pipeline.switch_detector(), *sessions_);
  EXPECT_EQ(sw.sessions_with + sw.sessions_without, sessions_->size());
}

TEST_F(PipelineTest, EncryptedSessionsRoundTrip) {
  auto options = workload::encrypted_corpus_options(60, 44);
  options.keep_session_results = false;
  auto encrypted_corpus = workload::generate_corpus(options);
  encrypted_corpus.weblogs = trace::encrypt_view(std::move(encrypted_corpus.weblogs));

  const auto encrypted_sessions =
      sessions_from_encrypted(encrypted_corpus.weblogs, encrypted_corpus.truths);
  EXPECT_GT(encrypted_sessions.size(), 45u);
  for (const auto& s : encrypted_sessions) {
    EXPECT_FALSE(s.chunks.empty());
    EXPECT_FALSE(s.truth.session_id.empty());
  }

  // Cleartext-trained detectors apply unchanged to encrypted sessions.
  const auto pipeline = QoePipeline::train(*sessions_);
  const auto cm = evaluate_stall(pipeline.stall_detector(), encrypted_sessions);
  EXPECT_EQ(cm.total(), encrypted_sessions.size());
}

TEST_F(PipelineTest, NonAdaptiveSessionsSkippedByReprEvaluation) {
  auto options = workload::cleartext_corpus_options(200, 55);
  options.adaptive_fraction = 0.0;  // all progressive
  const auto corpus = workload::generate_corpus(options);
  const auto sessions = sessions_from_corpus(corpus);

  const auto pipeline = QoePipeline::train(*sessions_);
  const auto cm = evaluate_representation(pipeline.representation_detector(),
                                          sessions, /*adaptive_only=*/true);
  EXPECT_EQ(cm.total(), 0u);
}

}  // namespace
}  // namespace vqoe::core

#include "vqoe/core/mos.h"

#include <gtest/gtest.h>

#include "vqoe/core/startup.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::core {
namespace {

trace::SessionGroundTruth clean_hd_session() {
  trace::SessionGroundTruth t;
  t.total_duration_s = 180.0;
  t.startup_delay_s = 0.5;
  t.average_height = 720.0;
  t.stall_count = 0;
  t.stall_duration_s = 0.0;
  t.switch_count = 0;
  return t;
}

TEST(MosLevels, MokThresholds) {
  const MosModel m;
  EXPECT_EQ(initial_delay_level(0.5, m), 0);
  EXPECT_EQ(initial_delay_level(3.0, m), 1);
  EXPECT_EQ(initial_delay_level(10.0, m), 2);

  // 1 stall in 180 s ~ 0.006 Hz -> level 0; 10 stalls -> 0.056 Hz -> 1;
  // 60 stalls -> 0.33 Hz -> 2.
  EXPECT_EQ(stall_frequency_level(1, 180.0, m), 0);
  EXPECT_EQ(stall_frequency_level(10, 180.0, m), 1);
  EXPECT_EQ(stall_frequency_level(60, 180.0, m), 2);
  EXPECT_EQ(stall_frequency_level(0, 180.0, m), 0);

  EXPECT_EQ(stall_duration_level(2.0, 1, m), 0);   // 2 s per stall
  EXPECT_EQ(stall_duration_level(16.0, 2, m), 1);  // 8 s per stall
  EXPECT_EQ(stall_duration_level(30.0, 2, m), 2);  // 15 s per stall
  EXPECT_EQ(stall_duration_level(0.0, 0, m), 0);
}

TEST(MosFromGroundTruth, CleanHdSessionNearBase) {
  EXPECT_NEAR(mos_from_ground_truth(clean_hd_session()), 4.23, 1e-9);
}

TEST(MosFromGroundTruth, ImpairmentsMonotonicallyHurt) {
  auto t = clean_hd_session();
  const double clean = mos_from_ground_truth(t);

  t.stall_count = 10;
  t.stall_duration_s = 80.0;
  const double stalled = mos_from_ground_truth(t);
  EXPECT_LT(stalled, clean);

  t.average_height = 240.0;  // LD on top of the stalls
  const double stalled_ld = mos_from_ground_truth(t);
  EXPECT_LT(stalled_ld, stalled);

  t.switch_count = 5;
  t.switch_amplitude = 1.0;
  EXPECT_LT(mos_from_ground_truth(t), stalled_ld);
}

TEST(MosFromGroundTruth, ClampedToScale) {
  auto t = clean_hd_session();
  t.stall_count = 200;
  t.stall_duration_s = 3000.0;
  t.average_height = 144.0;
  t.switch_count = 50;
  t.switch_amplitude = 3.0;
  t.startup_delay_s = 30.0;
  const double mos = mos_from_ground_truth(t);
  EXPECT_GE(mos, 1.0);
  EXPECT_LE(mos, 5.0);
}

TEST(MosFromReport, SeverityOrdering) {
  QoeReport healthy;
  healthy.stall = StallLabel::no_stalls;
  healthy.representation = ReprLabel::hd;
  healthy.quality_switches = false;

  QoeReport mild = healthy;
  mild.stall = StallLabel::mild_stalls;
  QoeReport severe = healthy;
  severe.stall = StallLabel::severe_stalls;

  EXPECT_GT(mos_from_report(healthy), mos_from_report(mild));
  EXPECT_GT(mos_from_report(mild), mos_from_report(severe));
}

TEST(MosFromReport, InitialDelayTermApplied) {
  QoeReport report;
  report.representation = ReprLabel::hd;
  EXPECT_GT(mos_from_report(report, 0.2), mos_from_report(report, 8.0));
}

TEST(MosEndToEnd, DetectedMosTracksTruthMos) {
  auto options = workload::has_corpus_options(500, 51);
  options.keep_session_results = false;
  const auto sessions = sessions_from_corpus(workload::generate_corpus(options));
  const auto pipeline = QoePipeline::train(sessions);

  double cov = 0.0, vt = 0.0, ve = 0.0, mt = 0.0, me = 0.0;
  std::vector<std::pair<double, double>> pairs;
  for (const auto& s : sessions) {
    const double truth_mos = mos_from_ground_truth(s.truth);
    const double detected_mos = mos_from_report(
        pipeline.assess(s.chunks), estimate_startup_delay(s.chunks));
    pairs.emplace_back(truth_mos, detected_mos);
    mt += truth_mos;
    me += detected_mos;
  }
  mt /= static_cast<double>(pairs.size());
  me /= static_cast<double>(pairs.size());
  for (const auto& [t, e] : pairs) {
    cov += (t - mt) * (e - me);
    vt += (t - mt) * (t - mt);
    ve += (e - me) * (e - me);
  }
  ASSERT_GT(vt, 0.0);
  ASSERT_GT(ve, 0.0);
  const double correlation = cov / std::sqrt(vt * ve);
  EXPECT_GT(correlation, 0.6);
}

}  // namespace
}  // namespace vqoe::core

// MOS monotonicity sweeps: more of any impairment never raises the score.
#include <gtest/gtest.h>

#include "vqoe/core/mos.h"

namespace vqoe::core {
namespace {

trace::SessionGroundTruth base_truth() {
  trace::SessionGroundTruth t;
  t.total_duration_s = 200.0;
  t.startup_delay_s = 0.5;
  t.average_height = 720.0;
  return t;
}

class StallCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(StallCountSweep, MoreStallsNeverHelp) {
  auto fewer = base_truth();
  fewer.stall_count = GetParam();
  fewer.stall_duration_s = GetParam() * 6.0;
  auto more = base_truth();
  more.stall_count = GetParam() + 5;
  more.stall_duration_s = (GetParam() + 5) * 6.0;
  EXPECT_GE(mos_from_ground_truth(fewer), mos_from_ground_truth(more));
}

INSTANTIATE_TEST_SUITE_P(Counts, StallCountSweep,
                         ::testing::Values(0, 1, 3, 8, 20, 50));

class InitialDelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(InitialDelaySweep, LongerDelayNeverHelps) {
  auto shorter = base_truth();
  shorter.startup_delay_s = GetParam();
  auto longer = base_truth();
  longer.startup_delay_s = GetParam() + 4.0;
  EXPECT_GE(mos_from_ground_truth(shorter), mos_from_ground_truth(longer));
}

INSTANTIATE_TEST_SUITE_P(Delays, InitialDelaySweep,
                         ::testing::Values(0.0, 0.9, 2.0, 4.9, 10.0));

class HeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(HeightSweep, HigherResolutionNeverHurts) {
  auto lower = base_truth();
  lower.average_height = GetParam();
  auto higher = base_truth();
  higher.average_height = GetParam() + 250.0;
  EXPECT_LE(mos_from_ground_truth(lower), mos_from_ground_truth(higher));
}

INSTANTIATE_TEST_SUITE_P(Heights, HeightSweep,
                         ::testing::Values(144.0, 240.0, 360.0, 480.0, 720.0));

TEST(MosReportSweep, FullGridOrdering) {
  // Across the full detected-class grid, every single-step degradation of
  // one dimension must not raise the MOS.
  const MosModel model;
  for (int stall = 0; stall < 3; ++stall) {
    for (int repr = 0; repr < 3; ++repr) {
      for (int sw = 0; sw < 2; ++sw) {
        QoeReport report;
        report.stall = static_cast<StallLabel>(stall);
        report.representation = static_cast<ReprLabel>(repr);
        report.quality_switches = sw == 1;
        const double mos = mos_from_report(report, 0.0, model);
        EXPECT_GE(mos, model.floor);
        EXPECT_LE(mos, model.ceil);
        if (stall < 2) {
          QoeReport worse = report;
          worse.stall = static_cast<StallLabel>(stall + 1);
          EXPECT_GE(mos, mos_from_report(worse, 0.0, model));
        }
        if (repr > 0) {
          QoeReport worse = report;
          worse.representation = static_cast<ReprLabel>(repr - 1);
          EXPECT_GE(mos, mos_from_report(worse, 0.0, model));
        }
        if (!report.quality_switches) {
          QoeReport worse = report;
          worse.quality_switches = true;
          EXPECT_GE(mos, mos_from_report(worse, 0.0, model));
        }
      }
    }
  }
}

}  // namespace
}  // namespace vqoe::core

#include "vqoe/core/detectors.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "vqoe/core/pipeline.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::core {
namespace {

// Shared small corpus for detector tests (generation is fast but not free).
class DetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto options = workload::cleartext_corpus_options(900, 21);
    corpus_ = std::make_unique<workload::Corpus>(workload::generate_corpus(options));
    sessions_ = std::make_unique<std::vector<SessionRecord>>(
        sessions_from_corpus(*corpus_));

    auto has_options = workload::has_corpus_options(700, 22);
    has_corpus_ =
        std::make_unique<workload::Corpus>(workload::generate_corpus(has_options));
    has_sessions_ = std::make_unique<std::vector<SessionRecord>>(
        sessions_from_corpus(*has_corpus_));
  }
  static void TearDownTestSuite() {
    corpus_.reset();
    sessions_.reset();
    has_corpus_.reset();
    has_sessions_.reset();
  }

  static std::unique_ptr<workload::Corpus> corpus_;
  static std::unique_ptr<std::vector<SessionRecord>> sessions_;
  static std::unique_ptr<workload::Corpus> has_corpus_;
  static std::unique_ptr<std::vector<SessionRecord>> has_sessions_;
};

std::unique_ptr<workload::Corpus> DetectorTest::corpus_;
std::unique_ptr<std::vector<SessionRecord>> DetectorTest::sessions_;
std::unique_ptr<workload::Corpus> DetectorTest::has_corpus_;
std::unique_ptr<std::vector<SessionRecord>> DetectorTest::has_sessions_;

std::pair<std::vector<std::vector<ChunkObs>>, std::vector<StallLabel>>
stall_training(const std::vector<SessionRecord>& sessions) {
  std::vector<std::vector<ChunkObs>> chunks;
  std::vector<StallLabel> labels;
  for (const auto& s : sessions) {
    chunks.push_back(s.chunks);
    labels.push_back(stall_label(s.truth));
  }
  return {chunks, labels};
}

TEST_F(DetectorTest, BuildStallDatasetShape) {
  const auto [chunks, labels] = stall_training(*sessions_);
  const auto data = build_stall_dataset(chunks, labels);
  EXPECT_EQ(data.rows(), sessions_->size());
  EXPECT_EQ(data.cols(), 70u);
  EXPECT_EQ(data.num_classes(), 3u);
}

TEST_F(DetectorTest, BuildDatasetRejectsMismatch) {
  const auto [chunks, labels] = stall_training(*sessions_);
  std::vector<StallLabel> short_labels(labels.begin(), labels.end() - 1);
  EXPECT_THROW(build_stall_dataset(chunks, short_labels), std::invalid_argument);
}

TEST_F(DetectorTest, StallDetectorBeatsMajorityBaseline) {
  const auto [chunks, labels] = stall_training(*sessions_);
  const auto data = build_stall_dataset(chunks, labels);
  const auto detector = StallDetector::train(data);
  ASSERT_TRUE(detector.trained());
  EXPECT_FALSE(detector.selected_features().empty());
  EXPECT_LT(detector.selected_features().size(), 70u);

  const auto cm = evaluate_stall(detector, *sessions_);
  // Balanced training trades a little headline accuracy for minority-class
  // recall; the value of the detector over a majority-vote baseline is that
  // it actually finds the stalled sessions (where the baseline scores 0).
  EXPECT_GT(cm.accuracy(), 0.75);
  EXPECT_GT(cm.tp_rate(static_cast<int>(StallLabel::severe_stalls)), 0.5);
  EXPECT_GT(cm.tp_rate(static_cast<int>(StallLabel::mild_stalls)), 0.4);
}

TEST_F(DetectorTest, FixedFeaturesSkipSelection) {
  const auto [chunks, labels] = stall_training(*sessions_);
  const auto data = build_stall_dataset(chunks, labels);
  ForestDetectorConfig config;
  config.fixed_features = {"chunk_size:min", "chunk_size:std", "bdp:mean",
                           "retrans:max"};
  const auto detector = StallDetector::train(data, config);
  EXPECT_EQ(detector.selected_features(), config.fixed_features);
  // Must classify without throwing.
  (void)detector.classify(sessions_->front().chunks);
}

TEST_F(DetectorTest, UnknownFixedFeatureThrows) {
  const auto [chunks, labels] = stall_training(*sessions_);
  const auto data = build_stall_dataset(chunks, labels);
  ForestDetectorConfig config;
  config.fixed_features = {"not_a_feature:min"};
  EXPECT_THROW(StallDetector::train(data, config), std::out_of_range);
}

TEST_F(DetectorTest, ClassifyFeaturesMatchesClassify) {
  const auto [chunks, labels] = stall_training(*sessions_);
  const auto data = build_stall_dataset(chunks, labels);
  const auto detector = StallDetector::train(data);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto& session = (*sessions_)[i * 7 % sessions_->size()];
    EXPECT_EQ(detector.classify(session.chunks),
              detector.classify_features(stall_features(session.chunks)));
  }
}

TEST_F(DetectorTest, UntrainedDetectorThrows) {
  const StallDetector detector;
  EXPECT_THROW((void)detector.classify(sessions_->front().chunks),
               std::logic_error);
  const RepresentationDetector repr;
  EXPECT_THROW((void)repr.classify(sessions_->front().chunks), std::logic_error);
}

TEST_F(DetectorTest, RepresentationDetectorLearns) {
  std::vector<std::vector<ChunkObs>> chunks;
  std::vector<ReprLabel> labels;
  for (const auto& s : *has_sessions_) {
    chunks.push_back(s.chunks);
    labels.push_back(repr_label(s.truth));
  }
  const auto data = build_representation_dataset(chunks, labels);
  EXPECT_EQ(data.cols(), 210u);
  const auto detector = RepresentationDetector::train(data);
  const auto cm = evaluate_representation(detector, *has_sessions_);
  EXPECT_GT(cm.accuracy(), 0.7);
  // Chunk-size statistics must dominate the selected set (Table 5).
  std::size_t size_features = 0;
  for (const auto& name : detector.selected_features()) {
    if (name.find("size") != std::string::npos) ++size_features;
  }
  EXPECT_GT(size_features, detector.selected_features().size() / 2);
}

TEST_F(DetectorTest, SwitchDetectorSeparatesPopulations) {
  const SwitchDetector detector;
  const auto eval = evaluate_switch(detector, *has_sessions_);
  EXPECT_GT(eval.sessions_with, 20u);
  EXPECT_GT(eval.sessions_without, 20u);
  EXPECT_GT(eval.accuracy_with, 0.6);
  EXPECT_GT(eval.accuracy_without, 0.6);
}

TEST(SwitchDetector, ScoreZeroOnShortSessions) {
  const SwitchDetector detector;
  EXPECT_DOUBLE_EQ(detector.score({}), 0.0);
  std::vector<ChunkObs> two(2);
  two[0].request_time_s = 0;
  two[0].arrival_time_s = 1;
  two[1].request_time_s = 11;
  two[1].arrival_time_s = 12;
  EXPECT_DOUBLE_EQ(detector.score(two), 0.0);
  EXPECT_FALSE(detector.detect(two));
}

TEST(SwitchDetector, CalibrateThresholdSeparatesPopulations) {
  std::mt19937_64 rng{31};
  std::normal_distribution<double> low(200.0, 50.0), high(900.0, 200.0);
  std::vector<double> without, with;
  for (int i = 0; i < 300; ++i) {
    without.push_back(std::max(0.0, low(rng)));
    with.push_back(std::max(0.0, high(rng)));
  }
  const double t = SwitchDetector::calibrate_threshold(without, with);
  EXPECT_GT(t, 250.0);
  EXPECT_LT(t, 800.0);
}

TEST(SwitchDetector, ConfigurableThreshold) {
  SwitchDetector::Config config;
  config.threshold = 1.0;
  const SwitchDetector sensitive{config};
  EXPECT_DOUBLE_EQ(sensitive.config().threshold, 1.0);
}

}  // namespace
}  // namespace vqoe::core

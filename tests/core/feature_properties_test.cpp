// Feature-construction invariance properties over simulated sessions.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "vqoe/core/features.h"
#include "vqoe/net/channel.h"
#include "vqoe/sim/player.h"

namespace vqoe::core {
namespace {

std::vector<ChunkObs> simulated_chunks(std::uint64_t seed) {
  sim::VideoDescription v;
  v.video_id = "prop";
  v.duration_s = 120.0;
  for (int r = 0; r < sim::kNumResolutions; ++r) {
    const auto res = static_cast<sim::Resolution>(r);
    v.ladder.push_back({res, sim::nominal_bitrate_bps(res)});
  }
  auto channel = net::make_channel(net::profile_cell_fair(), seed);
  const sim::HasPlayer player{sim::PlayerConfig{}};
  const auto session = player.play(v, *channel, seed);
  std::vector<ChunkObs> chunks;
  for (const auto& c : session.chunks) {
    chunks.push_back({c.request_time_s, c.arrival_time_s,
                      static_cast<double>(c.size_bytes), c.transport});
  }
  return chunks;
}

class FeatureInvariance : public ::testing::TestWithParam<int> {};

TEST_P(FeatureInvariance, TimeShiftInvariant) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto chunks = simulated_chunks(seed);
  auto shifted = chunks;
  for (ChunkObs& c : shifted) {
    c.request_time_s += 1e5;
    c.arrival_time_s += 1e5;
  }
  const auto a = stall_features(chunks);
  const auto b = stall_features(shifted);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6) << stall_feature_names()[i];
  }
  const auto ra = representation_features(chunks);
  const auto rb = representation_features(shifted);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_NEAR(ra[i], rb[i], 1e-6) << representation_feature_names()[i];
  }
}

TEST_P(FeatureInvariance, InputOrderInvariant) {
  // Weblogs may arrive out of order; chunks_from_weblogs sorts, and
  // features computed from any permutation must be identical.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto chunks = simulated_chunks(seed);

  std::vector<trace::WeblogRecord> records;
  for (const auto& c : chunks) {
    trace::WeblogRecord r;
    r.kind = trace::RecordKind::media;
    r.timestamp_s = c.request_time_s;
    r.transaction_time_s = c.arrival_time_s - c.request_time_s;
    r.object_size_bytes = static_cast<std::uint64_t>(c.size_bytes);
    r.transport = c.transport;
    records.push_back(r);
  }
  std::mt19937_64 rng{seed * 3 + 1};
  auto shuffled = records;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  const auto a = stall_features(chunks_from_weblogs(records));
  const auto b = stall_features(chunks_from_weblogs(shuffled));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9) << stall_feature_names()[i];
  }
}

TEST_P(FeatureInvariance, AllFeaturesFinite) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto chunks = simulated_chunks(seed);
  for (double v : stall_features(chunks)) EXPECT_TRUE(std::isfinite(v));
  for (double v : representation_features(chunks)) EXPECT_TRUE(std::isfinite(v));
  const auto signal = switch_signal(chunks);
  for (double v : signal) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureInvariance, ::testing::Range(1, 13));

}  // namespace
}  // namespace vqoe::core

// End-to-end reproduction smoke tests: the full paper pipeline at reduced
// scale. These assert the *shape* of the headline results — who wins, what
// confuses with what, which direction encryption moves accuracy — with
// loose thresholds so they stay robust to seed changes.
#include <gtest/gtest.h>

#include <memory>

#include "vqoe/core/pipeline.h"
#include "vqoe/ml/cross_validation.h"
#include "vqoe/ml/feature_selection.h"

namespace vqoe::core {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Cleartext training corpus (mixed progressive/HAS, Section 3).
    auto clear_options = workload::cleartext_corpus_options(2500, 42);
    clear_ = std::make_unique<std::vector<SessionRecord>>(
        sessions_from_corpus(workload::generate_corpus(clear_options)));

    // HAS training corpus for representation/switch models (Section 4.2).
    auto has_options = workload::has_corpus_options(1500, 43);
    has_ = std::make_unique<std::vector<SessionRecord>>(
        sessions_from_corpus(workload::generate_corpus(has_options)));

    // Encrypted evaluation corpus (Section 5.2), reconstructed.
    auto enc_options = workload::encrypted_corpus_options(400, 4242);
    enc_options.keep_session_results = false;
    auto enc_corpus = workload::generate_corpus(enc_options);
    enc_corpus.weblogs = trace::encrypt_view(std::move(enc_corpus.weblogs));
    encrypted_ = std::make_unique<std::vector<SessionRecord>>(
        sessions_from_encrypted(enc_corpus.weblogs, enc_corpus.truths));
  }
  static void TearDownTestSuite() {
    clear_.reset();
    has_.reset();
    encrypted_.reset();
  }

  static std::unique_ptr<std::vector<SessionRecord>> clear_;
  static std::unique_ptr<std::vector<SessionRecord>> has_;
  static std::unique_ptr<std::vector<SessionRecord>> encrypted_;
};

std::unique_ptr<std::vector<SessionRecord>> EndToEnd::clear_;
std::unique_ptr<std::vector<SessionRecord>> EndToEnd::has_;
std::unique_ptr<std::vector<SessionRecord>> EndToEnd::encrypted_;

TEST_F(EndToEnd, CorpusShapeMatchesPaper) {
  // ~12% of sessions stalled; stall-free majority.
  std::size_t stalled = 0;
  for (const auto& s : *clear_) {
    if (s.truth.stall_count > 0) ++stalled;
  }
  const double stalled_frac =
      static_cast<double>(stalled) / static_cast<double>(clear_->size());
  EXPECT_GT(stalled_frac, 0.05);
  EXPECT_LT(stalled_frac, 0.25);

  // LD majority, HD rare (57/38/5 in the paper).
  std::size_t ld = 0, sd = 0, hd = 0;
  for (const auto& s : *has_) {
    switch (repr_label(s.truth)) {
      case ReprLabel::ld: ++ld; break;
      case ReprLabel::sd: ++sd; break;
      case ReprLabel::hd: ++hd; break;
    }
  }
  EXPECT_GT(ld, sd);
  EXPECT_GT(sd, hd);
  EXPECT_LT(static_cast<double>(hd) / static_cast<double>(has_->size()), 0.15);
}

TEST_F(EndToEnd, StallModelCrossValidatedAccuracy) {
  std::vector<std::vector<ChunkObs>> chunks;
  std::vector<StallLabel> labels;
  for (const auto& s : *clear_) {
    chunks.push_back(s.chunks);
    labels.push_back(stall_label(s.truth));
  }
  const auto data = build_stall_dataset(chunks, labels);
  const auto selected = ml::cfs_best_first_feature_names(data);
  ASSERT_FALSE(selected.empty());
  const auto cm = ml::cross_validate(data.project(selected), {}, {});

  // Paper Table 3: 93.5% overall; healthy class easiest; most confusion
  // between neighboring severities.
  EXPECT_GT(cm.accuracy(), 0.82);
  EXPECT_GT(cm.tp_rate(0), cm.tp_rate(1));
  const double mild_to_far = cm.row_fraction(0, 2);
  const double mild_to_near = cm.row_fraction(0, 1);
  EXPECT_GE(mild_to_near, mild_to_far);
}

TEST_F(EndToEnd, RepresentationModelAccuracy) {
  std::vector<std::vector<ChunkObs>> chunks;
  std::vector<ReprLabel> labels;
  for (const auto& s : *has_) {
    chunks.push_back(s.chunks);
    labels.push_back(repr_label(s.truth));
  }
  const auto data = build_representation_dataset(chunks, labels);
  const auto detector = RepresentationDetector::train(data);
  const auto cm = evaluate_representation(detector, *has_);
  // Paper Table 6: 84.5%, LD detected best among supports.
  EXPECT_GT(cm.accuracy(), 0.75);
  EXPECT_GT(cm.tp_rate(0), 0.8);
}

TEST_F(EndToEnd, SwitchDetectorPaperThresholdWorks) {
  const SwitchDetector detector;  // fixed threshold 500
  const auto eval = evaluate_switch(detector, *has_);
  // Paper Fig. 4: 78% / 76% at the threshold; demand clear-better-than-chance
  // on both populations.
  EXPECT_GT(eval.accuracy_without, 0.65);
  EXPECT_GT(eval.accuracy_with, 0.65);
}

TEST_F(EndToEnd, EncryptedEvaluationCloseToCleartext) {
  // Train on cleartext, evaluate on reconstructed encrypted sessions —
  // the paper's headline claim: a few points of accuracy loss, no collapse.
  const auto pipeline = QoePipeline::train(*clear_);
  const auto clear_cm = evaluate_stall(pipeline.stall_detector(), *clear_);
  const auto enc_cm = evaluate_stall(pipeline.stall_detector(), *encrypted_);
  EXPECT_GT(enc_cm.total(), 300u);
  EXPECT_GT(enc_cm.accuracy(), 0.6);
  EXPECT_LT(clear_cm.accuracy() - enc_cm.accuracy(), 0.25);
}

TEST_F(EndToEnd, SelectedStallFeaturesIncludeChunkSize) {
  // Table 2: chunk-size statistics carry the most information for stall
  // detection.
  std::vector<std::vector<ChunkObs>> chunks;
  std::vector<StallLabel> labels;
  for (const auto& s : *clear_) {
    chunks.push_back(s.chunks);
    labels.push_back(stall_label(s.truth));
  }
  const auto data = build_stall_dataset(chunks, labels);
  const auto selected = ml::cfs_best_first_feature_names(data);
  bool has_chunk_size = false;
  for (const auto& name : selected) {
    if (name.rfind("chunk_size:", 0) == 0) has_chunk_size = true;
  }
  EXPECT_TRUE(has_chunk_size);
}

}  // namespace
}  // namespace vqoe::core

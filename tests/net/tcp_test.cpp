#include "vqoe/net/tcp.h"

#include <gtest/gtest.h>

namespace vqoe::net {
namespace {

ChannelState state(double bw_bps = 4e6, double rtt_ms = 60.0,
                   double loss = 0.002) {
  return {.bandwidth_bps = bw_bps, .rtt_ms = rtt_ms, .loss_rate = loss};
}

TEST(TcpModel, RejectsEmptyObject) {
  TcpModel tcp{1};
  EXPECT_THROW(tcp.download(0, state()), std::invalid_argument);
}

TEST(TcpModel, DurationAtLeastOneRtt) {
  TcpModel tcp{2};
  const auto r = tcp.download(1000, state());
  EXPECT_GE(r.duration_s, 0.060);
}

TEST(TcpModel, LargerObjectsTakeLonger) {
  TcpModel a{3}, b{3};
  const auto small = a.download(50'000, state());
  const auto large = b.download(5'000'000, state());
  EXPECT_GT(large.duration_s, small.duration_s);
}

TEST(TcpModel, FasterLinksDownloadFaster) {
  TcpModel a{4}, b{4};
  const auto slow = a.download(2'000'000, state(0.5e6));
  const auto fast = b.download(2'000'000, state(20e6));
  EXPECT_LT(fast.duration_s, slow.duration_s);
}

TEST(TcpModel, GoodputBoundedByLinkRate) {
  TcpModel tcp{5};
  const auto r = tcp.download(10'000'000, state(5e6, 40.0, 1e-5));
  EXPECT_LE(r.goodput_bps, 5e6 * 1.05);
  EXPECT_GT(r.goodput_bps, 0.0);
}

TEST(TcpModel, HeavyLossThrottlesThroughput) {
  // Average over several transfers: the loss draw is stochastic.
  double clean_total = 0.0, lossy_total = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    TcpModel clean{seed}, lossy{seed + 1000};
    clean_total += clean.download(4'000'000, state(20e6, 100.0, 1e-5)).goodput_bps;
    lossy_total += lossy.download(4'000'000, state(20e6, 100.0, 0.05)).goodput_bps;
  }
  EXPECT_LT(lossy_total, clean_total * 0.6);
}

TEST(TcpModel, TransportStatsWellFormed) {
  TcpModel tcp{6};
  for (int i = 0; i < 50; ++i) {
    const auto r = tcp.download(300'000 + i * 10'000, state());
    const TransportStats& s = r.stats;
    EXPECT_LE(s.rtt_min_ms, s.rtt_avg_ms);
    EXPECT_LE(s.rtt_avg_ms, s.rtt_max_ms);
    EXPECT_GT(s.bdp_bytes, 0.0);
    EXPECT_GE(s.bif_avg_bytes, 0.0);
    EXPECT_LE(s.bif_avg_bytes, s.bif_max_bytes + 1e-9);
    EXPECT_GE(s.loss_pct, 0.0);
    EXPECT_LE(s.loss_pct, 100.0);
    EXPECT_GE(s.retrans_pct, s.loss_pct);
    EXPECT_LE(s.retrans_pct, 100.0);
  }
}

TEST(TcpModel, BdpMatchesDefinition) {
  TcpModel tcp{7};
  const auto r = tcp.download(100'000, state(8e6, 50.0));
  EXPECT_NEAR(r.stats.bdp_bytes, 8e6 * 0.050 / 8.0, 1e-6);
}

TEST(TcpModel, WindowGrowsAcrossDownloadsOnPersistentConnection) {
  TcpModel tcp{8};
  const double initial = tcp.cwnd_bytes();
  tcp.download(2'000'000, state(10e6, 80.0, 1e-5));
  EXPECT_GT(tcp.cwnd_bytes(), initial);
}

TEST(TcpModel, IdleResetsWindowAfterThreshold) {
  TcpModel tcp{9};
  tcp.download(2'000'000, state(10e6, 80.0, 1e-5));
  const double grown = tcp.cwnd_bytes();
  ASSERT_GT(grown, TcpModel::kInitialWindowBytes);
  tcp.idle(0.2);  // short gap: window kept
  EXPECT_DOUBLE_EQ(tcp.cwnd_bytes(), grown);
  tcp.idle(TcpModel::kIdleResetS + 0.1);
  EXPECT_DOUBLE_EQ(tcp.cwnd_bytes(), TcpModel::kInitialWindowBytes);
}

TEST(TcpModel, ResetRestoresInitialWindow) {
  TcpModel tcp{10};
  tcp.download(2'000'000, state());
  tcp.reset();
  EXPECT_DOUBLE_EQ(tcp.cwnd_bytes(), TcpModel::kInitialWindowBytes);
}

TEST(TcpModel, ColdWindowSlowsSmallDownloads) {
  // The same small chunk downloads faster on a warmed-up connection — the
  // mechanism behind slow recovery chunks after a stall (Section 4.1).
  double cold_total = 0.0, warm_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    TcpModel cold{seed}, warm{seed};
    warm.download(3'000'000, state(10e6, 80.0, 1e-4));  // warm-up transfer
    cold_total += cold.download(200'000, state(10e6, 80.0, 1e-4)).duration_s;
    warm_total += warm.download(200'000, state(10e6, 80.0, 1e-4)).duration_s;
  }
  EXPECT_LT(warm_total, cold_total);
}

TEST(TcpModel, HighRttHurtsSmallTransfersMost) {
  TcpModel a{11}, b{11}, c{12}, d{12};
  const double small_low = a.download(50'000, state(10e6, 20.0)).duration_s;
  const double small_high = b.download(50'000, state(10e6, 300.0)).duration_s;
  const double big_low = c.download(20'000'000, state(10e6, 20.0, 1e-5)).duration_s;
  const double big_high = d.download(20'000'000, state(10e6, 300.0, 1e-5)).duration_s;
  const double small_ratio = small_high / small_low;
  const double big_ratio = big_high / big_low;
  EXPECT_GT(small_ratio, big_ratio);
}

}  // namespace
}  // namespace vqoe::net

#include "vqoe/net/channel.h"

#include <gtest/gtest.h>

#include <set>

namespace vqoe::net {
namespace {

TEST(GaussMarkovChannel, ValidatesCorrelation) {
  EXPECT_THROW(GaussMarkovChannel(profile_cell_fair(), 1, 0.0),
               std::invalid_argument);
}

TEST(GaussMarkovChannel, StatesArePhysical) {
  GaussMarkovChannel ch{profile_cell_fair(), 42};
  for (double t = 0; t < 300; t += 1.7) {
    const ChannelState s = ch.at(t);
    EXPECT_GT(s.bandwidth_bps, 0.0);
    EXPECT_GT(s.rtt_ms, 0.0);
    EXPECT_GE(s.loss_rate, 0.0);
    EXPECT_LE(s.loss_rate, 0.5);
  }
}

TEST(GaussMarkovChannel, DeterministicForSeed) {
  GaussMarkovChannel a{profile_cell_fair(), 7};
  GaussMarkovChannel b{profile_cell_fair(), 7};
  for (double t = 0; t < 50; t += 2.1) {
    EXPECT_DOUBLE_EQ(a.at(t).bandwidth_bps, b.at(t).bandwidth_bps);
  }
}

TEST(GaussMarkovChannel, DifferentSeedsDiffer) {
  GaussMarkovChannel a{profile_cell_fair(), 1};
  GaussMarkovChannel b{profile_cell_fair(), 2};
  EXPECT_NE(a.at(10.0).bandwidth_bps, b.at(10.0).bandwidth_bps);
}

TEST(GaussMarkovChannel, MeanBandwidthNearProfile) {
  const auto profile = profile_cell_fair();
  double total = 0.0;
  int count = 0;
  // Average across many independent channels to beat the AR correlation.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    GaussMarkovChannel ch{profile, seed};
    for (double t = 0; t < 60; t += 10) {
      total += ch.at(t).bandwidth_bps;
      ++count;
    }
  }
  const double mean = total / count;
  EXPECT_NEAR(mean, profile.mean_bandwidth_bps, 0.15 * profile.mean_bandwidth_bps);
}

TEST(GaussMarkovChannel, RegimeNameMatchesProfile) {
  GaussMarkovChannel ch{profile_cell_poor(), 3};
  EXPECT_EQ(ch.regime(), "cell_poor");
}

TEST(MobilityChannel, RequiresStates) {
  EXPECT_THROW(MobilityChannel({}, 1), std::invalid_argument);
}

TEST(MobilityChannel, VisitsMultipleRegimes) {
  MobilityChannel ch{commute_states(), 11};
  std::set<std::string> regimes;
  for (double t = 0; t < 1200; t += 5) {
    ch.at(t);
    regimes.insert(ch.regime());
  }
  EXPECT_GE(regimes.size(), 2u);
}

TEST(MobilityChannel, SingleStateNeverTransitions) {
  MobilityChannel ch{{profile_cell_fair()}, 5};
  for (double t = 0; t < 500; t += 10) {
    ch.at(t);
    EXPECT_EQ(ch.regime(), "cell_fair");
  }
}

TEST(Factories, ProduceWorkingChannels) {
  auto a = make_channel(profile_static_good(), 1);
  auto b = make_commute_channel(2);
  EXPECT_GT(a->at(0.0).bandwidth_bps, 0.0);
  EXPECT_GT(b->at(0.0).bandwidth_bps, 0.0);
}

}  // namespace
}  // namespace vqoe::net

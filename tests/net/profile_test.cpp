#include "vqoe/net/profile.h"

#include <gtest/gtest.h>

namespace vqoe::net {
namespace {

TEST(Profiles, BandwidthOrderingMatchesSeverity) {
  EXPECT_GT(profile_static_good().mean_bandwidth_bps,
            profile_cell_fair().mean_bandwidth_bps);
  EXPECT_GT(profile_cell_fair().mean_bandwidth_bps,
            profile_cell_congested().mean_bandwidth_bps);
  EXPECT_GT(profile_cell_congested().mean_bandwidth_bps,
            profile_cell_poor().mean_bandwidth_bps);
  EXPECT_GT(profile_cell_poor().mean_bandwidth_bps,
            profile_cell_outage().mean_bandwidth_bps);
}

TEST(Profiles, WorseRegimesHaveHigherRttAndLoss) {
  EXPECT_LT(profile_static_good().base_rtt_ms, profile_cell_poor().base_rtt_ms);
  EXPECT_LT(profile_static_good().loss_rate, profile_cell_poor().loss_rate);
  EXPECT_LT(profile_cell_fair().loss_rate, profile_cell_congested().loss_rate);
}

TEST(Profiles, AllFieldsPositive) {
  for (const auto& p :
       {profile_static_good(), profile_cell_fair(), profile_cell_congested(),
        profile_cell_poor(), profile_cell_outage()}) {
    EXPECT_GT(p.mean_bandwidth_bps, 0.0) << p.name;
    EXPECT_GT(p.base_rtt_ms, 0.0) << p.name;
    EXPECT_GE(p.loss_rate, 0.0) << p.name;
    EXPECT_LT(p.loss_rate, 1.0) << p.name;
    EXPECT_GT(p.mean_dwell_s, 0.0) << p.name;
    EXPECT_FALSE(p.name.empty());
  }
}

TEST(Profiles, CommuteStatesAreMobileRegimes) {
  const auto states = commute_states();
  ASSERT_GE(states.size(), 2u);
  for (const auto& s : states) {
    // A commuter dwells well under the static profile's dwell time.
    EXPECT_LT(s.mean_dwell_s, profile_static_good().mean_dwell_s);
  }
}

}  // namespace
}  // namespace vqoe::net

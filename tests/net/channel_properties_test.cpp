// Property sweeps over every channel profile: physical-state invariants,
// seed determinism and long-run mean tracking must hold for each regime,
// not just the ones the other tests happen to use.
#include <gtest/gtest.h>

#include "vqoe/net/channel.h"
#include "vqoe/net/tcp.h"

namespace vqoe::net {
namespace {

std::vector<NetworkProfile> all_profiles() {
  return {profile_static_good(), profile_cell_fair(), profile_cell_congested(),
          profile_cell_poor(), profile_cell_outage()};
}

class ChannelProfileSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChannelProfileSweep, StatesPhysicalEverywhere) {
  const auto profile = all_profiles()[static_cast<std::size_t>(GetParam())];
  GaussMarkovChannel ch{profile, 101};
  for (double t = 0; t < 400; t += 1.9) {
    const ChannelState s = ch.at(t);
    EXPECT_GT(s.bandwidth_bps, 0.0) << profile.name;
    EXPECT_GE(s.rtt_ms, 5.0) << profile.name;
    EXPECT_GE(s.loss_rate, 0.0) << profile.name;
    EXPECT_LE(s.loss_rate, 0.5) << profile.name;
  }
}

TEST_P(ChannelProfileSweep, LongRunMeanTracksProfile) {
  const auto profile = all_profiles()[static_cast<std::size_t>(GetParam())];
  double total = 0.0;
  int count = 0;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    GaussMarkovChannel ch{profile, seed};
    for (double t = 0; t < 90; t += 15) {
      total += ch.at(t).bandwidth_bps;
      ++count;
    }
  }
  EXPECT_NEAR(total / count, profile.mean_bandwidth_bps,
              0.2 * profile.mean_bandwidth_bps)
      << profile.name;
}

TEST_P(ChannelProfileSweep, TimeOrderIndependentOfQuerySpacing) {
  // Same seed, different query cadence: the state is stochastic but must
  // stay within the same regime (no pathological drift from tiny steps).
  const auto profile = all_profiles()[static_cast<std::size_t>(GetParam())];
  GaussMarkovChannel fine{profile, 77};
  GaussMarkovChannel coarse{profile, 77};
  double fine_mean = 0.0;
  int fine_n = 0;
  for (double t = 0; t < 100; t += 0.5) {
    fine_mean += fine.at(t).bandwidth_bps;
    ++fine_n;
  }
  double coarse_mean = 0.0;
  int coarse_n = 0;
  for (double t = 0; t < 100; t += 10) {
    coarse_mean += coarse.at(t).bandwidth_bps;
    ++coarse_n;
  }
  fine_mean /= fine_n;
  coarse_mean /= coarse_n;
  EXPECT_GT(fine_mean, 0.2 * coarse_mean) << profile.name;
  EXPECT_LT(fine_mean, 5.0 * coarse_mean) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(Profiles, ChannelProfileSweep, ::testing::Range(0, 5));

class TcpBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpBandwidthSweep, GoodputNeverExceedsLink) {
  const double bw = GetParam();
  TcpModel tcp{42};
  const ChannelState state{.bandwidth_bps = bw, .rtt_ms = 60.0,
                           .loss_rate = 1e-4};
  const auto r = tcp.download(4'000'000, state);
  EXPECT_LE(r.goodput_bps, bw * 1.05) << bw;
  EXPECT_GT(r.goodput_bps, 0.0);
  EXPECT_NEAR(r.stats.bdp_bytes, bw * 0.060 / 8.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, TcpBandwidthSweep,
                         ::testing::Values(2e5, 1e6, 4e6, 1.2e7, 5e7));

}  // namespace
}  // namespace vqoe::net

#include "vqoe/net/cell.h"

#include <gtest/gtest.h>

namespace vqoe::net {
namespace {

TEST(CellLoadChannel, ValidatesInputs) {
  EXPECT_THROW(CellLoadChannel({}, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(CellLoadChannel({}, 1.5, 1), std::invalid_argument);
  CellConfig bad;
  bad.capacity_bps = 0.0;
  EXPECT_THROW(CellLoadChannel(bad, 1.0, 1), std::invalid_argument);
}

TEST(CellLoadChannel, OfferedLoad) {
  CellConfig config;
  config.mean_arrivals_per_s = 0.1;
  config.mean_holding_s = 100.0;
  EXPECT_DOUBLE_EQ(offered_load_erlangs(config), 10.0);
}

TEST(CellLoadChannel, StatesPhysical) {
  CellLoadChannel ch{{}, 0.8, 3};
  for (double t = 0; t < 600; t += 2.5) {
    const auto s = ch.at(t);
    EXPECT_GT(s.bandwidth_bps, 0.0);
    EXPECT_GT(s.rtt_ms, 0.0);
    EXPECT_GE(s.loss_rate, 0.0);
    EXPECT_LE(s.loss_rate, 0.5);
    EXPECT_GE(ch.active_users(), 0);
  }
}

TEST(CellLoadChannel, DeterministicForSeed) {
  CellLoadChannel a{{}, 0.9, 7};
  CellLoadChannel b{{}, 0.9, 7};
  for (double t = 0; t < 100; t += 3.3) {
    EXPECT_DOUBLE_EQ(a.at(t).bandwidth_bps, b.at(t).bandwidth_bps);
  }
}

TEST(CellLoadChannel, PopulationHoversAroundOfferedLoad) {
  CellConfig config;
  config.mean_arrivals_per_s = 0.2;
  config.mean_holding_s = 50.0;  // 10 Erlangs
  double total = 0.0;
  int count = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    CellLoadChannel ch{config, 1.0, seed};
    for (double t = 0; t < 500; t += 25) {
      ch.at(t);
      total += ch.active_users();
      ++count;
    }
  }
  EXPECT_NEAR(total / count, offered_load_erlangs(config),
              0.25 * offered_load_erlangs(config));
}

TEST(CellLoadChannel, HigherLoadMeansLessBandwidthMoreRtt) {
  CellConfig light, heavy;
  light.mean_arrivals_per_s = 0.01;  // 1.2 Erlangs
  heavy.mean_arrivals_per_s = 0.3;   // 36 Erlangs
  double light_bw = 0.0, heavy_bw = 0.0, light_rtt = 0.0, heavy_rtt = 0.0;
  int n = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CellLoadChannel a{light, 1.0, seed};
    CellLoadChannel b{heavy, 1.0, seed};
    for (double t = 0; t < 300; t += 15) {
      light_bw += a.at(t).bandwidth_bps;
      heavy_bw += b.at(t).bandwidth_bps;
      light_rtt += a.at(t).rtt_ms;
      heavy_rtt += b.at(t).rtt_ms;
      ++n;
    }
  }
  EXPECT_GT(light_bw / n, 3.0 * heavy_bw / n);
  EXPECT_LT(light_rtt / n, heavy_rtt / n);
}

TEST(CellLoadChannel, RadioQualityScalesShare) {
  CellConfig config;
  config.mean_arrivals_per_s = 0.0;
  config.mean_holding_s = 0.0;  // frozen population
  double good = 0.0, edge = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CellLoadChannel a{config, 1.0, seed};
    CellLoadChannel b{config, 0.3, seed};
    good += a.at(10.0).bandwidth_bps;
    edge += b.at(10.0).bandwidth_bps;
  }
  EXPECT_GT(good, 2.0 * edge);
}

}  // namespace
}  // namespace vqoe::net

#include "vqoe/session/reconstruct.h"

#include <gtest/gtest.h>

#include "vqoe/workload/corpus.h"

namespace vqoe::session {
namespace {

TEST(HostClassification, KnownHosts) {
  EXPECT_TRUE(is_video_cdn_host("r3---sn-h5q7dne7.googlevideo.com"));
  EXPECT_FALSE(is_video_cdn_host("m.youtube.com"));
  EXPECT_TRUE(is_page_marker_host("m.youtube.com"));
  EXPECT_TRUE(is_page_marker_host("i.ytimg.com"));
  EXPECT_FALSE(is_page_marker_host("r3---sn-h5q7dne7.googlevideo.com"));
  EXPECT_TRUE(is_youtube_host("www.youtube.com"));
  EXPECT_FALSE(is_youtube_host("example.com"));
  EXPECT_FALSE(is_youtube_host("notyoutube.org"));
}

workload::Corpus encrypted_corpus(std::size_t sessions, std::uint64_t seed) {
  auto options = workload::encrypted_corpus_options(sessions, seed);
  options.keep_session_results = false;
  auto corpus = workload::generate_corpus(options);
  corpus.weblogs = trace::encrypt_view(std::move(corpus.weblogs));
  return corpus;
}

TEST(Reconstruct, RecoversSessionCount) {
  const auto corpus = encrypted_corpus(40, 1);
  const auto sessions = reconstruct(corpus.weblogs);
  // Some under/over-segmentation is acceptable; gross mismatches are not.
  EXPECT_GE(sessions.size(), 36u);
  EXPECT_LE(sessions.size(), 46u);
}

TEST(Reconstruct, SessionsOrderedAndWellFormed) {
  const auto corpus = encrypted_corpus(25, 2);
  const auto sessions = reconstruct(corpus.weblogs);
  for (const auto& s : sessions) {
    EXPECT_FALSE(s.media.empty());
    EXPECT_LE(s.start_time_s, s.end_time_s);
    double prev = 0.0;
    for (const auto& r : s.media) {
      EXPECT_TRUE(is_video_cdn_host(r.host));
      EXPECT_GE(r.timestamp_s, prev);
      prev = r.timestamp_s;
    }
  }
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    if (sessions[i].subscriber_id == sessions[i - 1].subscriber_id) {
      EXPECT_GE(sessions[i].start_time_s, sessions[i - 1].start_time_s);
    }
  }
}

TEST(Reconstruct, IgnoresNonYouTubeTraffic) {
  auto corpus = encrypted_corpus(10, 3);
  // Inject cross traffic from the same subscriber.
  trace::WeblogRecord alien;
  alien.subscriber_id = corpus.truths.front().subscriber_id;
  alien.host = "cdn.example.net";
  alien.timestamp_s = corpus.weblogs.front().timestamp_s + 1.0;
  alien.object_size_bytes = 5'000'000;
  corpus.weblogs.push_back(alien);

  const auto sessions = reconstruct(corpus.weblogs);
  for (const auto& s : sessions) {
    for (const auto& r : s.media) EXPECT_NE(r.host, "cdn.example.net");
  }
}

TEST(Reconstruct, SplitsOnIdleGap) {
  // Two synthetic bursts of media separated by a long gap must become two
  // sessions even without page markers.
  std::vector<trace::WeblogRecord> records;
  auto add_media = [&](double t) {
    trace::WeblogRecord r;
    r.subscriber_id = "s";
    r.host = "r1---sn-abc.googlevideo.com";
    r.timestamp_s = t;
    r.transaction_time_s = 1.0;
    r.object_size_bytes = 400'000;
    r.encrypted = true;
    records.push_back(r);
  };
  for (double t = 0; t < 50; t += 5) add_media(t);
  for (double t = 300; t < 350; t += 5) add_media(t);

  ReconstructionOptions options;
  options.use_page_markers = false;
  const auto sessions = reconstruct(records, options);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].media.size(), 10u);
  EXPECT_EQ(sessions[1].media.size(), 10u);
}

TEST(Reconstruct, SplitsOnPageMarkerAfterMedia) {
  std::vector<trace::WeblogRecord> records;
  auto add = [&](double t, const std::string& host, std::uint64_t size) {
    trace::WeblogRecord r;
    r.subscriber_id = "s";
    r.host = host;
    r.timestamp_s = t;
    r.transaction_time_s = 0.5;
    r.object_size_bytes = size;
    r.encrypted = true;
    records.push_back(r);
  };
  add(0.0, "m.youtube.com", 40'000);
  for (double t = 1; t < 20; t += 4) add(t, "r1---sn-abc.googlevideo.com", 500'000);
  add(21.0, "m.youtube.com", 40'000);  // user opens the next video
  for (double t = 22; t < 40; t += 4) add(t, "r1---sn-abc.googlevideo.com", 500'000);

  const auto sessions = reconstruct(records);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].media.size(), 5u);
  EXPECT_EQ(sessions[1].media.size(), 5u);
}

TEST(Reconstruct, SeparatesSubscribers) {
  const auto c1 = encrypted_corpus(5, 4);
  auto c2 = encrypted_corpus(5, 5);
  std::vector<trace::WeblogRecord> all = c1.weblogs;
  for (auto r : c2.weblogs) {
    r.subscriber_id = "other-subscriber";
    all.push_back(r);
  }
  const auto sessions = reconstruct(all);
  std::set<std::string> subscribers;
  for (const auto& s : sessions) subscribers.insert(s.subscriber_id);
  EXPECT_EQ(subscribers.size(), 2u);
}

TEST(MatchGroundTruth, MatchesByTimestamp) {
  const auto corpus = encrypted_corpus(30, 6);
  const auto sessions = reconstruct(corpus.weblogs);
  const auto matches = match_ground_truth(sessions, corpus.truths);
  ASSERT_EQ(matches.size(), sessions.size());

  std::size_t matched = 0;
  std::set<std::size_t> used;
  for (const auto& m : matches) {
    if (!m) continue;
    ++matched;
    EXPECT_TRUE(used.insert(*m).second) << "truth matched twice";
  }
  EXPECT_GE(matched, corpus.truths.size() * 8 / 10);
}

TEST(ReconstructionAccuracy, HighOnCleanCorpus) {
  const auto corpus = encrypted_corpus(50, 7);
  const auto sessions = reconstruct(corpus.weblogs);
  const double acc = reconstruction_accuracy(sessions, corpus.truths);
  // "The vast majority of the sessions" (Section 5.2).
  EXPECT_GT(acc, 0.8);
}

TEST(ReconstructionAccuracy, EmptyTruthsIsZero) {
  EXPECT_DOUBLE_EQ(reconstruction_accuracy({}, {}), 0.0);
}

}  // namespace
}  // namespace vqoe::session

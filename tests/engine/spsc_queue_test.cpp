#include "vqoe/engine/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace vqoe::engine {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

TEST(SpscQueue, FifoFillAndDrain) {
  SpscQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(int{i}));
  EXPECT_EQ(queue.size(), 8u);
  int rejected = 99;
  EXPECT_FALSE(queue.try_push(std::move(rejected)));

  int value = -1;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(queue.try_pop(value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.try_pop(value));
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, WrapsAroundManyTimes) {
  SpscQueue<std::uint64_t> queue(4);
  std::uint64_t next_out = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(queue.try_push(std::uint64_t{i}));
    if (i % 3 == 2) {  // drain in uneven bursts to exercise the mask math
      std::uint64_t value = 0;
      while (queue.try_pop(value)) EXPECT_EQ(value, next_out++);
    }
  }
  std::uint64_t value = 0;
  while (queue.try_pop(value)) EXPECT_EQ(value, next_out++);
  EXPECT_EQ(next_out, 10'000u);
}

TEST(SpscQueue, MovesOwnershipThroughTheRing) {
  SpscQueue<std::vector<int>> queue(2);
  ASSERT_TRUE(queue.try_push(std::vector<int>{1, 2, 3}));
  std::vector<int> out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(SpscQueue, TwoThreadStressLosslessAndOrdered) {
  constexpr std::uint64_t kCount = 500'000;
  SpscQueue<std::uint64_t> queue(64);

  std::thread producer([&queue] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      std::uint64_t value = i;
      while (!queue.try_push(std::move(value))) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kCount) {
    std::uint64_t value = 0;
    if (!queue.try_pop(value)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(value, expected);  // strict FIFO, nothing lost or duplicated
    sum += value;
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace vqoe::engine

// MonitorEngine invariants.
//
// The core one (ISSUE acceptance): with the lossless Block policy the
// engine is *deterministically equivalent* to a sequential OnlineMonitor —
// same records in, same multiset of CompletedSession reports out, for any
// shard count and for every ServiceTraits profile. Plus: the watermark
// clock closes sessions on idle shards mid-stream, and DropNewest sheds
// records while keeping counters consistent and reports well-formed.
#include "vqoe/engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "vqoe/workload/corpus.h"
#include "vqoe/workload/service.h"

namespace vqoe::engine {
namespace {

using core::CompletedSession;
using core::OnlineMonitor;
using core::OnlineMonitorConfig;
using core::QoePipeline;

/// Everything externally observable about a completed session. Doubles are
/// compared exactly: both paths run the identical code on identical chunks.
using SessionKey = std::tuple<std::string, double, double, std::size_t, int,
                              int, bool, double>;

SessionKey key_of(const CompletedSession& s) {
  return {s.subscriber_id,
          s.start_time_s,
          s.end_time_s,
          s.chunk_count,
          static_cast<int>(s.report.stall),
          static_cast<int>(s.report.representation),
          s.report.quality_switches,
          s.report.switch_score};
}

std::vector<SessionKey> sorted_keys(const std::vector<CompletedSession>& all) {
  std::vector<SessionKey> keys;
  keys.reserve(all.size());
  for (const auto& s : all) keys.push_back(key_of(s));
  std::sort(keys.begin(), keys.end());
  return keys;
}

OnlineMonitorConfig monitor_config_for(const workload::ServiceTraits& service) {
  OnlineMonitorConfig config;
  config.reconstruction.cdn_suffixes = service.cdn_suffixes();
  config.reconstruction.page_marker_hosts = service.page_marker_hosts();
  config.reconstruction.service_suffixes = service.service_suffixes();
  return config;
}

class MonitorEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto train_options = workload::has_corpus_options(300, 171);
    train_options.keep_session_results = false;
    pipeline_ = std::make_unique<QoePipeline>(QoePipeline::train(
        core::sessions_from_corpus(workload::generate_corpus(train_options))));
  }
  static void TearDownTestSuite() { pipeline_.reset(); }

  static std::unique_ptr<QoePipeline> pipeline_;
};

std::unique_ptr<QoePipeline> MonitorEngineTest::pipeline_;

/// A hand-built media chunk on the default (YouTube) CDN.
trace::WeblogRecord media_record(const std::string& subscriber, double t_s,
                                 std::uint64_t bytes = 900'000) {
  trace::WeblogRecord r;
  r.subscriber_id = subscriber;
  r.timestamp_s = t_s;
  r.transaction_time_s = 0.0;
  r.object_size_bytes = bytes;
  r.host = "r3---sn-h5q7dne7.googlevideo.com";
  r.kind = trace::RecordKind::media;
  r.encrypted = true;
  return r;
}

TEST_F(MonitorEngineTest, RouterIsStableAndInRange) {
  const ShardRouter router(4);
  for (int i = 0; i < 100; ++i) {
    const std::string subscriber = "sub-" + std::to_string(i);
    const std::size_t shard = router.shard_of(subscriber);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, router.shard_of(subscriber));  // deterministic
  }
  // All four services' subscribers spread over more than one shard.
  std::vector<bool> hit(4, false);
  for (int i = 0; i < 100; ++i) hit[router.shard_of("sub-" + std::to_string(i))] = true;
  EXPECT_GT(std::count(hit.begin(), hit.end(), true), 1);
}

TEST_F(MonitorEngineTest, EquivalentToSequentialMonitorAcrossShardCountsAndServices) {
  const std::vector<workload::ServiceTraits> services = {
      workload::youtube_service(), workload::vimeo_like_service(),
      workload::dailymotion_like_service(), workload::netflix_like_service()};

  std::uint64_t seed = 1800;
  for (const auto& service : services) {
    auto live_options = workload::encrypted_corpus_options(40, seed++);
    live_options.service = service;
    live_options.subscribers = 16;  // spread load over the shards
    live_options.keep_session_results = false;
    auto corpus = workload::generate_corpus(live_options);
    const auto records = trace::encrypt_view(std::move(corpus.weblogs));
    ASSERT_FALSE(records.empty()) << service.name;

    const OnlineMonitorConfig monitor_config = monitor_config_for(service);

    // Sequential ground truth.
    OnlineMonitor sequential{*pipeline_, monitor_config};
    std::vector<CompletedSession> expected;
    for (const auto& record : records) {
      auto done = sequential.ingest(record);
      expected.insert(expected.end(), std::make_move_iterator(done.begin()),
                      std::make_move_iterator(done.end()));
    }
    auto rest = sequential.flush();
    expected.insert(expected.end(), std::make_move_iterator(rest.begin()),
                    std::make_move_iterator(rest.end()));
    ASSERT_FALSE(expected.empty()) << service.name;
    const auto expected_keys = sorted_keys(expected);

    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      EngineConfig config;
      config.shards = shards;
      config.queue_capacity = 256;
      config.backpressure = BackpressurePolicy::Block;
      config.monitor = monitor_config;
      MonitorEngine engine{*pipeline_, config};

      std::vector<CompletedSession> actual;
      std::size_t fed = 0;
      for (const auto& record : records) {
        ASSERT_TRUE(engine.ingest(record));
        if (++fed % 1024 == 0) {  // interleave mid-stream harvesting
          auto got = engine.harvest();
          actual.insert(actual.end(), std::make_move_iterator(got.begin()),
                        std::make_move_iterator(got.end()));
        }
      }
      auto got = engine.drain();
      actual.insert(actual.end(), std::make_move_iterator(got.begin()),
                    std::make_move_iterator(got.end()));

      EXPECT_EQ(sorted_keys(actual), expected_keys)
          << service.name << " with " << shards << " shards";

      const EngineStats stats = engine.stats();
      EXPECT_EQ(stats.records_in, stats.records_out) << service.name;
      EXPECT_EQ(stats.dropped, 0u) << service.name;
      EXPECT_EQ(stats.sessions_reported, actual.size()) << service.name;
      EXPECT_EQ(stats.shards.size(), shards);
    }
  }
}

TEST_F(MonitorEngineTest, WatermarkClosesSessionsOnIdleShards) {
  EngineConfig config;
  config.shards = 2;
  config.watermark_interval_s = 5.0;
  MonitorEngine engine{*pipeline_, config};

  // Subscriber A streams three chunks and goes silent.
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(engine.ingest(media_record("sub-a", 1.0 + i)));

  // Subscriber B shows up far past A's idle gap; the piggybacked watermark
  // broadcast must close A's session on A's shard even though that shard
  // never sees another record for A.
  ASSERT_TRUE(engine.ingest(media_record("sub-b", 500.0)));

  std::vector<CompletedSession> harvested;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (harvested.empty() && std::chrono::steady_clock::now() < deadline) {
    harvested = engine.harvest();
    if (harvested.empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(harvested.size(), 1u);
  EXPECT_EQ(harvested.front().subscriber_id, "sub-a");
  EXPECT_EQ(harvested.front().chunk_count, 3u);

  // Explicit advance_to ticks work the same way for B.
  engine.advance_to(1000.0);
  auto done = engine.drain();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done.front().subscriber_id, "sub-b");
}

TEST_F(MonitorEngineTest, DropNewestShedsButStaysConsistent) {
  auto live_options = workload::encrypted_corpus_options(60, 1901);
  live_options.subscribers = 8;
  live_options.keep_session_results = false;
  auto corpus = workload::generate_corpus(live_options);
  const auto records = trace::encrypt_view(std::move(corpus.weblogs));

  EngineConfig config;
  config.shards = 2;
  config.queue_capacity = 2;  // force overflow
  config.backpressure = BackpressurePolicy::DropNewest;
  MonitorEngine engine{*pipeline_, config};

  std::uint64_t rejected = 0;
  for (const auto& record : records) {
    if (!engine.ingest(record)) ++rejected;
  }
  const auto sessions = engine.drain();
  const EngineStats stats = engine.stats();

  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.dropped, rejected);
  EXPECT_EQ(stats.records_in, stats.records_out + stats.dropped);
  EXPECT_EQ(stats.records_in, records.size());
  EXPECT_EQ(stats.sessions_reported, sessions.size());

  // Whatever survived the shedding is still a well-formed report.
  for (const auto& s : sessions) {
    EXPECT_FALSE(s.subscriber_id.empty());
    EXPECT_GE(s.chunk_count, config.monitor.min_chunks);
    EXPECT_GE(s.end_time_s, s.start_time_s);
  }
}

TEST_F(MonitorEngineTest, IngestAfterDrainIsRejected) {
  MonitorEngine engine{*pipeline_};
  ASSERT_TRUE(engine.ingest(media_record("sub-a", 1.0)));
  (void)engine.drain();
  EXPECT_FALSE(engine.ingest(media_record("sub-a", 2.0)));
  EXPECT_TRUE(engine.drain().empty());  // idempotent
}

TEST_F(MonitorEngineTest, PerShardIngestTimeIsAccounted) {
  MonitorEngine engine{*pipeline_};
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(engine.ingest(media_record("sub-" + std::to_string(i % 8),
                                           1.0 + 0.1 * i)));
  (void)engine.drain();
  const EngineStats stats = engine.stats();
  std::uint64_t total_ns = 0;
  for (const auto& shard : stats.shards) total_ns += shard.ingest_ns;
  EXPECT_GT(total_ns, 0u);
  EXPECT_EQ(stats.records_out, 50u);
}

}  // namespace
}  // namespace vqoe::engine

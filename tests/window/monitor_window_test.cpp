// Windowed OnlineMonitor semantics: mid-session verdicts, pinned boundary
// handling, and the full-session-window bit-identity with the session-close
// assessment path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vqoe/core/online.h"
#include "vqoe/workload/corpus.h"

namespace vqoe::core {
namespace {

class MonitorWindowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto train_options = workload::has_corpus_options(300, 23);
    train_options.keep_session_results = false;
    pipeline_ = std::make_unique<QoePipeline>(QoePipeline::train(
        sessions_from_corpus(workload::generate_corpus(train_options))));
  }
  static void TearDownTestSuite() { pipeline_.reset(); }

  static std::unique_ptr<QoePipeline> pipeline_;
};

std::unique_ptr<QoePipeline> MonitorWindowTest::pipeline_;

trace::WeblogRecord media_record(const std::string& subscriber, double t_s,
                                 std::uint64_t bytes = 900'000) {
  trace::WeblogRecord r;
  r.subscriber_id = subscriber;
  r.timestamp_s = t_s;
  r.transaction_time_s = 0.0;
  r.object_size_bytes = bytes;
  r.host = "r3---sn-h5q7dne7.googlevideo.com";
  r.kind = trace::RecordKind::media;
  r.encrypted = true;
  return r;
}

OnlineMonitorConfig windowed_config(double length_s, double hop_s = 0.0,
                                    std::size_t window_min_chunks = 1) {
  OnlineMonitorConfig config;
  config.window.length_s = length_s;
  config.window.hop_s = hop_s;
  config.window.min_chunks = window_min_chunks;
  return config;
}

TEST_F(MonitorWindowTest, EmitsVerdictsMidSession) {
  OnlineMonitor monitor{*pipeline_, windowed_config(10.0)};
  // One chunk per second for 25 seconds: windows [0,10) and [10,20) close
  // while the session is still open.
  for (double t = 0.0; t < 25.0; t += 1.0) {
    EXPECT_TRUE(monitor.ingest(media_record("s", t)).empty());
  }
  EXPECT_EQ(monitor.open_sessions(), 1u);
  auto verdicts = monitor.take_verdicts();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].window_index, 0u);
  EXPECT_DOUBLE_EQ(verdicts[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(verdicts[0].end_s, 10.0);
  EXPECT_EQ(verdicts[0].chunk_count, 10u);  // t = 0..9
  EXPECT_FALSE(verdicts[0].final_window);
  EXPECT_EQ(verdicts[1].window_index, 1u);
  EXPECT_EQ(verdicts[1].chunk_count, 10u);  // t = 10..19
  EXPECT_GT(verdicts[0].stall_confidence, 0.0);
  EXPECT_LE(verdicts[0].stall_confidence, 1.0);

  // Session close truncates the tail window [20, 30) at the last activity.
  const auto done = monitor.flush();
  ASSERT_EQ(done.size(), 1u);
  verdicts = monitor.take_verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].window_index, 2u);
  EXPECT_TRUE(verdicts[0].final_window);
  EXPECT_DOUBLE_EQ(verdicts[0].end_s, 24.0);
  EXPECT_EQ(verdicts[0].chunk_count, 5u);  // t = 20..24
  EXPECT_EQ(monitor.windows_closed(), 3u);
  EXPECT_EQ(monitor.verdicts_emitted(), 3u);
}

// The ISSUE's boundary regression: a record landing exactly on a window
// boundary is attributed deterministically — it closes the expiring window
// without joining it, and opens/joins the next one.
TEST_F(MonitorWindowTest, RecordExactlyAtWindowEndIsAttributedToNextWindow) {
  OnlineMonitor monitor{*pipeline_, windowed_config(10.0)};
  EXPECT_TRUE(monitor.ingest(media_record("s", 0.0)).empty());
  EXPECT_TRUE(monitor.ingest(media_record("s", 5.0)).empty());
  // Exactly at the end of window [0, 10):
  EXPECT_TRUE(monitor.ingest(media_record("s", 10.0)).empty());
  auto verdicts = monitor.take_verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].window_index, 0u);
  EXPECT_EQ(verdicts[0].chunk_count, 2u);  // t=10 is NOT in [0, 10)
  (void)monitor.flush();
  verdicts = monitor.take_verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].window_index, 1u);
  EXPECT_EQ(verdicts[0].chunk_count, 1u);  // t=10 opened window [10, 20)
}

// An advance_to tick exactly at a window end closes the window, and the
// same tick exactly at the idle-gap boundary does NOT close the session —
// the two boundary rules compose deterministically.
TEST_F(MonitorWindowTest, TickAtWindowEndClosesWindowNotSession) {
  OnlineMonitorConfig config = windowed_config(30.0);
  const double gap = config.reconstruction.idle_gap_s;
  ASSERT_DOUBLE_EQ(gap, 30.0);  // window end and idle gap coincide below
  OnlineMonitor monitor{*pipeline_, config};
  EXPECT_TRUE(monitor.ingest(media_record("s", 0.0)).empty());
  // t=30 is both the end of window [0,30) and last_activity + idle_gap.
  EXPECT_TRUE(monitor.advance_to(30.0).empty());  // session survives
  EXPECT_EQ(monitor.open_sessions(), 1u);
  const auto verdicts = monitor.take_verdicts();
  ASSERT_EQ(verdicts.size(), 1u);  // ...but the window closed
  EXPECT_EQ(verdicts[0].window_index, 0u);
  EXPECT_FALSE(verdicts[0].final_window);
  // A same-instant record still extends the session into window 1.
  EXPECT_TRUE(monitor.ingest(media_record("s", 30.0)).empty());
  const auto done = monitor.flush();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].chunk_count, 2u);
}

TEST_F(MonitorWindowTest, WindowMinChunksGatesVerdictsNotCounters) {
  OnlineMonitor monitor{*pipeline_, windowed_config(10.0, 0.0, 3)};
  // Window 0 gets 2 chunks (below the gate), window 1 gets 4.
  EXPECT_TRUE(monitor.ingest(media_record("s", 0.0)).empty());
  EXPECT_TRUE(monitor.ingest(media_record("s", 5.0)).empty());
  for (double t = 11.0; t < 15.0; t += 1.0) {
    EXPECT_TRUE(monitor.ingest(media_record("s", t)).empty());
  }
  (void)monitor.flush();
  const auto verdicts = monitor.take_verdicts();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].window_index, 1u);
  EXPECT_EQ(monitor.windows_closed(), 2u);   // both windows counted
  EXPECT_EQ(monitor.verdicts_emitted(), 1u); // one scored
}

TEST_F(MonitorWindowTest, DisabledWindowingEmitsNothing) {
  OnlineMonitor monitor{*pipeline_};
  for (double t = 0.0; t < 100.0; t += 1.0) {
    (void)monitor.ingest(media_record("s", t));
  }
  (void)monitor.flush();
  EXPECT_TRUE(monitor.take_verdicts().empty());
  EXPECT_EQ(monitor.windows_closed(), 0u);
  EXPECT_EQ(monitor.verdicts_emitted(), 0u);
}

// ISSUE satellite 3 (sequential half): a full-session window — length
// larger than any session — must reproduce the session-close verdict
// bit-identically, because both run QoePipeline::assess over the same
// chunk span with the same scratch path.
TEST_F(MonitorWindowTest, FullSessionWindowMatchesSessionCloseBitIdentical) {
  auto live_options = workload::encrypted_corpus_options(50, 29);
  live_options.keep_session_results = false;
  auto corpus = workload::generate_corpus(live_options);
  const auto records = trace::encrypt_view(std::move(corpus.weblogs));
  ASSERT_FALSE(records.empty());

  OnlineMonitor monitor{*pipeline_, windowed_config(1e9)};
  std::vector<CompletedSession> sessions;
  for (const auto& record : records) {
    auto done = monitor.ingest(record);
    sessions.insert(sessions.end(), std::make_move_iterator(done.begin()),
                    std::make_move_iterator(done.end()));
  }
  auto rest = monitor.flush();
  sessions.insert(sessions.end(), std::make_move_iterator(rest.begin()),
                  std::make_move_iterator(rest.end()));
  auto verdicts = monitor.take_verdicts();
  ASSERT_FALSE(sessions.empty());

  // Exactly one final, never-hopped window per reported session.
  ASSERT_EQ(verdicts.size(), sessions.size());
  EXPECT_EQ(monitor.verdicts_emitted(), monitor.sessions_reported());

  std::map<std::pair<std::string, double>, const window::WindowVerdict*>
      by_session;
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.final_window);
    EXPECT_EQ(v.window_index, 0u);
    by_session[{v.subscriber_id, v.end_s}] = &v;
  }
  for (const auto& s : sessions) {
    const auto it = by_session.find({s.subscriber_id, s.end_time_s});
    ASSERT_NE(it, by_session.end()) << s.subscriber_id;
    const window::WindowVerdict& v = *it->second;
    EXPECT_EQ(v.chunk_count, s.chunk_count);
    EXPECT_EQ(v.stall, static_cast<std::uint8_t>(s.report.stall));
    EXPECT_EQ(v.representation,
              static_cast<std::uint8_t>(s.report.representation));
    EXPECT_EQ(v.quality_switches, s.report.quality_switches);
    EXPECT_EQ(v.switch_score, s.report.switch_score);  // bit-identical
  }
}

}  // namespace
}  // namespace vqoe::core

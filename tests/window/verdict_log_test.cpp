// Verdict stream framing: codec round-trip, bound validation, and the
// spool-level payload-tag gate (a verdict spool cannot be misread as a
// record spool or vice versa).
#include "vqoe/window/verdict_log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "vqoe/wire/spool.h"

namespace vqoe::window {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("vqoe_vlog_" + name);
  fs::remove_all(dir);
  return dir;
}

WindowVerdict sample_verdict(int i) {
  WindowVerdict v;
  v.subscriber_id = "sub-" + std::to_string(i);
  v.window_index = static_cast<std::uint64_t>(i);
  v.start_s = 10.0 * i;
  v.end_s = 10.0 * i + 10.0;
  v.chunk_count = static_cast<std::uint32_t>(3 + i);
  v.final_window = (i % 2) == 1;
  v.stall = static_cast<std::uint8_t>(i % 3);
  v.representation = static_cast<std::uint8_t>((i + 1) % 3);
  v.quality_switches = (i % 3) == 0;
  v.switch_score = 123.456 + i;
  v.stall_confidence = 0.5 + 0.01 * i;
  v.repr_confidence = 0.25 + 0.01 * i;
  v.window_cusum = 77.5 * i;
  v.mean_goodput_kbps = 2'500.0 + i;
  return v;
}

void expect_equal(const WindowVerdict& a, const WindowVerdict& b) {
  EXPECT_EQ(a.subscriber_id, b.subscriber_id);
  EXPECT_EQ(a.window_index, b.window_index);
  EXPECT_DOUBLE_EQ(a.start_s, b.start_s);
  EXPECT_DOUBLE_EQ(a.end_s, b.end_s);
  EXPECT_EQ(a.chunk_count, b.chunk_count);
  EXPECT_EQ(a.final_window, b.final_window);
  EXPECT_EQ(a.stall, b.stall);
  EXPECT_EQ(a.representation, b.representation);
  EXPECT_EQ(a.quality_switches, b.quality_switches);
  EXPECT_DOUBLE_EQ(a.switch_score, b.switch_score);
  EXPECT_DOUBLE_EQ(a.stall_confidence, b.stall_confidence);
  EXPECT_DOUBLE_EQ(a.repr_confidence, b.repr_confidence);
  EXPECT_DOUBLE_EQ(a.window_cusum, b.window_cusum);
  EXPECT_DOUBLE_EQ(a.mean_goodput_kbps, b.mean_goodput_kbps);
}

TEST(VerdictCodec, RoundTripsEveryField) {
  std::vector<WindowVerdict> verdicts;
  for (int i = 0; i < 5; ++i) verdicts.push_back(sample_verdict(i));
  std::vector<std::uint8_t> payload;
  encode_verdicts(verdicts, payload);
  const auto decoded = decode_verdicts(payload.data(), payload.size());
  ASSERT_EQ(decoded.size(), verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    expect_equal(decoded[i], verdicts[i]);
  }
}

TEST(VerdictCodec, EmptyBatchRoundTrips) {
  std::vector<std::uint8_t> payload;
  encode_verdicts({}, payload);
  EXPECT_TRUE(decode_verdicts(payload.data(), payload.size()).empty());
}

TEST(VerdictCodec, RejectsTrailingBytes) {
  std::vector<WindowVerdict> verdicts = {sample_verdict(0)};
  std::vector<std::uint8_t> payload;
  encode_verdicts(verdicts, payload);
  payload.push_back(0x00);
  EXPECT_THROW((void)decode_verdicts(payload.data(), payload.size()),
               wire::WireError);
}

TEST(VerdictCodec, RejectsTruncation) {
  std::vector<WindowVerdict> verdicts = {sample_verdict(0), sample_verdict(1)};
  std::vector<std::uint8_t> payload;
  encode_verdicts(verdicts, payload);
  for (const std::size_t keep : {payload.size() - 1, payload.size() / 2,
                                 std::size_t{1}}) {
    EXPECT_THROW((void)decode_verdicts(payload.data(), keep), wire::WireError)
        << keep;
  }
}

TEST(VerdictCodec, RejectsUnknownFlagBits) {
  std::vector<WindowVerdict> verdicts = {sample_verdict(2)};
  std::vector<std::uint8_t> payload;
  encode_verdicts(verdicts, payload);
  // Layout: count, sub_len, bytes, window_index, 2 x f64, chunk_count, flags.
  const std::size_t flags_at = 1 + 1 + verdicts[0].subscriber_id.size() + 1 +
                               16 + 1;
  ASSERT_LT(flags_at, payload.size());
  payload[flags_at] |= 0x80;
  try {
    (void)decode_verdicts(payload.data(), payload.size());
    FAIL() << "unknown flag bits must be rejected";
  } catch (const wire::WireError& e) {
    EXPECT_NE(std::string{e.what()}.find("flags"), std::string::npos);
  }
}

TEST(VerdictSpool, WriteReadRoundTrip) {
  const fs::path dir = fresh_dir("roundtrip");
  std::vector<WindowVerdict> all;
  {
    VerdictSpoolWriter writer{dir};
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<WindowVerdict> verdicts;
      for (int i = 0; i < 4; ++i) {
        verdicts.push_back(sample_verdict(batch * 4 + i));
      }
      writer.append(verdicts);
      all.insert(all.end(), verdicts.begin(), verdicts.end());
    }
    EXPECT_EQ(writer.verdicts_written(), all.size());
    EXPECT_EQ(writer.frames_written(), 3u);
    writer.close();
  }
  VerdictSpoolReader reader{dir};
  const auto got = reader.read_all();
  EXPECT_FALSE(reader.torn_tail());
  ASSERT_EQ(got.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) expect_equal(got[i], all[i]);
  fs::remove_all(dir);
}

TEST(VerdictSpool, RecordReaderRejectsVerdictSpool) {
  const fs::path dir = fresh_dir("tag_gate_a");
  {
    VerdictSpoolWriter writer{dir};
    std::vector<WindowVerdict> verdicts = {sample_verdict(0)};
    writer.append(verdicts);
    writer.close();
  }
  try {
    (void)wire::read_spool(dir);
    FAIL() << "a record reader must reject a verdict-tagged spool";
  } catch (const wire::WireError& e) {
    EXPECT_NE(std::string{e.what()}.find("payload mismatch"),
              std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(VerdictSpool, VerdictReaderRejectsRecordSpool) {
  const fs::path dir = fresh_dir("tag_gate_b");
  {
    wire::SpoolWriter writer{dir};  // default: record payload tag
    trace::WeblogRecord r;
    r.subscriber_id = "s";
    r.host = "h";
    writer.append(&r, 1);
    writer.close();
  }
  VerdictSpoolReader reader{dir};
  WindowVerdict out;
  try {
    (void)reader.next(out);
    FAIL() << "a verdict reader must reject a record-tagged spool";
  } catch (const wire::WireError& e) {
    EXPECT_NE(std::string{e.what()}.find("payload mismatch"),
              std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vqoe::window

// vqoe::window unit invariants: the O(1) accumulator agrees with batch
// statistics over the same chunks, and the SessionWindows schedule obeys
// the pinned boundary semantics (chunk at a window end -> next window;
// tick at a window end -> closes the window).
#include "vqoe/window/window.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "vqoe/ts/cusum.h"
#include "vqoe/ts/online.h"

namespace vqoe::window {
namespace {

net::TransportStats transport_for(int i) {
  net::TransportStats t;
  t.rtt_min_ms = 20.0 + i;
  t.rtt_avg_ms = 35.0 + 2.0 * i;
  t.rtt_max_ms = 60.0 + 3.0 * i;
  t.bdp_bytes = 40'000.0 + 1'000.0 * i;
  t.bif_avg_bytes = 15'000.0 + 500.0 * i;
  t.bif_max_bytes = 30'000.0 + 800.0 * i;
  t.loss_pct = 0.1 * i;
  t.retrans_pct = 0.05 * i;
  return t;
}

struct Chunk {
  double request_s, arrival_s, size_bytes;
  net::TransportStats transport;
};

std::vector<Chunk> sample_chunks(int n) {
  std::vector<Chunk> chunks;
  for (int i = 0; i < n; ++i) {
    const double request = 1.5 * i;
    // Varying sizes and durations so no statistic degenerates.
    const double size = 300'000.0 + 40'000.0 * ((i * 7) % 5);
    const double duration = 0.2 + 0.03 * (i % 4);
    chunks.push_back({request, request + duration, size, transport_for(i)});
  }
  return chunks;
}

TEST(WindowFeatureNames, LayoutIsStable) {
  const auto& names = window_feature_names();
  EXPECT_EQ(names.size(), 11u * 4u + 3u);
  EXPECT_EQ(names.front(), "rtt_min:min");
  EXPECT_EQ(names.back(), "cusum_dsize_dt");
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(WindowAccumulator, MatchesBatchStatistics) {
  const auto chunks = sample_chunks(20);
  WindowAccumulator acc;
  for (const Chunk& c : chunks) {
    acc.add(c.request_s, c.arrival_s, c.size_bytes, c.transport);
  }

  ts::OnlineStats size_kb, dt, goodput;
  double bytes_kb = 0.0;
  std::vector<double> signal;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const double kb = chunks[i].size_bytes / 1000.0;
    size_kb.add(kb);
    bytes_kb += kb;
    const double duration = chunks[i].arrival_s - chunks[i].request_s;
    goodput.add(chunks[i].size_bytes * 8.0 / duration / 1000.0);
    if (i > 0) {
      const double d = chunks[i].arrival_s - chunks[i - 1].arrival_s;
      dt.add(d);
      signal.push_back((kb - chunks[i - 1].size_bytes / 1000.0) * d);
    }
  }

  EXPECT_EQ(acc.chunks(), chunks.size());
  EXPECT_DOUBLE_EQ(acc.bytes_kb(), bytes_kb);
  EXPECT_DOUBLE_EQ(acc.mean_goodput_kbps(), goodput.mean());

  std::vector<double> features;
  acc.features_into(features);
  ASSERT_EQ(features.size(), window_feature_names().size());
  // chunk_size block (index 8 of the metric list), stats min/mean/max/std.
  const std::size_t size_base = 8 * 4;
  EXPECT_DOUBLE_EQ(features[size_base + 0], size_kb.min());
  EXPECT_DOUBLE_EQ(features[size_base + 1], size_kb.mean());
  EXPECT_DOUBLE_EQ(features[size_base + 2], size_kb.max());
  EXPECT_DOUBLE_EQ(features[size_base + 3], size_kb.std_dev());
  const std::size_t dt_base = 9 * 4;
  EXPECT_DOUBLE_EQ(features[dt_base + 1], dt.mean());
  EXPECT_DOUBLE_EQ(features[dt_base + 3], dt.std_dev());
  EXPECT_DOUBLE_EQ(features.back(), acc.cusum_std());

  // The incremental CUSUM agrees with the batch statistic to rounding.
  EXPECT_NEAR(acc.cusum_std(), ts::cusum_std(signal),
              1e-9 * std::max(1.0, ts::cusum_std(signal)));
}

TEST(SessionWindows, DisabledConfigIsInert) {
  SessionWindows w;
  w.start(WindowConfig{}, 0.0);
  EXPECT_FALSE(w.enabled());
  std::vector<ClosedWindow> out;
  w.add(1.0, 1.1, 500'000.0, net::TransportStats{});
  w.close_due(100.0, out);
  w.close_all(100.0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(w.in_flight(), 0u);
}

TEST(SessionWindows, TumblingScheduleAssignsAndCloses) {
  SessionWindows w;
  w.start(WindowConfig{.length_s = 10.0}, 100.0);  // anchor at 100
  const net::TransportStats t;
  // Chunks at 101..109 -> window 0; 111 -> window 1.
  for (double s = 101.0; s <= 109.0; s += 1.0) w.add(s, s + 0.1, 1e6, t);
  w.add(111.0, 111.1, 1e6, t);
  EXPECT_EQ(w.in_flight(), 2u);

  std::vector<ClosedWindow> out;
  w.close_due(110.0, out);  // tick exactly at window 0's end closes it
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].index, 0u);
  EXPECT_DOUBLE_EQ(out[0].start_s, 100.0);
  EXPECT_DOUBLE_EQ(out[0].end_s, 110.0);
  EXPECT_FALSE(out[0].final_window);
  EXPECT_EQ(out[0].acc.chunks(), 9u);

  out.clear();
  w.close_all(115.0, out);  // window 1 truncated at the session end
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].index, 1u);
  EXPECT_DOUBLE_EQ(out[0].start_s, 110.0);
  EXPECT_DOUBLE_EQ(out[0].end_s, 115.0);
  EXPECT_TRUE(out[0].final_window);
  EXPECT_EQ(out[0].acc.chunks(), 1u);
  EXPECT_EQ(w.in_flight(), 0u);
}

TEST(SessionWindows, ChunkExactlyAtWindowEndBelongsToNextWindow) {
  SessionWindows w;
  w.start(WindowConfig{.length_s = 10.0}, 0.0);
  const net::TransportStats t;
  w.add(0.0, 0.1, 1e6, t);
  w.add(10.0, 10.1, 1e6, t);  // exactly at window 0's end
  std::vector<ClosedWindow> out;
  w.close_due(10.0, out);
  // But callers close first: simulate the real order with a fresh schedule.
  SessionWindows ordered;
  ordered.start(WindowConfig{.length_s = 10.0}, 0.0);
  ordered.add(0.0, 0.1, 1e6, t);
  std::vector<ClosedWindow> closed;
  ordered.close_due(10.0, closed);  // the monitor ticks before adding
  ordered.add(10.0, 10.1, 1e6, t);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].acc.chunks(), 1u);  // only the t=0 chunk
  EXPECT_EQ(ordered.in_flight(), 1u);
  std::vector<ClosedWindow> rest;
  ordered.close_all(12.0, rest);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].index, 1u);           // t=10 chunk opened window 1
  EXPECT_EQ(rest[0].acc.chunks(), 1u);
}

TEST(SessionWindows, SlidingWindowsShareChunks) {
  // length 10, hop 5: chunk at t=7 belongs to windows [0,10) and [5,15).
  SessionWindows w;
  w.start(WindowConfig{.length_s = 10.0, .hop_s = 5.0}, 0.0);
  const net::TransportStats t;
  w.add(7.0, 7.1, 1e6, t);
  EXPECT_EQ(w.in_flight(), 2u);
  std::vector<ClosedWindow> out;
  w.close_due(15.0, out);  // closes both
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].index, 0u);
  EXPECT_EQ(out[1].index, 1u);
  EXPECT_EQ(out[0].acc.chunks(), 1u);
  EXPECT_EQ(out[1].acc.chunks(), 1u);
  EXPECT_DOUBLE_EQ(out[1].start_s, 5.0);
  EXPECT_DOUBLE_EQ(out[1].end_s, 15.0);
}

TEST(SessionWindows, IdleGapsMaterializeNoWindows) {
  // Chunks at t=1 and t=95 with 10s tumbling windows: windows 1..8 are
  // empty and must not be materialized or reported.
  SessionWindows w;
  w.start(WindowConfig{.length_s = 10.0}, 0.0);
  const net::TransportStats t;
  w.add(1.0, 1.1, 1e6, t);
  std::vector<ClosedWindow> out;
  w.close_due(95.0, out);
  ASSERT_EQ(out.size(), 1u);  // only window 0
  w.add(95.0, 95.1, 1e6, t);
  out.clear();
  w.close_all(96.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].index, 9u);  // [90, 100)
}

TEST(CusumStd, MatchesBatchOnWindowSignal) {
  std::vector<double> signal;
  ts::CusumStd inc;
  for (int i = 0; i < 200; ++i) {
    // Deterministic wiggle with sign changes and drift.
    const double x = 50.0 * ((i * 13) % 7 - 3) + 0.5 * i;
    signal.push_back(x);
    inc.add(x);
    const double batch = ts::cusum_std(signal);
    EXPECT_NEAR(inc.value(), batch, 1e-9 * std::max(1.0, batch)) << i;
  }
  EXPECT_EQ(inc.count(), 200u);
  inc.reset();
  EXPECT_EQ(inc.count(), 0u);
  EXPECT_EQ(inc.value(), 0.0);
}

}  // namespace
}  // namespace vqoe::window

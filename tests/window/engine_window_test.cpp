// MonitorEngine window-verdict invariants (the ISSUE acceptance): the
// engine emits per-window verdicts mid-session at 1/2/4/8 shards, the
// verdict stream is deterministically equivalent to a sequential
// OnlineMonitor fed the same records with the same watermark cadence, and
// a full-session window reproduces the session-close report bit-identically
// at every shard count.
#include "vqoe/engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "vqoe/workload/corpus.h"

namespace vqoe::engine {
namespace {

using core::CompletedSession;
using core::OnlineMonitor;
using core::OnlineMonitorConfig;
using core::QoePipeline;
using window::WindowVerdict;

/// Everything externally observable about a verdict. Doubles compared
/// exactly: both paths run the identical code on identical chunk spans.
using VerdictKey =
    std::tuple<std::string, std::uint64_t, double, double, std::uint32_t,
               bool, int, int, bool, double, double, double, double, double>;

VerdictKey key_of(const WindowVerdict& v) {
  return {v.subscriber_id,
          v.window_index,
          v.start_s,
          v.end_s,
          v.chunk_count,
          v.final_window,
          static_cast<int>(v.stall),
          static_cast<int>(v.representation),
          v.quality_switches,
          v.switch_score,
          v.stall_confidence,
          v.repr_confidence,
          v.window_cusum,
          v.mean_goodput_kbps};
}

std::vector<VerdictKey> sorted_keys(const std::vector<WindowVerdict>& all) {
  std::vector<VerdictKey> keys;
  keys.reserve(all.size());
  for (const auto& v : all) keys.push_back(key_of(v));
  std::sort(keys.begin(), keys.end());
  return keys;
}

class EngineWindowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto train_options = workload::has_corpus_options(300, 31);
    train_options.keep_session_results = false;
    pipeline_ = std::make_unique<QoePipeline>(QoePipeline::train(
        core::sessions_from_corpus(workload::generate_corpus(train_options))));

    auto live_options = workload::encrypted_corpus_options(40, 37);
    live_options.subscribers = 16;
    live_options.keep_session_results = false;
    auto corpus = workload::generate_corpus(live_options);
    records_ = std::make_unique<std::vector<trace::WeblogRecord>>(
        trace::encrypt_view(std::move(corpus.weblogs)));
  }
  static void TearDownTestSuite() {
    pipeline_.reset();
    records_.reset();
  }

  static std::unique_ptr<QoePipeline> pipeline_;
  static std::unique_ptr<std::vector<trace::WeblogRecord>> records_;
};

std::unique_ptr<QoePipeline> EngineWindowTest::pipeline_;
std::unique_ptr<std::vector<trace::WeblogRecord>> EngineWindowTest::records_;

OnlineMonitorConfig windowed_monitor(double length_s, double hop_s = 0.0) {
  OnlineMonitorConfig config;
  config.window.length_s = length_s;
  config.window.hop_s = hop_s;
  return config;
}

/// Sequential ground truth with the engine's watermark cadence replicated:
/// the engine broadcasts a tick before routing the record whenever the
/// stream clock advanced a full interval, so the per-subscriber sequence
/// of (ticks, records) each monitor sees is shard-count invariant.
std::pair<std::vector<WindowVerdict>, std::vector<CompletedSession>>
sequential_run(const QoePipeline& pipeline, const OnlineMonitorConfig& config,
               const std::vector<trace::WeblogRecord>& records,
               double watermark_interval_s) {
  OnlineMonitor monitor{pipeline, config};
  std::vector<CompletedSession> sessions;
  bool saw_record = false;
  double last_watermark_s = 0.0;
  for (const auto& record : records) {
    if (watermark_interval_s > 0.0) {
      if (!saw_record) {
        saw_record = true;
        last_watermark_s = record.timestamp_s;
      } else if (record.timestamp_s - last_watermark_s >=
                 watermark_interval_s) {
        last_watermark_s = record.timestamp_s;
        auto done = monitor.advance_to(record.timestamp_s);
        sessions.insert(sessions.end(), std::make_move_iterator(done.begin()),
                        std::make_move_iterator(done.end()));
      }
    }
    auto done = monitor.ingest(record);
    sessions.insert(sessions.end(), std::make_move_iterator(done.begin()),
                    std::make_move_iterator(done.end()));
  }
  auto rest = monitor.flush();
  sessions.insert(sessions.end(), std::make_move_iterator(rest.begin()),
                  std::make_move_iterator(rest.end()));
  return {monitor.take_verdicts(), std::move(sessions)};
}

TEST_F(EngineWindowTest, VerdictStreamEquivalentAcrossShardCounts) {
  const OnlineMonitorConfig monitor_config = windowed_monitor(10.0);
  const double interval = EngineConfig{}.watermark_interval_s;
  const auto [expected_verdicts, expected_sessions] =
      sequential_run(*pipeline_, monitor_config, *records_, interval);
  ASSERT_FALSE(expected_verdicts.empty());
  const auto expected_keys = sorted_keys(expected_verdicts);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    EngineConfig config;
    config.shards = shards;
    config.queue_capacity = 256;
    config.backpressure = BackpressurePolicy::Block;
    config.monitor = monitor_config;
    MonitorEngine engine{*pipeline_, config};

    std::vector<WindowVerdict> verdicts;
    std::size_t fed = 0;
    for (const auto& record : *records_) {
      ASSERT_TRUE(engine.ingest(record));
      if (++fed % 1024 == 0) {  // interleave mid-stream harvesting
        auto got = engine.harvest_verdicts();
        verdicts.insert(verdicts.end(), std::make_move_iterator(got.begin()),
                        std::make_move_iterator(got.end()));
      }
    }
    const auto sessions = engine.drain();
    auto got = engine.harvest_verdicts();
    verdicts.insert(verdicts.end(), std::make_move_iterator(got.begin()),
                    std::make_move_iterator(got.end()));

    EXPECT_EQ(sorted_keys(verdicts), expected_keys) << shards << " shards";
    EXPECT_EQ(sessions.size(), expected_sessions.size())
        << shards << " shards";

    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.verdicts_emitted, expected_verdicts.size());
    std::uint64_t per_shard_sum = 0;
    for (const auto& s : stats.shards) per_shard_sum += s.verdicts_emitted;
    EXPECT_EQ(per_shard_sum, stats.verdicts_emitted);
    EXPECT_GE(stats.windows_emitted, stats.verdicts_emitted);
  }
}

TEST_F(EngineWindowTest, VerdictsArriveMidSession) {
  EngineConfig config;
  config.shards = 4;
  config.monitor = windowed_monitor(10.0);
  MonitorEngine engine{*pipeline_, config};
  for (const auto& record : *records_) ASSERT_TRUE(engine.ingest(record));

  // All records are queued; the workers drain them asynchronously. Poll —
  // verdicts must surface while the engine is still live (before drain()).
  std::vector<WindowVerdict> live;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (live.empty() && std::chrono::steady_clock::now() < deadline) {
    auto got = engine.harvest_verdicts();
    live.insert(live.end(), std::make_move_iterator(got.begin()),
                std::make_move_iterator(got.end()));
    if (live.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(live.empty()) << "no verdicts before drain()";
  (void)engine.drain();
  const auto rest = engine.harvest_verdicts();
  EXPECT_GT(live.size() + rest.size(), 0u);
}

// ISSUE satellite 3 (engine half): hop = length = "longer than any
// session" makes every window a full-session window; its embedded report
// must equal the session-close report bit-identically at 1/2/4/8 shards.
TEST_F(EngineWindowTest, FullSessionWindowBitIdenticalAcrossShardCounts) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    EngineConfig config;
    config.shards = shards;
    config.queue_capacity = 256;
    config.monitor = windowed_monitor(1e9);
    MonitorEngine engine{*pipeline_, config};

    for (const auto& record : *records_) ASSERT_TRUE(engine.ingest(record));
    const auto sessions = engine.drain();
    const auto verdicts = engine.harvest_verdicts();
    ASSERT_FALSE(sessions.empty()) << shards << " shards";
    ASSERT_EQ(verdicts.size(), sessions.size()) << shards << " shards";

    std::map<std::pair<std::string, double>, const WindowVerdict*> by_session;
    for (const auto& v : verdicts) {
      EXPECT_TRUE(v.final_window);
      by_session[{v.subscriber_id, v.end_s}] = &v;
    }
    for (const auto& s : sessions) {
      const auto it = by_session.find({s.subscriber_id, s.end_time_s});
      ASSERT_NE(it, by_session.end()) << shards << " shards";
      const WindowVerdict& v = *it->second;
      EXPECT_EQ(v.chunk_count, s.chunk_count);
      EXPECT_EQ(v.stall, static_cast<std::uint8_t>(s.report.stall));
      EXPECT_EQ(v.representation,
                static_cast<std::uint8_t>(s.report.representation));
      EXPECT_EQ(v.quality_switches, s.report.quality_switches);
      EXPECT_EQ(v.switch_score, s.report.switch_score);  // bit-identical
    }
  }
}

TEST_F(EngineWindowTest, SlidingWindowsAlsoEquivalent) {
  const OnlineMonitorConfig monitor_config = windowed_monitor(10.0, 5.0);
  const double interval = EngineConfig{}.watermark_interval_s;
  const auto [expected_verdicts, expected_sessions] =
      sequential_run(*pipeline_, monitor_config, *records_, interval);
  ASSERT_FALSE(expected_verdicts.empty());
  const auto expected_keys = sorted_keys(expected_verdicts);

  EngineConfig config;
  config.shards = 4;
  config.queue_capacity = 256;
  config.monitor = monitor_config;
  MonitorEngine engine{*pipeline_, config};
  for (const auto& record : *records_) ASSERT_TRUE(engine.ingest(record));
  (void)engine.drain();
  EXPECT_EQ(sorted_keys(engine.harvest_verdicts()), expected_keys);
}

}  // namespace
}  // namespace vqoe::engine

// Fixture self-tests: every file under tests/lint/fixtures is analyzed
// under a synthetic repo-relative path (choosing the rule scope) and must
// produce exactly the findings its `// expect: <rule>` markers declare —
// right rule, right line, nothing else.
#include "vqoe/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace vqoe::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path{VQOE_LINT_FIXTURES} / name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

bool is_rule_char(char c) {
  return std::islower(static_cast<unsigned char>(c)) != 0 || c == '-';
}

/// Parses `expect: rule[, rule]` markers out of the fixture's own comments
/// (reusing the analyzer's lexer, so marker lines match finding lines by
/// construction).
std::vector<std::pair<int, std::string>> expected_markers(
    const std::string& source) {
  std::vector<std::pair<int, std::string>> out;
  for (const CommentTok& c : lex(source).comments) {
    std::size_t at = c.text.find("expect:");
    if (at == std::string::npos) continue;
    std::size_t i = at + 7;
    while (true) {
      while (i < c.text.size() && c.text[i] == ' ') ++i;
      std::size_t begin = i;
      while (i < c.text.size() && is_rule_char(c.text[i])) ++i;
      if (i == begin) break;
      out.emplace_back(c.line, c.text.substr(begin, i - begin));
      if (i < c.text.size() && c.text[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void expect_exact(const std::string& fixture, const std::string& path) {
  FileInput input;
  input.path = path;
  input.source = read_fixture(fixture);
  ASSERT_FALSE(input.source.empty()) << fixture;
  std::vector<std::pair<int, std::string>> got;
  for (const Finding& f : analyze(input)) got.emplace_back(f.line, f.rule);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected_markers(input.source)) << fixture << " as " << path;
}

TEST(LintFixtures, Determinism) {
  expect_exact("determinism_bad.cpp", "src/par/determinism_bad.cpp");
}

TEST(LintFixtures, DeterminismVanishesOutOfScope) {
  // The identical file under a non-batch path produces no findings at all:
  // nothing in it violates the everywhere-rules.
  FileInput input;
  input.path = "src/trace/determinism_bad.cpp";
  input.source = read_fixture("determinism_bad.cpp");
  EXPECT_TRUE(analyze(input).empty());
}

TEST(LintFixtures, UncheckedSyscalls) {
  expect_exact("syscall_bad.cpp", "src/wire/syscall_bad.cpp");
}

TEST(LintFixtures, SwallowedExceptions) {
  expect_exact("swallowed_bad.cpp", "src/trace/swallowed_bad.cpp");
}

TEST(LintFixtures, HeaderHygiene) {
  expect_exact("header_bad.h", "src/trace/header_bad.h");
}

TEST(LintFixtures, BannedApis) {
  expect_exact("banned_bad.cpp", "src/trace/banned_bad.cpp");
}

TEST(LintFixtures, SuppressionsSilenceEverything) {
  FileInput input;
  input.path = "src/par/suppressed_ok.cpp";
  input.source = read_fixture("suppressed_ok.cpp");
  ASSERT_FALSE(input.source.empty());
  std::vector<std::string> printed;
  for (const Finding& f : analyze(input)) printed.push_back(format(f));
  EXPECT_TRUE(printed.empty()) << printed.front();
}

TEST(LintFixtures, FormatMatchesContract) {
  // file:line: rule: message — the grep-able output shape the CI job and
  // editors key off.
  FileInput input;
  input.path = "src/par/determinism_bad.cpp";
  input.source = "int f() { return std::rand(); }\n";
  const auto findings = analyze(input);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(format(findings[0])
                  .starts_with("src/par/determinism_bad.cpp:1: determinism: "));
}

}  // namespace
}  // namespace vqoe::lint

// Deliberately broken fixture — NOT compiled, NOT part of the default scan.
// fixtures_test.cpp analyzes it under the synthetic path
// "src/par/determinism_bad.cpp" to opt into the determinism scope and
// asserts one finding per `expect:` marker, on the marker's line.
#include <chrono>
#include <clocale>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

int ambient_rand() {
  return std::rand();  // expect: determinism
}

unsigned hardware_entropy() {
  std::random_device rd;  // expect: determinism
  return rd();
}

long wall_clock() {
  return std::time(nullptr);  // expect: determinism
}

void ambient_locale() {
  std::setlocale(LC_ALL, "");  // expect: determinism
}

void host_locale() {
  const std::locale loc{""};  // expect: determinism
  (void)loc;
}

long chrono_now() {
  const auto t = std::chrono::system_clock::now();  // expect: determinism
  return t.time_since_epoch().count();
}

// Negative cases: explicitly seeded generators are the sanctioned idiom.
std::uint64_t seeded_ok(std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  return rng();
}

// Deliberately broken fixture — NOT compiled. Analyzed as
// "src/trace/banned_bad.cpp"; banned-api applies everywhere, the path
// just avoids the determinism modules.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

void unbounded(char* dst, const char* src) {
  std::sprintf(dst, "%s", src);  // expect: banned-api
  strcpy(dst, src);              // expect: banned-api
}

int ascii_conversion(const char* s) {
  return atoi(s);  // expect: banned-api
}

long conversion_without_errno(const char* s) {
  return strtol(s, nullptr, 10);  // expect: banned-api
}

int* raw_alloc() {
  return new int[4];  // expect: banned-api
}

void raw_free(int* p) {
  delete[] p;  // expect: banned-api
}

// Negative cases. The errno tokens below sit more than 12 lines from the
// flagged strtol above, outside the rule's proximity window, so only the
// errno-checked call here is exempt.
long conversion_with_errno(const char* s) {
  errno = 0;
  char* end = nullptr;
  const long v = strtol(s, &end, 10);
  if (errno == ERANGE) return 0;
  return v;
}

struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;  // deleted special member is fine
};

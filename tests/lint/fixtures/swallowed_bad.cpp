// Deliberately broken fixture — NOT compiled. Analyzed as
// "src/trace/swallowed_bad.cpp" (the rule applies everywhere; the path
// just avoids the determinism modules).
void may_throw();

void swallows() {
  try {
    may_throw();
  } catch (...) {  // expect: swallowed-exception
  }
}

void rethrows() {
  try {
    may_throw();
  } catch (...) {
    throw;
  }
}

int records() {
  try {
    may_throw();
  } catch (...) {
    return -1;
  }
  return 0;
}

void suppressed_from_inside() {
  try {
    may_throw();
  } catch (...) {
    // vqoe-lint: allow(swallowed-exception): fixture proves the in-block window
  }
}

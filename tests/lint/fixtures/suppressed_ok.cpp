// Fixture — NOT compiled. Analyzed as "src/par/suppressed_ok.cpp": every
// violation carries an inline suppression, so analyze() must return zero
// findings. Exercises the same-line window, the line-above window, and
// the '*' wildcard.
#include <cstdlib>

int line_above_window() {
  // vqoe-lint: allow(determinism): fixture exercises the line-above window
  return std::rand();
}

int same_line_window() {
  return std::rand();  // vqoe-lint: allow(determinism): same-line window
}

int* wildcard_window() {
  return new int;  // vqoe-lint: allow(*): wildcard suppression
}

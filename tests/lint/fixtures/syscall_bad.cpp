// Deliberately broken fixture — NOT compiled. Analyzed as
// "src/wire/syscall_bad.cpp" so the unchecked-syscall rule applies. The
// rule only considers ::-qualified calls (the src/wire POSIX idiom), so
// the member/bare calls at the bottom must stay clean.
#include <unistd.h>

void unchecked_close(int fd) {
  ::close(fd);  // expect: unchecked-syscall
}

void void_discard(int fd, const void* p, unsigned long n) {
  (void)::write(fd, p, n);  // expect: unchecked-syscall
}

void void_bang_discard(int fd, const void* p, unsigned long n) {
  (void)!::write(fd, p, n);  // expect: unchecked-syscall
}

void unchecked_in_branch(int fd) {
  if (fd >= 0) {
    ::fsync(fd);  // expect: unchecked-syscall
  }
}

// Negative cases: consumed results and non-global calls.
bool compared(int fd) {
  return ::close(fd) == 0;
}

long assigned(int fd, void* p, unsigned long n) {
  const long got = ::read(fd, p, n);
  return got;
}

void retried(int fd, const void* p, unsigned long n) {
  while (::write(fd, p, n) < 0) {
  }
}

struct Transport {
  long send(const void* p, unsigned long n);
  void flush(const void* p, unsigned long n) {
    if (send(p, n) < 0) {
    }
  }
};

long Transport::send(const void*, unsigned long) {  // qualified member def
  return 0;
}

void member_call(Transport& t, const void* p, unsigned long n) {
  if (t.send(p, n) < 0) {
  }
}

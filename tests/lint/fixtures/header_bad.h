// expect: header-hygiene — no '#pragma once' or include guard (line 1)
// Deliberately broken fixture header — NOT compiled, NOT installed.
namespace lint_fixture {
inline int answer() { return 42; }
}  // namespace lint_fixture
using namespace lint_fixture;  // expect: header-hygiene

// The gate: linting the real tree (same paths, excludes and baseline as
// the vqoe_lint CLI and the CI static-analysis job) must come back clean.
// Running it under the `lint` ctest label makes every local `ctest` and
// every CI lane a static-analysis run.
#include "vqoe/lint/lint.h"

#include <gtest/gtest.h>

#include <string>

namespace vqoe::lint {
namespace {

TEST(LintTreeGate, RepositoryIsCleanOutsideTheBaseline) {
  TreeOptions options;
  options.root = VQOE_LINT_REPO_ROOT;
  options.paths = {"src", "bench", "tools", "examples", "tests"};
  options.excludes = {"tests/lint/fixtures"};

  TreeReport report = analyze_tree(options);
  // Guard against a silently-empty walk: the tree has well over a hundred
  // lintable files, and that number only grows.
  EXPECT_GT(report.files_scanned, 100u);

  const std::size_t stale = apply_baseline(
      report.findings,
      load_baseline(options.root / ".vqoe-lint-baseline"));
  EXPECT_EQ(stale, 0u) << "baseline lists findings that no longer occur; "
                          "regenerate with vqoe_lint --write-baseline";

  std::string listing;
  for (const Finding& f : report.findings) listing += format(f) + "\n";
  EXPECT_TRUE(report.findings.empty())
      << "new findings outside the baseline:\n"
      << listing;
}

TEST(LintTreeGate, FixturesReallyAreExcluded) {
  // The fixtures are deliberately broken; if the exclusion prefix rots,
  // the gate above would drown in their findings. Prove the exclusion
  // works by scanning them on purpose.
  TreeOptions options;
  options.root = VQOE_LINT_REPO_ROOT;
  options.paths = {"tests/lint/fixtures"};
  const TreeReport report = analyze_tree(options);
  EXPECT_GT(report.files_scanned, 3u);
}

}  // namespace
}  // namespace vqoe::lint

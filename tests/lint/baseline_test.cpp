// Baseline round-trip: write findings out, load them back, and verify the
// zero-new-findings gate plus stale-entry accounting.
#include "vqoe/lint/lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace vqoe::lint {
namespace {

std::vector<Finding> sample_findings() {
  return {
      {"src/par/a.cpp", 10, "determinism", "msg one"},
      {"src/wire/b.cpp", 3, "unchecked-syscall", "msg two"},
      {"src/par/a.cpp", 10, "banned-api", "msg three"},
  };
}

TEST(LintBaseline, KeyIsStableAcrossMessageRewording) {
  Finding f{"src/par/a.cpp", 10, "determinism", "original"};
  const std::string key = baseline_key(f);
  f.message = "reworded";
  EXPECT_EQ(baseline_key(f), key);
  EXPECT_EQ(key, "src/par/a.cpp:10:determinism");
}

TEST(LintBaseline, WriteLoadRoundTripSuppressesEverything) {
  const std::filesystem::path path =
      std::filesystem::path{::testing::TempDir()} / "vqoe_lint_baseline_rt";
  {
    std::ofstream out{path};
    out << write_baseline(sample_findings());
  }
  auto findings = sample_findings();
  const std::size_t stale = apply_baseline(findings, load_baseline(path));
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(stale, 0u);
  std::filesystem::remove(path);
}

TEST(LintBaseline, NewFindingSurvivesTheGate) {
  const std::string serialized = write_baseline(sample_findings());
  const std::filesystem::path path =
      std::filesystem::path{::testing::TempDir()} / "vqoe_lint_baseline_new";
  {
    std::ofstream out{path};
    out << serialized;
  }
  auto findings = sample_findings();
  findings.push_back({"src/par/c.cpp", 7, "determinism", "fresh"});
  const std::size_t stale = apply_baseline(findings, load_baseline(path));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/par/c.cpp");
  EXPECT_EQ(stale, 0u);
  std::filesystem::remove(path);
}

TEST(LintBaseline, StaleEntriesAreCounted) {
  // Two grandfathered findings got fixed: the gate still passes but the
  // stale count tells the caller to regenerate the baseline.
  const std::filesystem::path path =
      std::filesystem::path{::testing::TempDir()} / "vqoe_lint_baseline_stale";
  {
    std::ofstream out{path};
    out << write_baseline(sample_findings());
  }
  auto findings = sample_findings();
  findings.resize(1);  // the other two no longer occur
  const std::size_t stale = apply_baseline(findings, load_baseline(path));
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(stale, 2u);
  std::filesystem::remove(path);
}

TEST(LintBaseline, MissingFileIsAnEmptyBaseline) {
  const auto keys = load_baseline("/nonexistent/vqoe-lint-baseline");
  EXPECT_TRUE(keys.empty());
}

TEST(LintBaseline, LoaderSkipsCommentsBlanksAndCrLf) {
  const std::filesystem::path path =
      std::filesystem::path{::testing::TempDir()} / "vqoe_lint_baseline_fmt";
  {
    std::ofstream out{path};
    out << "# header comment\n\nsrc/a.cpp:1:banned-api\r\n"
           "src/b.cpp:2:determinism  \n";
  }
  const auto keys = load_baseline(path);
  const std::vector<std::string> expected = {"src/a.cpp:1:banned-api",
                                             "src/b.cpp:2:determinism"};
  EXPECT_EQ(keys, expected);
  std::filesystem::remove(path);
}

TEST(LintBaseline, SerializationIsSortedDedupedAndCommented) {
  auto findings = sample_findings();
  findings.push_back(findings.front());  // duplicate key
  const std::string text = write_baseline(findings);
  EXPECT_TRUE(text.starts_with("#"));
  // Sorted keys, duplicate collapsed.
  const std::string a = "src/par/a.cpp:10:banned-api";
  const std::string b = "src/par/a.cpp:10:determinism";
  const std::string c = "src/wire/b.cpp:3:unchecked-syscall";
  const std::size_t pa = text.find(a);
  const std::size_t pb = text.find(b);
  const std::size_t pc = text.find(c);
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pb, std::string::npos);
  ASSERT_NE(pc, std::string::npos);
  EXPECT_LT(pa, pb);
  EXPECT_LT(pb, pc);
  EXPECT_EQ(text.find(a, pa + 1), std::string::npos);  // no duplicate
}

}  // namespace
}  // namespace vqoe::lint

// Rule-level tests on inline snippets. Snippets need not compile — the
// analyzer is token-level — which lets each case isolate exactly one
// behavior: scoping by path, consumption analysis, suppression windows.
#include "vqoe/lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace vqoe::lint {
namespace {

std::vector<Finding> run(const std::string& path, const std::string& source,
                         const std::string& first_include = {}) {
  FileInput input;
  input.path = path;
  input.source = source;
  input.expected_first_include = first_include;
  return analyze(input);
}

std::vector<std::pair<int, std::string>> lines_and_rules(
    const std::vector<Finding>& fs) {
  std::vector<std::pair<int, std::string>> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) out.emplace_back(f.line, f.rule);
  return out;
}

using Expected = std::vector<std::pair<int, std::string>>;

// --- determinism ------------------------------------------------------------

TEST(LintRules, DeterminismFiresOnlyInBatchModules) {
  const std::string source = "int f() { return std::rand(); }\n";
  for (const char* scoped : {"src/par/x.cpp", "src/ml/x.cpp",
                             "src/workload/x.cpp", "src/sim/x.cpp",
                             "src/ts/x.cpp", "src/core/x.cpp",
                             "src/window/x.cpp"}) {
    const auto fs = run(scoped, source);
    ASSERT_EQ(fs.size(), 1u) << scoped;
    EXPECT_EQ(fs[0].rule, "determinism") << scoped;
    EXPECT_EQ(fs[0].line, 1) << scoped;
    EXPECT_EQ(fs[0].file, scoped);
  }
  for (const char* unscoped :
       {"src/wire/x.cpp", "src/trace/x.cpp", "tools/x.cpp", "tests/x.cpp"}) {
    EXPECT_TRUE(run(unscoped, source).empty()) << unscoped;
  }
}

TEST(LintRules, DeterminismSkipsMemberAccessAndBareNames) {
  // x.random() / r->time(...) are the caller's own members; `random` not
  // followed by a call is just a name.
  EXPECT_TRUE(run("src/par/x.cpp",
                  "int f(R& x, S* r) { return x.random() + r->time(0); }\n")
                  .empty());
  EXPECT_TRUE(run("src/par/x.cpp", "int random = 3;\n").empty());
}

TEST(LintRules, DeterminismFlagsTypesEvenWithoutCall) {
  const auto fs =
      run("src/core/x.cpp", "using clock = std::chrono::system_clock;\n");
  const Expected expected = {{1, "determinism"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
}

// --- unchecked-syscall ------------------------------------------------------

TEST(LintRules, SyscallRuleOnlyAppliesToWire) {
  const std::string source = "void f(int fd) {\n  ::close(fd);\n}\n";
  const auto fs = run("src/wire/x.cpp", source);
  const Expected expected = {{2, "unchecked-syscall"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
  EXPECT_TRUE(run("src/engine/x.cpp", source).empty());
}

TEST(LintRules, SyscallConsumptionForms) {
  // Each consumed form must stay clean.
  const char* clean[] = {
      "bool f(int fd) { return ::close(fd) == 0; }\n",
      "void f(int fd) { int rc = ::close(fd); (void)rc; }\n",
      "void f(int fd) { if (::fsync(fd) != 0) {} }\n",
      "void f(int fd, const void* p, long n) {\n"
      "  while (::write(fd, p, n) < 0) {}\n}\n",
      "long f(int fd, void* p, long n) { return ::read(fd, p, n); }\n",
  };
  for (const char* source : clean) {
    EXPECT_TRUE(run("src/wire/x.cpp", source).empty()) << source;
  }
}

TEST(LintRules, SyscallVoidDiscardIsItsOwnFinding) {
  const auto fs = run("src/wire/x.cpp",
                      "void f(int fd, const void* p, long n) {\n"
                      "  (void)::write(fd, p, n);\n"
                      "  (void)!::write(fd, p, n);\n"
                      "}\n");
  const Expected expected = {{2, "unchecked-syscall"},
                             {3, "unchecked-syscall"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
  for (const Finding& f : fs) {
    EXPECT_NE(f.message.find("(void) cast"), std::string::npos);
  }
}

TEST(LintRules, SyscallQualifiedMemberIsNotAPosixCall) {
  EXPECT_TRUE(run("src/wire/x.cpp",
                  "long Probe::send(const void* p, long n) { return 0; }\n"
                  "void f(Probe& p) { p.close(); }\n"
                  "void g() { close(); }\n")
                  .empty());
}

// --- swallowed-exception ----------------------------------------------------

TEST(LintRules, SwallowedExceptionOnlyFlagsEmptyCatchAll) {
  const auto fs = run("tools/x.cpp",
                      "void f() {\n"
                      "  try { g(); } catch (...) {\n"
                      "  }\n"
                      "  try { g(); } catch (...) { throw; }\n"
                      "  try { g(); } catch (const std::exception&) {\n"
                      "  }\n"
                      "}\n");
  const Expected expected = {{2, "swallowed-exception"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
}

// --- header-hygiene ---------------------------------------------------------

TEST(LintRules, HeaderGuardVariants) {
  EXPECT_TRUE(run("src/a/x.h", "#pragma once\nint f();\n").empty());
  EXPECT_TRUE(
      run("src/a/x.h", "#ifndef VQOE_X_H\n#define VQOE_X_H\nint f();\n#endif\n")
          .empty());
  const auto fs = run("src/a/x.h", "int f();\n");
  const Expected expected = {{1, "header-hygiene"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
  // A define that does not match the ifndef is not a guard.
  const auto mismatched =
      run("src/a/x.h", "#ifndef VQOE_X_H\n#define OTHER\nint f();\n#endif\n");
  EXPECT_EQ(lines_and_rules(mismatched), expected);
}

TEST(LintRules, UsingNamespaceFlaggedInHeadersOnly) {
  const std::string source = "#pragma once\nusing namespace std;\n";
  const auto fs = run("src/a/x.h", source);
  const Expected expected = {{2, "header-hygiene"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
  EXPECT_TRUE(run("src/a/x.cpp", "using namespace std;\n").empty());
}

TEST(LintRules, FirstIncludeMustBeOwnHeader) {
  EXPECT_TRUE(run("src/a/x.cpp",
                  "#include \"vqoe/a/x.h\"\n#include <vector>\n",
                  "vqoe/a/x.h")
                  .empty());
  const auto fs = run("src/a/x.cpp",
                      "#include <vector>\n#include \"vqoe/a/x.h\"\n",
                      "vqoe/a/x.h");
  const Expected expected = {{1, "header-hygiene"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
  // No expectation configured → nothing to enforce.
  EXPECT_TRUE(run("src/a/x.cpp", "#include <vector>\n").empty());
}

// --- banned-api -------------------------------------------------------------

TEST(LintRules, BannedApiCoversAllFamilies) {
  const auto fs = run("tools/x.cpp",
                      "void f(char* d, const char* s) {\n"
                      "  sprintf(d, \"%s\", s);\n"
                      "  int a = atoi(s);\n"
                      "  long l = strtol(s, nullptr, 10);\n"
                      "  int* p = new int;\n"
                      "  delete p;\n"
                      "}\n");
  const Expected expected = {{2, "banned-api"},
                             {3, "banned-api"},
                             {4, "banned-api"},
                             {5, "banned-api"},
                             {6, "banned-api"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
}

TEST(LintRules, StrtoWithNearbyErrnoCheckIsExempt) {
  EXPECT_TRUE(run("tools/x.cpp",
                  "long f(const char* s) {\n"
                  "  errno = 0;\n"
                  "  long v = strtol(s, nullptr, 10);\n"
                  "  if (errno) return 0;\n"
                  "  return v;\n"
                  "}\n")
                  .empty());
}

TEST(LintRules, DeletedSpecialMembersAndArenasAreExempt) {
  EXPECT_TRUE(
      run("src/a/x.cpp", "struct S { S(const S&) = delete; };\n").empty());
  // Files with "arena" in the path own raw allocation by design.
  EXPECT_TRUE(
      run("src/core/arena.cpp", "char* f() { return new char[64]; }\n")
          .empty());
}

// --- suppression windows ----------------------------------------------------

TEST(LintRules, SuppressionCoversMarkerLineAndNextLineOnly) {
  // Marker directly above: suppressed.
  EXPECT_TRUE(run("src/par/x.cpp",
                  "// vqoe-lint: allow(determinism): test\n"
                  "int f() { return std::rand(); }\n")
                  .empty());
  // Marker two lines above: out of the window, still reported.
  const auto fs = run("src/par/x.cpp",
                      "// vqoe-lint: allow(determinism): test\n"
                      "\n"
                      "int f() { return std::rand(); }\n");
  const Expected expected = {{3, "determinism"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
}

TEST(LintRules, SuppressionIsRuleSpecific) {
  // A determinism allowance must not hide a banned-api finding.
  const auto fs = run("src/par/x.cpp",
                      "int* f() { return new int; }"
                      "  // vqoe-lint: allow(determinism): wrong rule\n");
  const Expected expected = {{1, "banned-api"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
}

TEST(LintRules, FindSuppressionsParsesMultipleAllowances) {
  const auto lf =
      lex("// vqoe-lint: allow(determinism): a vqoe-lint: allow(banned-api): b\n");
  const auto sups = find_suppressions(lf.comments);
  ASSERT_EQ(sups.size(), 2u);
  EXPECT_EQ(sups[0].rule, "determinism");
  EXPECT_EQ(sups[1].rule, "banned-api");
  EXPECT_EQ(sups[0].line, 1);
}

TEST(LintRules, FindingsComeBackSorted) {
  const auto fs = run("src/par/x.cpp",
                      "int* g() { return new int; }\n"
                      "int f() { return std::rand(); }\n");
  const Expected expected = {{1, "banned-api"}, {2, "determinism"}};
  EXPECT_EQ(lines_and_rules(fs), expected);
}

}  // namespace
}  // namespace vqoe::lint

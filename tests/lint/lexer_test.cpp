#include "vqoe/lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vqoe::lint {
namespace {

std::vector<std::string> texts(const LexedFile& lf) {
  std::vector<std::string> out;
  out.reserve(lf.tokens.size());
  for (const Token& t : lf.tokens) out.push_back(t.text);
  return out;
}

TEST(LintLexer, TracksLinesAndSplitsMultiCharOperators) {
  const auto lf = lex("a::b\n->c ... x==y\n");
  const std::vector<std::string> expected = {"a", "::", "b", "->", "c",
                                             "...", "x", "==", "y"};
  EXPECT_EQ(texts(lf), expected);
  EXPECT_EQ(lf.tokens[0].line, 1);  // a
  EXPECT_EQ(lf.tokens[3].line, 2);  // ->
  EXPECT_EQ(lf.tokens[8].line, 2);  // y
  EXPECT_EQ(lf.tokens[1].kind, TokenKind::punct);
  EXPECT_EQ(lf.tokens[0].kind, TokenKind::identifier);
}

TEST(LintLexer, CommentsAreCapturedNotTokenized) {
  const auto lf = lex("int a; // trailing note\n/* block\nspans */ int b;\n");
  const std::vector<std::string> expected = {"int", "a", ";", "int", "b", ";"};
  EXPECT_EQ(texts(lf), expected);
  ASSERT_EQ(lf.comments.size(), 2u);
  EXPECT_EQ(lf.comments[0].line, 1);
  EXPECT_EQ(lf.comments[0].text, "trailing note");
  EXPECT_EQ(lf.comments[1].line, 2);
  EXPECT_EQ(lf.comments[1].end_line, 3);  // block comment spans two lines
}

TEST(LintLexer, StringContentsNeverLeakTokens) {
  // A violation spelled inside a string or char literal must not produce
  // identifier tokens the rules could match.
  const auto lf = lex("const char* s = \"std::rand() ::close(fd)\";\n"
                      "char c = ':';\n");
  for (const Token& t : lf.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "close");
  }
  ASSERT_GE(lf.tokens.size(), 6u);
  EXPECT_EQ(lf.tokens[5].kind, TokenKind::string_lit);
}

TEST(LintLexer, RawStringsSwallowTheirBodyAndCountLines) {
  const auto lf = lex("auto s = R\"(rand()\nline2 \"quoted\")\";\nint tail;\n");
  bool saw_rand = false;
  for (const Token& t : lf.tokens) {
    if (t.text == "rand") saw_rand = true;
  }
  EXPECT_FALSE(saw_rand);
  // `tail` sits after the two-line raw string: line numbering must survive.
  ASSERT_EQ(lf.tokens.back().text, ";");
  EXPECT_EQ(lf.tokens.back().line, 3);
}

TEST(LintLexer, EscapedQuoteStaysInsideString) {
  const auto lf = lex("auto s = \"a\\\"b\"; int after;\n");
  std::vector<std::string> ids;
  for (const Token& t : lf.tokens) {
    if (t.kind == TokenKind::identifier) ids.push_back(t.text);
  }
  const std::vector<std::string> expected = {"auto", "s", "int", "after"};
  EXPECT_EQ(ids, expected);
}

TEST(LintLexer, DirectivesJoinContinuationsAndSkipTokenStream) {
  const auto lf = lex("#include \"vqoe/lint/lint.h\"\n"
                      "#define WIDE \\\n  42\n"
                      "int x = WIDE;\n");
  ASSERT_EQ(lf.directives.size(), 2u);
  EXPECT_EQ(lf.directives[0].name, "include");
  EXPECT_EQ(lf.directives[0].rest, "\"vqoe/lint/lint.h\"");
  EXPECT_EQ(lf.directives[1].name, "define");
  EXPECT_EQ(lf.directives[1].line, 2);
  EXPECT_TRUE(lf.directives[1].rest.starts_with("WIDE"));
  // Directive text contributes no tokens; the continuation advanced the
  // line counter so `int x` lands on line 4.
  EXPECT_EQ(lf.tokens.front().text, "int");
  EXPECT_EQ(lf.tokens.front().line, 4);
}

TEST(LintLexer, HashMidLineIsNotADirective) {
  const auto lf = lex("int a; #define NOPE\n#define YES 1\n");
  ASSERT_EQ(lf.directives.size(), 1u);
  EXPECT_EQ(lf.directives[0].name, "define");
  EXPECT_EQ(lf.directives[0].line, 2);
  EXPECT_TRUE(lf.directives[0].rest.starts_with("YES"));
}

TEST(LintLexer, NumbersWithExponentsAndSeparatorsAreOneToken) {
  const auto lf = lex("double d = 1.5e-3; auto n = 1'000'000;\n");
  std::vector<std::string> nums;
  for (const Token& t : lf.tokens) {
    if (t.kind == TokenKind::number) nums.push_back(t.text);
  }
  const std::vector<std::string> expected = {"1.5e-3", "1'000'000"};
  EXPECT_EQ(nums, expected);
}

TEST(LintLexer, UnterminatedLiteralEndsAtEofWithoutThrowing) {
  EXPECT_NO_THROW(lex("auto s = \"never closed"));
  EXPECT_NO_THROW(lex("auto s = R\"(never closed"));
  EXPECT_NO_THROW(lex("/* never closed"));
}

}  // namespace
}  // namespace vqoe::lint

#include <gtest/gtest.h>

#include "vqoe/sim/player.h"

namespace vqoe::sim {
namespace {

ChunkEvent chunk(Resolution res, double media_s, bool audio = false) {
  ChunkEvent c;
  c.resolution = res;
  c.is_audio = audio;
  c.size_bytes = static_cast<std::uint64_t>(
      nominal_bitrate_bps(res) * media_s / 8.0);
  return c;
}

TEST(SessionResult, RebufferingRatioBasics) {
  SessionResult s;
  s.total_duration_s = 100.0;
  EXPECT_DOUBLE_EQ(s.rebuffering_ratio(), 0.0);
  s.stalls = {{10.0, 5.0}, {50.0, 15.0}};
  EXPECT_DOUBLE_EQ(s.stall_total_s(), 20.0);
  EXPECT_DOUBLE_EQ(s.rebuffering_ratio(), 0.2);
}

TEST(SessionResult, RebufferingRatioClampedToOne) {
  SessionResult s;
  s.total_duration_s = 10.0;
  s.stalls = {{0.0, 50.0}};
  EXPECT_DOUBLE_EQ(s.rebuffering_ratio(), 1.0);
}

TEST(SessionResult, DegenerateDurationIsZeroRatio) {
  SessionResult s;
  s.total_duration_s = 0.0;
  s.stalls = {{0.0, 5.0}};
  EXPECT_DOUBLE_EQ(s.rebuffering_ratio(), 0.0);
}

TEST(SessionResult, AverageHeightWeightsByMediaTime) {
  SessionResult s;
  // 30 s of 144p and 10 s of 720p: mean = (144*30 + 720*10) / 40 = 288.
  s.chunks = {chunk(Resolution::p144, 30.0), chunk(Resolution::p720, 10.0)};
  EXPECT_NEAR(s.average_height(), 288.0, 1.0);
}

TEST(SessionResult, AverageHeightIgnoresAudio) {
  SessionResult s;
  s.chunks = {chunk(Resolution::p360, 10.0),
              chunk(Resolution::p144, 100.0, /*audio=*/true)};
  EXPECT_NEAR(s.average_height(), 360.0, 1e-6);
}

TEST(SessionResult, EmptySessionHasZeroHeight) {
  const SessionResult s;
  EXPECT_DOUBLE_EQ(s.average_height(), 0.0);
  EXPECT_EQ(s.switch_count(), 0u);
  EXPECT_DOUBLE_EQ(s.switch_amplitude(), 0.0);
}

TEST(SessionResult, SwitchCountOnVideoChunksOnly) {
  SessionResult s;
  s.chunks = {chunk(Resolution::p240, 5.0), chunk(Resolution::p240, 5.0),
              chunk(Resolution::p360, 5.0, /*audio=*/true),  // ignored
              chunk(Resolution::p240, 5.0), chunk(Resolution::p480, 5.0)};
  EXPECT_EQ(s.switch_count(), 1u);
}

TEST(SessionResult, SwitchAmplitudeIsEq2) {
  SessionResult s;
  // Rungs 1 -> 3 -> 3: |3-1| + |3-3| over (K-1)=2 pairs = 1.0.
  s.chunks = {chunk(Resolution::p240, 5.0), chunk(Resolution::p480, 5.0),
              chunk(Resolution::p480, 5.0)};
  EXPECT_DOUBLE_EQ(s.switch_amplitude(), 1.0);
}

TEST(SessionResult, VideoChunksFilter) {
  SessionResult s;
  s.chunks = {chunk(Resolution::p240, 5.0), chunk(Resolution::p240, 5.0, true),
              chunk(Resolution::p240, 5.0)};
  EXPECT_EQ(s.video_chunks().size(), 2u);
}

}  // namespace
}  // namespace vqoe::sim

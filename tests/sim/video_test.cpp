#include "vqoe/sim/video.h"

#include <gtest/gtest.h>

#include <random>

namespace vqoe::sim {
namespace {

TEST(Resolution, HeightsMatchNames) {
  EXPECT_EQ(height(Resolution::p144), 144);
  EXPECT_EQ(height(Resolution::p1080), 1080);
  EXPECT_EQ(to_string(Resolution::p360), "360p");
}

TEST(Resolution, BitratesStrictlyIncreaseWithHeight) {
  for (int r = 1; r < kNumResolutions; ++r) {
    EXPECT_GT(nominal_bitrate_bps(static_cast<Resolution>(r)),
              nominal_bitrate_bps(static_cast<Resolution>(r - 1)));
  }
}

TEST(Resolution, FromHeightRoundTrips) {
  for (int r = 0; r < kNumResolutions; ++r) {
    const auto res = static_cast<Resolution>(r);
    EXPECT_EQ(resolution_from_height(height(res)), res);
  }
  EXPECT_THROW((void)resolution_from_height(333), std::invalid_argument);
}

TEST(VideoDescription, AtFindsLadderEntry) {
  Catalog catalog{4, 1};
  const auto& v = catalog.videos().front();
  EXPECT_EQ(v.at(Resolution::p480).resolution, Resolution::p480);
}

TEST(VideoDescription, AtThrowsForMissingRung) {
  VideoDescription v;
  v.ladder = {{Resolution::p360, 5e5}};
  EXPECT_THROW((void)v.at(Resolution::p720), std::out_of_range);
}

TEST(VideoDescription, BestUnderPicksHighestAffordable) {
  Catalog catalog{4, 2};
  const auto& v = catalog.videos().front();
  const auto& pick = v.best_under(1.2e6);
  // 480p nominal ~1.05 Mbit/s (+-15% encode variation) should be at or near
  // the budget; everything above must exceed it.
  EXPECT_LE(pick.bitrate_bps, 1.2e6);
  for (const auto& rep : v.ladder) {
    if (rep.bitrate_bps <= 1.2e6) {
      EXPECT_LE(rep.bitrate_bps, pick.bitrate_bps);
    }
  }
}

TEST(VideoDescription, BestUnderFallsBackToLowestRung) {
  Catalog catalog{4, 3};
  const auto& v = catalog.videos().front();
  const auto& pick = v.best_under(1.0);  // 1 bit/s budget
  EXPECT_EQ(pick.resolution, v.ladder.front().resolution);
}

TEST(VideoDescription, EmptyLadderThrows) {
  const VideoDescription v;
  EXPECT_THROW((void)v.best_under(1e6), std::out_of_range);
}

TEST(Catalog, DeterministicForSeed) {
  Catalog a{50, 9}, b{50, 9};
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.videos()[i].duration_s, b.videos()[i].duration_s);
  }
}

TEST(Catalog, DurationsInDocumentedRange) {
  Catalog catalog{500, 10};
  double total = 0.0;
  for (const auto& v : catalog.videos()) {
    EXPECT_GE(v.duration_s, 30.0);
    EXPECT_LE(v.duration_s, 900.0);
    EXPECT_EQ(v.ladder.size(), static_cast<std::size_t>(kNumResolutions));
    total += v.duration_s;
  }
  // Section 4.3: average session duration ~180 s.
  EXPECT_NEAR(total / 500.0, 180.0, 60.0);
}

TEST(Catalog, SampleReturnsMember) {
  Catalog catalog{8, 11};
  std::mt19937_64 rng{12};
  const auto& v = catalog.sample(rng);
  bool found = false;
  for (const auto& w : catalog.videos()) {
    if (w.video_id == v.video_id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Catalog, EmptySampleThrows) {
  Catalog catalog{0, 13};
  std::mt19937_64 rng{14};
  EXPECT_THROW((void)catalog.sample(rng), std::out_of_range);
}

TEST(Catalog, EncodeVariationStaysWithinBand) {
  Catalog catalog{100, 15};
  for (const auto& v : catalog.videos()) {
    for (const auto& rep : v.ladder) {
      const double nominal = nominal_bitrate_bps(rep.resolution);
      EXPECT_GE(rep.bitrate_bps, nominal * 0.85 - 1.0);
      EXPECT_LE(rep.bitrate_bps, nominal * 1.15 + 1.0);
    }
  }
}

}  // namespace
}  // namespace vqoe::sim

#include "vqoe/sim/abr.h"

#include <gtest/gtest.h>

namespace vqoe::sim {
namespace {

VideoDescription nominal_video() {
  VideoDescription v;
  v.video_id = "test";
  for (int r = 0; r < kNumResolutions; ++r) {
    const auto res = static_cast<Resolution>(r);
    v.ladder.push_back({res, nominal_bitrate_bps(res)});
  }
  return v;
}

ThroughputEstimator estimator_at(double bps) {
  ThroughputEstimator e;
  e.observe(bps);
  return e;
}

TEST(ThroughputEstimator, ValidatesInputs) {
  EXPECT_THROW(ThroughputEstimator{0.0}, std::invalid_argument);
  EXPECT_THROW(ThroughputEstimator{1.5}, std::invalid_argument);
  ThroughputEstimator e;
  EXPECT_THROW(e.observe(0.0), std::invalid_argument);
}

TEST(ThroughputEstimator, ZeroUntilFirstObservation) {
  const ThroughputEstimator e;
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 0.0);
  EXPECT_EQ(e.observations(), 0u);
}

TEST(ThroughputEstimator, FirstObservationAdoptedExactly) {
  auto e = estimator_at(3e6);
  EXPECT_DOUBLE_EQ(e.estimate_bps(), 3e6);
}

TEST(ThroughputEstimator, MovesTowardNewObservations) {
  auto e = estimator_at(1e6);
  e.observe(4e6);
  EXPECT_GT(e.estimate_bps(), 1e6);
  EXPECT_LT(e.estimate_bps(), 4e6);
}

TEST(ThroughputEstimator, HarmonicWeightingIsConservative) {
  // One slow chunk pulls a harmonic-domain estimate down harder than one
  // fast chunk pulls it up.
  auto down = estimator_at(4e6);
  down.observe(1e6);
  auto up = estimator_at(1e6);
  up.observe(4e6);
  EXPECT_LT(down.estimate_bps() - 1e6, 4e6 - up.estimate_bps());
}

TEST(ThroughputEstimator, ReliabilityDampensUpdates) {
  auto trusted = estimator_at(4e6);
  trusted.observe(0.5e6, 1.0);
  auto distrusted = estimator_at(4e6);
  distrusted.observe(0.5e6, 0.05);
  EXPECT_LT(trusted.estimate_bps(), distrusted.estimate_bps());
}

TEST(AbrController, ReturnsInitialWithoutObservations) {
  AbrConfig config;
  config.initial = Resolution::p240;
  const AbrController abr{config};
  const ThroughputEstimator fresh;
  EXPECT_EQ(abr.decide(nominal_video(), fresh, 0.0, Resolution::p240, 0, true),
            Resolution::p240);
}

TEST(AbrController, CapClampsInitial) {
  AbrConfig config;
  config.initial = Resolution::p480;
  config.max_resolution = Resolution::p240;
  const AbrController abr{config};
  const ThroughputEstimator fresh;
  EXPECT_EQ(abr.decide(nominal_video(), fresh, 0.0, Resolution::p480, 0, true),
            Resolution::p240);
}

TEST(AbrController, StartupKeepsRungWhenRoughlySustainable) {
  const AbrController abr{AbrConfig{}};
  // 240p at ~250 kbit/s; estimate 400 kbit/s: budget 320k > 250k.
  const auto e = estimator_at(400e3);
  EXPECT_EQ(abr.decide(nominal_video(), e, 1.0, Resolution::p240, 1, true),
            Resolution::p240);
}

TEST(AbrController, StartupDropsClearlyUnsustainableRung) {
  const AbrController abr{AbrConfig{}};
  // 480p (~1.05 Mbit/s) against a 200 kbit/s estimate: hopeless even with
  // the start-up tolerance.
  const auto e = estimator_at(200e3);
  EXPECT_EQ(abr.decide(nominal_video(), e, 1.0, Resolution::p480, 1, true),
            Resolution::p360);
}

TEST(AbrController, SteadyUnsustainableStepsDownOneRung) {
  const AbrController abr{AbrConfig{}};
  const auto e = estimator_at(600e3);  // budget 480k < 1.05M (480p)
  EXPECT_EQ(abr.decide(nominal_video(), e, 20.0, Resolution::p480, 10, false),
            Resolution::p360);
}

TEST(AbrController, PanicDropsToThroughputPick) {
  const AbrController abr{AbrConfig{}};
  const auto e = estimator_at(200e3);  // budget 160k -> only 144p fits
  EXPECT_EQ(abr.decide(nominal_video(), e, 2.0, Resolution::p720, 10, false),
            Resolution::p144);
}

TEST(AbrController, UpSwitchRequiresDwell) {
  const AbrController abr{AbrConfig{}};
  const auto e = estimator_at(10e6);
  // Plenty of throughput but only 2 segments since the last switch.
  EXPECT_EQ(abr.decide(nominal_video(), e, 20.0, Resolution::p360, 2, false),
            Resolution::p360);
  // After the dwell: one rung up, not a jump to the top.
  EXPECT_EQ(abr.decide(nominal_video(), e, 20.0, Resolution::p360, 10, false),
            Resolution::p480);
}

TEST(AbrController, UpSwitchRequiresMargin) {
  AbrConfig config;
  config.up_margin = 1.15;
  const AbrController abr{config};
  // 480p needs 1.05M x 1.15 / 0.8 ~ 1.51M estimate; 1.4M is not enough.
  const auto e = estimator_at(1.4e6);
  EXPECT_EQ(abr.decide(nominal_video(), e, 20.0, Resolution::p360, 10, false),
            Resolution::p360);
}

TEST(AbrController, NeverExceedsCap) {
  AbrConfig config;
  config.max_resolution = Resolution::p480;
  const AbrController abr{config};
  const auto e = estimator_at(50e6);
  EXPECT_EQ(abr.decide(nominal_video(), e, 25.0, Resolution::p480, 50, false),
            Resolution::p480);
}

TEST(AbrController, LowestRungNeverDropsFurther) {
  const AbrController abr{AbrConfig{}};
  const auto e = estimator_at(10e3);
  EXPECT_EQ(abr.decide(nominal_video(), e, 0.5, Resolution::p144, 10, false),
            Resolution::p144);
}

}  // namespace
}  // namespace vqoe::sim

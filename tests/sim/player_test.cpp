#include "vqoe/sim/player.h"

#include <gtest/gtest.h>

#include "vqoe/net/channel.h"
#include "vqoe/net/profile.h"

namespace vqoe::sim {
namespace {

VideoDescription test_video(double duration_s = 120.0) {
  VideoDescription v;
  v.video_id = "test";
  v.duration_s = duration_s;
  for (int r = 0; r < kNumResolutions; ++r) {
    const auto res = static_cast<Resolution>(r);
    v.ladder.push_back({res, nominal_bitrate_bps(res)});
  }
  return v;
}

void check_invariants(const SessionResult& s, const VideoDescription& v) {
  // Chunks chronological, arrivals after requests.
  double prev_request = -1.0;
  for (const ChunkEvent& c : s.chunks) {
    EXPECT_GE(c.request_time_s, prev_request);
    EXPECT_GT(c.arrival_time_s, c.request_time_s);
    EXPECT_GT(c.size_bytes, 0u);
    prev_request = c.request_time_s;
  }
  // Stalls chronological, non-overlapping, within the session.
  double prev_end = 0.0;
  for (const StallEvent& st : s.stalls) {
    EXPECT_GE(st.start_s, prev_end - 1e-6);
    EXPECT_GT(st.duration_s, 0.0);
    EXPECT_LE(st.start_s + st.duration_s, s.total_duration_s + 1e-6);
    prev_end = st.start_s + st.duration_s;
  }
  const double rr = s.rebuffering_ratio();
  EXPECT_GE(rr, 0.0);
  EXPECT_LE(rr, 1.0);
  EXPECT_LE(s.played_media_s, v.duration_s + 1e-6);
  if (!s.abandoned) {
    EXPECT_NEAR(s.played_media_s, v.duration_s, 1e-3);
  }
  EXPECT_GE(s.total_duration_s, s.played_media_s - 1e-6);
  EXPECT_GE(s.startup_delay_s, 0.0);
}

TEST(HasPlayer, GoodChannelPlaysCleanly) {
  const auto video = test_video();
  auto channel = net::make_channel(net::profile_static_good(), 1);
  const HasPlayer player{PlayerConfig{}};
  const auto s = player.play(video, *channel, 2);
  check_invariants(s, video);
  EXPECT_TRUE(s.adaptive);
  EXPECT_TRUE(s.stalls.empty());
  EXPECT_FALSE(s.abandoned);
  EXPECT_GT(s.chunks.size(), 10u);
  EXPECT_GT(s.startup_delay_s, 0.0);
}

TEST(HasPlayer, PoorChannelStalls) {
  const auto video = test_video();
  int stalled_sessions = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto profile = net::profile_cell_poor();
    profile.mean_bandwidth_bps = 0.2e6;  // below even 144p + audio
    auto channel = net::make_channel(profile, seed);
    const HasPlayer player{PlayerConfig{}};
    const auto s = player.play(video, *channel, seed);
    check_invariants(s, video);
    if (!s.stalls.empty()) ++stalled_sessions;
  }
  EXPECT_GE(stalled_sessions, 8);
}

TEST(HasPlayer, DeterministicForSeeds) {
  const auto video = test_video();
  auto c1 = net::make_channel(net::profile_cell_fair(), 5);
  auto c2 = net::make_channel(net::profile_cell_fair(), 5);
  const HasPlayer player{PlayerConfig{}};
  const auto a = player.play(video, *c1, 6);
  const auto b = player.play(video, *c2, 6);
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  EXPECT_DOUBLE_EQ(a.total_duration_s, b.total_duration_s);
  EXPECT_EQ(a.stalls.size(), b.stalls.size());
}

TEST(HasPlayer, ImprovingChannelSwitchesUp) {
  const auto video = test_video(180.0);
  PlayerConfig cfg;
  cfg.abr.initial = Resolution::p144;
  auto channel = net::make_channel(net::profile_cell_fair(), 7);
  const HasPlayer player{cfg};
  const auto s = player.play(video, *channel, 8);
  check_invariants(s, video);
  EXPECT_GE(s.switch_count(), 1u);
  // The session must end above its cold-start rung.
  EXPECT_GT(s.average_height(), static_cast<double>(height(Resolution::p144)));
}

TEST(HasPlayer, CapNeverExceeded) {
  const auto video = test_video();
  PlayerConfig cfg;
  cfg.abr.max_resolution = Resolution::p360;
  auto channel = net::make_channel(net::profile_static_good(), 9);
  const HasPlayer player{cfg};
  const auto s = player.play(video, *channel, 10);
  for (const ChunkEvent& c : s.chunks) {
    EXPECT_LE(static_cast<int>(c.resolution),
              static_cast<int>(Resolution::p360));
  }
}

TEST(HasPlayer, MuxedModeHasNoAudioChunks) {
  const auto video = test_video();
  auto channel = net::make_channel(net::profile_cell_fair(), 11);
  const HasPlayer player{PlayerConfig{}};  // separate_audio = false
  const auto s = player.play(video, *channel, 12);
  for (const ChunkEvent& c : s.chunks) EXPECT_FALSE(c.is_audio);
}

TEST(HasPlayer, SeparateAudioModeEmitsAudioChunks) {
  const auto video = test_video(180.0);
  PlayerConfig cfg;
  cfg.separate_audio = true;
  auto channel = net::make_channel(net::profile_cell_fair(), 13);
  const HasPlayer player{cfg};
  const auto s = player.play(video, *channel, 14);
  std::size_t audio = 0;
  for (const ChunkEvent& c : s.chunks) audio += c.is_audio ? 1 : 0;
  EXPECT_GT(audio, 0u);
  EXPECT_LT(audio, s.chunks.size());
}

TEST(ProgressivePlayer, FixedRepresentationThroughout) {
  const auto video = test_video();
  auto channel = net::make_channel(net::profile_cell_fair(), 15);
  const ProgressivePlayer player{PlayerConfig{}};
  const auto s = player.play(video, Resolution::p360, *channel, 16);
  check_invariants(s, video);
  EXPECT_FALSE(s.adaptive);
  EXPECT_EQ(s.switch_count(), 0u);
  for (const ChunkEvent& c : s.chunks) {
    EXPECT_EQ(c.resolution, Resolution::p360);
  }
}

TEST(ProgressivePlayer, DownloadsWholeFile) {
  const auto video = test_video(60.0);
  auto channel = net::make_channel(net::profile_static_good(), 17);
  PlayerConfig cfg;
  const ProgressivePlayer player{cfg};
  const auto s = player.play(video, Resolution::p480, *channel, 18);
  std::uint64_t total = 0;
  for (const ChunkEvent& c : s.chunks) total += c.size_bytes;
  const double expected = (nominal_bitrate_bps(Resolution::p480) + 128e3) *
                          60.0 / 8.0;
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.15);
}

TEST(ProgressivePlayer, StallRecoveryShrinksChunks) {
  const auto video = test_video(180.0);
  auto profile = net::profile_cell_poor();
  profile.mean_bandwidth_bps = 0.35e6;
  PlayerConfig cfg;
  bool found_recovery = false;
  for (std::uint64_t seed = 0; seed < 12 && !found_recovery; ++seed) {
    auto channel = net::make_channel(profile, seed);
    const ProgressivePlayer player{cfg};
    const auto s = player.play(video, Resolution::p360, *channel, seed);
    if (s.stalls.empty()) continue;
    std::uint64_t min_size = ~0ull;
    std::uint64_t max_size = 0;
    for (const ChunkEvent& c : s.chunks) {
      min_size = std::min(min_size, c.size_bytes);
      max_size = std::max(max_size, c.size_bytes);
    }
    // A stalled session must contain at least one small recovery range,
    // well under the steady burst size.
    if (min_size < max_size / 2) found_recovery = true;
  }
  EXPECT_TRUE(found_recovery);
}

TEST(ProgressivePlayer, AbandonmentBoundsPlayedMedia) {
  const auto video = test_video(300.0);
  auto profile = net::profile_cell_outage();
  int abandoned = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto channel = net::make_channel(profile, seed);
    const ProgressivePlayer player{PlayerConfig{}};
    const auto s = player.play(video, Resolution::p480, *channel, seed);
    check_invariants(s, video);
    if (s.abandoned) {
      ++abandoned;
      EXPECT_LT(s.played_media_s, video.duration_s);
    }
  }
  EXPECT_GT(abandoned, 0);
}

// Property: invariants hold across a seed sweep on the mobility channel —
// the most eventful channel (handovers, stalls, switches, abandonment).
class PlayerInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PlayerInvariants, MobilityChannelSweep) {
  const auto video = test_video(150.0);
  const auto seed = static_cast<std::uint64_t>(GetParam());
  auto channel = net::make_commute_channel(seed);
  const HasPlayer has{PlayerConfig{}};
  const auto s = has.play(video, *channel, seed * 31 + 7);
  check_invariants(s, video);

  auto channel2 = net::make_commute_channel(seed + 1000);
  const ProgressivePlayer prog{PlayerConfig{}};
  const auto p = prog.play(video, Resolution::p360, *channel2, seed * 17 + 3);
  check_invariants(p, video);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlayerInvariants, ::testing::Range(1, 25));

}  // namespace
}  // namespace vqoe::sim

#include "vqoe/ml/binning.h"

#include <gtest/gtest.h>

#include <random>

namespace vqoe::ml {
namespace {

Dataset uniform_dataset(std::size_t rows, std::uint64_t seed) {
  Dataset d{{"u", "c"}, {"x", "y"}};
  std::mt19937_64 rng{seed};
  std::uniform_real_distribution<double> value(0.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    d.add({value(rng), 7.0}, static_cast<int>(i % 2));
  }
  return d;
}

TEST(BinnedMatrix, ValidatesMaxBins) {
  const Dataset d = uniform_dataset(10, 1);
  EXPECT_THROW(BinnedMatrix::build(d, 1), std::invalid_argument);
  EXPECT_THROW(BinnedMatrix::build(d, 300), std::invalid_argument);
}

TEST(BinnedMatrix, ConstantColumnGetsSingleBin) {
  const Dataset d = uniform_dataset(100, 2);
  const auto m = BinnedMatrix::build(d, 16);
  EXPECT_EQ(m.bin_count(1), 1);
  for (std::size_t r = 0; r < d.rows(); ++r) EXPECT_EQ(m.bin(r, 1), 0);
}

TEST(BinnedMatrix, BinsAreOrderConsistentWithValues) {
  const Dataset d = uniform_dataset(500, 3);
  const auto m = BinnedMatrix::build(d, 16);
  for (std::size_t a = 0; a < 100; ++a) {
    for (std::size_t b = a + 1; b < 100; ++b) {
      if (d.at(a, 0) < d.at(b, 0)) {
        EXPECT_LE(m.bin(a, 0), m.bin(b, 0));
      }
    }
  }
}

TEST(BinnedMatrix, ThresholdsSeparateBins) {
  const Dataset d = uniform_dataset(500, 4);
  const auto m = BinnedMatrix::build(d, 8);
  const int bins = m.bin_count(0);
  ASSERT_GE(bins, 2);
  for (std::size_t r = 0; r < d.rows(); ++r) {
    const int bin = m.bin(r, 0);
    const double v = d.at(r, 0);
    if (bin > 0) {
      EXPECT_GT(v, m.threshold(0, bin - 1));
    }
    if (bin < bins - 1) {
      EXPECT_LE(v, m.threshold(0, bin));
    }
  }
}

TEST(BinnedMatrix, EqualFrequencyRoughlyBalanced) {
  const Dataset d = uniform_dataset(1000, 5);
  const int kBins = 10;
  const auto m = BinnedMatrix::build(d, kBins);
  std::vector<int> counts(static_cast<std::size_t>(m.bin_count(0)), 0);
  for (std::size_t r = 0; r < d.rows(); ++r) counts[m.bin(r, 0)]++;
  for (int c : counts) {
    EXPECT_GT(c, 50);   // perfectly balanced would be 100
    EXPECT_LT(c, 200);
  }
}

TEST(BinnedMatrix, TwoDistinctValuesSplit) {
  Dataset d{{"f"}, {"x", "y"}};
  for (int i = 0; i < 10; ++i) d.add({0.0}, 0);
  for (int i = 0; i < 10; ++i) d.add({1.0}, 1);
  const auto m = BinnedMatrix::build(d, 32);
  EXPECT_GE(m.bin_count(0), 2);
  EXPECT_LT(m.bin(0, 0), m.bin(10, 0));
}

TEST(BinnedMatrix, HeavilySkewedColumnStillSplits) {
  // 99% zeros, 1% ones: quantile cuts collapse; the fallback boundary must
  // still separate the two values.
  Dataset d{{"f"}, {"x", "y"}};
  for (int i = 0; i < 990; ++i) d.add({0.0}, 0);
  for (int i = 0; i < 10; ++i) d.add({1.0}, 1);
  const auto m = BinnedMatrix::build(d, 16);
  ASSERT_GE(m.bin_count(0), 2);
  EXPECT_LT(m.bin(0, 0), m.bin(995, 0));
}

}  // namespace
}  // namespace vqoe::ml

#include "vqoe/ml/knn.h"

#include <gtest/gtest.h>

#include <random>

namespace vqoe::ml {
namespace {

Dataset blobs(std::size_t per_class, std::uint64_t seed, double separation = 4.0) {
  Dataset d{{"f0", "f1"}, {"a", "b"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({n(rng), n(rng)}, 0);
    d.add({n(rng) + separation, n(rng) + separation}, 1);
  }
  return d;
}

TEST(KnnClassifier, ValidatesInputs) {
  const Dataset empty{{"f"}, {"x"}};
  EXPECT_THROW(KnnClassifier::fit(empty), std::invalid_argument);
  const auto d = blobs(5, 1);
  EXPECT_THROW(KnnClassifier::fit(d, 0), std::invalid_argument);
}

TEST(KnnClassifier, LearnsSeparableData) {
  const auto model = KnnClassifier::fit(blobs(150, 2), 5);
  const auto test = blobs(80, 3);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.rows(); ++i) {
    if (model.predict(test.row(i)) == test.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.rows()),
            0.97);
}

TEST(KnnClassifier, OneNearestNeighbourMemorizes) {
  const auto d = blobs(30, 4);
  const auto model = KnnClassifier::fit(d, 1);
  for (std::size_t i = 0; i < d.rows(); i += 5) {
    EXPECT_EQ(model.predict(d.row(i)), d.label(i));
  }
}

TEST(KnnClassifier, KClampedToTrainingSize) {
  Dataset d{{"f"}, {"a", "b"}};
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  const auto model = KnnClassifier::fit(d, 100);
  EXPECT_EQ(model.k(), 2);
  const std::vector<double> x{0.0};
  (void)model.predict(x);  // must not crash
}

TEST(KnnClassifier, NormalizationMakesScalesIrrelevant) {
  // Feature f1 carries the label but on a tiny scale; f0 is large noise.
  // Without z-scoring, f0 would dominate the distance.
  Dataset d{{"big_noise", "small_signal"}, {"a", "b"}};
  std::mt19937_64 rng{5};
  std::normal_distribution<double> noise(0.0, 1000.0);
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    d.add({noise(rng), label * 0.001 + (label ? 0.0005 : -0.0005)}, label);
  }
  const auto model = KnnClassifier::fit(d, 7);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); i += 3) {
    if (model.predict(d.row(i)) == d.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / (d.rows() / 3 + 1), 0.9);
}

TEST(KnnClassifier, WidthMismatchThrows) {
  const auto model = KnnClassifier::fit(blobs(10, 6));
  const std::vector<double> wrong{1.0, 2.0, 3.0};
  EXPECT_THROW((void)model.predict(wrong), std::invalid_argument);
}

TEST(KnnClassifier, UntrainedThrows) {
  const KnnClassifier model;
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)model.predict(x), std::logic_error);
}

}  // namespace
}  // namespace vqoe::ml

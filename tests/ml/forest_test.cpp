#include "vqoe/ml/random_forest.h"

#include <gtest/gtest.h>

#include <random>

namespace vqoe::ml {
namespace {

Dataset three_blobs(std::size_t per_class, std::uint64_t seed,
                    double separation = 5.0) {
  Dataset d{{"f0", "f1", "noise"}, {"a", "b", "c"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({n(rng), n(rng), n(rng)}, 0);
    d.add({n(rng) + separation, n(rng), n(rng)}, 1);
    d.add({n(rng), n(rng) + separation, n(rng)}, 2);
  }
  return d;
}

double accuracy_on(const RandomForest& f, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i) {
    if (f.predict(d.row(i)) == d.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.rows());
}

TEST(RandomForest, ValidatesInputs) {
  const Dataset empty{{"f"}, {"x"}};
  EXPECT_THROW(RandomForest::fit(empty, {}), std::invalid_argument);
  const Dataset d = three_blobs(5, 1);
  ForestParams params;
  params.num_trees = 0;
  EXPECT_THROW(RandomForest::fit(d, params), std::invalid_argument);
}

TEST(RandomForest, LearnsSeparableMulticlass) {
  const Dataset train = three_blobs(150, 2);
  const Dataset test = three_blobs(100, 3);
  ForestParams params;
  params.num_trees = 30;
  const auto forest = RandomForest::fit(train, params);
  EXPECT_EQ(forest.num_trees(), 30u);
  EXPECT_GT(accuracy_on(forest, test), 0.97);
}

TEST(RandomForest, ProbaNormalized) {
  const Dataset d = three_blobs(50, 4);
  const auto forest = RandomForest::fit(d, {});
  const auto proba = forest.predict_proba(d.row(0));
  ASSERT_EQ(proba.size(), 3u);
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const Dataset d = three_blobs(60, 5);
  ForestParams params;
  params.seed = 77;
  params.num_trees = 10;
  const auto f1 = RandomForest::fit(d, params);
  const auto f2 = RandomForest::fit(d, params);
  for (std::size_t i = 0; i < d.rows(); i += 3) {
    EXPECT_EQ(f1.predict(d.row(i)), f2.predict(d.row(i)));
  }
}

TEST(RandomForest, OobAccuracyTracksTestAccuracy) {
  const Dataset train = three_blobs(120, 6, /*separation=*/2.5);
  const Dataset test = three_blobs(120, 7, /*separation=*/2.5);
  ForestParams params;
  params.num_trees = 40;
  params.compute_oob = true;
  const auto forest = RandomForest::fit(train, params);
  ASSERT_TRUE(forest.oob_accuracy().has_value());
  const double oob = *forest.oob_accuracy();
  const double test_acc = accuracy_on(forest, test);
  EXPECT_NEAR(oob, test_acc, 0.08);
}

TEST(RandomForest, NoOobUnlessRequested) {
  const Dataset d = three_blobs(20, 8);
  const auto forest = RandomForest::fit(d, {});
  EXPECT_FALSE(forest.oob_accuracy().has_value());
}

TEST(RandomForest, ImportanceSumsToOneAndRanksSignal) {
  const Dataset d = three_blobs(200, 9);
  ForestParams params;
  params.num_trees = 25;
  const auto forest = RandomForest::fit(d, params);
  const auto imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  double sum = 0.0;
  for (double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The pure-noise column must matter least.
  EXPECT_LT(imp[2], imp[0]);
  EXPECT_LT(imp[2], imp[1]);
}

TEST(RandomForest, PredictAllChecksLayout) {
  const Dataset d = three_blobs(20, 10);
  const auto forest = RandomForest::fit(d, {});
  const auto preds = forest.predict_all(d);
  EXPECT_EQ(preds.size(), d.rows());

  Dataset renamed{{"x0", "x1", "x2"}, {"a", "b", "c"}};
  renamed.add({0, 0, 0}, 0);
  EXPECT_THROW(forest.predict_all(renamed), std::invalid_argument);
}

// Property: more trees never dramatically hurt on held-out data.
class ForestSize : public ::testing::TestWithParam<int> {};

TEST_P(ForestSize, ReasonableAccuracyAcrossSizes) {
  const Dataset train = three_blobs(100, 11);
  const Dataset test = three_blobs(60, 12);
  ForestParams params;
  params.num_trees = GetParam();
  const auto forest = RandomForest::fit(train, params);
  // A single bootstrap tree sees only ~63% of the rows; its held-out
  // accuracy is noticeably noisier than any ensemble's.
  const double floor = GetParam() == 1 ? 0.85 : 0.9;
  EXPECT_GT(accuracy_on(forest, test), floor) << "trees=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSize, ::testing::Values(1, 5, 15, 40, 80));

}  // namespace
}  // namespace vqoe::ml

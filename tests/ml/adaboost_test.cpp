#include "vqoe/ml/adaboost.h"

#include <gtest/gtest.h>

#include <random>

namespace vqoe::ml {
namespace {

Dataset blobs(std::size_t per_class, std::uint64_t seed, double separation) {
  Dataset d{{"f0", "f1"}, {"a", "b", "c"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({n(rng), n(rng)}, 0);
    d.add({n(rng) + separation, n(rng)}, 1);
    d.add({n(rng), n(rng) + separation}, 2);
  }
  return d;
}

double accuracy(const AdaBoost& model, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i) {
    if (model.predict(d.row(i)) == d.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.rows());
}

TEST(AdaBoost, ValidatesInputs) {
  const Dataset empty{{"f"}, {"x"}};
  EXPECT_THROW(AdaBoost::fit(empty), std::invalid_argument);
  const auto d = blobs(10, 1, 4.0);
  AdaBoostParams params;
  params.rounds = 0;
  EXPECT_THROW(AdaBoost::fit(d, params), std::invalid_argument);
}

TEST(AdaBoost, LearnsSeparableMulticlass) {
  const auto model = AdaBoost::fit(blobs(100, 2, 4.0));
  EXPECT_GT(accuracy(model, blobs(60, 3, 4.0)), 0.95);
}

TEST(AdaBoost, BoostingDrivesTrainingErrorDown) {
  // The core AdaBoost property: ensemble training error shrinks with
  // rounds even when a single weak learner cannot fit the data.
  const auto train = blobs(200, 4, 2.2);
  AdaBoostParams one;
  one.rounds = 1;
  one.max_depth = 1;
  AdaBoostParams many;
  many.rounds = 80;
  many.max_depth = 1;
  const double single = accuracy(AdaBoost::fit(train, one), train);
  const double boosted = accuracy(AdaBoost::fit(train, many), train);
  EXPECT_GT(boosted, single + 0.05);
}

TEST(AdaBoost, PerfectWeakLearnerStopsEarly) {
  // Trivially separable in one split: the first learner is perfect.
  Dataset d{{"f"}, {"a", "b"}};
  for (int i = 0; i < 40; ++i) d.add({static_cast<double>(i)}, i < 20 ? 0 : 1);
  const auto model = AdaBoost::fit(d, {.rounds = 50, .max_depth = 2, .seed = 1});
  EXPECT_LE(model.rounds_used(), 2u);
  EXPECT_NEAR(accuracy(model, d), 1.0, 1e-9);
}

TEST(AdaBoost, SingleClassDegenerate) {
  Dataset d{{"f"}, {"only", "never"}};
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 0);
  const auto model = AdaBoost::fit(d);
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(model.predict(d.row(3)), 0);
}

TEST(AdaBoost, DeterministicForSeed) {
  const auto d = blobs(60, 6, 2.0);
  const auto a = AdaBoost::fit(d, {.rounds = 20, .max_depth = 2, .seed = 9});
  const auto b = AdaBoost::fit(d, {.rounds = 20, .max_depth = 2, .seed = 9});
  for (std::size_t i = 0; i < d.rows(); i += 7) {
    EXPECT_EQ(a.predict(d.row(i)), b.predict(d.row(i)));
  }
}

TEST(AdaBoost, UntrainedThrows) {
  const AdaBoost model;
  const std::vector<double> x{0.0, 0.0};
  EXPECT_THROW((void)model.predict(x), std::logic_error);
}

}  // namespace
}  // namespace vqoe::ml

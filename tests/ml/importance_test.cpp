#include "vqoe/ml/importance.h"

#include <gtest/gtest.h>

#include <random>

#include "vqoe/ml/random_forest.h"

namespace vqoe::ml {
namespace {

// Label depends on f0 only; f1 is correlated noise-free copy scaled, f2 is
// pure noise.
Dataset signal_and_noise(std::size_t rows, std::uint64_t seed) {
  Dataset d{{"signal", "weak", "noise"}, {"neg", "pos"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % 2);
    d.add({label * 5.0 + n(rng) * 0.5, label * 1.0 + n(rng) * 2.0, n(rng)},
          label);
  }
  return d;
}

TEST(PredictorAccuracy, PerfectAndBroken) {
  const auto d = signal_and_noise(100, 1);
  EXPECT_DOUBLE_EQ(
      predictor_accuracy([&](std::span<const double> x) {
        return x[0] > 2.5 ? 1 : 0;
      }, d),
      1.0);
  EXPECT_NEAR(predictor_accuracy([](std::span<const double>) { return 0; }, d),
              0.5, 1e-9);
  const Dataset empty{{"f"}, {"x"}};
  EXPECT_DOUBLE_EQ(
      predictor_accuracy([](std::span<const double>) { return 0; }, empty), 0.0);
}

TEST(PermutationImportance, RanksSignalAboveNoise) {
  const auto train = signal_and_noise(400, 2);
  const auto test = signal_and_noise(200, 3);
  ForestParams params;
  params.num_trees = 25;
  const auto forest = RandomForest::fit(train, params);
  std::mt19937_64 rng{4};
  const auto importance = permutation_importance(
      [&](std::span<const double> x) { return forest.predict(x); }, test, rng);
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 0.2);                 // shuffling signal is fatal
  EXPECT_GT(importance[0], importance[1]);       // weak feature matters less
  EXPECT_NEAR(importance[2], 0.0, 0.05);         // noise does not matter
}

TEST(PermutationImportance, ValidatesRepeats) {
  const auto d = signal_and_noise(50, 5);
  std::mt19937_64 rng{6};
  EXPECT_THROW(permutation_importance(
                   [](std::span<const double>) { return 0; }, d, rng, 0),
               std::invalid_argument);
}

TEST(PermutationImportance, WorksWithAnyPredictor) {
  // A hand-written rule instead of a trained model.
  const auto d = signal_and_noise(200, 7);
  std::mt19937_64 rng{8};
  const auto importance = permutation_importance(
      [](std::span<const double> x) { return x[0] > 2.5 ? 1 : 0; }, d, rng);
  EXPECT_GT(importance[0], 0.3);
  EXPECT_NEAR(importance[1], 0.0, 1e-9);  // the rule ignores f1 entirely
}

}  // namespace
}  // namespace vqoe::ml

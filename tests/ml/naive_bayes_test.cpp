#include "vqoe/ml/naive_bayes.h"

#include <gtest/gtest.h>

#include <random>

namespace vqoe::ml {
namespace {

Dataset blobs(std::size_t per_class, std::uint64_t seed, double separation = 4.0) {
  Dataset d{{"f0", "f1"}, {"a", "b"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({n(rng), n(rng)}, 0);
    d.add({n(rng) + separation, n(rng) - separation}, 1);
  }
  return d;
}

TEST(GaussianNaiveBayes, RejectsEmpty) {
  const Dataset empty{{"f"}, {"x"}};
  EXPECT_THROW(GaussianNaiveBayes::fit(empty), std::invalid_argument);
}

TEST(GaussianNaiveBayes, LearnsSeparableData) {
  const auto model = GaussianNaiveBayes::fit(blobs(200, 1));
  const auto test = blobs(100, 2);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.rows(); ++i) {
    if (model.predict(test.row(i)) == test.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.rows()),
            0.97);
}

TEST(GaussianNaiveBayes, PriorsMatterOnUninformativeFeatures) {
  // All features constant: prediction must follow the class prior.
  Dataset d{{"f"}, {"common", "rare"}};
  for (int i = 0; i < 90; ++i) d.add({1.0}, 0);
  for (int i = 0; i < 10; ++i) d.add({1.0}, 1);
  const auto model = GaussianNaiveBayes::fit(d);
  const std::vector<double> x{1.0};
  EXPECT_EQ(model.predict(x), 0);
}

TEST(GaussianNaiveBayes, LogPosteriorFiniteOnOutliers) {
  const auto model = GaussianNaiveBayes::fit(blobs(50, 3));
  const std::vector<double> far{1e6, -1e6};
  const auto posterior = model.log_posterior(far);
  for (double lp : posterior) EXPECT_TRUE(std::isfinite(lp));
}

TEST(GaussianNaiveBayes, WidthMismatchThrows) {
  const auto model = GaussianNaiveBayes::fit(blobs(20, 4));
  const std::vector<double> wrong{1.0};
  EXPECT_THROW((void)model.predict(wrong), std::invalid_argument);
}

TEST(GaussianNaiveBayes, UntrainedThrows) {
  const GaussianNaiveBayes model;
  const std::vector<double> x{1.0};
  EXPECT_THROW((void)model.predict(x), std::logic_error);
}

TEST(GaussianNaiveBayes, HandlesMissingClassGracefully) {
  Dataset d{{"f"}, {"a", "b", "never"}};
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i % 2) * 10}, i % 2);
  const auto model = GaussianNaiveBayes::fit(d);
  const std::vector<double> x{0.0};
  EXPECT_EQ(model.predict(x), 0);
  const std::vector<double> y{10.0};
  EXPECT_EQ(model.predict(y), 1);
}

}  // namespace
}  // namespace vqoe::ml

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "vqoe/ml/random_forest.h"

namespace vqoe::ml {
namespace {

Dataset blobs(std::size_t per_class, std::uint64_t seed) {
  Dataset d{{"f0", "f1", "f2"}, {"a", "b", "c"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({n(rng), n(rng), n(rng)}, 0);
    d.add({n(rng) + 4, n(rng), n(rng)}, 1);
    d.add({n(rng), n(rng) + 4, n(rng)}, 2);
  }
  return d;
}

TEST(ForestSerialization, RoundTripPredictionsIdentical) {
  const auto data = blobs(80, 1);
  ForestParams params;
  params.num_trees = 15;
  params.compute_oob = true;
  const auto forest = RandomForest::fit(data, params);

  std::stringstream stream;
  forest.save(stream);
  const auto loaded = RandomForest::load(stream);

  EXPECT_EQ(loaded.num_trees(), forest.num_trees());
  EXPECT_EQ(loaded.num_classes(), forest.num_classes());
  EXPECT_EQ(loaded.feature_names(), forest.feature_names());
  ASSERT_TRUE(loaded.oob_accuracy().has_value());
  EXPECT_DOUBLE_EQ(*loaded.oob_accuracy(), *forest.oob_accuracy());

  for (std::size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(loaded.predict(data.row(i)), forest.predict(data.row(i)));
    const auto pa = forest.predict_proba(data.row(i));
    const auto pb = loaded.predict_proba(data.row(i));
    for (std::size_t c = 0; c < pa.size(); ++c) EXPECT_NEAR(pa[c], pb[c], 1e-12);
  }
}

TEST(ForestSerialization, ImportancePreserved) {
  const auto data = blobs(60, 2);
  const auto forest = RandomForest::fit(data, {});
  std::stringstream stream;
  forest.save(stream);
  const auto loaded = RandomForest::load(stream);
  const auto ia = forest.feature_importance();
  const auto ib = loaded.feature_importance();
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) EXPECT_NEAR(ia[i], ib[i], 1e-12);
}

TEST(ForestSerialization, NoOobStaysAbsent) {
  const auto forest = RandomForest::fit(blobs(20, 3), {});
  std::stringstream stream;
  forest.save(stream);
  const auto loaded = RandomForest::load(stream);
  EXPECT_FALSE(loaded.oob_accuracy().has_value());
}

TEST(ForestSerialization, BadHeaderThrows) {
  std::stringstream stream{"not-a-forest v1\n"};
  EXPECT_THROW(RandomForest::load(stream), std::runtime_error);
}

TEST(ForestSerialization, TruncatedInputThrows) {
  const auto forest = RandomForest::fit(blobs(20, 4), {});
  std::stringstream stream;
  forest.save(stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated{text};
  EXPECT_THROW(RandomForest::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace vqoe::ml

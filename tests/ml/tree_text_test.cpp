#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "vqoe/ml/decision_tree.h"

namespace vqoe::ml {
namespace {

DecisionTree stump() {
  Dataset d{{"size", "rtt"}, {"healthy", "stalled"}};
  for (int i = 0; i < 40; ++i) {
    d.add({static_cast<double>(i), 50.0}, i < 20 ? 0 : 1);
  }
  const auto binned = BinnedMatrix::build(d);
  std::vector<std::size_t> rows(d.rows());
  std::iota(rows.begin(), rows.end(), 0);
  std::mt19937_64 rng{1};
  TreeParams params;
  params.max_depth = 1;
  return DecisionTree::fit(d, binned, rows, params, rng, 2);
}

TEST(TreeText, NamesUsedWhenProvided) {
  const auto tree = stump();
  const std::vector<std::string> features{"size", "rtt"};
  const std::vector<std::string> classes{"healthy", "stalled"};
  const auto text = tree.to_text(features, classes);
  EXPECT_NE(text.find("size <= "), std::string::npos);
  EXPECT_NE(text.find("healthy="), std::string::npos);
  EXPECT_NE(text.find("stalled="), std::string::npos);
  EXPECT_EQ(text.find("f0"), std::string::npos);
}

TEST(TreeText, IndicesWhenNamesAbsent) {
  const auto tree = stump();
  const auto text = tree.to_text();
  EXPECT_NE(text.find("f0 <= "), std::string::npos);
  EXPECT_NE(text.find("leaf:"), std::string::npos);
}

TEST(TreeText, LeafCountMatchesStructure) {
  const auto tree = stump();
  const auto text = tree.to_text();
  std::size_t leaves = 0;
  for (std::size_t pos = text.find("leaf:"); pos != std::string::npos;
       pos = text.find("leaf:", pos + 1)) {
    ++leaves;
  }
  EXPECT_EQ(leaves, tree.leaf_count());
}

TEST(TreeText, EmptyTreeEmptyText) {
  const DecisionTree tree;
  EXPECT_TRUE(tree.to_text().empty());
}

}  // namespace
}  // namespace vqoe::ml

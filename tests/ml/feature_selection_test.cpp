#include "vqoe/ml/feature_selection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace vqoe::ml {
namespace {

TEST(Entropy, HandValues) {
  const std::vector<std::size_t> fair{1, 1};
  EXPECT_DOUBLE_EQ(entropy(fair), 1.0);
  const std::vector<std::size_t> certain{10, 0};
  EXPECT_DOUBLE_EQ(entropy(certain), 0.0);
  const std::vector<std::size_t> quarters{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(entropy(quarters), 2.0);
  EXPECT_DOUBLE_EQ(entropy({}), 0.0);
}

TEST(Discretize, ConstantColumnSingleBin) {
  const std::vector<double> v(40, 3.0);
  const auto codes = discretize_equal_frequency(v, 10);
  for (int c : codes) EXPECT_EQ(c, 0);
}

TEST(Discretize, BinCodesOrderedWithValues) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  const auto codes = discretize_equal_frequency(v, 10);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GE(codes[i], codes[i - 1]);
  EXPECT_EQ(codes.front(), 0);
  EXPECT_EQ(codes.back(), 9);
}

TEST(Discretize, RejectsBadBins) {
  const std::vector<double> v{1, 2};
  EXPECT_THROW(discretize_equal_frequency(v, 0), std::invalid_argument);
}

TEST(InformationGain, PerfectPredictorGetsClassEntropy) {
  // Feature == label: IG = H(Y) = 1 bit for balanced binary labels.
  std::vector<int> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i % 2);
    y.push_back(i % 2);
  }
  EXPECT_NEAR(information_gain(x, y), 1.0, 1e-9);
}

TEST(InformationGain, IndependentVariableNearZero) {
  std::mt19937_64 rng{1};
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<int> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(coin(rng));
    y.push_back(coin(rng));
  }
  EXPECT_LT(information_gain(x, y), 0.01);
}

TEST(InformationGain, SizeMismatchThrows) {
  const std::vector<int> x{1, 2};
  const std::vector<int> y{1};
  EXPECT_THROW((void)information_gain(x, y), std::invalid_argument);
}

TEST(SymmetricUncertainty, RangeAndSymmetry) {
  std::mt19937_64 rng{2};
  std::uniform_int_distribution<int> val(0, 4);
  std::vector<int> x, y;
  for (int i = 0; i < 500; ++i) {
    const int v = val(rng);
    x.push_back(v);
    y.push_back((v + val(rng)) % 5);
  }
  const double su_xy = symmetric_uncertainty(x, y);
  const double su_yx = symmetric_uncertainty(y, x);
  EXPECT_NEAR(su_xy, su_yx, 1e-12);
  EXPECT_GE(su_xy, 0.0);
  EXPECT_LE(su_xy, 1.0);
}

TEST(SymmetricUncertainty, IdenticalVariablesScoreOne) {
  std::vector<int> x;
  for (int i = 0; i < 60; ++i) x.push_back(i % 3);
  EXPECT_NEAR(symmetric_uncertainty(x, x), 1.0, 1e-9);
}

TEST(SymmetricUncertainty, ConstantVariableScoresZero) {
  const std::vector<int> x(50, 1);
  std::vector<int> y;
  for (int i = 0; i < 50; ++i) y.push_back(i % 2);
  EXPECT_DOUBLE_EQ(symmetric_uncertainty(x, y), 0.0);
}

// A dataset with one informative feature, one redundant copy of it, and
// noise columns — the canonical CFS test case.
Dataset cfs_dataset(std::size_t rows, std::uint64_t seed) {
  Dataset d{{"signal", "redundant", "noise1", "noise2"}, {"neg", "pos"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % 2);
    const double signal = label * 4.0 + n(rng) * 0.5;
    d.add({signal, signal + n(rng) * 0.05, n(rng), n(rng)}, label);
  }
  return d;
}

TEST(RankByInformationGain, SignalRanksFirst) {
  const Dataset d = cfs_dataset(600, 3);
  const auto ranked = rank_by_information_gain(d);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_TRUE(ranked[0].first == "signal" || ranked[0].first == "redundant");
  EXPECT_GT(ranked[0].second, 0.5);
  // Noise columns at the bottom with near-zero gain.
  EXPECT_LT(ranked[3].second, 0.05);
}

TEST(CfsEvaluator, MeritPrefersInformativeFeature) {
  const Dataset d = cfs_dataset(600, 4);
  const CfsEvaluator eval{d};
  const std::vector<std::size_t> signal{0};
  const std::vector<std::size_t> noise{2};
  EXPECT_GT(eval.merit(signal), eval.merit(noise));
  EXPECT_DOUBLE_EQ(eval.merit({}), 0.0);
}

TEST(CfsEvaluator, RedundantAdditionDoesNotHelp) {
  const Dataset d = cfs_dataset(600, 5);
  const CfsEvaluator eval{d};
  const std::vector<std::size_t> signal{0};
  const std::vector<std::size_t> with_redundant{0, 1};
  // Adding a near-copy of the signal should not raise the merit much (CFS's
  // whole point: penalize inter-feature correlation).
  EXPECT_LT(eval.merit(with_redundant), eval.merit(signal) * 1.05);
}

TEST(BestFirst, SelectsSignalAndDropsNoise) {
  const Dataset d = cfs_dataset(800, 6);
  const CfsEvaluator eval{d};
  const auto selected = best_first_select(eval);
  ASSERT_FALSE(selected.empty());
  // Must contain at least one of the informative pair, and no noise columns
  // ahead of them.
  bool has_signal = false;
  for (std::size_t col : selected) {
    if (col == 0 || col == 1) has_signal = true;
  }
  EXPECT_TRUE(has_signal);
}

TEST(BestFirst, MaxSubsetCapRespected) {
  const Dataset d = cfs_dataset(400, 7);
  const CfsEvaluator eval{d};
  BestFirstOptions options;
  options.max_subset = 1;
  const auto selected = best_first_select(eval, options);
  EXPECT_LE(selected.size(), 1u);
}

TEST(CfsBestFirstNames, OrderedByGainDescending) {
  const Dataset d = cfs_dataset(500, 8);
  const auto names = cfs_best_first_feature_names(d);
  ASSERT_FALSE(names.empty());
  double prev = 1e9;
  for (const std::string& name : names) {
    const double gain = information_gain(d, d.feature_index(name));
    EXPECT_LE(gain, prev + 1e-12);
    prev = gain;
  }
}

}  // namespace
}  // namespace vqoe::ml

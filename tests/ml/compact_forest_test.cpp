// CompactForest equivalence and validation suite (`compact` ctest label).
//
// The flattened representation must be a pure re-encoding: same class for
// every row as the legacy tree-walking path, probabilities equal within
// float-storage tolerance, batch kernel bit-identical to single-row calls.
// compile() must also reject malformed trees (cycles, shared subtrees,
// out-of-range indices) instead of mirroring them into the flat arrays.
#include "vqoe/ml/compact_forest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <random>
#include <sstream>
#include <string>

#include "vqoe/ml/random_forest.h"
#include "vqoe/par/parallel.h"

namespace vqoe::ml {
namespace {

/// Gaussian blobs with `num_classes` classes, two informative columns and
/// one noise column — separable enough that vote totals are not knife-edge
/// ties, varied enough to exercise every split feature.
Dataset blobs(std::size_t per_class, std::size_t num_classes,
              std::uint64_t seed, double separation = 3.0) {
  std::vector<std::string> class_names;
  for (std::size_t c = 0; c < num_classes; ++c) {
    class_names.push_back("c" + std::to_string(c));
  }
  Dataset d{{"f0", "f1", "noise"}, class_names};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      const double angle = 2.0 * 3.14159265358979 * static_cast<double>(c) /
                           static_cast<double>(num_classes);
      d.add({n(rng) + separation * std::cos(angle),
             n(rng) + separation * std::sin(angle), n(rng)},
            static_cast<int>(c));
    }
  }
  return d;
}

/// The legacy view of a trained forest: same trees, compact dispatch off.
RandomForest legacy_view(const RandomForest& forest) {
  RandomForest legacy = forest;
  legacy.set_use_compact(false);
  return legacy;
}

void expect_equivalent(const RandomForest& forest, const Dataset& data) {
  const RandomForest legacy = legacy_view(forest);
  const CompactForest* compact = forest.compact();
  ASSERT_NE(compact, nullptr);
  ASSERT_EQ(compact->num_trees(), forest.num_trees());
  ASSERT_EQ(compact->num_classes(), forest.num_classes());

  std::vector<double> proba_compact(forest.num_classes());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    compact->predict_proba_into(data.row(i), proba_compact);
    const auto proba_legacy = legacy.predict_proba(data.row(i));
    for (std::size_t c = 0; c < proba_legacy.size(); ++c) {
      EXPECT_NEAR(proba_compact[c], proba_legacy[c], 1e-6)
          << "row " << i << " class " << c;
    }
    // Leaf distributions are stored as float, so a vote total tied more
    // finely than float resolution may argmax to a different (equally
    // supported) class. Exact class agreement is required whenever the
    // legacy top-2 margin is above that resolution; on genuine ties the
    // compact class must still be one of the tied leaders.
    const int cls_compact = compact->predict(data.row(i));
    const int cls_legacy = legacy.predict(data.row(i));
    auto sorted = proba_legacy;
    std::sort(sorted.begin(), sorted.end(), std::greater<>{});
    if (sorted[0] - sorted[1] > 1e-5) {
      EXPECT_EQ(cls_compact, cls_legacy) << "row " << i;
    } else {
      EXPECT_NEAR(proba_legacy[static_cast<std::size_t>(cls_compact)],
                  sorted[0], 1e-5)
          << "row " << i;
    }
  }

  // The blocked batch kernel accumulates votes per row in tree order, so
  // it must agree bit-for-bit with the single-row walk.
  const auto batch = compact->predict_all(data);
  const auto batch_proba = compact->predict_proba_all(data);
  ASSERT_EQ(batch.size(), data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    EXPECT_EQ(batch[i], compact->predict(data.row(i))) << "row " << i;
    compact->predict_proba_into(data.row(i), proba_compact);
    for (std::size_t c = 0; c < proba_compact.size(); ++c) {
      EXPECT_EQ(batch_proba[i * proba_compact.size() + c], proba_compact[c])
          << "row " << i << " class " << c;
    }
  }
}

TEST(CompactForest, EquivalentAcrossForestShapes) {
  struct Shape {
    std::size_t classes;
    int depth;
    int mtry;
    int trees;
  };
  const Shape shapes[] = {
      {2, 24, 0, 15}, {3, 3, 2, 40}, {3, 8, 1, 1}, {5, 24, 2, 25},
  };
  std::uint64_t seed = 100;
  for (const Shape& s : shapes) {
    const Dataset train = blobs(60, s.classes, seed++);
    const Dataset test = blobs(40, s.classes, seed++);
    ForestParams params;
    params.num_trees = s.trees;
    params.tree.max_depth = s.depth;
    params.tree.mtry = s.mtry;
    params.seed = seed;
    const auto forest = RandomForest::fit(train, params);
    SCOPED_TRACE("classes=" + std::to_string(s.classes) +
                 " depth=" + std::to_string(s.depth) +
                 " mtry=" + std::to_string(s.mtry) +
                 " trees=" + std::to_string(s.trees));
    expect_equivalent(forest, train);
    expect_equivalent(forest, test);
  }
}

TEST(CompactForest, EquivalentAfterSaveLoadRoundTrip) {
  const Dataset train = blobs(80, 3, 7);
  ForestParams params;
  params.num_trees = 20;
  params.seed = 11;
  const auto forest = RandomForest::fit(train, params);

  std::stringstream ss;
  forest.save(ss);
  const auto loaded = RandomForest::load(ss);
  ASSERT_NE(loaded.compact(), nullptr);

  // save() writes with enough precision that the round trip is exact: the
  // reloaded compact forest must match the original one bit-for-bit.
  const Dataset test = blobs(50, 3, 8);
  std::vector<double> pa(3), pb(3);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_EQ(loaded.predict(test.row(i)), forest.predict(test.row(i)));
    loaded.compact()->predict_proba_into(test.row(i), pa);
    forest.compact()->predict_proba_into(test.row(i), pb);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(pa[c], pb[c]);
  }
  expect_equivalent(loaded, test);
}

TEST(CompactForest, BatchKernelDeterministicAcrossThreadCounts) {
  const Dataset train = blobs(80, 3, 21);
  const Dataset test = blobs(120, 3, 22);
  ForestParams params;
  params.num_trees = 30;
  const auto forest = RandomForest::fit(train, params);

  par::set_threads(1);
  const auto preds1 = forest.compact()->predict_all(test);
  const auto proba1 = forest.compact()->predict_proba_all(test);
  for (const int threads : {2, 4, 8}) {
    par::set_threads(threads);
    EXPECT_EQ(forest.compact()->predict_all(test), preds1);
    EXPECT_EQ(forest.compact()->predict_proba_all(test), proba1);
  }
  par::set_threads(0);
}

TEST(CompactForest, OneAllocationLayout) {
  const Dataset train = blobs(50, 3, 31);
  ForestParams params;
  params.num_trees = 10;
  const auto forest = RandomForest::fit(train, params);
  const CompactForest* compact = forest.compact();
  ASSERT_NE(compact, nullptr);

  // threshold + feature + right per node, one float per leaf-class proba,
  // one root per tree — all 4-byte lanes of the single arena.
  std::size_t leaves = 0;
  for (const auto& tree : forest.trees()) leaves += tree.leaf_count();
  const std::size_t expected =
      4 * (3 * compact->node_count() + leaves * compact->num_classes() +
           compact->num_trees());
  EXPECT_EQ(compact->bytes(), expected);
  EXPECT_EQ(compact->num_features(), 3u);
}

TEST(CompactForest, RejectsWidthMismatchAndBadSpans) {
  const Dataset train = blobs(30, 2, 41);
  const auto forest = RandomForest::fit(train, {});
  const CompactForest* compact = forest.compact();
  ASSERT_NE(compact, nullptr);

  Dataset wide{{"a", "b", "c", "d"}, {"c0", "c1"}};
  wide.add({0, 0, 0, 0}, 0);
  EXPECT_THROW(compact->predict_all(wide), std::invalid_argument);

  std::vector<double> wrong(5);
  EXPECT_THROW(compact->predict_proba_into(train.row(0), wrong),
               std::invalid_argument);
  EXPECT_THROW(forest.predict_proba_into(train.row(0), wrong),
               std::invalid_argument);
  EXPECT_THROW(CompactForest::compile(RandomForest{}), std::invalid_argument);
}

// --- malformed-input validation ------------------------------------------
//
// DecisionTree::load bounds-checks child and proba indices, but cannot see
// graph shape (cycles, shared subtrees) or the forest's column count.
// Compilation runs as the RandomForest::load epilogue, so a malformed file
// must fail the load instead of producing a forest whose traversal hangs.

std::string forest_text(const std::string& tree_body) {
  return "vqoe-forest v1\n"
         "classes 2\n"
         "features 2\nf0\nf1\n"
         "importance 0 0\n"
         "oob -1\n"
         "trees 1\n" +
         tree_body;
}

RandomForest load_forest(const std::string& text) {
  std::istringstream is{text};
  return RandomForest::load(is);
}

TEST(CompactForest, CompileRejectsCyclicTree) {
  // Node 1 routes back to the root: in-bounds everywhere, but any walk
  // reaching it never terminates.
  const auto text = forest_text(
      "tree 3 2 2 2\n"
      "0 0.5 1 2 -1\n"
      "0 0.25 0 2 -1\n"
      "-1 0 -1 -1 0\n"
      "0.5 0.5\n"
      "0 0\n");
  EXPECT_THROW(load_forest(text), std::runtime_error);
}

TEST(CompactForest, CompileRejectsSharedSubtree) {
  // Both children of the root are node 2 — a DAG, not a tree.
  const auto text = forest_text(
      "tree 3 2 2 2\n"
      "0 0.5 2 2 -1\n"
      "-1 0 -1 -1 0\n"
      "-1 0 -1 -1 0\n"
      "0.5 0.5\n"
      "0 0\n");
  EXPECT_THROW(load_forest(text), std::runtime_error);
}

TEST(CompactForest, CompileRejectsFeatureOutOfRange) {
  // Split on column 7 of a 2-column forest; the per-tree load cannot know
  // the column count, so this is compile's check.
  const auto text = forest_text(
      "tree 3 4 2 2\n"
      "7 0.5 1 2 -1\n"
      "-1 0 -1 -1 0\n"
      "-1 0 -1 -1 2\n"
      "1 0 0 1\n"
      "0 0\n");
  EXPECT_THROW(load_forest(text), std::runtime_error);
}

TEST(CompactForest, WellFormedFileStillLoads) {
  const auto text = forest_text(
      "tree 3 4 2 2\n"
      "1 0.5 1 2 -1\n"
      "-1 0 -1 -1 0\n"
      "-1 0 -1 -1 2\n"
      "1 0 0 1\n"
      "0 0\n");
  const auto forest = load_forest(text);
  ASSERT_NE(forest.compact(), nullptr);
  const std::vector<double> low{0.0, 0.0}, high{0.0, 1.0};
  EXPECT_EQ(forest.predict(low), 0);
  EXPECT_EQ(forest.predict(high), 1);
}

}  // namespace
}  // namespace vqoe::ml

#include "vqoe/ml/metrics.h"

#include <gtest/gtest.h>

namespace vqoe::ml {
namespace {

ConfusionMatrix make_example() {
  // actual\pred   a   b
  //     a         8   2
  //     b         1   9
  ConfusionMatrix cm{{"a", "b"}};
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  for (int i = 0; i < 1; ++i) cm.add(1, 0);
  for (int i = 0; i < 9; ++i) cm.add(1, 1);
  return cm;
}

TEST(ConfusionMatrix, RequiresAtLeastOneClass) {
  EXPECT_THROW(ConfusionMatrix{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(ConfusionMatrix, AddValidatesLabels) {
  ConfusionMatrix cm{{"a", "b"}};
  EXPECT_THROW(cm.add(2, 0), std::invalid_argument);
  EXPECT_THROW(cm.add(0, -1), std::invalid_argument);
}

TEST(ConfusionMatrix, CountsAndSupport) {
  const auto cm = make_example();
  EXPECT_EQ(cm.count(0, 0), 8u);
  EXPECT_EQ(cm.count(0, 1), 2u);
  EXPECT_EQ(cm.support(0), 10u);
  EXPECT_EQ(cm.support(1), 10u);
  EXPECT_EQ(cm.total(), 20u);
}

TEST(ConfusionMatrix, Accuracy) {
  const auto cm = make_example();
  EXPECT_DOUBLE_EQ(cm.accuracy(), 17.0 / 20.0);
  const ConfusionMatrix empty{{"a"}};
  EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
}

TEST(ConfusionMatrix, PerClassRates) {
  const auto cm = make_example();
  EXPECT_DOUBLE_EQ(cm.tp_rate(0), 0.8);
  EXPECT_DOUBLE_EQ(cm.tp_rate(1), 0.9);
  EXPECT_DOUBLE_EQ(cm.recall(0), cm.tp_rate(0));
  // FP rate of class a: 1 "b" predicted as "a" over 10 negatives.
  EXPECT_DOUBLE_EQ(cm.fp_rate(0), 0.1);
  EXPECT_DOUBLE_EQ(cm.fp_rate(1), 0.2);
  EXPECT_DOUBLE_EQ(cm.precision(0), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 9.0 / 11.0);
}

TEST(ConfusionMatrix, WeightedAverages) {
  const auto cm = make_example();
  // Equal supports: weighted = plain mean.
  EXPECT_DOUBLE_EQ(cm.weighted_tp_rate(), 0.85);
  EXPECT_DOUBLE_EQ(cm.weighted_fp_rate(), 0.15);
  EXPECT_NEAR(cm.weighted_precision(), 0.5 * (8.0 / 9.0 + 9.0 / 11.0), 1e-12);
}

TEST(ConfusionMatrix, RowFractions) {
  const auto cm = make_example();
  EXPECT_DOUBLE_EQ(cm.row_fraction(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(cm.row_fraction(0, 1), 0.2);
  ConfusionMatrix empty{{"a", "b"}};
  EXPECT_DOUBLE_EQ(empty.row_fraction(0, 0), 0.0);
}

TEST(ConfusionMatrix, NeverPredictedClassHasZeroPrecision) {
  ConfusionMatrix cm{{"a", "b"}};
  cm.add(0, 0);
  cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.tp_rate(1), 0.0);
}

TEST(ConfusionMatrix, MergeAccumulates) {
  auto a = make_example();
  const auto b = make_example();
  a.merge(b);
  EXPECT_EQ(a.total(), 40u);
  EXPECT_DOUBLE_EQ(a.accuracy(), 17.0 / 20.0);
}

TEST(ConfusionMatrix, MergeRejectsDifferentClasses) {
  ConfusionMatrix a{{"a", "b"}};
  ConfusionMatrix b{{"x", "y"}};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(ConfusionMatrix, TablesMentionEveryClass) {
  const auto cm = make_example();
  const auto metrics = cm.metrics_table();
  const auto confusion = cm.confusion_table();
  for (const char* name : {"a", "b"}) {
    EXPECT_NE(metrics.find(name), std::string::npos);
    EXPECT_NE(confusion.find(name), std::string::npos);
  }
  EXPECT_NE(metrics.find("weighted avg."), std::string::npos);
  EXPECT_NE(confusion.find("%"), std::string::npos);
}

TEST(ConfusionMatrix, SingleClassDegenerate) {
  ConfusionMatrix cm{{"only"}};
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.fp_rate(0), 0.0);  // no negatives exist
}

}  // namespace
}  // namespace vqoe::ml

#include "vqoe/ml/decision_tree.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

namespace vqoe::ml {
namespace {

// Two well-separated Gaussian blobs in 2D.
Dataset blobs(std::size_t per_class, std::uint64_t seed, double separation = 6.0) {
  Dataset d{{"f0", "f1"}, {"neg", "pos"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> noise(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({noise(rng), noise(rng)}, 0);
    d.add({noise(rng) + separation, noise(rng) + separation}, 1);
  }
  return d;
}

std::vector<std::size_t> all_rows(const Dataset& d) {
  std::vector<std::size_t> idx(d.rows());
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

TEST(DecisionTree, FitsSeparableData) {
  const Dataset d = blobs(100, 1);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{2};
  const auto tree =
      DecisionTree::fit(d, binned, all_rows(d), TreeParams{}, rng, 2);
  ASSERT_TRUE(tree.trained());

  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.rows(); ++i) {
    if (tree.predict(d.row(i)) == d.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(d.rows()), 0.99);
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  const Dataset d = blobs(60, 3);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{4};
  const auto tree =
      DecisionTree::fit(d, binned, all_rows(d), TreeParams{}, rng, 2);
  for (std::size_t i = 0; i < d.rows(); i += 7) {
    const auto proba = tree.predict_proba(d.row(i));
    double sum = 0.0;
    for (double p : proba) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset d = blobs(200, 5, /*separation=*/1.0);  // overlapping: deep tree
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{6};
  TreeParams params;
  params.max_depth = 3;
  const auto tree = DecisionTree::fit(d, binned, all_rows(d), params, rng, 2);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTree, StumpWhenDepthZero) {
  const Dataset d = blobs(50, 7);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{8};
  TreeParams params;
  params.max_depth = 0;
  const auto tree = DecisionTree::fit(d, binned, all_rows(d), params, rng, 2);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(DecisionTree, PureNodeBecomesLeaf) {
  Dataset d{{"f"}, {"x", "y"}};
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 0);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{9};
  const auto tree =
      DecisionTree::fit(d, binned, all_rows(d), TreeParams{}, rng, 2);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(d.row(0)), 0);
}

TEST(DecisionTree, EmptyTrainingSampleThrows) {
  const Dataset d = blobs(10, 10);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{11};
  const std::vector<std::size_t> none;
  EXPECT_THROW(DecisionTree::fit(d, binned, none, TreeParams{}, rng, 2),
               std::invalid_argument);
}

TEST(DecisionTree, BootstrapIndicesWithDuplicates) {
  const Dataset d = blobs(50, 12);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{13};
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < d.rows(); ++i) idx.push_back(i % 10);
  const auto tree = DecisionTree::fit(d, binned, idx, TreeParams{}, rng, 2);
  EXPECT_TRUE(tree.trained());
}

TEST(DecisionTree, ImportanceConcentratesOnInformativeFeature) {
  // f0 carries the label, f1 is pure noise.
  Dataset d{{"informative", "noise"}, {"x", "y"}};
  std::mt19937_64 data_rng{14};
  std::normal_distribution<double> noise(0.0, 1.0);
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    d.add({label * 10.0 + noise(data_rng), noise(data_rng)}, label);
  }
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{15};
  const auto tree =
      DecisionTree::fit(d, binned, all_rows(d), TreeParams{}, rng, 2);
  const auto& imp = tree.impurity_importance();
  EXPECT_GT(imp[0], 10.0 * std::max(imp[1], 1e-12));
}

TEST(DecisionTree, MinSamplesLeafLimitsLeafSize) {
  const Dataset d = blobs(100, 16, /*separation=*/0.5);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{17};
  TreeParams params;
  params.min_samples_leaf = 40;
  const auto tree = DecisionTree::fit(d, binned, all_rows(d), params, rng, 2);
  // 200 rows, leaves of >= 40: at most 5 leaves.
  EXPECT_LE(tree.leaf_count(), 5u);
}

// A hand-edited model file must be rejected at load time, not crash at
// predict time: empty trees, out-of-range children and leaf probability
// offsets that would read past the probas array are all UB otherwise.
TEST(DecisionTreeLoad, RejectsMalformedModels) {
  const auto load_from = [](const std::string& text) {
    std::istringstream is{text};
    return DecisionTree::load(is);
  };

  // Empty tree: predict_proba would dereference nodes_.front().
  EXPECT_THROW(load_from("tree 0 0 2 0\n\n\n"), std::runtime_error);
  // Zero classes: a leaf's proba span would be empty.
  EXPECT_THROW(load_from("tree 1 0 0 0\n-1 0 -1 -1 0\n\n\n"), std::runtime_error);
  // Child index past the node array.
  EXPECT_THROW(
      load_from("tree 2 2 2 0\n0 0.5 1 7 -1\n-1 0 -1 -1 0\n0.5 0.5\n\n"),
      std::runtime_error);
  // Negative child index on a split node.
  EXPECT_THROW(
      load_from("tree 2 2 2 0\n0 0.5 -3 1 -1\n-1 0 -1 -1 0\n0.5 0.5\n\n"),
      std::runtime_error);
  // Leaf probability offset that reads past probas_.
  EXPECT_THROW(load_from("tree 1 2 2 0\n-1 0 -1 -1 1\n0.5 0.5\n\n"),
               std::runtime_error);
  EXPECT_THROW(load_from("tree 1 2 2 0\n-1 0 -1 -1 -2\n0.5 0.5\n\n"),
               std::runtime_error);

  // A well-formed single-leaf model still loads.
  const auto tree = load_from("tree 1 2 2 0\n-1 0 -1 -1 0\n0.25 0.75\n\n");
  EXPECT_EQ(tree.num_classes(), 2u);
  const double features[] = {0.0};
  EXPECT_EQ(tree.predict(features), 1);
}

// Round-trip through save/load stays valid under the new checks.
TEST(DecisionTreeLoad, RoundTripSurvivesValidation) {
  const Dataset d = blobs(60, 18);
  const auto binned = BinnedMatrix::build(d);
  std::mt19937_64 rng{19};
  const auto tree = DecisionTree::fit(d, binned, all_rows(d), TreeParams{}, rng, 2);
  std::stringstream ss;
  tree.save(ss);
  const auto reloaded = DecisionTree::load(ss);
  for (std::size_t i = 0; i < d.rows(); i += 7) {
    EXPECT_EQ(reloaded.predict(d.row(i)), tree.predict(d.row(i)));
  }
}

}  // namespace
}  // namespace vqoe::ml

#include "vqoe/ml/dataset.h"

#include <gtest/gtest.h>

#include <random>

namespace vqoe::ml {
namespace {

Dataset make_small() {
  Dataset d{{"a", "b"}, {"x", "y"}};
  d.add({1.0, 10.0}, 0);
  d.add({2.0, 20.0}, 1);
  d.add({3.0, 30.0}, 0);
  return d;
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = make_small();
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 2u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_DOUBLE_EQ(d.at(1, 1), 20.0);
  EXPECT_EQ(d.label(2), 0);
  EXPECT_EQ(d.feature_index("b"), 1u);
  const auto col = d.column(0);
  EXPECT_EQ(col, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Dataset, RejectsDuplicateFeatureNames) {
  EXPECT_THROW((Dataset{{"a", "a"}, {"x"}}), std::invalid_argument);
}

TEST(Dataset, AddValidatesRowAndLabel) {
  Dataset d{{"a"}, {"x", "y"}};
  EXPECT_THROW(d.add({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW(d.add({1.0}, 2), std::invalid_argument);
  EXPECT_THROW(d.add({1.0}, -1), std::invalid_argument);
}

TEST(Dataset, UnknownFeatureNameThrows) {
  const Dataset d = make_small();
  EXPECT_THROW((void)d.feature_index("zzz"), std::out_of_range);
}

TEST(Dataset, ClassCounts) {
  const Dataset d = make_small();
  const auto counts = d.class_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(Dataset, ProjectReordersColumns) {
  const Dataset d = make_small();
  const std::vector<std::string> names{"b", "a"};
  const Dataset p = d.project(names);
  EXPECT_EQ(p.cols(), 2u);
  EXPECT_EQ(p.feature_names()[0], "b");
  EXPECT_DOUBLE_EQ(p.at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(p.at(0, 1), 1.0);
  EXPECT_EQ(p.label(0), 0);
}

TEST(Dataset, ProjectSubset) {
  const Dataset d = make_small();
  const std::vector<std::string> names{"b"};
  const Dataset p = d.project(names);
  EXPECT_EQ(p.cols(), 1u);
  EXPECT_EQ(p.rows(), 3u);
}

TEST(Dataset, SelectRowsAllowsDuplicates) {
  const Dataset d = make_small();
  const std::vector<std::size_t> idx{2, 2, 0};
  const Dataset s = d.select_rows(idx);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(2, 0), 1.0);
}

TEST(Dataset, BalancedUndersampleEqualizesToMinimum) {
  Dataset d{{"a"}, {"x", "y", "z"}};
  std::mt19937_64 rng{1};
  for (int i = 0; i < 50; ++i) d.add({static_cast<double>(i)}, 0);
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 1);
  for (int i = 0; i < 7; ++i) d.add({static_cast<double>(i)}, 2);

  const Dataset b = d.balanced_undersample(rng);
  const auto counts = b.class_counts();
  EXPECT_EQ(counts[0], 7u);
  EXPECT_EQ(counts[1], 7u);
  EXPECT_EQ(counts[2], 7u);
}

TEST(Dataset, BalancedOversampleEqualizesToMaximum) {
  Dataset d{{"a"}, {"x", "y"}};
  std::mt19937_64 rng{2};
  for (int i = 0; i < 30; ++i) d.add({static_cast<double>(i)}, 0);
  for (int i = 0; i < 4; ++i) d.add({static_cast<double>(i)}, 1);

  const Dataset b = d.balanced_oversample(rng);
  const auto counts = b.class_counts();
  EXPECT_EQ(counts[0], 30u);
  EXPECT_EQ(counts[1], 30u);
}

TEST(Dataset, BalanceIgnoresEmptyClasses) {
  Dataset d{{"a"}, {"x", "y", "z"}};
  std::mt19937_64 rng{3};
  for (int i = 0; i < 10; ++i) d.add({1.0}, 0);
  for (int i = 0; i < 5; ++i) d.add({2.0}, 1);
  // class 2 empty
  const Dataset b = d.balanced_undersample(rng);
  const auto counts = b.class_counts();
  EXPECT_EQ(counts[0], 5u);
  EXPECT_EQ(counts[1], 5u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(Dataset, StratifiedSplitPreservesClassRatios) {
  Dataset d{{"a"}, {"x", "y"}};
  std::mt19937_64 rng{4};
  for (int i = 0; i < 80; ++i) d.add({static_cast<double>(i)}, 0);
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 1);

  const auto [train, test] = d.stratified_split(0.25, rng);
  EXPECT_EQ(test.rows(), 25u);
  EXPECT_EQ(train.rows(), 75u);
  EXPECT_EQ(test.class_counts()[0], 20u);
  EXPECT_EQ(test.class_counts()[1], 5u);
}

TEST(Dataset, StratifiedSplitValidatesFraction) {
  const Dataset d = make_small();
  std::mt19937_64 rng{5};
  EXPECT_THROW(d.stratified_split(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(d.stratified_split(1.5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace vqoe::ml

#include "vqoe/ml/cross_validation.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <set>

namespace vqoe::ml {
namespace {

Dataset blobs(std::size_t per_class, std::uint64_t seed) {
  Dataset d{{"f0", "f1"}, {"a", "b"}};
  std::mt19937_64 rng{seed};
  std::normal_distribution<double> n(0.0, 1.0);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({n(rng), n(rng)}, 0);
    d.add({n(rng) + 4.0, n(rng) + 4.0}, 1);
  }
  return d;
}

TEST(StratifiedFolds, PartitionExactlyOnce) {
  const Dataset d = blobs(53, 1);
  std::mt19937_64 rng{2};
  const auto folds = stratified_folds(d, 10, rng);
  ASSERT_EQ(folds.size(), 10u);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& fold : folds) {
    total += fold.size();
    for (std::size_t idx : fold) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(total, d.rows());
}

TEST(StratifiedFolds, EachFoldHasBothClasses) {
  const Dataset d = blobs(50, 3);
  std::mt19937_64 rng{4};
  const auto folds = stratified_folds(d, 5, rng);
  for (const auto& fold : folds) {
    std::size_t pos = 0;
    for (std::size_t idx : fold) pos += static_cast<std::size_t>(d.label(idx));
    EXPECT_GT(pos, 0u);
    EXPECT_LT(pos, fold.size());
  }
}

TEST(StratifiedFolds, RejectsTooFewFolds) {
  const Dataset d = blobs(10, 5);
  std::mt19937_64 rng{6};
  EXPECT_THROW(stratified_folds(d, 1, rng), std::invalid_argument);
}

TEST(CrossValidate, HighAccuracyOnSeparableData) {
  const Dataset d = blobs(80, 7);
  ForestParams forest;
  forest.num_trees = 15;
  const auto cm = cross_validate(d, forest, {});
  EXPECT_EQ(cm.total(), d.rows());
  EXPECT_GT(cm.accuracy(), 0.95);
}

TEST(CrossValidate, ImbalancedDataStillEvaluatesEveryRow) {
  Dataset d{{"f0", "f1"}, {"common", "rare"}};
  std::mt19937_64 rng{8};
  std::normal_distribution<double> n(0.0, 1.0);
  for (int i = 0; i < 300; ++i) d.add({n(rng), n(rng)}, 0);
  for (int i = 0; i < 30; ++i) d.add({n(rng) + 5.0, n(rng)}, 1);

  CrossValidationOptions options;
  options.folds = 5;
  const auto cm = cross_validate(d, {}, options);
  EXPECT_EQ(cm.total(), d.rows());
  EXPECT_GT(cm.tp_rate(1), 0.8);  // balancing protects the rare class
}

TEST(CrossValidateWith, CustomPredictorIsUsed) {
  const Dataset d = blobs(40, 9);
  CrossValidationOptions options;
  options.folds = 4;
  // A "classifier" that always answers 1.
  const auto cm = cross_validate_with(
      d,
      [](const Dataset&) {
        return [](std::span<const double>) { return 1; };
      },
      options);
  EXPECT_DOUBLE_EQ(cm.tp_rate(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.tp_rate(0), 0.0);
  EXPECT_NEAR(cm.accuracy(), 0.5, 1e-9);
}

TEST(CrossValidate, DeterministicForFixedSeed) {
  const Dataset d = blobs(50, 10);
  CrossValidationOptions options;
  options.seed = 123;
  const auto cm1 = cross_validate(d, {}, options);
  const auto cm2 = cross_validate(d, {}, options);
  for (int a = 0; a < 2; ++a) {
    for (int p = 0; p < 2; ++p) EXPECT_EQ(cm1.count(a, p), cm2.count(a, p));
  }
}

}  // namespace
}  // namespace vqoe::ml

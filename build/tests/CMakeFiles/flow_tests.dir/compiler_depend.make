# Empty compiler generated dependencies file for flow_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flow_tests.dir/flow/export_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/export_test.cpp.o.d"
  "CMakeFiles/flow_tests.dir/flow/reassembly_test.cpp.o"
  "CMakeFiles/flow_tests.dir/flow/reassembly_test.cpp.o.d"
  "flow_tests"
  "flow_tests.pdb"
  "flow_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

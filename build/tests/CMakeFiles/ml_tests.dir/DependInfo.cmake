
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/adaboost_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/adaboost_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/adaboost_test.cpp.o.d"
  "/root/repo/tests/ml/binning_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/binning_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/binning_test.cpp.o.d"
  "/root/repo/tests/ml/cross_validation_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/cross_validation_test.cpp.o.d"
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/feature_selection_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/feature_selection_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/feature_selection_test.cpp.o.d"
  "/root/repo/tests/ml/forest_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/forest_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/forest_test.cpp.o.d"
  "/root/repo/tests/ml/importance_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/importance_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/importance_test.cpp.o.d"
  "/root/repo/tests/ml/knn_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/knn_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/model_io_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/model_io_test.cpp.o.d"
  "/root/repo/tests/ml/naive_bayes_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/naive_bayes_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/naive_bayes_test.cpp.o.d"
  "/root/repo/tests/ml/tree_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/tree_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/tree_test.cpp.o.d"
  "/root/repo/tests/ml/tree_text_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/tree_text_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/tree_text_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vqoe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vqoe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/vqoe_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/session/CMakeFiles/vqoe_session.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vqoe_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/vqoe_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vqoe_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vqoe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vqoe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/session_tests.dir/session/reconstruct_test.cpp.o"
  "CMakeFiles/session_tests.dir/session/reconstruct_test.cpp.o.d"
  "session_tests"
  "session_tests.pdb"
  "session_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for session_tests.
# This may be replaced when dependencies are built.

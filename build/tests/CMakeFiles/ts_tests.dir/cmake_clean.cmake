file(REMOVE_RECURSE
  "CMakeFiles/ts_tests.dir/ts/cusum_test.cpp.o"
  "CMakeFiles/ts_tests.dir/ts/cusum_test.cpp.o.d"
  "CMakeFiles/ts_tests.dir/ts/ecdf_test.cpp.o"
  "CMakeFiles/ts_tests.dir/ts/ecdf_test.cpp.o.d"
  "CMakeFiles/ts_tests.dir/ts/online_test.cpp.o"
  "CMakeFiles/ts_tests.dir/ts/online_test.cpp.o.d"
  "CMakeFiles/ts_tests.dir/ts/summary_test.cpp.o"
  "CMakeFiles/ts_tests.dir/ts/summary_test.cpp.o.d"
  "ts_tests"
  "ts_tests.pdb"
  "ts_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ts_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/detectors_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/detectors_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/feature_properties_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/feature_properties_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/features_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/features_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/labels_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/labels_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/model_io_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/model_io_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mos_properties_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mos_properties_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mos_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mos_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/online_service_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/online_service_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/online_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/online_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/startup_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/startup_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

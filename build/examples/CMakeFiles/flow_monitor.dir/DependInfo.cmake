
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/flow_monitor.cpp" "examples/CMakeFiles/flow_monitor.dir/flow_monitor.cpp.o" "gcc" "examples/CMakeFiles/flow_monitor.dir/flow_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vqoe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vqoe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/vqoe_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/session/CMakeFiles/vqoe_session.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vqoe_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/vqoe_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vqoe_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vqoe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vqoe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

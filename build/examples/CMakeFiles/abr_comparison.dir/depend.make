# Empty dependencies file for abr_comparison.
# This may be replaced when dependencies are built.

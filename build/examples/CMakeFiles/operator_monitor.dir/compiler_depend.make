# Empty compiler generated dependencies file for operator_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/operator_monitor.dir/operator_monitor.cpp.o"
  "CMakeFiles/operator_monitor.dir/operator_monitor.cpp.o.d"
  "operator_monitor"
  "operator_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

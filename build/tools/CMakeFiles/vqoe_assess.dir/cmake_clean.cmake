file(REMOVE_RECURSE
  "CMakeFiles/vqoe_assess.dir/vqoe_assess.cpp.o"
  "CMakeFiles/vqoe_assess.dir/vqoe_assess.cpp.o.d"
  "vqoe_assess"
  "vqoe_assess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_assess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

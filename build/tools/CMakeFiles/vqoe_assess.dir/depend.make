# Empty dependencies file for vqoe_assess.
# This may be replaced when dependencies are built.

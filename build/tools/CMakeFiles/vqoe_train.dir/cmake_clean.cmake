file(REMOVE_RECURSE
  "CMakeFiles/vqoe_train.dir/vqoe_train.cpp.o"
  "CMakeFiles/vqoe_train.dir/vqoe_train.cpp.o.d"
  "vqoe_train"
  "vqoe_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vqoe_train.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table8_stall_encrypted.dir/table8_stall_encrypted.cpp.o"
  "CMakeFiles/table8_stall_encrypted.dir/table8_stall_encrypted.cpp.o.d"
  "table8_stall_encrypted"
  "table8_stall_encrypted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_stall_encrypted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

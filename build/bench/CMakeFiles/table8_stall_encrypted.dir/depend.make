# Empty dependencies file for table8_stall_encrypted.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table2_stall_feature_gains.
# This may be replaced when dependencies are built.

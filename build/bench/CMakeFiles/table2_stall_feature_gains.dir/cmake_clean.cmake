file(REMOVE_RECURSE
  "CMakeFiles/table2_stall_feature_gains.dir/table2_stall_feature_gains.cpp.o"
  "CMakeFiles/table2_stall_feature_gains.dir/table2_stall_feature_gains.cpp.o.d"
  "table2_stall_feature_gains"
  "table2_stall_feature_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_stall_feature_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table6_repr_model.
# This may be replaced when dependencies are built.

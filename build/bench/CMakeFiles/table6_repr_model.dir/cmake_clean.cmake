file(REMOVE_RECURSE
  "CMakeFiles/table6_repr_model.dir/table6_repr_model.cpp.o"
  "CMakeFiles/table6_repr_model.dir/table6_repr_model.cpp.o.d"
  "table6_repr_model"
  "table6_repr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_repr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

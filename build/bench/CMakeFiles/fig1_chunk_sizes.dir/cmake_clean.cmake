file(REMOVE_RECURSE
  "CMakeFiles/fig1_chunk_sizes.dir/fig1_chunk_sizes.cpp.o"
  "CMakeFiles/fig1_chunk_sizes.dir/fig1_chunk_sizes.cpp.o.d"
  "fig1_chunk_sizes"
  "fig1_chunk_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_chunk_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table10_repr_encrypted.
# This may be replaced when dependencies are built.

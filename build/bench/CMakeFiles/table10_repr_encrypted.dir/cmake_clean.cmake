file(REMOVE_RECURSE
  "CMakeFiles/table10_repr_encrypted.dir/table10_repr_encrypted.cpp.o"
  "CMakeFiles/table10_repr_encrypted.dir/table10_repr_encrypted.cpp.o.d"
  "table10_repr_encrypted"
  "table10_repr_encrypted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_repr_encrypted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

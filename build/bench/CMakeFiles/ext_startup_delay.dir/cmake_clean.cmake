file(REMOVE_RECURSE
  "CMakeFiles/ext_startup_delay.dir/ext_startup_delay.cpp.o"
  "CMakeFiles/ext_startup_delay.dir/ext_startup_delay.cpp.o.d"
  "ext_startup_delay"
  "ext_startup_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_startup_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_startup_delay.
# This may be replaced when dependencies are built.

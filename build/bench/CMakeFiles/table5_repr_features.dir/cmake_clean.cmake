file(REMOVE_RECURSE
  "CMakeFiles/table5_repr_features.dir/table5_repr_features.cpp.o"
  "CMakeFiles/table5_repr_features.dir/table5_repr_features.cpp.o.d"
  "table5_repr_features"
  "table5_repr_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_repr_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_switch_deltas.
# This may be replaced when dependencies are built.

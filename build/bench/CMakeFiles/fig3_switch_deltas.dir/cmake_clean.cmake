file(REMOVE_RECURSE
  "CMakeFiles/fig3_switch_deltas.dir/fig3_switch_deltas.cpp.o"
  "CMakeFiles/fig3_switch_deltas.dir/fig3_switch_deltas.cpp.o.d"
  "fig3_switch_deltas"
  "fig3_switch_deltas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_switch_deltas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sec7_generalization.
# This may be replaced when dependencies are built.

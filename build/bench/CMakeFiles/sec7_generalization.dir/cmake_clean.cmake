file(REMOVE_RECURSE
  "CMakeFiles/sec7_generalization.dir/sec7_generalization.cpp.o"
  "CMakeFiles/sec7_generalization.dir/sec7_generalization.cpp.o.d"
  "sec7_generalization"
  "sec7_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

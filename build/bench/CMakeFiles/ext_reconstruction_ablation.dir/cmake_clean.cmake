file(REMOVE_RECURSE
  "CMakeFiles/ext_reconstruction_ablation.dir/ext_reconstruction_ablation.cpp.o"
  "CMakeFiles/ext_reconstruction_ablation.dir/ext_reconstruction_ablation.cpp.o.d"
  "ext_reconstruction_ablation"
  "ext_reconstruction_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reconstruction_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_reconstruction_ablation.
# This may be replaced when dependencies are built.

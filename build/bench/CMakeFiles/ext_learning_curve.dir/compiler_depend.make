# Empty compiler generated dependencies file for ext_learning_curve.
# This may be replaced when dependencies are built.

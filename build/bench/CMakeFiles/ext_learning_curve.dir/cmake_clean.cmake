file(REMOVE_RECURSE
  "CMakeFiles/ext_learning_curve.dir/ext_learning_curve.cpp.o"
  "CMakeFiles/ext_learning_curve.dir/ext_learning_curve.cpp.o.d"
  "ext_learning_curve"
  "ext_learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig4_cusum_cdf.dir/fig4_cusum_cdf.cpp.o"
  "CMakeFiles/fig4_cusum_cdf.dir/fig4_cusum_cdf.cpp.o.d"
  "fig4_cusum_cdf"
  "fig4_cusum_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cusum_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_cell_load.
# This may be replaced when dependencies are built.

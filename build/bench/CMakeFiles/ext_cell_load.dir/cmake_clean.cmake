file(REMOVE_RECURSE
  "CMakeFiles/ext_cell_load.dir/ext_cell_load.cpp.o"
  "CMakeFiles/ext_cell_load.dir/ext_cell_load.cpp.o.d"
  "ext_cell_load"
  "ext_cell_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cell_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

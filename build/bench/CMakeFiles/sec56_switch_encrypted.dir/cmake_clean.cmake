file(REMOVE_RECURSE
  "CMakeFiles/sec56_switch_encrypted.dir/sec56_switch_encrypted.cpp.o"
  "CMakeFiles/sec56_switch_encrypted.dir/sec56_switch_encrypted.cpp.o.d"
  "sec56_switch_encrypted"
  "sec56_switch_encrypted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_switch_encrypted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

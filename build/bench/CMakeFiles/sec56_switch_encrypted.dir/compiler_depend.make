# Empty compiler generated dependencies file for sec56_switch_encrypted.
# This may be replaced when dependencies are built.

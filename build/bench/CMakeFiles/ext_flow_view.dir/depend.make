# Empty dependencies file for ext_flow_view.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_flow_view.dir/ext_flow_view.cpp.o"
  "CMakeFiles/ext_flow_view.dir/ext_flow_view.cpp.o.d"
  "ext_flow_view"
  "ext_flow_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_flow_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

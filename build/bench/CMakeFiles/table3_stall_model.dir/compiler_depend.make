# Empty compiler generated dependencies file for table3_stall_model.
# This may be replaced when dependencies are built.

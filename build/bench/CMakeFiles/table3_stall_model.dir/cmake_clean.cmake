file(REMOVE_RECURSE
  "CMakeFiles/table3_stall_model.dir/table3_stall_model.cpp.o"
  "CMakeFiles/table3_stall_model.dir/table3_stall_model.cpp.o.d"
  "table3_stall_model"
  "table3_stall_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_stall_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2_stall_ecdf.
# This may be replaced when dependencies are built.

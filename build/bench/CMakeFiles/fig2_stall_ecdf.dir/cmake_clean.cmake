file(REMOVE_RECURSE
  "CMakeFiles/fig2_stall_ecdf.dir/fig2_stall_ecdf.cpp.o"
  "CMakeFiles/fig2_stall_ecdf.dir/fig2_stall_ecdf.cpp.o.d"
  "fig2_stall_ecdf"
  "fig2_stall_ecdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stall_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

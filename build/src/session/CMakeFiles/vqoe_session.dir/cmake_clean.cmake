file(REMOVE_RECURSE
  "CMakeFiles/vqoe_session.dir/reconstruct.cpp.o"
  "CMakeFiles/vqoe_session.dir/reconstruct.cpp.o.d"
  "libvqoe_session.a"
  "libvqoe_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

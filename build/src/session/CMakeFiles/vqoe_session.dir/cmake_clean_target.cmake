file(REMOVE_RECURSE
  "libvqoe_session.a"
)

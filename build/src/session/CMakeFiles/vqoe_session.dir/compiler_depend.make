# Empty compiler generated dependencies file for vqoe_session.
# This may be replaced when dependencies are built.

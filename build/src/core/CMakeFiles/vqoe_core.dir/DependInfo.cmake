
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detectors.cpp" "src/core/CMakeFiles/vqoe_core.dir/detectors.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/detectors.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/vqoe_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/features.cpp.o.d"
  "/root/repo/src/core/labels.cpp" "src/core/CMakeFiles/vqoe_core.dir/labels.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/labels.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/vqoe_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/mos.cpp" "src/core/CMakeFiles/vqoe_core.dir/mos.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/mos.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/vqoe_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/vqoe_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/startup.cpp" "src/core/CMakeFiles/vqoe_core.dir/startup.cpp.o" "gcc" "src/core/CMakeFiles/vqoe_core.dir/startup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/vqoe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/vqoe_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vqoe_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/session/CMakeFiles/vqoe_session.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vqoe_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/vqoe_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vqoe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vqoe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for vqoe_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvqoe_core.a"
)

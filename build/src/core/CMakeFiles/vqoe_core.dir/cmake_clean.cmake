file(REMOVE_RECURSE
  "CMakeFiles/vqoe_core.dir/detectors.cpp.o"
  "CMakeFiles/vqoe_core.dir/detectors.cpp.o.d"
  "CMakeFiles/vqoe_core.dir/features.cpp.o"
  "CMakeFiles/vqoe_core.dir/features.cpp.o.d"
  "CMakeFiles/vqoe_core.dir/labels.cpp.o"
  "CMakeFiles/vqoe_core.dir/labels.cpp.o.d"
  "CMakeFiles/vqoe_core.dir/model_io.cpp.o"
  "CMakeFiles/vqoe_core.dir/model_io.cpp.o.d"
  "CMakeFiles/vqoe_core.dir/mos.cpp.o"
  "CMakeFiles/vqoe_core.dir/mos.cpp.o.d"
  "CMakeFiles/vqoe_core.dir/online.cpp.o"
  "CMakeFiles/vqoe_core.dir/online.cpp.o.d"
  "CMakeFiles/vqoe_core.dir/pipeline.cpp.o"
  "CMakeFiles/vqoe_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/vqoe_core.dir/startup.cpp.o"
  "CMakeFiles/vqoe_core.dir/startup.cpp.o.d"
  "libvqoe_core.a"
  "libvqoe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

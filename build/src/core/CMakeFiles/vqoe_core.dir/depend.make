# Empty dependencies file for vqoe_core.
# This may be replaced when dependencies are built.

# Empty dependencies file for vqoe_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vqoe_sim.dir/abr.cpp.o"
  "CMakeFiles/vqoe_sim.dir/abr.cpp.o.d"
  "CMakeFiles/vqoe_sim.dir/player.cpp.o"
  "CMakeFiles/vqoe_sim.dir/player.cpp.o.d"
  "CMakeFiles/vqoe_sim.dir/video.cpp.o"
  "CMakeFiles/vqoe_sim.dir/video.cpp.o.d"
  "libvqoe_sim.a"
  "libvqoe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/abr.cpp" "src/sim/CMakeFiles/vqoe_sim.dir/abr.cpp.o" "gcc" "src/sim/CMakeFiles/vqoe_sim.dir/abr.cpp.o.d"
  "/root/repo/src/sim/player.cpp" "src/sim/CMakeFiles/vqoe_sim.dir/player.cpp.o" "gcc" "src/sim/CMakeFiles/vqoe_sim.dir/player.cpp.o.d"
  "/root/repo/src/sim/video.cpp" "src/sim/CMakeFiles/vqoe_sim.dir/video.cpp.o" "gcc" "src/sim/CMakeFiles/vqoe_sim.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vqoe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

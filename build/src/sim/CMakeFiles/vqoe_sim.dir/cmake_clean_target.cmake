file(REMOVE_RECURSE
  "libvqoe_sim.a"
)

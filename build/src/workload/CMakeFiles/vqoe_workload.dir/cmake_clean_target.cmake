file(REMOVE_RECURSE
  "libvqoe_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vqoe_workload.dir/corpus.cpp.o"
  "CMakeFiles/vqoe_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/vqoe_workload.dir/service.cpp.o"
  "CMakeFiles/vqoe_workload.dir/service.cpp.o.d"
  "libvqoe_workload.a"
  "libvqoe_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vqoe_workload.
# This may be replaced when dependencies are built.

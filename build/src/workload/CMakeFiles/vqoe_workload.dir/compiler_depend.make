# Empty compiler generated dependencies file for vqoe_workload.
# This may be replaced when dependencies are built.

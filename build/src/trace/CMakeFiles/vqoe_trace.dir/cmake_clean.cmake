file(REMOVE_RECURSE
  "CMakeFiles/vqoe_trace.dir/csv.cpp.o"
  "CMakeFiles/vqoe_trace.dir/csv.cpp.o.d"
  "CMakeFiles/vqoe_trace.dir/weblog.cpp.o"
  "CMakeFiles/vqoe_trace.dir/weblog.cpp.o.d"
  "libvqoe_trace.a"
  "libvqoe_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

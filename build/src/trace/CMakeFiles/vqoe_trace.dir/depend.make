# Empty dependencies file for vqoe_trace.
# This may be replaced when dependencies are built.

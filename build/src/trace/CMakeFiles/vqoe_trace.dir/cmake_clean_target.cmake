file(REMOVE_RECURSE
  "libvqoe_trace.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cell.cpp" "src/net/CMakeFiles/vqoe_net.dir/cell.cpp.o" "gcc" "src/net/CMakeFiles/vqoe_net.dir/cell.cpp.o.d"
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/vqoe_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/vqoe_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/profile.cpp" "src/net/CMakeFiles/vqoe_net.dir/profile.cpp.o" "gcc" "src/net/CMakeFiles/vqoe_net.dir/profile.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/vqoe_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/vqoe_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

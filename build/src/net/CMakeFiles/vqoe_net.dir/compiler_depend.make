# Empty compiler generated dependencies file for vqoe_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vqoe_net.dir/cell.cpp.o"
  "CMakeFiles/vqoe_net.dir/cell.cpp.o.d"
  "CMakeFiles/vqoe_net.dir/channel.cpp.o"
  "CMakeFiles/vqoe_net.dir/channel.cpp.o.d"
  "CMakeFiles/vqoe_net.dir/profile.cpp.o"
  "CMakeFiles/vqoe_net.dir/profile.cpp.o.d"
  "CMakeFiles/vqoe_net.dir/tcp.cpp.o"
  "CMakeFiles/vqoe_net.dir/tcp.cpp.o.d"
  "libvqoe_net.a"
  "libvqoe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvqoe_net.a"
)

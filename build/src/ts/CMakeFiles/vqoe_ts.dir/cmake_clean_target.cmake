file(REMOVE_RECURSE
  "libvqoe_ts.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vqoe_ts.dir/cusum.cpp.o"
  "CMakeFiles/vqoe_ts.dir/cusum.cpp.o.d"
  "CMakeFiles/vqoe_ts.dir/ecdf.cpp.o"
  "CMakeFiles/vqoe_ts.dir/ecdf.cpp.o.d"
  "CMakeFiles/vqoe_ts.dir/online.cpp.o"
  "CMakeFiles/vqoe_ts.dir/online.cpp.o.d"
  "CMakeFiles/vqoe_ts.dir/summary.cpp.o"
  "CMakeFiles/vqoe_ts.dir/summary.cpp.o.d"
  "libvqoe_ts.a"
  "libvqoe_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

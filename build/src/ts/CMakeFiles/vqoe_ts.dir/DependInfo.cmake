
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/cusum.cpp" "src/ts/CMakeFiles/vqoe_ts.dir/cusum.cpp.o" "gcc" "src/ts/CMakeFiles/vqoe_ts.dir/cusum.cpp.o.d"
  "/root/repo/src/ts/ecdf.cpp" "src/ts/CMakeFiles/vqoe_ts.dir/ecdf.cpp.o" "gcc" "src/ts/CMakeFiles/vqoe_ts.dir/ecdf.cpp.o.d"
  "/root/repo/src/ts/online.cpp" "src/ts/CMakeFiles/vqoe_ts.dir/online.cpp.o" "gcc" "src/ts/CMakeFiles/vqoe_ts.dir/online.cpp.o.d"
  "/root/repo/src/ts/summary.cpp" "src/ts/CMakeFiles/vqoe_ts.dir/summary.cpp.o" "gcc" "src/ts/CMakeFiles/vqoe_ts.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

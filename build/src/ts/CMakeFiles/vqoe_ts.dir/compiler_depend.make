# Empty compiler generated dependencies file for vqoe_ts.
# This may be replaced when dependencies are built.

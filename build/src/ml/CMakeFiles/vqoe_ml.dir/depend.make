# Empty dependencies file for vqoe_ml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vqoe_ml.dir/adaboost.cpp.o"
  "CMakeFiles/vqoe_ml.dir/adaboost.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/binning.cpp.o"
  "CMakeFiles/vqoe_ml.dir/binning.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/vqoe_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/dataset.cpp.o"
  "CMakeFiles/vqoe_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/vqoe_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/feature_selection.cpp.o"
  "CMakeFiles/vqoe_ml.dir/feature_selection.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/importance.cpp.o"
  "CMakeFiles/vqoe_ml.dir/importance.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/knn.cpp.o"
  "CMakeFiles/vqoe_ml.dir/knn.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/metrics.cpp.o"
  "CMakeFiles/vqoe_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/vqoe_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/vqoe_ml.dir/random_forest.cpp.o"
  "CMakeFiles/vqoe_ml.dir/random_forest.cpp.o.d"
  "libvqoe_ml.a"
  "libvqoe_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

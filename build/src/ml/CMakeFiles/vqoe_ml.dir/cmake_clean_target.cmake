file(REMOVE_RECURSE
  "libvqoe_ml.a"
)

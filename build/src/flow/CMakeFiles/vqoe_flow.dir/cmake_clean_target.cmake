file(REMOVE_RECURSE
  "libvqoe_flow.a"
)

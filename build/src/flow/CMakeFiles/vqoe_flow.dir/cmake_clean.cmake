file(REMOVE_RECURSE
  "CMakeFiles/vqoe_flow.dir/export.cpp.o"
  "CMakeFiles/vqoe_flow.dir/export.cpp.o.d"
  "CMakeFiles/vqoe_flow.dir/reassembly.cpp.o"
  "CMakeFiles/vqoe_flow.dir/reassembly.cpp.o.d"
  "libvqoe_flow.a"
  "libvqoe_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqoe_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

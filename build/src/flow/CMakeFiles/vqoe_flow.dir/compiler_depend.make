# Empty compiler generated dependencies file for vqoe_flow.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/export.cpp" "src/flow/CMakeFiles/vqoe_flow.dir/export.cpp.o" "gcc" "src/flow/CMakeFiles/vqoe_flow.dir/export.cpp.o.d"
  "/root/repo/src/flow/reassembly.cpp" "src/flow/CMakeFiles/vqoe_flow.dir/reassembly.cpp.o" "gcc" "src/flow/CMakeFiles/vqoe_flow.dir/reassembly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vqoe_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vqoe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vqoe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// corpus_stats — distribution summary of a generated or loaded corpus.
//
//   corpus_stats [--sessions=N] [--seed=N] [--kind=cleartext|has|encrypted]
//   corpus_stats --weblogs=CSV --truth=CSV
//
// Prints the anchors DESIGN.md calibrates against: stall class mix,
// representation class mix, switch population, chunk/session statistics and
// the CUSUM switch-score quantiles.
#include <cstdio>
#include <cstring>
#include <map>

#include "tool_args.h"
#include "vqoe/core/detectors.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/trace/csv.h"
#include "vqoe/ts/ecdf.h"
#include "vqoe/ts/summary.h"
#include "vqoe/workload/corpus.h"

namespace {

using vqoe::tool::arg_value;
using vqoe::tool::parse_arg_or;

}  // namespace

int main(int argc, char** argv) {
  using namespace vqoe;

  std::vector<core::SessionRecord> sessions;
  if (const char* weblogs = arg_value(argc, argv, "--weblogs")) {
    const char* truth = arg_value(argc, argv, "--truth");
    if (!truth) {
      std::fprintf(stderr, "--weblogs requires --truth\n");
      return 2;
    }
    workload::Corpus corpus;
    corpus.weblogs = trace::read_weblogs_csv(weblogs);
    corpus.truths = trace::read_ground_truth_csv(truth);
    sessions = core::sessions_from_corpus(corpus);
  } else {
    const char* n_arg = arg_value(argc, argv, "--sessions");
    const char* seed_arg = arg_value(argc, argv, "--seed");
    const char* kind = arg_value(argc, argv, "--kind");
    const std::size_t n = parse_arg_or<std::size_t>("--sessions", n_arg, 4000);
    const std::uint64_t seed = parse_arg_or<std::uint64_t>("--seed", seed_arg, 42);
    workload::CorpusOptions options = workload::cleartext_corpus_options(n, seed);
    if (kind && std::strcmp(kind, "has") == 0) {
      options = workload::has_corpus_options(n, seed);
    } else if (kind && std::strcmp(kind, "encrypted") == 0) {
      options = workload::encrypted_corpus_options(n, seed);
    }
    options.keep_session_results = false;
    auto corpus = workload::generate_corpus(options);
    if (kind && std::strcmp(kind, "encrypted") == 0) {
      corpus.weblogs = trace::encrypt_view(std::move(corpus.weblogs));
      sessions = core::sessions_from_encrypted(corpus.weblogs, corpus.truths);
    } else {
      sessions = core::sessions_from_corpus(corpus);
    }
  }

  std::map<int, int> stall_mix, repr_mix;
  std::size_t adaptive = 0, abandoned = 0;
  std::vector<double> chunk_counts, durations, scores_with, scores_without;
  const core::SwitchDetector detector;
  for (const auto& s : sessions) {
    stall_mix[static_cast<int>(core::stall_label(s.truth))]++;
    chunk_counts.push_back(static_cast<double>(s.chunks.size()));
    durations.push_back(s.truth.total_duration_s);
    if (s.truth.abandoned) ++abandoned;
    if (s.truth.adaptive) {
      ++adaptive;
      repr_mix[static_cast<int>(core::repr_label(s.truth))]++;
      const double score = detector.score(s.chunks);
      if (core::variation_label(s.truth) != core::VariationLabel::none) {
        scores_with.push_back(score);
      } else {
        scores_without.push_back(score);
      }
    }
  }

  const auto n = static_cast<double>(sessions.size());
  std::printf("sessions: %zu (adaptive %zu, abandoned %zu)\n", sessions.size(),
              adaptive, abandoned);
  std::printf("chunks/session mean %.1f, duration mean %.1f s\n",
              ts::mean(chunk_counts), ts::mean(durations));
  std::printf("stall mix: none %.1f%% / mild %.1f%% / severe %.1f%%\n",
              100.0 * stall_mix[0] / n, 100.0 * stall_mix[1] / n,
              100.0 * stall_mix[2] / n);
  if (adaptive > 0) {
    const auto a = static_cast<double>(adaptive);
    std::printf("repr mix (adaptive): LD %.1f%% / SD %.1f%% / HD %.1f%%\n",
                100.0 * repr_mix[0] / a, 100.0 * repr_mix[1] / a,
                100.0 * repr_mix[2] / a);
    auto quantiles = [](const char* name, std::vector<double>& v) {
      if (v.empty()) return;
      const ts::Ecdf e{v};
      std::printf("%s (n=%zu): p25 %.0f p50 %.0f p75 %.0f | <=500: %.2f\n",
                  name, v.size(), e.quantile(0.25), e.quantile(0.5),
                  e.quantile(0.75), e(500.0));
    };
    quantiles("switch score, no variation ", scores_without);
    quantiles("switch score, with variation", scores_with);
  }
  return 0;
}

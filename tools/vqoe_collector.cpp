// vqoe_collector — networked ingest into the sharded monitoring engine.
//
// Accepts framed record batches from N vqoe_probe clients, k-way merges
// the per-probe streams back into one time-sorted feed, and drives
// engine::MonitorEngine with it — the central half of the probe/collector
// deployment split. Optionally tees the merged feed to a spool directory
// so the capture can be replayed (crash recovery, backtesting).
//
//   vqoe_collector --probes=4 --port=9977 --model-dir=models/
//   vqoe_collector --probes=1 --train=2000 --spool=/var/tmp/capture
//   vqoe_collector --probes=1 --train=2000 --window=10 --hop=5
//
// With --window=SECONDS the engine also scores *mid-session*: every time a
// window closes on some shard, a WindowVerdict (stall/representation labels
// with forest confidences) is emitted on the live verdict stream, harvested
// here while the capture is still running and optionally teed to its own
// spool (--verdict-spool) for downstream consumers.
//
// Exits after --probes streams finish, printing per-subscriber QoE, the
// engine's shard statistics and the transport counters.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "tool_args.h"
#include "vqoe/core/model_io.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/engine/engine.h"
#include "vqoe/trace/weblog.h"
#include "vqoe/window/verdict_log.h"
#include "vqoe/wire/spool.h"
#include "vqoe/wire/transport.h"
#include "vqoe/workload/corpus.h"

namespace {

using vqoe::tool::arg_value;
using vqoe::tool::parse_arg;
using vqoe::tool::parse_arg_or;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: vqoe_collector --probes=N [--port=9977] [--shards=4]\n"
      "                      [--model-dir=DIR | --train=N [--seed=N]]\n"
      "                      [--spool=DIR] [--merge-key=timestamp|arrival]\n"
      "                      [--min-chunks=N] [--ack-window=N]\n"
      "                      [--window=SECONDS] [--hop=SECONDS]\n"
      "                      [--verdict-spool=DIR]\n"
      "  --probes=N     exit after N probe streams complete\n"
      "  --model-dir    load trained models (vqoe_train output)\n"
      "  --train=N      train in-process on N synthesized sessions instead\n"
      "  --spool=DIR    tee the merged feed to a spool for replay\n"
      "  --merge-key    field the per-probe streams are sorted by\n"
      "  --window=S     mid-session verdicts every S stream-seconds\n"
      "  --hop=S        window hop (< window = sliding; default tumbling)\n"
      "  --verdict-spool=DIR  tee the live verdict stream to its own spool\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vqoe;

  const char* probes_arg = arg_value(argc, argv, "--probes");
  if (!probes_arg) usage();
  const auto probes = parse_arg<std::size_t>("--probes", probes_arg);
  if (probes == 0) usage();

  // --- models: load from disk or train on a synthesized corpus ------------
  const char* model_dir = arg_value(argc, argv, "--model-dir");
  core::QoePipeline pipeline = [&] {
    if (model_dir) {
      std::printf("loading models from %s...\n", model_dir);
      return core::load_pipeline(model_dir);
    }
    const char* train = arg_value(argc, argv, "--train");
    const std::size_t sessions = parse_arg_or<std::size_t>("--train", train, 2000);
    const char* seed_arg = arg_value(argc, argv, "--seed");
    const std::uint64_t seed = parse_arg_or<std::uint64_t>("--seed", seed_arg, 42);
    std::printf("training on %zu synthesized sessions (seed %llu)...\n",
                sessions, static_cast<unsigned long long>(seed));
    auto options = workload::cleartext_corpus_options(sessions, seed);
    options.keep_session_results = false;
    return core::QoePipeline::train(
        core::sessions_from_corpus(workload::generate_corpus(options)));
  }();

  // --- engine -------------------------------------------------------------
  engine::EngineConfig engine_config;
  if (const char* shards = arg_value(argc, argv, "--shards")) {
    engine_config.shards = parse_arg<std::size_t>("--shards", shards);
  }
  if (const char* min_chunks = arg_value(argc, argv, "--min-chunks")) {
    engine_config.monitor.min_chunks =
        parse_arg<std::size_t>("--min-chunks", min_chunks);
  }
  if (const char* window_len = arg_value(argc, argv, "--window")) {
    engine_config.monitor.window.length_s =
        parse_arg<double>("--window", window_len);
    engine_config.monitor.window.min_chunks = 2;
  }
  if (const char* hop = arg_value(argc, argv, "--hop")) {
    engine_config.monitor.window.hop_s = parse_arg<double>("--hop", hop);
  }
  const bool windowed = engine_config.monitor.window.enabled();
  engine::MonitorEngine engine{pipeline, engine_config};

  // --- collector ----------------------------------------------------------
  wire::CollectorConfig config;
  config.port = 9977;
  if (const char* port = arg_value(argc, argv, "--port")) {
    config.port = parse_arg<std::uint16_t>("--port", port);
  }
  config.expected_probes = probes;
  if (const char* window = arg_value(argc, argv, "--ack-window")) {
    config.ack_window = parse_arg<std::uint32_t>("--ack-window", window);
  }
  if (const char* key = arg_value(argc, argv, "--merge-key")) {
    if (std::strcmp(key, "timestamp") == 0) {
      config.merge_key = wire::MergeKey::timestamp;
    } else if (std::strcmp(key, "arrival") == 0) {
      config.merge_key = wire::MergeKey::arrival_time;
    } else {
      usage();
    }
  }
  std::unique_ptr<wire::SpoolWriter> tee;
  if (const char* spool = arg_value(argc, argv, "--spool")) {
    tee = std::make_unique<wire::SpoolWriter>(spool);
    config.tee = tee.get();
  }
  std::unique_ptr<window::VerdictSpoolWriter> verdict_tee;
  if (const char* dir = arg_value(argc, argv, "--verdict-spool")) {
    if (!windowed) {
      std::fprintf(stderr, "--verdict-spool requires --window\n");
      return 2;
    }
    verdict_tee = std::make_unique<window::VerdictSpoolWriter>(dir);
  }

  wire::Collector collector{config};
  std::printf("listening on port %u for %llu probe(s)...\n", collector.port(),
              static_cast<unsigned long long>(probes));

  // Live verdict accounting: harvested while the capture runs (that is the
  // point of the stream), not just at drain time.
  std::size_t verdicts_total = 0;
  std::size_t verdicts_stalled = 0;
  const auto drain_verdicts = [&] {
    const auto verdicts = engine.harvest_verdicts();
    for (const auto& v : verdicts) {
      ++verdicts_total;
      if (v.stall != static_cast<std::uint8_t>(core::StallLabel::no_stalls)) {
        ++verdicts_stalled;
      }
    }
    if (verdict_tee && !verdicts.empty()) verdict_tee->append(verdicts);
  };

  std::size_t since_harvest = 0;
  const wire::CollectorStats wire_stats =
      collector.run([&](const trace::WeblogRecord& record) {
        engine.ingest(record);
        if (windowed && ++since_harvest >= 4096) {
          since_harvest = 0;
          drain_verdicts();
        }
      });

  // --- report -------------------------------------------------------------
  struct SubscriberStats {
    std::size_t sessions = 0;
    std::size_t stalled = 0;
  };
  std::map<std::string, SubscriberStats> per_subscriber;
  for (const auto& s : engine.drain()) {
    SubscriberStats& stats = per_subscriber[s.subscriber_id];
    stats.sessions++;
    if (s.report.stall != core::StallLabel::no_stalls) stats.stalled++;
  }
  if (windowed) drain_verdicts();  // the tail emitted by drain()'s flush
  if (tee) tee->close();
  if (verdict_tee) verdict_tee->close();

  std::printf("\ntransport: %llu probes, %llu frames, %llu records "
              "(%llu bytes), %llu protocol errors\n",
              static_cast<unsigned long long>(wire_stats.probes_completed),
              static_cast<unsigned long long>(wire_stats.frames_received),
              static_cast<unsigned long long>(wire_stats.records_received),
              static_cast<unsigned long long>(wire_stats.bytes_received),
              static_cast<unsigned long long>(wire_stats.protocol_errors));
  if (tee) {
    std::printf("spool: %llu records in %zu segment(s) under %s\n",
                static_cast<unsigned long long>(tee->records_written()),
                tee->segments(), tee->directory().c_str());
  }
  if (verdict_tee) {
    std::printf("verdict spool: %llu verdicts in %zu segment(s) under %s\n",
                static_cast<unsigned long long>(
                    verdict_tee->verdicts_written()),
                verdict_tee->segments(), verdict_tee->directory().c_str());
  }

  const engine::EngineStats engine_stats = engine.stats();
  std::printf("engine: %llu records over %zu shards, %llu sessions\n",
              static_cast<unsigned long long>(engine_stats.records_out),
              engine.shard_count(),
              static_cast<unsigned long long>(engine_stats.sessions_reported));
  if (windowed) {
    std::printf("windows: %llu closed, %llu verdicts, %zu harvested "
                "(%zu stalled)\n",
                static_cast<unsigned long long>(engine_stats.windows_emitted),
                static_cast<unsigned long long>(engine_stats.verdicts_emitted),
                verdicts_total, verdicts_stalled);
  }
  for (std::size_t i = 0; i < engine_stats.shards.size(); ++i) {
    const auto& s = engine_stats.shards[i];
    if (windowed) {
      std::printf(
          "  shard %zu: %llu records, %llu sessions, %llu windows, "
          "%llu verdicts, queue peak %zu\n",
          i, static_cast<unsigned long long>(s.records_out),
          static_cast<unsigned long long>(s.sessions_reported),
          static_cast<unsigned long long>(s.windows_emitted),
          static_cast<unsigned long long>(s.verdicts_emitted), s.queue_peak);
    } else {
      std::printf("  shard %zu: %llu records, %llu sessions, queue peak %zu\n",
                  i, static_cast<unsigned long long>(s.records_out),
                  static_cast<unsigned long long>(s.sessions_reported),
                  s.queue_peak);
    }
  }

  std::printf("\n%-12s %-9s %s\n", "subscriber", "sessions", "stalled");
  for (const auto& [subscriber, stats] : per_subscriber) {
    std::printf("%-12s %-9zu %zu\n", subscriber.c_str(), stats.sessions,
                stats.stalled);
  }
  return 0;
}

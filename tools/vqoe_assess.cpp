// vqoe_assess — apply trained models to (encrypted) weblogs.
//
//   vqoe_assess --models=DIR --weblogs=encrypted.csv [--truth=truth.csv]
//
// Reconstructs sessions from the records (no URIs needed), assesses each,
// and prints one CSV row per session to stdout:
//   subscriber,start_s,chunks,stall,representation,switches,switch_score,mos
// With --truth, also prints accuracy summaries to stderr.
#include <cstdio>

#include "tool_args.h"
#include "vqoe/core/model_io.h"
#include "vqoe/core/mos.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/core/startup.h"
#include "vqoe/session/reconstruct.h"
#include "vqoe/trace/csv.h"

namespace {

using vqoe::tool::arg_value;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: vqoe_assess --models=DIR --weblogs=CSV [--truth=CSV]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vqoe;
  const char* models = arg_value(argc, argv, "--models");
  const char* weblogs = arg_value(argc, argv, "--weblogs");
  if (!models || !weblogs) usage();

  const auto pipeline = core::load_pipeline(models);
  const auto records = trace::read_weblogs_csv(weblogs);
  const auto sessions = session::reconstruct(records);
  std::fprintf(stderr, "%zu records -> %zu sessions\n", records.size(),
               sessions.size());

  std::printf(
      "subscriber,start_s,chunks,stall,representation,switches,switch_score,"
      "mos\n");
  core::DetectorScratch scratch;  // reused across all assessed sessions
  for (const auto& s : sessions) {
    const auto chunks = core::chunks_from_session(s);
    if (chunks.empty()) continue;
    const auto report = pipeline.assess(chunks, scratch);
    const double mos = core::mos_from_report(
        report, core::estimate_startup_delay(chunks));
    std::printf("%s,%.3f,%zu,%s,%s,%d,%.1f,%.2f\n", s.subscriber_id.c_str(),
                s.start_time_s, chunks.size(),
                core::stall_class_names()[static_cast<std::size_t>(report.stall)]
                    .c_str(),
                core::repr_class_names()[static_cast<std::size_t>(
                                             report.representation)]
                    .c_str(),
                report.quality_switches ? 1 : 0, report.switch_score, mos);
  }

  if (const char* truth_path = arg_value(argc, argv, "--truth")) {
    const auto truths = trace::read_ground_truth_csv(truth_path);
    const auto labelled = core::sessions_from_encrypted(records, truths);
    const auto stall_cm = core::evaluate_stall(pipeline.stall_detector(), labelled);
    std::fprintf(stderr, "stall accuracy vs truth: %.1f%% (%zu sessions)\n",
                 100.0 * stall_cm.accuracy(), stall_cm.total());
    if (pipeline.representation_detector().trained()) {
      const auto repr_cm = core::evaluate_representation(
          pipeline.representation_detector(), labelled);
      std::fprintf(stderr, "representation accuracy vs truth: %.1f%%\n",
                   100.0 * repr_cm.accuracy());
    }
  }
  return 0;
}

// vqoe_probe — replays a capture into a vqoe_collector.
//
// The edge half of the probe/collector split: reads records from a spool
// directory (vqoe_collector --spool output, or any SpoolWriter log), a
// weblog CSV, or a synthesized corpus, and streams them to a collector as
// framed batches at a chosen replay speed.
//
//   vqoe_probe --port=9977 --spool=/var/tmp/capture
//   vqoe_probe --port=9977 --weblogs=day.csv --speed=1        # real time
//   vqoe_probe --port=9977 --generate=300 --subset=0/4        # load test
//
// --speed=0 (default) replays unthrottled, --speed=1 at capture pace,
// --speed=N at N× capture pace. --subset=i/n keeps only the i-th of n
// subscriber partitions, so one capture can feed n concurrent probes.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tool_args.h"
#include "vqoe/trace/csv.h"
#include "vqoe/trace/weblog.h"
#include "vqoe/wire/spool.h"
#include "vqoe/wire/transport.h"
#include "vqoe/workload/corpus.h"

namespace {

using vqoe::tool::arg_value;
using vqoe::tool::parse_arg;
using vqoe::tool::parse_arg_or;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: vqoe_probe --port=N [--host=127.0.0.1]\n"
      "                  (--spool=DIR | --weblogs=CSV | --generate=N "
      "[--seed=N])\n"
      "                  [--speed=X] [--batch=N] [--subset=I/N]\n"
      "  --spool=DIR    replay a spool capture log\n"
      "  --weblogs=CSV  replay a weblog CSV (vqoe_train format)\n"
      "  --generate=N   synthesize N encrypted sessions and stream those\n"
      "  --speed=X      0 = unthrottled (default), 1 = real time, N = Nx\n"
      "  --subset=I/N   stream only subscriber partition I of N\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vqoe;

  const char* port = arg_value(argc, argv, "--port");
  if (!port) usage();

  // --- load the feed ------------------------------------------------------
  std::vector<trace::WeblogRecord> records;
  if (const char* spool = arg_value(argc, argv, "--spool")) {
    wire::SpoolReader reader{spool};
    records = reader.read_all();
    std::printf("spool %s: %llu records in %zu segment(s)%s\n", spool,
                static_cast<unsigned long long>(reader.records_read()),
                reader.segments_read(),
                reader.torn_tail() ? " (torn tail recovered)" : "");
  } else if (const char* weblogs = arg_value(argc, argv, "--weblogs")) {
    records = trace::read_weblogs_csv(weblogs);
    std::printf("%s: %zu records\n", weblogs, records.size());
  } else if (const char* generate = arg_value(argc, argv, "--generate")) {
    const char* seed_arg = arg_value(argc, argv, "--seed");
    auto options = workload::cleartext_corpus_options(
        parse_arg<std::size_t>("--generate", generate),
        parse_arg_or<std::uint64_t>("--seed", seed_arg, 99));
    options.adaptive_fraction = 1.0;
    options.subscribers = 40;
    options.keep_session_results = false;
    records = trace::encrypt_view(workload::generate_corpus(options).weblogs);
    std::printf("synthesized %zu encrypted records\n", records.size());
  } else {
    usage();
  }

  if (const char* subset = arg_value(argc, argv, "--subset")) {
    std::size_t index = 0, count = 0;
    if (std::sscanf(subset, "%zu/%zu", &index, &count) != 2 || count == 0 ||
        index >= count) {
      usage();
    }
    records = wire::partition_for_probe(records, index, count);
    std::printf("subset %zu/%zu: %zu records\n", index, count, records.size());
  }

  // --- stream it ----------------------------------------------------------
  wire::ProbeOptions options;
  if (const char* host = arg_value(argc, argv, "--host")) options.host = host;
  options.port = parse_arg<std::uint16_t>("--port", port);
  if (const char* speed = arg_value(argc, argv, "--speed")) {
    options.speed = parse_arg<double>("--speed", speed);
  }
  if (const char* batch = arg_value(argc, argv, "--batch")) {
    options.batch_records = parse_arg<std::size_t>("--batch", batch);
  }

  wire::Probe probe{options};
  std::printf("connected to %s:%u (wire version %u)\n", options.host.c_str(),
              options.port, probe.version());
  probe.send(records);
  probe.finish();

  const wire::ProbeStats& stats = probe.stats();
  std::printf("sent %llu records in %llu frames (%llu bytes), "
              "%llu ack-window stalls\n",
              static_cast<unsigned long long>(stats.records_sent),
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.bytes_sent),
              static_cast<unsigned long long>(stats.ack_stalls));
  return 0;
}

// Shared --flag=value parsing for the command-line tools.
//
// Every tool used to hand-roll arg_value() plus strto*() conversions with
// no range or garbage detection (`--port=banana` parsed as 0). The helpers
// here are built on std::from_chars: full-string match required, overflow
// rejected, and a parse failure exits with a message naming the flag —
// vqoe_lint's banned-api rule keeps the ato*/strto* family out of the
// tree (DESIGN.md section 5f).
#pragma once

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <type_traits>

namespace vqoe::tool {

/// Returns the value of `--name=value` or nullptr when absent.
inline const char* arg_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

[[noreturn]] inline void parse_fail(const char* flag, const char* value) {
  std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value);
  std::exit(2);
}

/// Parses the whole of `value` as T (integer or floating point); exits
/// with status 2 naming `flag` on garbage, trailing bytes, or overflow.
template <typename T>
T parse_arg(const char* flag, const char* value) {
  T out{};
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, out);
  if (ec != std::errc{} || ptr != end) parse_fail(flag, value);
  return out;
}

/// `parse_arg` for a flag that may be absent: returns `fallback` when
/// `value` is nullptr.
template <typename T>
T parse_arg_or(const char* flag, const char* value, T fallback) {
  return value ? parse_arg<T>(flag, value) : fallback;
}

}  // namespace vqoe::tool

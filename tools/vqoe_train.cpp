// vqoe_train — train the QoE detection pipeline and persist it.
//
// Two input modes:
//   * from CSV:    vqoe_train --weblogs=clear.csv --truth=truth.csv --out=models/
//   * synthesized: vqoe_train --generate=8000 --seed=42 --out=models/
//
// The output directory holds stall.model / representation.model /
// switch.model, loadable by vqoe_assess or core::load_pipeline().
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tool_args.h"
#include "vqoe/core/model_io.h"
#include "vqoe/core/pipeline.h"
#include "vqoe/par/parallel.h"
#include "vqoe/trace/csv.h"
#include "vqoe/workload/corpus.h"

namespace {

using vqoe::tool::arg_value;
using vqoe::tool::parse_arg;
using vqoe::tool::parse_arg_or;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: vqoe_train --out=DIR (--weblogs=CSV --truth=CSV | "
               "--generate=N [--seed=N]) [--threads=N]\n"
               "  --threads=N  worker threads for corpus generation and "
               "training (0 = auto,\n"
               "               1 = sequential; also settable via "
               "VQOE_THREADS). Results are\n"
               "               identical for every thread count.\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vqoe;
  const char* out = arg_value(argc, argv, "--out");
  if (!out) usage();

  if (const char* threads_arg = arg_value(argc, argv, "--threads")) {
    par::set_threads(parse_arg<int>("--threads", threads_arg));
  }
  std::printf("parallel runtime: %d thread(s)\n", par::max_threads());

  std::vector<core::SessionRecord> sessions;
  if (const char* generate = arg_value(argc, argv, "--generate")) {
    const char* seed_arg = arg_value(argc, argv, "--seed");
    const std::uint64_t seed = parse_arg_or<std::uint64_t>("--seed", seed_arg, 42);
    auto options = workload::cleartext_corpus_options(
        parse_arg<std::size_t>("--generate", generate), seed);
    options.keep_session_results = false;
    std::printf("generating %s labelled sessions (seed %llu)...\n", generate,
                static_cast<unsigned long long>(seed));
    sessions = core::sessions_from_corpus(workload::generate_corpus(options));
  } else {
    const char* weblogs = arg_value(argc, argv, "--weblogs");
    const char* truth = arg_value(argc, argv, "--truth");
    if (!weblogs || !truth) usage();
    std::printf("loading %s + %s...\n", weblogs, truth);
    workload::Corpus corpus;
    corpus.weblogs = trace::read_weblogs_csv(weblogs);
    corpus.truths = trace::read_ground_truth_csv(truth);
    sessions = core::sessions_from_corpus(corpus);
  }
  if (sessions.empty()) {
    std::fprintf(stderr, "no labelled sessions found\n");
    return 1;
  }
  std::printf("training on %zu sessions...\n", sessions.size());
  const auto pipeline = core::QoePipeline::train(sessions);
  core::save_pipeline(pipeline, out);

  std::printf("models written to %s\n", out);
  std::printf("stall model: %zu features, %zu trees\n",
              pipeline.stall_detector().selected_features().size(),
              pipeline.stall_detector().forest().num_trees());
  if (pipeline.representation_detector().trained()) {
    std::printf("representation model: %zu features, %zu trees\n",
                pipeline.representation_detector().selected_features().size(),
                pipeline.representation_detector().forest().num_trees());
  }
  std::printf("switch detector: threshold %.0f KB*s\n",
              pipeline.switch_detector().config().threshold);
  return 0;
}

// vqoe_lint — project-invariant static analysis over the source tree.
//
//   vqoe_lint --root=/path/to/repo                      # scan the default dirs
//   vqoe_lint --root=. src/wire tools                   # scan a subset
//   vqoe_lint --root=. --baseline=.vqoe-lint-baseline   # zero-NEW-findings gate
//   vqoe_lint --root=. --write-baseline=.vqoe-lint-baseline
//
// Exit status: 0 when no findings outside the baseline, 1 otherwise, 2 on
// usage errors. Rules, suppressions and the baseline format are described
// in DESIGN.md section 5f and src/lint/include/vqoe/lint/lint.h.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "vqoe/lint/lint.h"

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: vqoe_lint [--root=DIR] [--baseline=FILE] "
      "[--write-baseline=FILE]\n"
      "                 [--exclude=PREFIX]... [path...]\n"
      "  --root=DIR        repository root (default: .)\n"
      "  --baseline=FILE   ignore findings listed in FILE; report stale "
      "entries\n"
      "  --write-baseline=FILE  write current findings as the new baseline\n"
      "  --exclude=PREFIX  skip files under this root-relative prefix\n"
      "  path...           root-relative dirs/files to scan\n"
      "                    (default: src bench tools examples tests,\n"
      "                     excluding tests/lint/fixtures)\n");
  std::exit(2);
}

const char* flag_value(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  vqoe::lint::TreeOptions options;
  options.root = ".";
  std::string baseline_path;
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = flag_value(arg, "--root")) {
      options.root = v;
    } else if (const char* v = flag_value(arg, "--baseline")) {
      baseline_path = v;
    } else if (const char* v = flag_value(arg, "--write-baseline")) {
      write_baseline_path = v;
    } else if (const char* v = flag_value(arg, "--exclude")) {
      options.excludes.emplace_back(v);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      usage();
    } else {
      options.paths.emplace_back(arg);
    }
  }
  if (options.paths.empty()) {
    options.paths = {"src", "bench", "tools", "examples", "tests"};
    options.excludes.emplace_back("tests/lint/fixtures");
  }

  vqoe::lint::TreeReport report;
  try {
    report = vqoe::lint::analyze_tree(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::vector<vqoe::lint::Finding>& findings = report.findings;

  if (!write_baseline_path.empty()) {
    std::ofstream out{write_baseline_path};
    if (!out) {
      std::fprintf(stderr, "vqoe_lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << vqoe::lint::write_baseline(findings);
    std::fprintf(stderr, "vqoe_lint: wrote %zu finding(s) to %s\n",
                 findings.size(), write_baseline_path.c_str());
    return 0;
  }

  std::size_t stale = 0;
  if (!baseline_path.empty()) {
    stale = vqoe::lint::apply_baseline(
        findings, vqoe::lint::load_baseline(baseline_path));
  }

  for (const auto& f : findings) {
    std::printf("%s\n", vqoe::lint::format(f).c_str());
  }
  if (stale != 0) {
    std::fprintf(stderr,
                 "vqoe_lint: %zu stale baseline entr%s (fixed findings still "
                 "listed); regenerate with --write-baseline\n",
                 stale, stale == 1 ? "y" : "ies");
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "vqoe_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), report.files_scanned);
    return 1;
  }
  std::fprintf(stderr, "vqoe_lint: clean (%zu file(s) scanned)\n",
               report.files_scanned);
  return 0;
}

// Deterministic parallel runtime for the offline side of the framework:
// forest training, batch inference, cross-validation, permutation
// importance and corpus generation (DESIGN.md section 5c).
//
// The engine (src/engine) owns its own threads for the *online* ingest
// path; this pool serves the *batch* paths, where the contract is
// different: results must be bit-identical for any thread count. The
// primitives here therefore never expose scheduling order to the caller —
// work items are indexed, per-item outputs land in pre-sized slots, and
// floating-point reductions are merged in item order by the caller, never
// accumulated per worker.
//
// Thread count resolution, in priority order:
//   1. set_threads(n) (0 restores automatic resolution)
//   2. the VQOE_THREADS environment variable (read once, at first use)
//   3. std::thread::hardware_concurrency()
// A resolved count of 1 is the fully sequential fallback: no pool is ever
// spun up and every primitive runs inline on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace vqoe::par {

/// Resolved parallelism (always >= 1). See the resolution order above.
[[nodiscard]] int max_threads();

/// Overrides the thread count. 0 restores automatic resolution
/// (VQOE_THREADS, then hardware_concurrency). Joins and discards any idle
/// pool of the previous size; the next parallel call re-creates it.
/// Must not be called from inside a parallel region.
void set_threads(int n);

/// True while the calling thread is executing a task scheduled by this
/// runtime. Nested primitives detect this and degrade to inline sequential
/// execution instead of re-entering the pool (which could deadlock).
[[nodiscard]] bool in_parallel_region();

/// Splits the half-open range [begin, end) into chunks of at most `grain`
/// items and executes `body(chunk_begin, chunk_end, slot)` for every chunk
/// across the pool. The calling thread participates (slot 0); pool workers
/// use slots 1 .. max_threads()-1, so `slot < max_threads()` always holds
/// and per-slot scratch sized by max_threads() is race-free.
///
/// Chunk *scheduling* is dynamic; determinism is the caller's contract:
/// write results into per-item slots, or group floating-point accumulation
/// by item (not by slot) and merge in item order afterwards.
///
/// The first exception thrown by `body` is captured, remaining chunks are
/// abandoned, and the exception is rethrown here once the region drains.
/// Called from inside a parallel region, the whole range runs inline
/// sequentially on the calling thread (nested use is rejected by the pool,
/// not by the caller).
void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Heterogeneous fan-out: collect tasks with run(), execute them all with
/// wait(). Tasks start only at wait() (which dispatches them over the pool
/// and participates); the first task exception is rethrown from wait().
/// A TaskGroup is single-use per wait cycle and not itself thread-safe.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// Destroying a group with unexecuted tasks discards them.
  ~TaskGroup() = default;

  void run(std::function<void()> task);

  /// Executes every collected task (parallel when the pool allows, inline
  /// inside a parallel region), clears the group, rethrows the first task
  /// exception.
  void wait();

  [[nodiscard]] std::size_t pending() const { return tasks_.size(); }

 private:
  std::vector<std::function<void()>> tasks_;
};

/// Cache-line-padded per-slot state for parallel_for bodies: one T per
/// worker slot, so concurrent chunks on different workers never share a
/// line. Intended for *scratch* (reusable buffers); not for
/// order-sensitive floating-point reductions — those must be grouped by
/// item to stay deterministic (see the header comment).
template <typename T>
class WorkerLocal {
 public:
  WorkerLocal() : slots_(static_cast<std::size_t>(max_threads())) {}
  explicit WorkerLocal(const T& init)
      : slots_(static_cast<std::size_t>(max_threads()), Slot{init}) {}

  [[nodiscard]] T& at(std::size_t slot) { return slots_[slot].value; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::vector<Slot> slots_;
};

/// SplitMix64 seed derivation: a statistically independent stream for task
/// `index` of a computation seeded with `base`. This is how every parallel
/// path derives its per-tree / per-fold / per-session RNG, making results
/// a pure function of (base seed, index) — never of the schedule.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace vqoe::par

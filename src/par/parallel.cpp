#include "vqoe/par/parallel.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace vqoe::par {

namespace {

// Which slot the calling thread occupies inside the active region
// (0 = the submitting thread). Doubles as the in-region flag.
thread_local bool tl_in_region = false;
thread_local std::size_t tl_slot = 0;

int env_threads() {
  const char* value = std::getenv("VQOE_THREADS");
  if (!value || !*value) return 0;
  int parsed = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec != std::errc{} || ptr != end || parsed < 0 || parsed > 4096) return 0;
  return parsed;
}

int auto_threads() {
  static const int resolved = [] {
    const int env = env_threads();
    if (env > 0) return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }();
  return resolved;
}

// One parallel_for dispatch. Chunks are claimed with an atomic cursor;
// the first body exception cancels the remaining chunks.
struct Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t num_chunks = 0;
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  void work(std::size_t slot) {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      const std::size_t lo = begin + chunk * grain;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        (*body)(lo, hi, slot);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!error) error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
  }
};

// Fixed pool of max_threads()-1 workers; the submitting thread is the
// extra participant. Jobs are serialized (one region at a time), which is
// all the batch paths need and keeps slot assignment trivially race-free.
class Pool {
 public:
  explicit Pool(int workers) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this, slot = static_cast<std::size_t>(i) + 1] {
        worker_main(slot);
      });
    }
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void run(Job& job) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      job_ = &job;
      ++generation_;
      active_ = threads_.size();
    }
    cv_.notify_all();

    tl_in_region = true;
    tl_slot = 0;
    job.work(0);
    tl_in_region = false;

    std::unique_lock<std::mutex> lock{mutex_};
    done_cv_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_main(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock{mutex_};
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      tl_in_region = true;
      tl_slot = slot;
      job->work(slot);
      tl_in_region = false;
      {
        const std::lock_guard<std::mutex> lock{mutex_};
        --active_;
      }
      done_cv_.notify_one();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// Pool lifecycle: guarded by a mutex so set_threads() and concurrent
// submitters (e.g. tests driving two pipelines) stay coherent. The
// region_mutex_ serializes whole regions.
struct Runtime {
  std::mutex config_mutex;
  std::mutex region_mutex;
  int override_threads = 0;  // 0 = automatic
  std::unique_ptr<Pool> pool;
  int pool_size = 0;  // worker count the pool was built with
};

Runtime& runtime() {
  // Deliberately leaked: pool workers may still be draining when static
  // destructors run, so the Runtime must outlive main().
  // vqoe-lint: allow(banned-api): intentional immortal singleton
  static Runtime* rt = new Runtime;
  return *rt;
}

void run_inline(std::size_t begin, std::size_t end, std::size_t grain,
                const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                std::size_t slot) {
  for (std::size_t lo = begin; lo < end; lo += grain) {
    body(lo, std::min(end, lo + grain), slot);
  }
}

}  // namespace

int max_threads() {
  Runtime& rt = runtime();
  const std::lock_guard<std::mutex> lock{rt.config_mutex};
  return rt.override_threads > 0 ? rt.override_threads : auto_threads();
}

void set_threads(int n) {
  if (n < 0) throw std::invalid_argument{"par::set_threads: negative count"};
  if (in_parallel_region()) {
    throw std::logic_error{"par::set_threads: called inside a parallel region"};
  }
  Runtime& rt = runtime();
  std::unique_ptr<Pool> retired;
  {
    const std::lock_guard<std::mutex> region{rt.region_mutex};
    const std::lock_guard<std::mutex> lock{rt.config_mutex};
    rt.override_threads = n;
    retired = std::move(rt.pool);
    rt.pool_size = 0;
  }
  // Joined outside the locks.
  retired.reset();
}

bool in_parallel_region() { return tl_in_region; }

void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;

  // Nested use: the pool rejects re-entrant scheduling; run on the calling
  // worker's slot so per-slot scratch stays consistent.
  if (in_parallel_region()) {
    run_inline(begin, end, grain, body, tl_slot);
    return;
  }

  const int threads = max_threads();
  const std::size_t num_chunks = (end - begin + grain - 1) / grain;
  if (threads <= 1 || num_chunks <= 1) {
    tl_in_region = true;
    tl_slot = 0;
    try {
      run_inline(begin, end, grain, body, 0);
    } catch (...) {
      tl_in_region = false;
      throw;
    }
    tl_in_region = false;
    return;
  }

  Runtime& rt = runtime();
  const std::lock_guard<std::mutex> region{rt.region_mutex};
  {
    const std::lock_guard<std::mutex> lock{rt.config_mutex};
    const int wanted = threads - 1;
    if (!rt.pool || rt.pool_size != wanted) {
      rt.pool.reset();  // join the old size first
      rt.pool = std::make_unique<Pool>(wanted);
      rt.pool_size = wanted;
    }
  }

  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.body = &body;
  job.num_chunks = num_chunks;
  rt.pool->run(job);
  if (job.error) std::rethrow_exception(job.error);
}

void TaskGroup::run(std::function<void()> task) {
  tasks_.push_back(std::move(task));
}

void TaskGroup::wait() {
  if (tasks_.empty()) return;
  std::vector<std::function<void()>> tasks = std::move(tasks_);
  tasks_.clear();
  parallel_for(0, tasks.size(), 1,
               [&tasks](std::size_t lo, std::size_t hi, std::size_t) {
                 for (std::size_t i = lo; i < hi; ++i) tasks[i]();
               });
}

}  // namespace vqoe::par

// Encrypted video-session reconstruction.
//
// With TLS the per-session URI identifier is gone, so Section 5.2 rebuilds
// session boundaries from what still leaks: the server identity (SNI/DNS),
// the page-load pattern that brackets every watch (requests to
// m.youtube.com and i.ytimg.com when the watch page is constructed), and
// idle gaps between consecutive sessions. The reconstructor below follows
// the paper's three steps:
//
//  1. keep one subscriber's YouTube traffic (domain filter),
//  2. split on watch-page marker bursts that appear after media traffic,
//  3. split on long silent gaps.
//
// A timestamp/chunk-count join against instrumented-client ground truth
// (the paper's Section 5.2 dataset merge) is provided for evaluation.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "vqoe/trace/weblog.h"

namespace vqoe::session {

struct ReconstructionOptions {
  /// Traffic silence (seconds) interpreted as a session boundary.
  double idle_gap_s = 30.0;
  /// Split when a watch-page marker appears after media traffic in the
  /// current candidate session.
  bool use_page_markers = true;
  /// Objects at least this large on a video CDN host count as media chunks
  /// (filters out range probes and keep-alives; recovery chunks after a
  /// stall can be only a few kilobytes, so the floor must stay low).
  std::uint64_t min_media_bytes = 2'000;

  /// Host classification — defaults are the YouTube names of the paper;
  /// override for other services (workload::ServiceTraits provides them).
  std::vector<std::string> cdn_suffixes{"googlevideo.com"};
  std::vector<std::string> page_marker_hosts{"m.youtube.com"};
  std::vector<std::string> service_suffixes{"googlevideo.com", "youtube.com",
                                            "ytimg.com"};

  [[nodiscard]] bool is_cdn(const std::string& host) const;
  [[nodiscard]] bool is_page_marker(const std::string& host) const;
  [[nodiscard]] bool is_service(const std::string& host) const;
};

/// One recovered session: boundaries plus the media records inside them.
struct ReconstructedSession {
  std::string subscriber_id;
  double start_time_s = 0.0;
  double end_time_s = 0.0;
  std::vector<trace::WeblogRecord> media;  ///< chronological media chunks
  std::size_t page_object_count = 0;
};

/// Host classification from the names that survive encryption — YouTube
/// defaults (other services: use ReconstructionOptions::is_* with the
/// service's host lists).
[[nodiscard]] bool is_youtube_host(const std::string& host);
[[nodiscard]] bool is_video_cdn_host(const std::string& host);   // googlevideo
[[nodiscard]] bool is_page_marker_host(const std::string& host); // m.youtube/i.ytimg

/// Rebuilds sessions from a mixed multi-subscriber encrypted log. Records
/// are classified by host only (no cleartext metadata is consulted).
/// Returned sessions are ordered by subscriber, then by start time.
[[nodiscard]] std::vector<ReconstructedSession> reconstruct(
    std::span<const trace::WeblogRecord> records,
    const ReconstructionOptions& options = {});

/// Evaluation join: matches each reconstructed session to the ground-truth
/// entry whose media start lies within `tolerance_s` and whose subscriber
/// matches, preferring the closest start. Each truth entry is used at most
/// once. Returns, per reconstructed session, the index into `truths` or
/// nullopt.
[[nodiscard]] std::vector<std::optional<std::size_t>> match_ground_truth(
    std::span<const ReconstructedSession> sessions,
    std::span<const trace::SessionGroundTruth> truths, double tolerance_s = 10.0);

/// Reconstruction quality: fraction of ground-truth sessions recovered with
/// exactly the right media chunk count (the paper reports that "the vast
/// majority" of sessions were identified).
[[nodiscard]] double reconstruction_accuracy(
    std::span<const ReconstructedSession> sessions,
    std::span<const trace::SessionGroundTruth> truths, double tolerance_s = 10.0);

}  // namespace vqoe::session

#include "vqoe/session/reconstruct.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace vqoe::session {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool ReconstructionOptions::is_cdn(const std::string& host) const {
  for (const std::string& suffix : cdn_suffixes) {
    if (ends_with(host, suffix)) return true;
  }
  return false;
}

bool ReconstructionOptions::is_page_marker(const std::string& host) const {
  for (const std::string& marker : page_marker_hosts) {
    if (host == marker) return true;
  }
  return false;
}

bool ReconstructionOptions::is_service(const std::string& host) const {
  for (const std::string& suffix : service_suffixes) {
    if (ends_with(host, suffix)) return true;
  }
  return false;
}

bool is_video_cdn_host(const std::string& host) {
  return ends_with(host, "googlevideo.com");
}

bool is_page_marker_host(const std::string& host) {
  return host == "m.youtube.com" || host == "i.ytimg.com" ||
         host == "www.youtube.com" || ends_with(host, ".ytimg.com");
}

bool is_youtube_host(const std::string& host) {
  return is_video_cdn_host(host) || is_page_marker_host(host) ||
         ends_with(host, "youtube.com");
}

std::vector<ReconstructedSession> reconstruct(
    std::span<const trace::WeblogRecord> records,
    const ReconstructionOptions& options) {
  // Step 1: per-subscriber service traffic, time-ordered.
  std::map<std::string, std::vector<const trace::WeblogRecord*>> by_subscriber;
  for (const trace::WeblogRecord& r : records) {
    if (!options.is_service(r.host)) continue;
    by_subscriber[r.subscriber_id].push_back(&r);
  }

  std::vector<ReconstructedSession> sessions;
  for (auto& [subscriber, recs] : by_subscriber) {
    std::stable_sort(recs.begin(), recs.end(),
                     [](const trace::WeblogRecord* a, const trace::WeblogRecord* b) {
                       return a->timestamp_s < b->timestamp_s;
                     });

    ReconstructedSession current;
    current.subscriber_id = subscriber;
    bool open = false;
    double last_ts = 0.0;

    auto close = [&]() {
      if (open && !current.media.empty()) {
        sessions.push_back(std::move(current));
      }
      current = ReconstructedSession{};
      current.subscriber_id = subscriber;
      open = false;
    };

    for (const trace::WeblogRecord* r : recs) {
      // Host-only classification: no cleartext metadata. The watch page
      // marks a new session; thumbnail hosts also load while browsing, so
      // only the page itself is a reliable marker.
      const bool media = options.is_cdn(r->host) &&
                         r->object_size_bytes >= options.min_media_bytes;
      const bool marker =
          options.use_page_markers && options.is_page_marker(r->host);

      if (open && r->timestamp_s - last_ts > options.idle_gap_s) {
        // Step 3: long silence terminates the session.
        close();
      }
      if (open && marker && !current.media.empty()) {
        // Step 2: a new watch page while media was flowing -> next video.
        close();
      }

      if (!open) {
        open = true;
        current.start_time_s = r->timestamp_s;
      }
      last_ts = std::max(last_ts, r->arrival_time_s());
      current.end_time_s = std::max(current.end_time_s, r->arrival_time_s());
      if (media) {
        current.media.push_back(*r);
      } else {
        current.page_object_count++;
      }
    }
    close();
  }

  std::stable_sort(sessions.begin(), sessions.end(),
                   [](const ReconstructedSession& a, const ReconstructedSession& b) {
                     if (a.subscriber_id != b.subscriber_id) {
                       return a.subscriber_id < b.subscriber_id;
                     }
                     return a.start_time_s < b.start_time_s;
                   });
  return sessions;
}

std::vector<std::optional<std::size_t>> match_ground_truth(
    std::span<const ReconstructedSession> sessions,
    std::span<const trace::SessionGroundTruth> truths, double tolerance_s) {
  std::vector<std::optional<std::size_t>> matches(sessions.size());
  std::vector<char> used(truths.size(), 0);
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const double media_start = sessions[s].media.empty()
                                   ? sessions[s].start_time_s
                                   : sessions[s].media.front().timestamp_s;
    double best_dist = tolerance_s;
    std::size_t best = truths.size();
    for (std::size_t t = 0; t < truths.size(); ++t) {
      if (used[t] || truths[t].subscriber_id != sessions[s].subscriber_id) {
        continue;
      }
      const double dist = std::abs(truths[t].start_time_s - media_start);
      if (dist <= best_dist) {
        best_dist = dist;
        best = t;
      }
    }
    if (best < truths.size()) {
      used[best] = 1;
      matches[s] = best;
    }
  }
  return matches;
}

double reconstruction_accuracy(std::span<const ReconstructedSession> sessions,
                               std::span<const trace::SessionGroundTruth> truths,
                               double tolerance_s) {
  if (truths.empty()) return 0.0;
  const auto matches = match_ground_truth(sessions, truths, tolerance_s);
  std::size_t exact = 0;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    if (!matches[s]) continue;
    const auto& truth = truths[*matches[s]];
    if (sessions[s].media.size() == truth.media_chunk_count) ++exact;
  }
  return static_cast<double>(exact) / static_cast<double>(truths.size());
}

}  // namespace vqoe::session

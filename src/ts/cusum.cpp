#include "vqoe/ts/cusum.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "vqoe/ts/summary.h"

namespace vqoe::ts {

std::vector<double> cusum_chart(std::span<const double> series,
                                std::optional<double> mu) {
  std::vector<double> out;
  out.reserve(series.size());
  const double reference = mu.value_or(mean(series));
  double acc = 0.0;
  for (double x : series) {
    acc += x - reference;
    out.push_back(acc);
  }
  return out;
}

double cusum_std(std::span<const double> series) {
  if (series.size() < 2) return 0.0;
  const auto chart = cusum_chart(series);
  return std_dev(chart);
}

double CusumStd::value() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double mu = prefix_ / n;
  const double sum_t = n * (n + 1.0) / 2.0;
  const double sum_t2 = n * (n + 1.0) * (2.0 * n + 1.0) / 6.0;
  const double sum_s = sum_p_ - mu * sum_t;
  const double sum_s2 = sum_p2_ - 2.0 * mu * sum_tp_ + mu * mu * sum_t2;
  const double mean_s = sum_s / n;
  // Cancellation in the sum-of-squares form can dip fractionally below 0.
  const double var = sum_s2 / n - mean_s * mean_s;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

PageCusum::PageCusum(double mu, double drift, double threshold)
    : mu_(mu), drift_(drift), threshold_(threshold) {
  if (drift < 0.0) throw std::invalid_argument{"PageCusum: drift must be >= 0"};
  if (threshold <= 0.0) throw std::invalid_argument{"PageCusum: threshold must be > 0"};
}

bool PageCusum::step(double x) {
  g_pos_ = std::max(0.0, g_pos_ + x - mu_ - drift_);
  g_neg_ = std::max(0.0, g_neg_ - x + mu_ - drift_);
  if (g_pos_ > threshold_ || g_neg_ > threshold_) {
    reset();
    return true;
  }
  return false;
}

std::vector<std::size_t> PageCusum::detect(std::span<const double> series) {
  std::vector<std::size_t> alarms;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (step(series[i])) alarms.push_back(i);
  }
  return alarms;
}

void PageCusum::reset() {
  g_pos_ = 0.0;
  g_neg_ = 0.0;
}

std::vector<double> deltas(std::span<const double> series) {
  std::vector<double> out;
  if (series.size() < 2) return out;
  out.reserve(series.size() - 1);
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    out.push_back(series[i + 1] - series[i]);
  }
  return out;
}

std::vector<double> product(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  std::vector<double> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(a[i] * b[i]);
  return out;
}

}  // namespace vqoe::ts

#include "vqoe/ts/ecdf.h"

#include <algorithm>
#include <cmath>

namespace vqoe::ts {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  if (idx == 0) return sorted_.front();
  return sorted_[std::min(idx - 1, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::grid(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  if (points == 1 || hi == lo) {
    out.emplace_back(lo, (*this)(lo));
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + static_cast<double>(i) * step;
    out.emplace_back(x, (*this)(x));
  }
  return out;
}

}  // namespace vqoe::ts

// Cumulative-sum change detection (E.S. Page, Biometrika 1954).
//
// Section 4.3 of the paper detects representation-quality switches with a
// CUSUM control chart over the per-session series Δsize × Δt (chunk size
// delta times chunk inter-arrival delta): "instead of thresholds we use the
// standard deviation of the output of the change detection algorithm" and a
// fixed decision threshold of 500 on that standard deviation (eq. 3).
//
// Two flavours are provided:
//  * cusum_chart()  — the classic control chart S_t = Σ_{i<=t} (x_i - μ̂),
//    whose standard deviation is the paper's detector statistic;
//  * PageCusum      — the textbook one-sided/two-sided Page test with drift
//    and decision threshold, used by the tests and the ablation benches to
//    locate individual change points.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace vqoe::ts {

/// Classic CUSUM control chart: S_0 = 0, S_t = S_{t-1} + (x_t - mu).
/// When `mu` is not given, the sample mean of `series` is used (the chart
/// then always ends at ~0 and drifts away from 0 around mean shifts).
/// Returns a series of the same length as the input.
[[nodiscard]] std::vector<double> cusum_chart(std::span<const double> series,
                                              std::optional<double> mu = std::nullopt);

/// The paper's detector statistic: the standard deviation of the CUSUM
/// control chart of `series` (eq. 3 applies this to Δsize × Δt). Returns 0
/// for series shorter than 2 points.
[[nodiscard]] double cusum_std(std::span<const double> series);

/// Incremental cusum_std(): the same statistic, updatable in O(1) per
/// observation without buffering the series (the windowed live path,
/// vqoe::window, keeps one per in-flight window).
///
/// Derivation: with prefix sums P_t = Σ_{i<=t} x_i and the sample mean
/// μ = P_n / n, the chart is S_t = P_t - tμ, so
///   Σ S_t  = Σ P_t - μ Σ t
///   Σ S_t² = Σ P_t² - 2μ Σ tP_t + μ² Σ t²
/// where Σt = n(n+1)/2 and Σt² = n(n+1)(2n+1)/6 are closed-form. Keeping
/// (n, P, ΣP, ΣP², ΣtP) is therefore enough to evaluate the population
/// variance of the chart at any point. Numerically this is a textbook
/// sum-of-squares formula, not Welford: it agrees with cusum_std() to
/// floating-point rounding, not bit-exactly — callers needing bit-identity
/// with the batch statistic (the session-close verdict path) must score
/// through cusum_std() on the buffered series instead.
class CusumStd {
 public:
  /// Feeds one observation.
  void add(double x) {
    ++n_;
    prefix_ += x;
    sum_p_ += prefix_;
    sum_p2_ += prefix_ * prefix_;
    sum_tp_ += static_cast<double>(n_) * prefix_;
  }

  /// The statistic over everything added so far; 0 for fewer than 2 points
  /// (matching cusum_std()).
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const { return n_; }

  void reset() { *this = CusumStd{}; }

 private:
  std::size_t n_ = 0;
  double prefix_ = 0.0;  ///< P_n, the running sum of the series
  double sum_p_ = 0.0;   ///< Σ P_t
  double sum_p2_ = 0.0;  ///< Σ P_t²
  double sum_tp_ = 0.0;  ///< Σ t·P_t  (t is 1-based)
};

/// Two-sided Page CUSUM test. Maintains the usual recursions
///   G+_t = max(0, G+_{t-1} + x_t - mu - drift)
///   G-_t = max(0, G-_{t-1} - x_t + mu - drift)
/// and reports an alarm whenever either statistic exceeds `threshold`,
/// resetting afterwards.
class PageCusum {
 public:
  /// @param mu        reference (in-control) mean of the watched series.
  /// @param drift     slack value k; changes smaller than `drift` per step
  ///                  are absorbed. Must be >= 0.
  /// @param threshold decision interval h; must be > 0.
  PageCusum(double mu, double drift, double threshold);

  /// Feeds one observation. Returns true when an alarm fires at this step.
  bool step(double x);

  /// Feeds a full series and returns the 0-based indices of every alarm.
  [[nodiscard]] std::vector<std::size_t> detect(std::span<const double> series);

  /// Resets the accumulated statistics (done automatically after an alarm).
  void reset();

  [[nodiscard]] double positive_statistic() const { return g_pos_; }
  [[nodiscard]] double negative_statistic() const { return g_neg_; }

 private:
  double mu_;
  double drift_;
  double threshold_;
  double g_pos_ = 0.0;
  double g_neg_ = 0.0;
};

/// First differences: out[i] = series[i+1] - series[i]; size n-1 (empty for
/// n < 2). Used to build Δsize and Δt from chunk sizes and arrival times.
[[nodiscard]] std::vector<double> deltas(std::span<const double> series);

/// Element-wise product of two equally sized series (the Δsize × Δt signal).
/// Precondition: a.size() == b.size().
[[nodiscard]] std::vector<double> product(std::span<const double> a,
                                          std::span<const double> b);

}  // namespace vqoe::ts

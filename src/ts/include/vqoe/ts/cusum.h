// Cumulative-sum change detection (E.S. Page, Biometrika 1954).
//
// Section 4.3 of the paper detects representation-quality switches with a
// CUSUM control chart over the per-session series Δsize × Δt (chunk size
// delta times chunk inter-arrival delta): "instead of thresholds we use the
// standard deviation of the output of the change detection algorithm" and a
// fixed decision threshold of 500 on that standard deviation (eq. 3).
//
// Two flavours are provided:
//  * cusum_chart()  — the classic control chart S_t = Σ_{i<=t} (x_i - μ̂),
//    whose standard deviation is the paper's detector statistic;
//  * PageCusum      — the textbook one-sided/two-sided Page test with drift
//    and decision threshold, used by the tests and the ablation benches to
//    locate individual change points.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace vqoe::ts {

/// Classic CUSUM control chart: S_0 = 0, S_t = S_{t-1} + (x_t - mu).
/// When `mu` is not given, the sample mean of `series` is used (the chart
/// then always ends at ~0 and drifts away from 0 around mean shifts).
/// Returns a series of the same length as the input.
[[nodiscard]] std::vector<double> cusum_chart(std::span<const double> series,
                                              std::optional<double> mu = std::nullopt);

/// The paper's detector statistic: the standard deviation of the CUSUM
/// control chart of `series` (eq. 3 applies this to Δsize × Δt). Returns 0
/// for series shorter than 2 points.
[[nodiscard]] double cusum_std(std::span<const double> series);

/// Two-sided Page CUSUM test. Maintains the usual recursions
///   G+_t = max(0, G+_{t-1} + x_t - mu - drift)
///   G-_t = max(0, G-_{t-1} - x_t + mu - drift)
/// and reports an alarm whenever either statistic exceeds `threshold`,
/// resetting afterwards.
class PageCusum {
 public:
  /// @param mu        reference (in-control) mean of the watched series.
  /// @param drift     slack value k; changes smaller than `drift` per step
  ///                  are absorbed. Must be >= 0.
  /// @param threshold decision interval h; must be > 0.
  PageCusum(double mu, double drift, double threshold);

  /// Feeds one observation. Returns true when an alarm fires at this step.
  bool step(double x);

  /// Feeds a full series and returns the 0-based indices of every alarm.
  [[nodiscard]] std::vector<std::size_t> detect(std::span<const double> series);

  /// Resets the accumulated statistics (done automatically after an alarm).
  void reset();

  [[nodiscard]] double positive_statistic() const { return g_pos_; }
  [[nodiscard]] double negative_statistic() const { return g_neg_; }

 private:
  double mu_;
  double drift_;
  double threshold_;
  double g_pos_ = 0.0;
  double g_neg_ = 0.0;
};

/// First differences: out[i] = series[i+1] - series[i]; size n-1 (empty for
/// n < 2). Used to build Δsize and Δt from chunk sizes and arrival times.
[[nodiscard]] std::vector<double> deltas(std::span<const double> series);

/// Element-wise product of two equally sized series (the Δsize × Δt signal).
/// Precondition: a.size() == b.size().
[[nodiscard]] std::vector<double> product(std::span<const double> a,
                                          std::span<const double> b);

}  // namespace vqoe::ts

// Single-pass (online) accumulators.
//
// The operator-side deployment sketched in Section 8 of the paper applies the
// trained models to passively monitored traffic "in real time". To support a
// streaming deployment, this header provides numerically stable one-pass
// accumulators (Welford's algorithm) that the live pipeline can keep per
// in-flight video session without buffering every chunk.
#pragma once

#include <cstddef>
#include <limits>

namespace vqoe::ts {

/// Welford online mean/variance plus min/max over a stream of doubles.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Population variance (divides by n); 0 for fewer than 2 observations.
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  [[nodiscard]] double std_dev() const;

  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace vqoe::ts

// Empirical cumulative distribution functions.
//
// The paper reports several distributions as ECDF/CDF plots (Fig. 2: stalls
// per session and rebuffering ratio; Fig. 4: CUSUM-std detector output;
// Fig. 5: segment sizes and inter-arrival times). The bench harnesses print
// these curves as (x, F(x)) rows; this class provides the evaluation and a
// fixed-grid sampling helper so that two curves can be printed side by side.
#pragma once

#include <span>
#include <vector>

namespace vqoe::ts {

/// Immutable empirical CDF of a numeric sample.
class Ecdf {
 public:
  Ecdf() = default;

  /// Builds the ECDF; the input need not be sorted. Empty samples produce an
  /// ECDF that evaluates to 0 everywhere.
  explicit Ecdf(std::span<const double> sample);

  /// Fraction of the sample that is <= x, in [0, 1].
  [[nodiscard]] double operator()(double x) const;

  /// Smallest sample value v such that F(v) >= q (the q-quantile, q in
  /// [0, 1]). Returns 0.0 for an empty sample.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

  /// The sorted underlying sample (ascending).
  [[nodiscard]] const std::vector<double>& sorted_sample() const { return sorted_; }

  /// Evaluates the ECDF on `points` evenly spaced x values covering
  /// [min, max] (inclusive). Returns (x, F(x)) pairs. Useful for printing
  /// comparable curves.
  [[nodiscard]] std::vector<std::pair<double, double>> grid(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace vqoe::ts

// Summary statistics over small numeric samples.
//
// The QoE framework of Dimopoulos et al. (IMC'16) builds its feature vectors
// by reducing each per-chunk metric of a video session (RTT, chunk size,
// bytes-in-flight, ...) to a fixed set of summary statistics: minimum, mean,
// maximum, standard deviation and a list of percentiles (Section 4.1 uses
// {25, 50, 75}; Section 4.2 uses {5, 10, 15, 20, 25, 50, 75, 80, 85, 90, 95}).
//
// This header provides those reductions with well-defined behaviour on empty
// samples and a uniform naming scheme ("metric:stat") that the feature
// construction layer relies on.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vqoe::ts {

/// Identifier of a single summary statistic. Percentiles are expressed by
/// Statistic{Kind::percentile, p} with p in (0, 100).
struct Statistic {
  enum class Kind { minimum, maximum, mean, std_dev, percentile };

  Kind kind = Kind::mean;
  double percentile = 0.0;  ///< Only meaningful when kind == percentile.

  /// Canonical short name used to build feature names, e.g. "min", "std",
  /// "p25". Percentile values are printed without a fractional part when
  /// integral.
  [[nodiscard]] std::string name() const;

  [[nodiscard]] bool operator==(const Statistic&) const = default;
};

/// The 7-statistic set of Section 4.1 (stall detection): min, max, mean,
/// std. deviation, 25th/50th/75th percentiles.
[[nodiscard]] const std::vector<Statistic>& stall_statistic_set();

/// The 15-statistic set of Section 4.2 (average representation detection):
/// min, mean, max, std. deviation and the 5/10/15/20/25/50/75/80/85/90/95th
/// percentiles.
[[nodiscard]] const std::vector<Statistic>& representation_statistic_set();

/// Computes one statistic over a sample. Returns 0.0 for an empty sample
/// (sessions with a single chunk still need a defined feature vector).
/// The sample does not need to be sorted.
[[nodiscard]] double compute(Statistic stat, std::span<const double> sample);

/// Linear-interpolation percentile (same convention as numpy's default):
/// p in [0, 100]. Returns 0.0 on an empty sample. O(n log n).
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Percentile over a sample that is already sorted ascending. O(1).
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double p);

/// Arithmetic mean; 0.0 on empty input.
[[nodiscard]] double mean(std::span<const double> sample);

/// Population standard deviation; 0.0 on samples of size < 2.
[[nodiscard]] double std_dev(std::span<const double> sample);

/// Computes every statistic in `stats` over `sample` in one pass over a
/// single sorted copy. Result order matches `stats`.
[[nodiscard]] std::vector<double> compute_all(std::span<const Statistic> stats,
                                              std::span<const double> sample);

}  // namespace vqoe::ts

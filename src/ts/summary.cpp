#include "vqoe/ts/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vqoe::ts {

std::string Statistic::name() const {
  switch (kind) {
    case Kind::minimum:
      return "min";
    case Kind::maximum:
      return "max";
    case Kind::mean:
      return "mean";
    case Kind::std_dev:
      return "std";
    case Kind::percentile: {
      // Built via append: `"p" + std::to_string(...)` trips GCC 12's
      // spurious -Wrestrict (PR105329) under -Werror.
      const auto rounded = static_cast<long long>(percentile);
      std::string out = "p";
      out += static_cast<double>(rounded) == percentile
                 ? std::to_string(rounded)
                 : std::to_string(percentile);
      return out;
    }
  }
  return "unknown";
}

namespace {

std::vector<Statistic> make_set(std::span<const double> percentiles) {
  std::vector<Statistic> out{
      {Statistic::Kind::minimum, 0.0},
      {Statistic::Kind::maximum, 0.0},
      {Statistic::Kind::mean, 0.0},
      {Statistic::Kind::std_dev, 0.0},
  };
  for (double p : percentiles) {
    out.push_back({Statistic::Kind::percentile, p});
  }
  return out;
}

}  // namespace

const std::vector<Statistic>& stall_statistic_set() {
  static const std::vector<Statistic> set = [] {
    const double ps[] = {25, 50, 75};
    return make_set(ps);
  }();
  return set;
}

const std::vector<Statistic>& representation_statistic_set() {
  static const std::vector<Statistic> set = [] {
    const double ps[] = {5, 10, 15, 20, 25, 50, 75, 80, 85, 90, 95};
    return make_set(ps);
  }();
  return set;
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  const double sum = std::accumulate(sample.begin(), sample.end(), 0.0);
  return sum / static_cast<double>(sample.size());
}

double std_dev(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double acc = 0.0;
  for (double v : sample) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(sample.size()));
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> sample, double p) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double compute(Statistic stat, std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  switch (stat.kind) {
    case Statistic::Kind::minimum:
      return *std::min_element(sample.begin(), sample.end());
    case Statistic::Kind::maximum:
      return *std::max_element(sample.begin(), sample.end());
    case Statistic::Kind::mean:
      return mean(sample);
    case Statistic::Kind::std_dev:
      return std_dev(sample);
    case Statistic::Kind::percentile:
      return percentile(sample, stat.percentile);
  }
  return 0.0;
}

std::vector<double> compute_all(std::span<const Statistic> stats,
                                std::span<const double> sample) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(stats.size());
  for (const Statistic& s : stats) {
    if (sorted.empty()) {
      out.push_back(0.0);
      continue;
    }
    switch (s.kind) {
      case Statistic::Kind::minimum:
        out.push_back(sorted.front());
        break;
      case Statistic::Kind::maximum:
        out.push_back(sorted.back());
        break;
      case Statistic::Kind::mean:
        out.push_back(mean(sorted));
        break;
      case Statistic::Kind::std_dev:
        out.push_back(std_dev(sorted));
        break;
      case Statistic::Kind::percentile:
        out.push_back(percentile_sorted(sorted, s.percentile));
        break;
    }
  }
  return out;
}

}  // namespace vqoe::ts

#include "vqoe/ts/online.h"

#include <algorithm>
#include <cmath>

namespace vqoe::ts {

double OnlineStats::std_dev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double merged_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = merged_mean;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace vqoe::ts

#include "vqoe/engine/engine.h"

#include <chrono>

namespace vqoe::engine {
namespace {

/// Short yield-then-sleep backoff for both queue sides. The first rounds
/// stay on-CPU (the opposite side is usually a few hundred ns away); after
/// that the thread parks briefly so an idle engine does not spin cores.
inline void backoff(std::size_t& idle_rounds) {
  if (++idle_rounds < 64) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace

MonitorEngine::MonitorEngine(const core::QoePipeline& pipeline,
                             EngineConfig config)
    : config_(config), router_(config.shards) {
  shards_.reserve(router_.shards());
  for (std::size_t i = 0; i < router_.shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>(pipeline, config_.monitor,
                                              config_.queue_capacity));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->worker = std::thread([this, raw] { worker_loop(*raw); });
  }
}

MonitorEngine::~MonitorEngine() { stop_workers(); }

void MonitorEngine::push_blocking(Shard& shard, Item&& item) {
  std::size_t idle_rounds = 0;
  while (!shard.queue.try_push(std::move(item))) backoff(idle_rounds);
}

void MonitorEngine::note_queue_depth(Shard& shard) {
  // Single-writer (the ingest thread), so a relaxed read-compare-store is
  // race-free; stats() only ever reads it.
  const std::size_t depth = shard.queue.size();
  if (depth > shard.queue_peak.load(std::memory_order_relaxed)) {
    shard.queue_peak.store(depth, std::memory_order_relaxed);
  }
}

bool MonitorEngine::ingest(const trace::WeblogRecord& record) {
  if (stopped_) return false;
  maybe_watermark(record.timestamp_s);

  Shard& shard = *shards_[router_.shard_of(record.subscriber_id)];
  shard.records_in.fetch_add(1, std::memory_order_relaxed);

  Item item;
  item.kind = Item::Kind::record;
  item.record = record;
  if (config_.backpressure == BackpressurePolicy::Block) {
    push_blocking(shard, std::move(item));
    note_queue_depth(shard);
    return true;
  }
  if (shard.queue.try_push(std::move(item))) {
    note_queue_depth(shard);
    return true;
  }
  shard.dropped.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void MonitorEngine::maybe_watermark(double now_s) {
  if (config_.watermark_interval_s <= 0.0) return;
  if (!saw_record_) {
    saw_record_ = true;
    last_watermark_s_ = now_s;
    return;
  }
  if (now_s - last_watermark_s_ < config_.watermark_interval_s) return;
  last_watermark_s_ = now_s;
  // The stream is globally time-sorted, so `now_s` lower-bounds every
  // future record: broadcasting it cannot close a session a later record
  // would still extend (advance_to uses a strict idle-gap comparison).
  for (auto& shard : shards_) {
    Item tick;
    tick.kind = Item::Kind::watermark;
    tick.watermark_s = now_s;
    if (config_.backpressure == BackpressurePolicy::Block) {
      push_blocking(*shard, std::move(tick));
    } else {
      // Advisory under DropNewest: a full shard is not idle anyway.
      (void)shard->queue.try_push(std::move(tick));
    }
  }
}

void MonitorEngine::advance_to(double now_s) {
  if (stopped_) return;
  for (auto& shard : shards_) {
    Item tick;
    tick.kind = Item::Kind::watermark;
    tick.watermark_s = now_s;
    push_blocking(*shard, std::move(tick));
  }
}

void MonitorEngine::publish(Shard& shard,
                            std::vector<core::CompletedSession>&& done) {
  auto verdicts = shard.monitor.take_verdicts();
  if (!done.empty() || !verdicts.empty()) {
    const std::lock_guard<std::mutex> lock(shard.out_mutex);
    shard.out.insert(shard.out.end(), std::make_move_iterator(done.begin()),
                     std::make_move_iterator(done.end()));
    shard.out_verdicts.insert(shard.out_verdicts.end(),
                              std::make_move_iterator(verdicts.begin()),
                              std::make_move_iterator(verdicts.end()));
  }
  shard.sessions_reported.store(shard.monitor.sessions_reported(),
                                std::memory_order_relaxed);
  shard.sessions_discarded.store(shard.monitor.sessions_discarded(),
                                 std::memory_order_relaxed);
  shard.windows_emitted.store(shard.monitor.windows_closed(),
                              std::memory_order_relaxed);
  shard.verdicts_emitted.store(shard.monitor.verdicts_emitted(),
                               std::memory_order_relaxed);
}

void MonitorEngine::worker_loop(Shard& shard) {
  using clock = std::chrono::steady_clock;
  Item item;
  std::size_t idle_rounds = 0;
  for (;;) {
    if (!shard.queue.try_pop(item)) {
      backoff(idle_rounds);
      continue;
    }
    idle_rounds = 0;
    switch (item.kind) {
      case Item::Kind::record: {
        const auto t0 = clock::now();
        auto done = shard.monitor.ingest(item.record);
        const auto t1 = clock::now();
        shard.ingest_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()),
            std::memory_order_relaxed);
        shard.records_out.fetch_add(1, std::memory_order_relaxed);
        publish(shard, std::move(done));
        break;
      }
      case Item::Kind::watermark:
        publish(shard, shard.monitor.advance_to(item.watermark_s));
        break;
      case Item::Kind::stop:
        publish(shard, shard.monitor.flush());
        return;
    }
  }
}

std::vector<core::CompletedSession> MonitorEngine::harvest() {
  std::vector<core::CompletedSession> all;
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->out_mutex);
    all.insert(all.end(), std::make_move_iterator(shard->out.begin()),
               std::make_move_iterator(shard->out.end()));
    shard->out.clear();
  }
  return all;
}

std::vector<window::WindowVerdict> MonitorEngine::harvest_verdicts() {
  std::vector<window::WindowVerdict> all;
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->out_mutex);
    all.insert(all.end(), std::make_move_iterator(shard->out_verdicts.begin()),
               std::make_move_iterator(shard->out_verdicts.end()));
    shard->out_verdicts.clear();
  }
  return all;
}

void MonitorEngine::stop_workers() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) {
    Item stop;
    stop.kind = Item::Kind::stop;
    push_blocking(*shard, std::move(stop));
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::vector<core::CompletedSession> MonitorEngine::drain() {
  stop_workers();
  return harvest();
}

EngineStats MonitorEngine::stats() const {
  EngineStats total;
  total.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.records_in = shard->records_in.load(std::memory_order_relaxed);
    s.records_out = shard->records_out.load(std::memory_order_relaxed);
    s.dropped = shard->dropped.load(std::memory_order_relaxed);
    s.sessions_reported =
        shard->sessions_reported.load(std::memory_order_relaxed);
    s.sessions_discarded =
        shard->sessions_discarded.load(std::memory_order_relaxed);
    s.windows_emitted = shard->windows_emitted.load(std::memory_order_relaxed);
    s.verdicts_emitted =
        shard->verdicts_emitted.load(std::memory_order_relaxed);
    s.ingest_ns = shard->ingest_ns.load(std::memory_order_relaxed);
    s.queue_depth = shard->queue.size();
    s.queue_peak = shard->queue_peak.load(std::memory_order_relaxed);
    total.records_in += s.records_in;
    total.records_out += s.records_out;
    total.dropped += s.dropped;
    total.sessions_reported += s.sessions_reported;
    total.sessions_discarded += s.sessions_discarded;
    total.windows_emitted += s.windows_emitted;
    total.verdicts_emitted += s.verdicts_emitted;
    total.shards.push_back(s);
  }
  return total;
}

}  // namespace vqoe::engine

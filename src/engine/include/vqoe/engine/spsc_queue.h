// Bounded single-producer / single-consumer ring queue.
//
// The engine's per-shard ingest channel: the router thread pushes, exactly
// one shard worker pops. Correctness rests on the classic SPSC protocol —
// the producer owns `tail_`, the consumer owns `head_`, and each side
// publishes its index with a release store that the other side reads with
// an acquire load. Each index (and each side's cached copy of the opposite
// index) lives on its own cache line so the two threads do not false-share.
//
// Capacity is rounded up to a power of two so slot addressing is a mask,
// and indices are free-running (they wrap the full size_t range; the
// difference `tail - head` is the occupancy even across wraparound).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace vqoe::engine {

/// Cache-line size used for index padding. 64 bytes covers x86-64 and most
/// AArch64 parts; over-alignment is harmless where the line is smaller.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscQueue {
 public:
  /// @param min_capacity smallest acceptable capacity; rounded up to a
  ///        power of two (and to at least 2).
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t capacity = 2;
    while (capacity < min_capacity) capacity <<= 1;
    slots_.resize(capacity);
    mask_ = capacity - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false (value untouched) when the queue is full.
  [[nodiscard]] bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false (out untouched) when the queue is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy — racy by construction, for stats/monitoring
  /// only (either side may move between the two loads).
  [[nodiscard]] std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Consumer-owned index + its cached view of the producer index.
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineBytes) std::size_t tail_cache_ = 0;
  /// Producer-owned index + its cached view of the consumer index.
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLineBytes) std::size_t head_cache_ = 0;
};

}  // namespace vqoe::engine

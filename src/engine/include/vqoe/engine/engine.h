// Sharded multi-threaded real-time QoE monitoring engine.
//
// Section 8 of the paper puts the trained models on an operator's passive
// monitoring path, reporting issues in real time. core::OnlineMonitor is
// the single-threaded unit of that deployment; MonitorEngine scales it to
// the multi-gigabit ingest a large subscriber base produces by running N
// monitor shards behind one ingest API:
//
//   * records are hash-partitioned by subscriber id (ShardRouter), so each
//     subscriber's records stay in arrival order on one shard while shards
//     run independently — the per-subscriber ordering invariant the
//     monitor requires is preserved by construction;
//   * each shard owns a bounded SPSC ring (spsc_queue.h) fed by the ingest
//     thread and drained by a dedicated worker into the shard's
//     OnlineMonitor; completed sessions — and, with windowing enabled
//     (config.monitor.window), the live mid-session WindowVerdict stream —
//     accumulate in per-shard output buffers the caller harvests at its own
//     pace (harvest() / harvest_verdicts());
//   * a watermark clock rides the ingest stream: because the feed is
//     globally time-sorted, the last ingested timestamp lower-bounds every
//     future record, and broadcasting it as advance_to() ticks lets idle
//     shards close gapped sessions without waiting for their own traffic;
//   * backpressure is explicit: Block stalls the ingest thread until the
//     shard queue has space, DropNewest sheds the incoming record and
//     counts it in the shard's drop counter.
//
// Determinism: with the Block policy, the multiset of CompletedSession
// reports equals what a single sequential OnlineMonitor emits over the
// same records — a tested invariant (tests/engine/engine_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "vqoe/core/online.h"
#include "vqoe/engine/spsc_queue.h"

namespace vqoe::engine {

/// What ingest() does when a shard's queue is full.
enum class BackpressurePolicy : std::uint8_t {
  Block,       ///< wait for the worker to free a slot (lossless)
  DropNewest,  ///< discard the incoming record, counting the drop
};

struct EngineConfig {
  /// Number of monitor shards (= worker threads). 0 is clamped to 1.
  std::size_t shards = 4;
  /// Per-shard queue capacity (rounded up to a power of two).
  std::size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  /// Stream-time between automatic watermark broadcasts; <= 0 disables the
  /// clock (sessions then close only on same-shard traffic or drain()).
  double watermark_interval_s = 5.0;
  /// Configuration applied to every shard's OnlineMonitor.
  core::OnlineMonitorConfig monitor;
};

/// Per-shard counters. Snapshot values; the engine keeps running while you
/// read them.
struct ShardStats {
  std::uint64_t records_in = 0;       ///< routed to this shard (incl. dropped)
  std::uint64_t records_out = 0;      ///< ingested by the shard's monitor
  std::uint64_t dropped = 0;          ///< shed under DropNewest
  std::uint64_t sessions_reported = 0;
  std::uint64_t sessions_discarded = 0;
  std::uint64_t windows_emitted = 0;   ///< chunk-bearing windows closed
  std::uint64_t verdicts_emitted = 0;  ///< windows scored into a WindowVerdict
  std::uint64_t ingest_ns = 0;        ///< worker time spent inside the monitor
  std::size_t queue_depth = 0;        ///< approximate current occupancy
  /// High-watermark occupancy observed by the ingest thread: how close the
  /// shard came to its capacity (= to blocking or shedding). A peak at the
  /// queue capacity means backpressure actually engaged.
  std::size_t queue_peak = 0;
};

/// Engine-wide snapshot: totals plus the per-shard breakdown.
struct EngineStats {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sessions_reported = 0;
  std::uint64_t sessions_discarded = 0;
  std::uint64_t windows_emitted = 0;
  std::uint64_t verdicts_emitted = 0;
  std::vector<ShardStats> shards;
};

/// Stable hash partitioning of subscribers onto shards (FNV-1a, so the
/// mapping does not depend on the standard library's std::hash).
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards) : shards_(shards ? shards : 1) {}

  [[nodiscard]] std::size_t shard_of(std::string_view subscriber) const {
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : subscriber) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h % shards_);
  }

  [[nodiscard]] std::size_t shards() const { return shards_; }

 private:
  std::size_t shards_;
};

/// N OnlineMonitor shards behind one ingest API. The ingest-side methods
/// (ingest, advance_to, drain) must be called from one thread at a time;
/// harvest() and stats() may be called concurrently from any thread.
class MonitorEngine {
 public:
  /// @param pipeline trained detectors; borrowed, must outlive the engine.
  explicit MonitorEngine(const core::QoePipeline& pipeline,
                         EngineConfig config = {});
  ~MonitorEngine();

  MonitorEngine(const MonitorEngine&) = delete;
  MonitorEngine& operator=(const MonitorEngine&) = delete;

  /// Routes one record to its subscriber's shard. Records must arrive in
  /// non-decreasing timestamp order. Returns false when the record was
  /// shed (DropNewest with a full queue) or the engine is already drained.
  bool ingest(const trace::WeblogRecord& record);

  /// Broadcasts a watermark tick to every shard: sessions idle past the
  /// gap at `now_s` close without further traffic. Never sheds the tick.
  void advance_to(double now_s);

  /// Takes every session completed so far. Non-blocking; call at any pace.
  [[nodiscard]] std::vector<core::CompletedSession> harvest();

  /// Takes every window verdict emitted so far — the live mid-session
  /// stream when config.monitor.window is enabled (always empty otherwise).
  /// Non-blocking, any thread, any pace; per-subscriber verdict order is
  /// preserved (a subscriber lives on exactly one shard).
  [[nodiscard]] std::vector<window::WindowVerdict> harvest_verdicts();

  /// End of stream: drains all queues, flushes every shard's open
  /// sessions, joins the workers, and returns the remaining completed
  /// sessions (everything not already harvested). The engine accepts no
  /// records afterwards.
  std::vector<core::CompletedSession> drain();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const ShardRouter& router() const { return router_; }

 private:
  struct Item {
    enum class Kind : std::uint8_t { record, watermark, stop };
    Kind kind = Kind::record;
    double watermark_s = 0.0;
    trace::WeblogRecord record;
  };

  struct Shard {
    Shard(const core::QoePipeline& pipeline,
          const core::OnlineMonitorConfig& monitor_config,
          std::size_t queue_capacity)
        : queue(queue_capacity), monitor(pipeline, monitor_config) {}

    SpscQueue<Item> queue;
    core::OnlineMonitor monitor;  ///< touched by the worker thread only

    std::mutex out_mutex;
    std::vector<core::CompletedSession> out;
    std::vector<window::WindowVerdict> out_verdicts;

    std::atomic<std::uint64_t> records_in{0};
    std::atomic<std::uint64_t> records_out{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> sessions_reported{0};
    std::atomic<std::uint64_t> sessions_discarded{0};
    std::atomic<std::uint64_t> windows_emitted{0};
    std::atomic<std::uint64_t> verdicts_emitted{0};
    std::atomic<std::uint64_t> ingest_ns{0};
    std::atomic<std::size_t> queue_peak{0};  ///< written by the ingest thread

    std::thread worker;
  };

  void worker_loop(Shard& shard);
  void publish(Shard& shard, std::vector<core::CompletedSession>&& done);
  static void push_blocking(Shard& shard, Item&& item);
  static void note_queue_depth(Shard& shard);
  void maybe_watermark(double now_s);
  void stop_workers();

  EngineConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool saw_record_ = false;
  double last_watermark_s_ = 0.0;
  bool stopped_ = false;
};

}  // namespace vqoe::engine

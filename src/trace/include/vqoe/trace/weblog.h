// Proxy weblog records — the operator's view of video traffic.
//
// Section 3.1: the web proxy registers every HTTP transaction with IP-port
// tuples, URIs, object sizes, transaction times and request timestamps, each
// annotated with transport-layer metrics (RTT min/avg/max, BDP,
// bytes-in-flight, loss, retransmissions). For cleartext sessions the URI
// carries metadata (session ID, itag resolution, content type, playback
// reports); for encrypted sessions only the transport view and the server
// identity survive (Section 5.2).
//
// This header defines that record, the conversion from a simulated
// sim::SessionResult into the records a proxy would log (media chunks, the
// page-load objects to m.youtube.com / i.ytimg.com that bracket a session,
// and periodic playback statistics reports), and the encryption transform
// that strips everything an operator loses under TLS.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "vqoe/net/tcp.h"
#include "vqoe/sim/player.h"

namespace vqoe::trace {

/// HTTP transaction categories a YouTube session generates.
enum class RecordKind : std::uint8_t {
  media,            ///< video/audio segment download (googlevideo.com)
  page_object,      ///< watch-page HTML/scripts/thumbnails (m.youtube.com, i.ytimg.com)
  playback_report,  ///< periodic player statistics beacon
};

/// One proxy log line.
struct WeblogRecord {
  std::string subscriber_id;
  double timestamp_s = 0.0;        ///< absolute request time
  double transaction_time_s = 0.0; ///< request -> last byte
  std::uint64_t object_size_bytes = 0;
  std::string host;
  RecordKind kind = RecordKind::media;
  bool encrypted = false;
  bool served_from_cache = false;  ///< proxy cache hit (dropped in data prep)
  net::TransportStats transport;

  // --- URI metadata, cleartext only (cleared by encrypt_view) ---
  std::string session_id;  ///< 16-char per-session hash ("cpn" parameter)
  int itag_height = 0;     ///< segment resolution from the itag; 0 if n/a
  bool is_audio = false;
  int report_stall_count = 0;           ///< playback_report payload
  double report_stall_duration_s = 0.0; ///< playback_report payload

  /// Arrival time of the object's last byte ("chunk time", Section 3.1).
  [[nodiscard]] double arrival_time_s() const {
    return timestamp_s + transaction_time_s;
  }
};

/// Per-session ground truth as the instrumented client of Section 5.1
/// records it (and as URI metadata encodes it for cleartext sessions).
struct SessionGroundTruth {
  std::string session_id;
  std::string subscriber_id;
  double start_time_s = 0.0;
  double total_duration_s = 0.0;
  double startup_delay_s = 0.0;  ///< request -> playback start (initial delay)
  bool adaptive = true;
  bool abandoned = false;
  std::size_t media_chunk_count = 0;
  int stall_count = 0;
  double stall_duration_s = 0.0;
  double rebuffering_ratio = 0.0;
  double average_height = 0.0;
  std::size_t switch_count = 0;
  double switch_amplitude = 0.0;
};

/// Generates a YouTube-style 16-character alphanumeric session ID.
[[nodiscard]] std::string make_session_id(std::mt19937_64& rng);

/// Options for rendering a simulated session into proxy logs.
struct WeblogOptions {
  std::string subscriber_id = "sub-0";
  std::string session_id;        ///< empty: generated
  double start_time_s = 0.0;     ///< absolute time of the first page request
  double report_interval_s = 20; ///< playback statistics beacon period
  int page_objects = 4;          ///< watch-page objects before the media
  double cache_hit_rate = 0.0;   ///< fraction of page objects served from cache
  /// Service host names (YouTube defaults; other services override —
  /// workload::ServiceTraits carries a matching set).
  std::string cdn_host = "r3---sn-h5q7dne7.googlevideo.com";
  std::string page_host = "m.youtube.com";
  std::string thumbnail_host = "i.ytimg.com";
  std::string report_host = "www.youtube.com";
};

/// Renders one simulated session into the full set of proxy records:
/// page-load objects, media chunks (with ground-truth URI metadata) and
/// playback reports. Records are sorted by timestamp. Also returns the
/// session's ground truth.
struct RenderedSession {
  std::vector<WeblogRecord> records;
  SessionGroundTruth truth;
};
[[nodiscard]] RenderedSession to_weblogs(const sim::SessionResult& session,
                                         const WeblogOptions& options,
                                         std::mt19937_64& rng);

/// The TLS transform: marks records encrypted and clears every URI-derived
/// field (session ID, itag, content type, report payloads). Transport
/// metrics, sizes and timing survive — exactly the paper's encrypted view.
[[nodiscard]] std::vector<WeblogRecord> encrypt_view(std::vector<WeblogRecord> records);

/// Data preparation (Section 3.3): drops records served from the proxy
/// cache; they do not reflect end-to-end delivery.
[[nodiscard]] std::vector<WeblogRecord> remove_cached(std::vector<WeblogRecord> records);

/// Groups *cleartext* media records by their URI session ID — the paper's
/// grouping step for the training corpus. Non-media and encrypted records
/// are ignored. Chunks within each group are sorted by timestamp.
[[nodiscard]] std::map<std::string, std::vector<WeblogRecord>> group_by_session_id(
    const std::vector<WeblogRecord>& records);

}  // namespace vqoe::trace

// CSV persistence for weblogs and ground truth.
//
// The operator deployment separates collection from analysis: the proxy
// writes logs continuously, models are trained offline. These helpers store
// and reload the two artifacts (weblog records and per-session ground
// truth) in a simple headered CSV format so the example programs and the
// bench harnesses can hand datasets across process boundaries.
#pragma once

#include <filesystem>
#include <vector>

#include "vqoe/trace/weblog.h"

namespace vqoe::trace {

/// Writes records as CSV (header + one line per record). Throws
/// std::runtime_error when the file cannot be opened.
void write_weblogs_csv(const std::filesystem::path& path,
                       const std::vector<WeblogRecord>& records);

/// Reads records written by write_weblogs_csv. Throws std::runtime_error on
/// open failure or malformed rows.
[[nodiscard]] std::vector<WeblogRecord> read_weblogs_csv(
    const std::filesystem::path& path);

/// Writes per-session ground truth as CSV.
void write_ground_truth_csv(const std::filesystem::path& path,
                            const std::vector<SessionGroundTruth>& truths);

/// Reads ground truth written by write_ground_truth_csv.
[[nodiscard]] std::vector<SessionGroundTruth> read_ground_truth_csv(
    const std::filesystem::path& path);

}  // namespace vqoe::trace

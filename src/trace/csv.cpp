#include "vqoe/trace/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vqoe::trace {

namespace {

std::vector<std::string> split(const std::string& line, char sep = ',') {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is{line};
  while (std::getline(is, field, sep)) out.push_back(field);
  return out;
}

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"cannot open for writing: " + path.string()};
  os.precision(10);
  return os;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{"cannot open for reading: " + path.string()};
  return is;
}

constexpr int kWeblogFields = 19;
constexpr int kTruthFields = 14;

}  // namespace

void write_weblogs_csv(const std::filesystem::path& path,
                       const std::vector<WeblogRecord>& records) {
  auto os = open_out(path);
  os << "subscriber,timestamp_s,transaction_time_s,size_bytes,host,kind,"
        "encrypted,cached,rtt_min_ms,rtt_avg_ms,rtt_max_ms,bdp_bytes,"
        "bif_avg_bytes,bif_max_bytes,loss_pct,retrans_pct,session_id,"
        "itag_height,is_audio\n";
  for (const WeblogRecord& r : records) {
    os << r.subscriber_id << ',' << r.timestamp_s << ',' << r.transaction_time_s
       << ',' << r.object_size_bytes << ',' << r.host << ','
       << static_cast<int>(r.kind) << ',' << (r.encrypted ? 1 : 0) << ','
       << (r.served_from_cache ? 1 : 0) << ',' << r.transport.rtt_min_ms << ','
       << r.transport.rtt_avg_ms << ',' << r.transport.rtt_max_ms << ','
       << r.transport.bdp_bytes << ',' << r.transport.bif_avg_bytes << ','
       << r.transport.bif_max_bytes << ',' << r.transport.loss_pct << ','
       << r.transport.retrans_pct << ',' << r.session_id << ','
       << r.itag_height << ',' << (r.is_audio ? 1 : 0) << '\n';
  }
}

std::vector<WeblogRecord> read_weblogs_csv(const std::filesystem::path& path) {
  auto is = open_in(path);
  std::string line;
  std::getline(is, line);  // header
  std::vector<WeblogRecord> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line);
    if (f.size() != kWeblogFields) {
      throw std::runtime_error{"malformed weblog CSV row: " + line};
    }
    WeblogRecord r;
    r.subscriber_id = f[0];
    r.timestamp_s = std::stod(f[1]);
    r.transaction_time_s = std::stod(f[2]);
    r.object_size_bytes = std::stoull(f[3]);
    r.host = f[4];
    r.kind = static_cast<RecordKind>(std::stoi(f[5]));
    r.encrypted = f[6] == "1";
    r.served_from_cache = f[7] == "1";
    r.transport.rtt_min_ms = std::stod(f[8]);
    r.transport.rtt_avg_ms = std::stod(f[9]);
    r.transport.rtt_max_ms = std::stod(f[10]);
    r.transport.bdp_bytes = std::stod(f[11]);
    r.transport.bif_avg_bytes = std::stod(f[12]);
    r.transport.bif_max_bytes = std::stod(f[13]);
    r.transport.loss_pct = std::stod(f[14]);
    r.transport.retrans_pct = std::stod(f[15]);
    r.session_id = f[16];
    r.itag_height = std::stoi(f[17]);
    r.is_audio = f[18] == "1";
    out.push_back(std::move(r));
  }
  return out;
}

void write_ground_truth_csv(const std::filesystem::path& path,
                            const std::vector<SessionGroundTruth>& truths) {
  auto os = open_out(path);
  os << "session_id,subscriber,start_time_s,total_duration_s,adaptive,"
        "abandoned,media_chunks,stall_count,stall_duration_s,"
        "rebuffering_ratio,average_height,switch_count,switch_amplitude,"
        "startup_delay_s\n";
  for (const SessionGroundTruth& t : truths) {
    os << t.session_id << ',' << t.subscriber_id << ',' << t.start_time_s << ','
       << t.total_duration_s << ',' << (t.adaptive ? 1 : 0) << ','
       << (t.abandoned ? 1 : 0) << ',' << t.media_chunk_count << ','
       << t.stall_count << ',' << t.stall_duration_s << ','
       << t.rebuffering_ratio << ',' << t.average_height << ','
       << t.switch_count << ',' << t.switch_amplitude << ','
       << t.startup_delay_s << '\n';
  }
}

std::vector<SessionGroundTruth> read_ground_truth_csv(
    const std::filesystem::path& path) {
  auto is = open_in(path);
  std::string line;
  std::getline(is, line);  // header
  std::vector<SessionGroundTruth> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line);
    if (f.size() != kTruthFields) {
      throw std::runtime_error{"malformed ground-truth CSV row: " + line};
    }
    SessionGroundTruth t;
    t.session_id = f[0];
    t.subscriber_id = f[1];
    t.start_time_s = std::stod(f[2]);
    t.total_duration_s = std::stod(f[3]);
    t.adaptive = f[4] == "1";
    t.abandoned = f[5] == "1";
    t.media_chunk_count = std::stoull(f[6]);
    t.stall_count = std::stoi(f[7]);
    t.stall_duration_s = std::stod(f[8]);
    t.rebuffering_ratio = std::stod(f[9]);
    t.average_height = std::stod(f[10]);
    t.switch_count = static_cast<std::size_t>(std::stoull(f[11]));
    t.switch_amplitude = std::stod(f[12]);
    t.startup_delay_s = std::stod(f[13]);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace vqoe::trace

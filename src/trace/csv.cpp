#include "vqoe/trace/csv.h"

#include <fstream>
#include <stdexcept>
#include <string>

namespace vqoe::trace {

namespace {

// RFC-4180 quoting. String fields come from the outside world (subscriber
// ids, hosts, session ids in real proxy logs), so a comma, quote or line
// break inside one must not shear the row: such fields are written quoted
// with embedded quotes doubled, and the reader parses quoted fields —
// including line breaks inside them — back to the original bytes.
// Fields that need no quoting are written bare, so generator output files
// are byte-identical to the pre-quoting format.

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\r\n") != std::string::npos;
}

void put_field(std::ostream& os, const std::string& field) {
  if (!needs_quoting(field)) {
    os << field;
    return;
  }
  os << '"';
  for (const char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

/// Reads one CSV row into `fields`, honouring quoted fields (which may
/// span physical lines). Returns false at a clean end of file. Throws on
/// a quote left open at EOF — that is a truncated file, not a row.
bool read_row(std::istream& is, std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int got;
  while ((got = is.get()) != std::char_traits<char>::eof()) {
    const char c = static_cast<char>(got);
    if (in_quotes) {
      if (c == '"') {
        if (is.peek() == '"') {
          field.push_back('"');
          is.get();
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      any = true;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      any = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      any = true;
    } else if (c == '\n') {
      break;
    } else if (c == '\r' && is.peek() == '\n') {
      is.get();  // CRLF row terminator
      break;
    } else {
      field.push_back(c);
      any = true;
    }
  }
  if (in_quotes) {
    throw std::runtime_error{"unterminated quoted CSV field at end of file"};
  }
  if (!any && got == std::char_traits<char>::eof()) return false;
  fields.push_back(std::move(field));
  return true;
}

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error{"cannot open for writing: " + path.string()};
  os.precision(10);
  return os;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream is{path};
  if (!is) throw std::runtime_error{"cannot open for reading: " + path.string()};
  return is;
}

constexpr int kWeblogFields = 19;
constexpr int kTruthFields = 14;

}  // namespace

void write_weblogs_csv(const std::filesystem::path& path,
                       const std::vector<WeblogRecord>& records) {
  auto os = open_out(path);
  os << "subscriber,timestamp_s,transaction_time_s,size_bytes,host,kind,"
        "encrypted,cached,rtt_min_ms,rtt_avg_ms,rtt_max_ms,bdp_bytes,"
        "bif_avg_bytes,bif_max_bytes,loss_pct,retrans_pct,session_id,"
        "itag_height,is_audio\n";
  for (const WeblogRecord& r : records) {
    put_field(os, r.subscriber_id);
    os << ',' << r.timestamp_s << ',' << r.transaction_time_s << ','
       << r.object_size_bytes << ',';
    put_field(os, r.host);
    os << ',' << static_cast<int>(r.kind) << ',' << (r.encrypted ? 1 : 0)
       << ',' << (r.served_from_cache ? 1 : 0) << ','
       << r.transport.rtt_min_ms << ',' << r.transport.rtt_avg_ms << ','
       << r.transport.rtt_max_ms << ',' << r.transport.bdp_bytes << ','
       << r.transport.bif_avg_bytes << ',' << r.transport.bif_max_bytes << ','
       << r.transport.loss_pct << ',' << r.transport.retrans_pct << ',';
    put_field(os, r.session_id);
    os << ',' << r.itag_height << ',' << (r.is_audio ? 1 : 0) << '\n';
  }
}

std::vector<WeblogRecord> read_weblogs_csv(const std::filesystem::path& path) {
  auto is = open_in(path);
  std::vector<std::string> f;
  read_row(is, f);  // header
  std::vector<WeblogRecord> out;
  while (read_row(is, f)) {
    if (f.size() == 1 && f[0].empty()) continue;  // blank line
    if (f.size() != kWeblogFields) {
      throw std::runtime_error{"malformed weblog CSV row: expected " +
                               std::to_string(kWeblogFields) +
                               " fields, got " + std::to_string(f.size())};
    }
    WeblogRecord r;
    r.subscriber_id = f[0];
    r.timestamp_s = std::stod(f[1]);
    r.transaction_time_s = std::stod(f[2]);
    r.object_size_bytes = std::stoull(f[3]);
    r.host = f[4];
    r.kind = static_cast<RecordKind>(std::stoi(f[5]));
    r.encrypted = f[6] == "1";
    r.served_from_cache = f[7] == "1";
    r.transport.rtt_min_ms = std::stod(f[8]);
    r.transport.rtt_avg_ms = std::stod(f[9]);
    r.transport.rtt_max_ms = std::stod(f[10]);
    r.transport.bdp_bytes = std::stod(f[11]);
    r.transport.bif_avg_bytes = std::stod(f[12]);
    r.transport.bif_max_bytes = std::stod(f[13]);
    r.transport.loss_pct = std::stod(f[14]);
    r.transport.retrans_pct = std::stod(f[15]);
    r.session_id = f[16];
    r.itag_height = std::stoi(f[17]);
    r.is_audio = f[18] == "1";
    out.push_back(std::move(r));
  }
  return out;
}

void write_ground_truth_csv(const std::filesystem::path& path,
                            const std::vector<SessionGroundTruth>& truths) {
  auto os = open_out(path);
  os << "session_id,subscriber,start_time_s,total_duration_s,adaptive,"
        "abandoned,media_chunks,stall_count,stall_duration_s,"
        "rebuffering_ratio,average_height,switch_count,switch_amplitude,"
        "startup_delay_s\n";
  for (const SessionGroundTruth& t : truths) {
    put_field(os, t.session_id);
    os << ',';
    put_field(os, t.subscriber_id);
    os << ',' << t.start_time_s << ','
       << t.total_duration_s << ',' << (t.adaptive ? 1 : 0) << ','
       << (t.abandoned ? 1 : 0) << ',' << t.media_chunk_count << ','
       << t.stall_count << ',' << t.stall_duration_s << ','
       << t.rebuffering_ratio << ',' << t.average_height << ','
       << t.switch_count << ',' << t.switch_amplitude << ','
       << t.startup_delay_s << '\n';
  }
}

std::vector<SessionGroundTruth> read_ground_truth_csv(
    const std::filesystem::path& path) {
  auto is = open_in(path);
  std::vector<std::string> f;
  read_row(is, f);  // header
  std::vector<SessionGroundTruth> out;
  while (read_row(is, f)) {
    if (f.size() == 1 && f[0].empty()) continue;  // blank line
    if (f.size() != kTruthFields) {
      throw std::runtime_error{"malformed ground-truth CSV row: expected " +
                               std::to_string(kTruthFields) +
                               " fields, got " + std::to_string(f.size())};
    }
    SessionGroundTruth t;
    t.session_id = f[0];
    t.subscriber_id = f[1];
    t.start_time_s = std::stod(f[2]);
    t.total_duration_s = std::stod(f[3]);
    t.adaptive = f[4] == "1";
    t.abandoned = f[5] == "1";
    t.media_chunk_count = std::stoull(f[6]);
    t.stall_count = std::stoi(f[7]);
    t.stall_duration_s = std::stod(f[8]);
    t.rebuffering_ratio = std::stod(f[9]);
    t.average_height = std::stod(f[10]);
    t.switch_count = static_cast<std::size_t>(std::stoull(f[11]));
    t.switch_amplitude = std::stod(f[12]);
    t.startup_delay_s = std::stod(f[13]);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace vqoe::trace

#include "vqoe/trace/weblog.h"

#include <algorithm>
#include <cmath>

#include "vqoe/sim/video.h"

namespace vqoe::trace {

std::string make_session_id(std::mt19937_64& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string id(16, '?');
  for (char& c : id) c = kAlphabet[pick(rng)];
  return id;
}

namespace {

// Transport annotations for the small signalling/page objects: they ride the
// same path as the media but are too small to exercise the window, so only
// RTT-level fields carry signal.
net::TransportStats small_object_stats(const net::TransportStats& reference,
                                       std::mt19937_64& rng) {
  std::uniform_real_distribution<double> jitter(0.9, 1.15);
  net::TransportStats s;
  s.rtt_min_ms = reference.rtt_min_ms * jitter(rng);
  s.rtt_avg_ms = std::max(s.rtt_min_ms, reference.rtt_avg_ms * jitter(rng));
  s.rtt_max_ms = std::max(s.rtt_avg_ms, reference.rtt_max_ms * jitter(rng));
  s.bdp_bytes = reference.bdp_bytes;
  s.bif_avg_bytes = net::TcpModel::kMssBytes;
  s.bif_max_bytes = 2 * net::TcpModel::kMssBytes;
  s.loss_pct = 0.0;
  s.retrans_pct = 0.0;
  return s;
}

}  // namespace

RenderedSession to_weblogs(const sim::SessionResult& session,
                           const WeblogOptions& options, std::mt19937_64& rng) {
  RenderedSession out;
  std::string session_id =
      options.session_id.empty() ? make_session_id(rng) : options.session_id;

  // Fallback transport reference when the session somehow has no chunks.
  net::TransportStats reference;
  reference.rtt_min_ms = reference.rtt_avg_ms = reference.rtt_max_ms = 60.0;
  reference.bdp_bytes = 30000.0;
  if (!session.chunks.empty()) reference = session.chunks.front().transport;

  // Watch-page objects shortly before the first media request.
  std::uniform_real_distribution<double> page_gap(0.08, 0.5);
  std::uniform_int_distribution<std::uint64_t> page_size(2'000, 180'000);
  std::bernoulli_distribution cached(options.cache_hit_rate);
  double page_t = options.start_time_s;
  for (int i = 0; i < options.page_objects; ++i) {
    WeblogRecord r;
    r.subscriber_id = options.subscriber_id;
    r.timestamp_s = page_t;
    r.transaction_time_s = reference.rtt_avg_ms / 1000.0 * 2.0;
    r.object_size_bytes = page_size(rng);
    r.host = i == 0 ? options.page_host : options.thumbnail_host;
    r.kind = RecordKind::page_object;
    r.served_from_cache = cached(rng);
    r.transport = small_object_stats(reference, rng);
    r.session_id = session_id;
    out.records.push_back(std::move(r));
    page_t += page_gap(rng);
  }

  const double media_base = page_t + page_gap(rng);

  // Media chunks.
  for (const sim::ChunkEvent& c : session.chunks) {
    WeblogRecord r;
    r.subscriber_id = options.subscriber_id;
    r.timestamp_s = media_base + c.request_time_s;
    r.transaction_time_s = c.arrival_time_s - c.request_time_s;
    r.object_size_bytes = c.size_bytes;
    r.host = options.cdn_host;
    r.kind = RecordKind::media;
    r.transport = c.transport;
    r.session_id = session_id;
    r.itag_height = sim::height(c.resolution);
    r.is_audio = c.is_audio;
    out.records.push_back(std::move(r));
  }

  // Periodic playback statistics beacons, each summarizing the stalls since
  // the previous report, plus a final report at session end.
  double reported_until = 0.0;
  auto stall_in_window = [&](double from, double to) {
    int count = 0;
    double duration = 0.0;
    for (const sim::StallEvent& s : session.stalls) {
      if (s.start_s >= from && s.start_s < to) {
        ++count;
        duration += s.duration_s;
      }
    }
    return std::pair{count, duration};
  };
  for (double t = options.report_interval_s; t < session.total_duration_s;
       t += options.report_interval_s) {
    const auto [count, duration] = stall_in_window(reported_until, t);
    WeblogRecord r;
    r.subscriber_id = options.subscriber_id;
    r.timestamp_s = media_base + t;
    r.transaction_time_s = reference.rtt_avg_ms / 1000.0;
    r.object_size_bytes = 900;
    r.host = options.report_host;  // /api/stats/watchtime
    r.kind = RecordKind::playback_report;
    r.transport = small_object_stats(reference, rng);
    r.session_id = session_id;
    r.report_stall_count = count;
    r.report_stall_duration_s = duration;
    out.records.push_back(std::move(r));
    reported_until = t;
  }
  {
    const auto [count, duration] =
        stall_in_window(reported_until, session.total_duration_s + 1.0);
    WeblogRecord r;
    r.subscriber_id = options.subscriber_id;
    r.timestamp_s = media_base + session.total_duration_s;
    r.transaction_time_s = reference.rtt_avg_ms / 1000.0;
    r.object_size_bytes = 900;
    r.host = options.report_host;
    r.kind = RecordKind::playback_report;
    r.transport = small_object_stats(reference, rng);
    r.session_id = session_id;
    r.report_stall_count = count;
    r.report_stall_duration_s = duration;
    out.records.push_back(std::move(r));
  }

  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const WeblogRecord& a, const WeblogRecord& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });

  SessionGroundTruth& truth = out.truth;
  truth.session_id = session_id;
  truth.subscriber_id = options.subscriber_id;
  truth.start_time_s = media_base;
  truth.total_duration_s = session.total_duration_s;
  truth.startup_delay_s = session.startup_delay_s;
  truth.adaptive = session.adaptive;
  truth.abandoned = session.abandoned;
  truth.media_chunk_count = session.chunks.size();
  truth.stall_count = static_cast<int>(session.stalls.size());
  truth.stall_duration_s = session.stall_total_s();
  truth.rebuffering_ratio = session.rebuffering_ratio();
  truth.average_height = session.average_height();
  truth.switch_count = session.switch_count();
  truth.switch_amplitude = session.switch_amplitude();
  return out;
}

std::vector<WeblogRecord> encrypt_view(std::vector<WeblogRecord> records) {
  for (WeblogRecord& r : records) {
    r.encrypted = true;
    r.session_id.clear();
    r.itag_height = 0;
    r.is_audio = false;
    r.report_stall_count = 0;
    r.report_stall_duration_s = 0.0;
    // TLS hides the URL path; SNI/DNS still reveal the host, which the
    // session reconstruction of Section 5.2 relies on.
  }
  return records;
}

std::vector<WeblogRecord> remove_cached(std::vector<WeblogRecord> records) {
  std::erase_if(records,
                [](const WeblogRecord& r) { return r.served_from_cache; });
  return records;
}

std::map<std::string, std::vector<WeblogRecord>> group_by_session_id(
    const std::vector<WeblogRecord>& records) {
  std::map<std::string, std::vector<WeblogRecord>> groups;
  for (const WeblogRecord& r : records) {
    if (r.kind != RecordKind::media || r.encrypted || r.session_id.empty()) {
      continue;
    }
    groups[r.session_id].push_back(r);
  }
  for (auto& [id, chunks] : groups) {
    std::stable_sort(chunks.begin(), chunks.end(),
                     [](const WeblogRecord& a, const WeblogRecord& b) {
                       return a.timestamp_s < b.timestamp_s;
                     });
  }
  return groups;
}

}  // namespace vqoe::trace

#include "vqoe/workload/corpus.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>

#include "vqoe/net/channel.h"
#include "vqoe/par/parallel.h"
#include "vqoe/sim/video.h"
#include "vqoe/trace/csv.h"

namespace vqoe::workload {

namespace {

enum class Scenario : int {
  static_good,
  cell_fair,
  cell_congested,
  cell_poor,
  commute,
};

Scenario sample_scenario(const ScenarioMix& mix, std::mt19937_64& rng) {
  const std::array<double, 5> w{mix.static_good, mix.cell_fair,
                                mix.cell_congested, mix.cell_poor, mix.commute};
  std::discrete_distribution<int> pick(w.begin(), w.end());
  return static_cast<Scenario>(pick(rng));
}

std::unique_ptr<net::ChannelModel> make_scenario_channel(Scenario s,
                                                         std::uint64_t seed) {
  switch (s) {
    case Scenario::static_good:
      return net::make_channel(net::profile_static_good(), seed);
    case Scenario::cell_fair:
      return net::make_channel(net::profile_cell_fair(), seed);
    case Scenario::cell_congested:
      return net::make_channel(net::profile_cell_congested(), seed);
    case Scenario::cell_poor:
      return net::make_channel(net::profile_cell_poor(), seed);
    case Scenario::commute:
      return net::make_commute_channel(seed);
  }
  return net::make_channel(net::profile_cell_fair(), seed);
}

// Long-run mean bandwidth the user's player "knows" about its network —
// the hint behind the progressive quality pick.
double scenario_bandwidth_hint(Scenario s) {
  switch (s) {
    case Scenario::static_good:
      return net::profile_static_good().mean_bandwidth_bps;
    case Scenario::cell_fair:
      return net::profile_cell_fair().mean_bandwidth_bps;
    case Scenario::cell_congested:
      return net::profile_cell_congested().mean_bandwidth_bps;
    case Scenario::cell_poor:
      return net::profile_cell_poor().mean_bandwidth_bps;
    case Scenario::commute:
      return net::profile_cell_fair().mean_bandwidth_bps * 0.6;
  }
  return 2e6;
}

sim::Resolution sample_cap(const ResolutionCapMix& caps, std::mt19937_64& rng) {
  std::discrete_distribution<int> pick(std::begin(caps.weights),
                                       std::end(caps.weights));
  return static_cast<sim::Resolution>(pick(rng));
}

// Adjusts a sampled catalog item to the service's delivery parameters.
sim::VideoDescription apply_service(sim::VideoDescription video,
                                    const ServiceTraits& service) {
  video.segment_duration_s = service.segment_duration_s;
  video.audio_bitrate_bps = service.audio_bitrate_bps;
  for (sim::Representation& rep : video.ladder) {
    rep.bitrate_bps *= service.bitrate_scale;
  }
  return video;
}

sim::PlayerConfig make_player_config(const sim::VideoDescription& video,
                                     const ServiceTraits& service,
                                     sim::Resolution cap, double bandwidth_hint,
                                     std::mt19937_64& rng) {
  sim::PlayerConfig cfg;
  cfg.separate_audio = service.separate_audio;
  cfg.progressive_burst_media_s = service.progressive_burst_media_s;
  std::uniform_real_distribution<double> safety(0.72, 0.88);
  std::uniform_real_distribution<double> startup(3.0, 5.0);
  cfg.abr.safety_factor = safety(rng);
  cfg.abr.max_resolution = cap;
  // Warm starts: the player remembers recent throughput and begins at the
  // rung it expects to sustain; cold starts probe from the bottom. Warm
  // starts on stable channels are the paper's large no-switch population.
  std::bernoulli_distribution cold_start(0.25);
  if (cold_start(rng)) {
    std::bernoulli_distribution lowest(0.4);
    cfg.abr.initial = lowest(rng) ? sim::Resolution::p144 : sim::Resolution::p240;
  } else {
    std::uniform_real_distribution<double> memory(0.5, 1.0);
    const double budget = bandwidth_hint * memory(rng) * cfg.abr.safety_factor;
    cfg.abr.initial =
        std::min(video.best_under(budget).resolution, cfg.abr.max_resolution);
  }
  cfg.startup_buffer_s = startup(rng);
  cfg.resume_buffer_s = cfg.startup_buffer_s * 0.6;
  return cfg;
}

sim::Resolution pick_progressive_rep(const sim::VideoDescription& video,
                                     sim::Resolution cap, double bandwidth_hint,
                                     std::mt19937_64& rng) {
  std::uniform_real_distribution<double> optimism(0.45, 1.15);
  const double budget =
      std::min(sim::nominal_bitrate_bps(cap), bandwidth_hint * optimism(rng));
  sim::Resolution rep = video.best_under(budget).resolution;
  // Users occasionally force a higher quality than the network sustains —
  // the main source of severe stalling in progressive sessions.
  std::bernoulli_distribution override_up(0.18);
  if (override_up(rng) && rep < cap) {
    rep = static_cast<sim::Resolution>(static_cast<int>(rep) + 1);
  }
  return std::min(rep, cap);
}

// Everything a session needs before it can simulate, drawn up front so the
// simulation itself carries no dependence on its neighbours. The master
// stream contributes exactly two draws per session (subscriber, seed);
// every other decision comes from a per-session stream derived from the
// session seed, which is what lets sessions simulate concurrently while
// staying a pure function of the corpus seed.
struct SessionPlan {
  std::size_t subscriber = 0;
  Scenario scenario = Scenario::static_good;
  std::uint64_t session_seed = 0;
  sim::VideoDescription video;
  sim::Resolution cap = sim::Resolution::p360;
  sim::PlayerConfig player_cfg;
  bool adaptive = false;
  sim::Resolution progressive_rep = sim::Resolution::p360;
};

// Sub-stream indices of a session's seed (par::derive_seed second arg).
enum : std::uint64_t { kPlanStream = 0, kSimStream = 1, kEmitStream = 2 };

}  // namespace

Corpus generate_corpus(const CorpusOptions& options) {
  std::mt19937_64 rng{options.seed};
  sim::Catalog catalog{options.catalog_size, options.seed ^ 0xabcdef12345ULL};

  Corpus corpus;
  corpus.truths.reserve(options.sessions);
  if (options.keep_session_results) corpus.sessions.reserve(options.sessions);

  // Per-subscriber running clocks so a subscriber's sessions are sequential
  // with realistic idle gaps (the structure session reconstruction needs).
  std::vector<double> clock(options.subscribers);
  std::uniform_real_distribution<double> initial_offset(0.0, 120.0);
  for (double& c : clock) c = initial_offset(rng);

  std::uniform_int_distribution<std::size_t> pick_subscriber(
      0, options.subscribers - 1);

  // Phase 1 — plan every session sequentially (cheap draws only).
  std::vector<SessionPlan> plans(options.sessions);
  for (SessionPlan& plan : plans) {
    plan.subscriber = pick_subscriber(rng);
    plan.session_seed = rng();
    std::mt19937_64 prng{par::derive_seed(plan.session_seed, kPlanStream)};
    plan.scenario = sample_scenario(options.mix, prng);
    plan.video = apply_service(catalog.sample(prng), options.service);
    plan.cap = sample_cap(options.caps, prng);
    const double hint = scenario_bandwidth_hint(plan.scenario);
    plan.player_cfg =
        make_player_config(plan.video, options.service, plan.cap, hint, prng);
    plan.adaptive = std::bernoulli_distribution{options.adaptive_fraction}(prng);
    plan.progressive_rep =
        plan.adaptive ? plan.cap
                      : pick_progressive_rep(plan.video, plan.cap, hint, prng);
  }

  const auto simulate = [&options](const SessionPlan& plan) {
    auto channel = make_scenario_channel(plan.scenario, plan.session_seed);
    sim::SessionResult result;
    if (plan.adaptive) {
      const sim::HasPlayer player{plan.player_cfg};
      result = player.play(plan.video, *channel,
                           plan.session_seed ^ 0x5555aaaaULL);
    } else {
      const sim::ProgressivePlayer player{plan.player_cfg};
      result = player.play(plan.video, plan.progressive_rep, *channel,
                           plan.session_seed ^ 0x5555aaaaULL);
    }

    // Client-side stall injection: visible to the playback reports (and to
    // the instrumented handset of Section 5.1) but absent from the traffic.
    std::mt19937_64 srng{par::derive_seed(plan.session_seed, kSimStream)};
    std::bernoulli_distribution device_stall(options.device_stall_rate);
    if (device_stall(srng) && result.total_duration_s > 12.0) {
      std::lognormal_distribution<double> dur(std::log(2.0), 0.6);
      std::uniform_real_distribution<double> where(5.0,
                                                   result.total_duration_s - 5.0);
      sim::StallEvent extra;
      extra.duration_s = std::clamp(dur(srng), 0.5, 12.0);
      extra.start_s = where(srng);
      result.stalls.push_back(extra);
      std::sort(result.stalls.begin(), result.stalls.end(),
                [](const sim::StallEvent& a, const sim::StallEvent& b) {
                  return a.start_s < b.start_s;
                });
      result.total_duration_s += extra.duration_s;
    }
    return result;
  };

  // Phases 2+3, block-wise to bound the in-flight simulation results:
  // simulate a block concurrently (results land in per-session slots),
  // then render it to weblogs sequentially in session order — the
  // per-subscriber clock chain forces that order, and it also makes the
  // emitted corpus independent of the schedule. The block size only
  // batches work; results are identical for any value.
  constexpr std::size_t kBlock = 256;
  // A third of follow-up videos are binge clicks seconds after the previous
  // one ends — those boundaries are only recoverable from the watch-page
  // markers, not from idle gaps (the Section 5.2 ablation depends on this).
  std::bernoulli_distribution binge(0.35);
  std::uniform_real_distribution<double> binge_gap(3.0, 20.0);
  std::uniform_real_distribution<double> idle_gap(45.0, 600.0);

  std::vector<sim::SessionResult> results;
  for (std::size_t base = 0; base < plans.size(); base += kBlock) {
    const std::size_t limit = std::min(plans.size(), base + kBlock);
    results.assign(limit - base, {});
    par::parallel_for(base, limit, 4,
                      [&](std::size_t lo, std::size_t hi, std::size_t) {
                        for (std::size_t i = lo; i < hi; ++i) {
                          results[i - base] = simulate(plans[i]);
                        }
                      });

    for (std::size_t i = base; i < limit; ++i) {
      const SessionPlan& plan = plans[i];
      sim::SessionResult& result = results[i - base];
      std::mt19937_64 erng{par::derive_seed(plan.session_seed, kEmitStream)};

      trace::WeblogOptions wopt;
      wopt.subscriber_id = "sub-" + std::to_string(plan.subscriber);
      wopt.start_time_s = clock[plan.subscriber];
      wopt.cache_hit_rate = options.cache_hit_rate;
      wopt.cdn_host = options.service.cdn_host;
      wopt.page_host = options.service.page_host;
      wopt.thumbnail_host = options.service.thumbnail_host;
      wopt.report_host = options.service.report_host;
      auto rendered = trace::to_weblogs(result, wopt, erng);

      clock[plan.subscriber] = rendered.truth.start_time_s +
                               result.total_duration_s +
                               (binge(erng) ? binge_gap(erng) : idle_gap(erng));

      corpus.weblogs.insert(corpus.weblogs.end(),
                            std::make_move_iterator(rendered.records.begin()),
                            std::make_move_iterator(rendered.records.end()));
      corpus.truths.push_back(std::move(rendered.truth));
      if (options.keep_session_results) {
        corpus.sessions.push_back(std::move(result));
      }
    }
  }

  std::stable_sort(corpus.weblogs.begin(), corpus.weblogs.end(),
                   [](const trace::WeblogRecord& a, const trace::WeblogRecord& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });
  return corpus;
}

CorpusOptions cleartext_corpus_options(std::size_t sessions, std::uint64_t seed) {
  CorpusOptions o;
  o.sessions = sessions;
  o.seed = seed;
  o.adaptive_fraction = 0.03;
  o.subscribers = std::max<std::size_t>(8, sessions / 20);
  return o;
}

CorpusOptions has_corpus_options(std::size_t sessions, std::uint64_t seed) {
  CorpusOptions o = cleartext_corpus_options(sessions, seed);
  o.adaptive_fraction = 1.0;
  return o;
}

CorpusOptions encrypted_corpus_options(std::size_t sessions, std::uint64_t seed) {
  CorpusOptions o;
  o.sessions = sessions;
  o.seed = seed;
  o.adaptive_fraction = 1.0;  // stock app: DASH everywhere
  o.subscribers = 1;          // one instrumented handset
  // Commute-heavy mix: the user was told to launch videos while moving.
  // Most sessions are launched while static at home or the office
  // (Section 5.4's explanation for the improved healthy-class detection);
  // the commute share still dominates the stalled sessions.
  o.mix = {.static_good = 0.52,
           .cell_fair = 0.13,
           .cell_congested = 0.13,
           .cell_poor = 0.08,
           .commute = 0.14};
  // Newer device, fewer 144p-capped plays, still few HD (3G plan):
  // shifts the LD class toward 240p, Section 5.5's explanation for the
  // LD->SD confusion increase.
  o.caps = {.weights = {0.02, 0.34, 0.28, 0.24, 0.09, 0.03}};
  return o;
}

sim::SessionResult demo_stall_session(std::uint64_t seed) {
  auto profile = net::profile_cell_poor();
  profile.mean_bandwidth_bps = 0.42e6;
  auto channel = net::make_channel(profile, seed);
  sim::Catalog catalog{16, seed};
  std::mt19937_64 rng{seed};
  const auto& video = catalog.videos().front();
  sim::PlayerConfig cfg;
  const sim::ProgressivePlayer player{cfg};
  // 360p over a ~0.4 Mbit/s link: the buffer cannot keep up.
  return player.play(video, sim::Resolution::p360, *channel, rng());
}

sim::SessionResult demo_switch_session(std::uint64_t seed) {
  auto channel = net::make_channel(net::profile_cell_fair(), seed);
  sim::Catalog catalog{16, seed};
  std::mt19937_64 rng{seed};
  const auto& video = catalog.videos().front();
  sim::PlayerConfig cfg;
  cfg.abr.initial = sim::Resolution::p144;
  cfg.abr.max_resolution = sim::Resolution::p480;
  const sim::HasPlayer player{cfg};
  return player.play(video, *channel, rng());
}

}  // namespace vqoe::workload

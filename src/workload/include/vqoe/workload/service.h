// Streaming service profiles.
//
// Section 7 of the paper: "our analysis of other popular video streaming
// services such as Vevo, Vimeo, Dailymotion ... has revealed that they have
// adopted the same technologies that YouTube is using", and generalizing
// the methodology to them is named as future work. ServiceTraits
// parameterizes the delivery characteristics that differ across such
// services — segment length, ladder bitrates, audio handling, pacing and
// the host names an operator would see — so the generalization experiment
// (bench/sec7_generalization) can train on one service and evaluate on
// another.
#pragma once

#include <string>
#include <vector>

#include "vqoe/sim/player.h"

namespace vqoe::workload {

/// Delivery profile of one streaming service.
struct ServiceTraits {
  std::string name = "youtube";

  /// HAS media segment length (seconds of media per chunk).
  double segment_duration_s = 5.0;
  /// Multiplier applied to the standard bitrate ladder (services encode the
  /// same resolutions at different rates).
  double bitrate_scale = 1.0;
  double audio_bitrate_bps = 128e3;
  /// DASH separated audio streams instead of muxed segments.
  bool separate_audio = false;
  /// Progressive range-request burst, media seconds.
  double progressive_burst_media_s = 6.0;

  /// Host names the operator observes (SNI/DNS survive encryption).
  std::string cdn_host = "r3---sn-h5q7dne7.googlevideo.com";
  std::string page_host = "m.youtube.com";
  std::string thumbnail_host = "i.ytimg.com";
  std::string report_host = "www.youtube.com";

  /// Host classification inputs for session reconstruction.
  [[nodiscard]] std::vector<std::string> cdn_suffixes() const;
  [[nodiscard]] std::vector<std::string> page_marker_hosts() const;
  [[nodiscard]] std::vector<std::string> service_suffixes() const;
};

/// The paper's subject: YouTube as of the 2016 measurement window.
[[nodiscard]] ServiceTraits youtube_service();

/// A Vimeo-like profile: longer (6 s) segments, higher encode bitrates,
/// separated audio.
[[nodiscard]] ServiceTraits vimeo_like_service();

/// A Dailymotion-like profile: shorter (2 s) segments, leaner ladder.
[[nodiscard]] ServiceTraits dailymotion_like_service();

/// A Netflix-like profile: 4 s segments, aggressive bitrates, separate
/// audio, long progressive bursts (large device buffers).
[[nodiscard]] ServiceTraits netflix_like_service();

}  // namespace vqoe::workload

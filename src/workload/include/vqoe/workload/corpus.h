// Corpus generation: the two datasets of the paper.
//
// Section 3 trains on ~390k cleartext sessions from an operator proxy
// (97% traditional progressive streaming, 3% adaptive, a broad mix of
// static and mobile network conditions). Section 5.2 evaluates on 722
// encrypted sessions from one instrumented commuting handset (all adaptive,
// deliberately skewed toward degraded radio conditions). generate_corpus()
// produces either dataset at configurable scale from the simulator,
// emitting both the proxy weblogs (the operator view) and the per-session
// ground truth (the URI/instrumentation view).
#pragma once

#include <cstdint>
#include <vector>

#include "vqoe/net/profile.h"
#include "vqoe/sim/player.h"
#include "vqoe/trace/weblog.h"
#include "vqoe/workload/service.h"

namespace vqoe::workload {

/// Sampling weights of the channel regimes a session may run under.
/// Values are relative weights (normalized internally).
struct ScenarioMix {
  double static_good = 0.52;
  double cell_fair = 0.27;
  double cell_congested = 0.13;
  double cell_poor = 0.04;
  double commute = 0.04;
};

/// Relative weights of the per-user resolution cap (screen size, data-saver
/// settings). Index order: 144p, 240p, 360p, 480p, 720p, 1080p.
struct ResolutionCapMix {
  double weights[6] = {0.04, 0.315, 0.29, 0.29, 0.04, 0.015};
};

struct CorpusOptions {
  std::size_t sessions = 4000;
  std::uint64_t seed = 42;
  /// Fraction of sessions using HTTP Adaptive Streaming (the cleartext
  /// corpus has ~3% HAS; the encrypted stock-app corpus is 100%).
  double adaptive_fraction = 0.03;
  std::size_t subscribers = 200;
  std::size_t catalog_size = 600;
  ScenarioMix mix;
  ResolutionCapMix caps;
  double cache_hit_rate = 0.10;  ///< page objects only
  /// Probability that a session suffers one client-side stall (decoder or
  /// device hiccup) that leaves no trace in the traffic. Playback reports
  /// and instrumented clients see these; the network does not — they bound
  /// what any traffic-only detector can achieve on the mild-stall class.
  double device_stall_rate = 0.012;
  /// Which streaming service the sessions belong to (segment length,
  /// ladder scale, audio handling, host names). Defaults to YouTube as
  /// measured by the paper; see service.h for the Section-7 alternatives.
  ServiceTraits service = youtube_service();
  /// Keep the raw simulator outputs (needed by the figure benches; costs
  /// memory at large scale).
  bool keep_session_results = true;
};

/// A generated dataset: operator weblogs plus ground truth, parallel to the
/// raw simulation results when kept.
struct Corpus {
  std::vector<trace::WeblogRecord> weblogs;        ///< globally time-sorted
  std::vector<trace::SessionGroundTruth> truths;   ///< one per session
  std::vector<sim::SessionResult> sessions;        ///< empty unless kept
};

/// Simulates `options.sessions` video sessions and renders them into proxy
/// logs. Sessions simulate concurrently on the vqoe::par pool (VQOE_THREADS
/// / par::set_threads), each from an RNG stream derived from the corpus
/// seed and its session index, and are rendered in session order — the
/// output is deterministic in `options.seed` and identical for any thread
/// count.
[[nodiscard]] Corpus generate_corpus(const CorpusOptions& options);

/// Defaults matching the Section 3 cleartext operator corpus.
[[nodiscard]] CorpusOptions cleartext_corpus_options(std::size_t sessions = 4000,
                                                     std::uint64_t seed = 42);

/// The adaptive (HAS) subset of the cleartext corpus, generated at scale:
/// same scenario and cap mixes as cleartext_corpus_options but 100%
/// adaptive. This is the population Sections 4.2/4.3 train the
/// representation and switch models on (the paper keeps only the ~3%
/// adaptive sessions of its 390k corpus, i.e. ~12k HAS sessions).
[[nodiscard]] CorpusOptions has_corpus_options(std::size_t sessions = 4000,
                                               std::uint64_t seed = 43);

/// Defaults matching the Section 5.2 encrypted instrumented-handset corpus:
/// one subscriber, all-adaptive, commute-heavy scenario mix, fewer 144p-capped
/// users (newer device), 722 sessions. Weblogs are NOT yet stripped — apply
/// trace::encrypt_view to obtain the operator's encrypted view.
[[nodiscard]] CorpusOptions encrypted_corpus_options(std::size_t sessions = 722,
                                                     std::uint64_t seed = 4242);

/// One seeded session over a poor channel at a fixed representation:
/// exhibits the post-stall small-chunk recovery signature of Fig. 1.
[[nodiscard]] sim::SessionResult demo_stall_session(std::uint64_t seed = 11);

/// One seeded adaptive session over an improving channel: starts low,
/// switches up (the 144p -> 480p switch of Fig. 3).
[[nodiscard]] sim::SessionResult demo_switch_session(std::uint64_t seed = 21);

}  // namespace vqoe::workload

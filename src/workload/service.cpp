#include "vqoe/workload/service.h"

namespace vqoe::workload {

namespace {

// "vid.vimeocdn.example" style hosts: the suffix after the first label is
// what reconstruction matches on.
std::string suffix_of(const std::string& host) {
  const auto dot = host.find('.');
  return dot == std::string::npos ? host : host.substr(dot + 1);
}

}  // namespace

std::vector<std::string> ServiceTraits::cdn_suffixes() const {
  return {suffix_of(cdn_host)};
}

std::vector<std::string> ServiceTraits::page_marker_hosts() const {
  return {page_host};
}

std::vector<std::string> ServiceTraits::service_suffixes() const {
  return {suffix_of(cdn_host), suffix_of(page_host), suffix_of(thumbnail_host),
          suffix_of(report_host)};
}

ServiceTraits youtube_service() { return {}; }

ServiceTraits vimeo_like_service() {
  ServiceTraits s;
  s.name = "vimeo-like";
  s.segment_duration_s = 6.0;
  s.bitrate_scale = 1.25;
  s.separate_audio = true;
  s.audio_bitrate_bps = 160e3;
  s.progressive_burst_media_s = 8.0;
  s.cdn_host = "vod-adaptive.vimeocdn-video.com";
  s.page_host = "m.vimeo-like.com";
  s.thumbnail_host = "i.vimeocdn-img.com";
  s.report_host = "www.vimeo-like.com";
  return s;
}

ServiceTraits dailymotion_like_service() {
  ServiceTraits s;
  s.name = "dailymotion-like";
  s.segment_duration_s = 2.0;
  s.bitrate_scale = 0.85;
  s.progressive_burst_media_s = 4.0;
  s.cdn_host = "proxy-05.dm-cdn-video.com";
  s.page_host = "m.dailymotion-like.com";
  s.thumbnail_host = "s1.dm-cdn-img.com";
  s.report_host = "www.dailymotion-like.com";
  return s;
}

ServiceTraits netflix_like_service() {
  ServiceTraits s;
  s.name = "netflix-like";
  s.segment_duration_s = 4.0;
  s.bitrate_scale = 1.4;
  s.separate_audio = true;
  s.audio_bitrate_bps = 192e3;
  s.progressive_burst_media_s = 10.0;
  s.cdn_host = "ipv4-c001.oca-video.com";
  s.page_host = "m.netflix-like.com";
  s.thumbnail_host = "art.oca-img.com";
  s.report_host = "www.netflix-like.com";
  return s;
}

}  // namespace vqoe::workload

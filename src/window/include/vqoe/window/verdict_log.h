// Verdict stream framing — the durable form of the live window verdicts.
//
// The collector tees harvested WindowVerdicts into a wire spool so a
// monitoring site keeps a replayable log of what it alerted on, exactly
// like the record spool keeps the raw capture. Framing reuses the spool
// machinery wholesale (segments, CRC32C frames, torn-tail recovery,
// version gating); only the payload differs, and the segment header's
// flags byte tags it as kSpoolPayloadWindowVerdicts so a verdict spool can
// never be misread as a record spool or vice versa.
//
// Frame payload (little-endian, varints as in wire/codec.h):
//   varint count
//   count x verdict:
//     varint subscriber_len, subscriber bytes
//     varint window_index
//     f64    start_s, end_s            (IEEE-754 bits, LE)
//     varint chunk_count
//     u8     flags                     (bit0 final_window, bit1 switches)
//     u8     stall, u8 representation  (core label enum values)
//     f64    switch_score, stall_confidence, repr_confidence,
//            window_cusum, mean_goodput_kbps
//
// decode_verdicts() validates every bound and raises wire::WireError with
// the offending offset, same contract as the record codec.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "vqoe/window/window.h"
#include "vqoe/wire/spool.h"

namespace vqoe::window {

/// Serializes a batch of verdicts (appended to `out`).
void encode_verdicts(std::span<const WindowVerdict> verdicts,
                     std::vector<std::uint8_t>& out);

/// Parses one encoded batch. Throws wire::WireError on any malformed or
/// truncated input.
[[nodiscard]] std::vector<WindowVerdict> decode_verdicts(
    const std::uint8_t* data, std::size_t size);

/// Append-only verdict log on the wire spool (one frame per append()).
class VerdictSpoolWriter {
 public:
  /// `options.flags` is forced to kSpoolPayloadWindowVerdicts.
  explicit VerdictSpoolWriter(std::filesystem::path dir,
                              wire::SpoolWriterOptions options = {});

  void append(std::span<const WindowVerdict> verdicts);

  void sync() { spool_.sync(); }
  void close() { spool_.close(); }

  [[nodiscard]] std::uint64_t verdicts_written() const { return verdicts_; }
  [[nodiscard]] std::uint64_t frames_written() const {
    return spool_.frames_written();
  }
  [[nodiscard]] std::size_t segments() const { return spool_.segments(); }
  [[nodiscard]] const std::filesystem::path& directory() const {
    return spool_.directory();
  }

 private:
  wire::SpoolWriter spool_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t verdicts_ = 0;
};

/// Streaming reader over a verdict spool, with the record spool's
/// torn-tail / hard-corruption contract.
class VerdictSpoolReader {
 public:
  explicit VerdictSpoolReader(const std::filesystem::path& path)
      : frames_(path, wire::kSpoolPayloadWindowVerdicts) {}

  /// Produces the next verdict; false at the clean end of the spool.
  bool next(WindowVerdict& out);

  [[nodiscard]] std::vector<WindowVerdict> read_all();

  [[nodiscard]] bool torn_tail() const { return frames_.torn_tail(); }
  [[nodiscard]] std::uint64_t verdicts_read() const { return verdicts_; }

 private:
  wire::SpoolFrameReader frames_;
  std::vector<std::uint8_t> payload_;
  std::vector<WindowVerdict> batch_;
  std::size_t batch_pos_ = 0;
  std::uint64_t verdicts_ = 0;
};

}  // namespace vqoe::window

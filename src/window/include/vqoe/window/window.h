// Mid-session windowed inference state — vqoe::window.
//
// The paper classifies QoE per *session*; an operator reacting to stalls
// needs a verdict while the session is still running (the 10-second-window
// deployments of Bronzino/Schmitt et al. and the real-time representation
// classification of Dubin et al.). This module provides the per-session
// windowing machinery the streaming monitors build on:
//
//  * WindowConfig        — window length and hop in stream seconds. Hop <
//    length gives overlapping (sliding) windows, hop == length tumbling
//    ones; windows are half-open [start, start+length) intervals anchored
//    at the session's first record.
//  * WindowAccumulator   — incremental per-window feature state: the
//    Table-1 transport metrics under running min/mean/max/std
//    (ts::OnlineStats), inter-arrival statistics, byte/chunk counts and a
//    windowed CUSUM-std of Δsize × Δt (ts::CusumStd). Every add() is O(1);
//    nothing is buffered.
//  * SessionWindows      — the window *schedule* of one open session: which
//    windows are in flight, which chunks land in which window, and which
//    windows a given stream time closes. Per ingested chunk the work is
//    O(ceil(length/hop)) — the number of overlapping windows a chunk can
//    belong to, a constant for a fixed configuration (exactly 1 for
//    tumbling windows).
//  * WindowVerdict       — one entry of the live verdict stream: subscriber,
//    window bounds, the stall/representation verdicts with forest
//    confidences, the switch statistic, and the accumulator's summary.
//
// Boundary semantics are pinned (and regression-tested): a chunk whose
// request time lands exactly on a window end belongs to the *next* window
// (half-open intervals), and a clock tick exactly at a window end *closes*
// that window (close condition is end <= now). So a chunk and a tick at
// the same instant order deterministically: the tick closes the old
// window, the chunk opens the new one.
//
// This layer is deliberately below vqoe::core: it knows transport stats and
// doubles, not detectors or labels. core::OnlineMonitor owns the scoring
// (DESIGN.md section 5g).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "vqoe/net/tcp.h"
#include "vqoe/ts/cusum.h"
#include "vqoe/ts/online.h"

namespace vqoe::window {

struct WindowConfig {
  /// Window length in stream seconds; <= 0 disables windowing entirely
  /// (the monitors then classify on session close only, the pre-window
  /// behaviour).
  double length_s = 0.0;
  /// Hop between window starts; <= 0 means tumbling (hop = length).
  double hop_s = 0.0;
  /// Windows with fewer media chunks than this close without a verdict
  /// (their state still rolls the windows_closed counter).
  std::size_t min_chunks = 1;

  [[nodiscard]] bool enabled() const { return length_s > 0.0; }
  [[nodiscard]] double hop() const { return hop_s > 0.0 ? hop_s : length_s; }
};

/// Names of the windowed feature vector WindowAccumulator::features_into
/// emits, in order: 11 metrics (the 10 Table-1 metrics with chunk
/// inter-arrival plus goodput) x min/mean/max/std, then chunk_count,
/// bytes_kb and the windowed CUSUM-std. Same "metric:stat" naming scheme
/// as the session feature sets.
[[nodiscard]] const std::vector<std::string>& window_feature_names();

/// O(1)-per-chunk feature state of one window. Units match the session
/// feature sets (core/features.cpp): sizes in KB, times in seconds, RTT in
/// ms, loss/retransmissions in percent — the CUSUM signal is therefore
/// KB·s, the unit of the paper's fixed switch threshold.
class WindowAccumulator {
 public:
  /// Folds one media chunk in. Chunks must arrive in non-decreasing
  /// request-time order (the monitors' ingest invariant).
  void add(double request_time_s, double arrival_time_s, double size_bytes,
           const net::TransportStats& transport);

  [[nodiscard]] std::size_t chunks() const { return size_kb_.count(); }
  [[nodiscard]] double bytes_kb() const { return bytes_kb_; }
  [[nodiscard]] double mean_goodput_kbps() const { return goodput_.mean(); }
  /// Windowed STD(CUSUM(Δsize × Δt)) over the chunks of this window only.
  [[nodiscard]] double cusum_std() const { return cusum_.value(); }

  /// Writes the window_feature_names() vector (resized to fit).
  void features_into(std::vector<double>& out) const;

 private:
  ts::OnlineStats rtt_min_, rtt_avg_, rtt_max_;
  ts::OnlineStats bdp_kb_, bif_avg_kb_, bif_max_kb_;
  ts::OnlineStats loss_, retrans_;
  ts::OnlineStats size_kb_, dt_, goodput_;
  ts::CusumStd cusum_;  ///< over Δsize × Δt of consecutive chunks
  double bytes_kb_ = 0.0;
  double prev_arrival_s_ = 0.0;
  double prev_size_kb_ = 0.0;
  bool has_prev_ = false;
};

/// One window a SessionWindows instance closed.
struct ClosedWindow {
  std::uint64_t index = 0;  ///< 0-based position in the window schedule
  double start_s = 0.0;     ///< nominal window start (anchor + index * hop)
  double end_s = 0.0;       ///< nominal end, or the session end when final
  /// Closed by session close rather than by the stream clock: the window
  /// was truncated, end_s is the session's last activity.
  bool final_window = false;
  WindowAccumulator acc;
};

/// The window schedule of one open session. Only windows that received at
/// least one chunk are materialized (and therefore reported): an idle
/// subscriber does not generate empty-window verdicts.
class SessionWindows {
 public:
  /// Arms the schedule. `session_start_s` anchors window 0 (the session's
  /// first record, media or not). A non-enabled config leaves the schedule
  /// inert: every method is a cheap no-op.
  void start(const WindowConfig& config, double session_start_s);

  [[nodiscard]] bool enabled() const { return config_.enabled(); }

  /// Closes every in-flight window whose end is <= now_s (oldest first),
  /// appending them to `out`. Callers invoke this *before* add() with the
  /// same timestamp so the boundary semantics above hold.
  void close_due(double now_s, std::vector<ClosedWindow>& out);

  /// Folds one media chunk into every window containing its request time,
  /// materializing windows as needed.
  void add(double request_time_s, double arrival_time_s, double size_bytes,
           const net::TransportStats& transport);

  /// Session close: emits every remaining in-flight window as final,
  /// truncated at `session_end_s`. The schedule is empty afterwards.
  void close_all(double session_end_s, std::vector<ClosedWindow>& out);

  [[nodiscard]] std::size_t in_flight() const { return open_.size(); }

  [[nodiscard]] double window_start(std::uint64_t index) const {
    return anchor_ + static_cast<double>(index) * config_.hop();
  }
  [[nodiscard]] double window_end(std::uint64_t index) const {
    return window_start(index) + config_.length_s;
  }

 private:
  struct InFlight {
    std::uint64_t index = 0;
    WindowAccumulator acc;
  };

  WindowConfig config_;
  double anchor_ = 0.0;
  std::deque<InFlight> open_;  ///< ascending index, each with >= 1 chunk
};

/// One entry of the live verdict stream: what a shard's monitor emits every
/// time a window with enough chunks closes. Labels are the core enums
/// stored as raw ints (core::StallLabel / core::ReprLabel) so this layer
/// stays below vqoe::core.
struct WindowVerdict {
  std::string subscriber_id;
  std::uint64_t window_index = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint32_t chunk_count = 0;
  bool final_window = false;

  std::uint8_t stall = 0;           ///< core::StallLabel
  std::uint8_t representation = 0;  ///< core::ReprLabel (0 when untrained)
  bool quality_switches = false;
  double switch_score = 0.0;       ///< session-path CUSUM-std over the span
  double stall_confidence = 0.0;   ///< forest vote share behind `stall`
  double repr_confidence = 0.0;    ///< 0 when the detector is untrained
  double window_cusum = 0.0;       ///< the O(1) accumulator's CUSUM-std
  double mean_goodput_kbps = 0.0;  ///< accumulator summary
};

}  // namespace vqoe::window

#include "vqoe/window/verdict_log.h"

#include <bit>
#include <cstdint>

#include "vqoe/wire/codec.h"

namespace vqoe::window {
namespace {

using wire::get_varint;
using wire::put_varint;
using wire::WireError;

constexpr std::uint8_t kFlagFinalWindow = 1u << 0;
constexpr std::uint8_t kFlagSwitches = 1u << 1;
constexpr std::uint8_t kFlagMask = kFlagFinalWindow | kFlagSwitches;

// Subscriber ids in weblogs are short ("sub-123"); anything kilobytes long
// in a verdict frame is corruption, not data.
constexpr std::size_t kMaxSubscriberBytes = 4096;

void put_f64(double v, std::vector<std::uint8_t>& out) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

double get_f64(const std::uint8_t* data, std::size_t size,
               std::size_t& offset) {
  if (size - offset < 8) throw WireError{"truncated f64", offset};
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(data[offset + static_cast<std::size_t>(i)])
            << (8 * i);
  }
  offset += 8;
  return std::bit_cast<double>(bits);
}

std::uint8_t get_u8(const std::uint8_t* data, std::size_t size,
                    std::size_t& offset) {
  if (offset >= size) throw WireError{"truncated u8", offset};
  return data[offset++];
}

}  // namespace

void encode_verdicts(std::span<const WindowVerdict> verdicts,
                     std::vector<std::uint8_t>& out) {
  put_varint(verdicts.size(), out);
  for (const WindowVerdict& v : verdicts) {
    put_varint(v.subscriber_id.size(), out);
    out.insert(out.end(), v.subscriber_id.begin(), v.subscriber_id.end());
    put_varint(v.window_index, out);
    put_f64(v.start_s, out);
    put_f64(v.end_s, out);
    put_varint(v.chunk_count, out);
    std::uint8_t flags = 0;
    if (v.final_window) flags |= kFlagFinalWindow;
    if (v.quality_switches) flags |= kFlagSwitches;
    out.push_back(flags);
    out.push_back(v.stall);
    out.push_back(v.representation);
    put_f64(v.switch_score, out);
    put_f64(v.stall_confidence, out);
    put_f64(v.repr_confidence, out);
    put_f64(v.window_cusum, out);
    put_f64(v.mean_goodput_kbps, out);
  }
}

std::vector<WindowVerdict> decode_verdicts(const std::uint8_t* data,
                                           std::size_t size) {
  std::size_t offset = 0;
  const std::uint64_t count = get_varint(data, size, offset);
  // Each verdict is at least ~50 bytes; a count beyond that is garbage and
  // must not drive a giant reserve.
  if (count > size) throw WireError{"verdict count exceeds payload", 0};
  std::vector<WindowVerdict> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    WindowVerdict v;
    const std::uint64_t sub_len = get_varint(data, size, offset);
    if (sub_len > kMaxSubscriberBytes || sub_len > size - offset) {
      throw WireError{"subscriber id length out of bounds", offset};
    }
    v.subscriber_id.assign(reinterpret_cast<const char*>(data + offset),
                           static_cast<std::size_t>(sub_len));
    offset += static_cast<std::size_t>(sub_len);
    v.window_index = get_varint(data, size, offset);
    v.start_s = get_f64(data, size, offset);
    v.end_s = get_f64(data, size, offset);
    const std::uint64_t chunks = get_varint(data, size, offset);
    if (chunks > UINT32_MAX) {
      throw WireError{"chunk count out of bounds", offset};
    }
    v.chunk_count = static_cast<std::uint32_t>(chunks);
    const std::uint8_t flags = get_u8(data, size, offset);
    if ((flags & ~kFlagMask) != 0) {
      throw WireError{"unknown verdict flags", offset - 1};
    }
    v.final_window = (flags & kFlagFinalWindow) != 0;
    v.quality_switches = (flags & kFlagSwitches) != 0;
    v.stall = get_u8(data, size, offset);
    v.representation = get_u8(data, size, offset);
    v.switch_score = get_f64(data, size, offset);
    v.stall_confidence = get_f64(data, size, offset);
    v.repr_confidence = get_f64(data, size, offset);
    v.window_cusum = get_f64(data, size, offset);
    v.mean_goodput_kbps = get_f64(data, size, offset);
    out.push_back(std::move(v));
  }
  if (offset != size) throw WireError{"trailing bytes after verdicts", offset};
  return out;
}

namespace {

wire::SpoolWriterOptions verdict_spool_options(wire::SpoolWriterOptions options) {
  options.flags = wire::kSpoolPayloadWindowVerdicts;
  return options;
}

}  // namespace

VerdictSpoolWriter::VerdictSpoolWriter(std::filesystem::path dir,
                                       wire::SpoolWriterOptions options)
    : spool_(std::move(dir), verdict_spool_options(options)) {}

void VerdictSpoolWriter::append(std::span<const WindowVerdict> verdicts) {
  if (verdicts.empty()) return;
  payload_.clear();
  encode_verdicts(verdicts, payload_);
  spool_.append_frame(payload_.data(), payload_.size());
  verdicts_ += verdicts.size();
}

bool VerdictSpoolReader::next(WindowVerdict& out) {
  while (batch_pos_ >= batch_.size()) {
    if (!frames_.next_frame(payload_)) return false;
    try {
      batch_ = decode_verdicts(payload_.data(), payload_.size());
    } catch (const WireError& e) {
      frames_.corrupt(std::string{"undecodable verdict payload: "} + e.what(),
                      frames_.frame_payload_offset() + e.offset());
    }
    batch_pos_ = 0;
  }
  out = std::move(batch_[batch_pos_++]);
  ++verdicts_;
  return true;
}

std::vector<WindowVerdict> VerdictSpoolReader::read_all() {
  std::vector<WindowVerdict> all;
  WindowVerdict v;
  while (next(v)) all.push_back(std::move(v));
  return all;
}

}  // namespace vqoe::window

#include "vqoe/window/window.h"

#include <cmath>

namespace vqoe::window {

namespace {

constexpr double kBytesPerKB = 1000.0;  // matches core/features.cpp

void append_stats(const ts::OnlineStats& s, std::vector<double>& out) {
  out.push_back(s.min());
  out.push_back(s.mean());
  out.push_back(s.max());
  out.push_back(s.std_dev());
}

}  // namespace

const std::vector<std::string>& window_feature_names() {
  static const std::vector<std::string> names = [] {
    const std::vector<std::string> metrics = {
        "rtt_min", "rtt_avg", "rtt_max",    "bdp",      "bif_avg", "bif_max",
        "loss",    "retrans", "chunk_size", "chunk_dt", "goodput"};
    const std::vector<std::string> stats = {"min", "mean", "max", "std"};
    std::vector<std::string> out;
    out.reserve(metrics.size() * stats.size() + 3);
    for (const auto& metric : metrics) {
      for (const auto& stat : stats) out.push_back(metric + ":" + stat);
    }
    out.push_back("chunk_count");
    out.push_back("bytes_kb");
    out.push_back("cusum_dsize_dt");
    return out;
  }();
  return names;
}

void WindowAccumulator::add(double request_time_s, double arrival_time_s,
                            double size_bytes,
                            const net::TransportStats& transport) {
  const double size_kb = size_bytes / kBytesPerKB;
  rtt_min_.add(transport.rtt_min_ms);
  rtt_avg_.add(transport.rtt_avg_ms);
  rtt_max_.add(transport.rtt_max_ms);
  bdp_kb_.add(transport.bdp_bytes / kBytesPerKB);
  bif_avg_kb_.add(transport.bif_avg_bytes / kBytesPerKB);
  bif_max_kb_.add(transport.bif_max_bytes / kBytesPerKB);
  loss_.add(transport.loss_pct);
  retrans_.add(transport.retrans_pct);
  size_kb_.add(size_kb);
  const double duration = arrival_time_s - request_time_s;
  goodput_.add(duration > 0.0 ? size_bytes * 8.0 / duration / 1000.0 : 0.0);
  bytes_kb_ += size_kb;
  if (has_prev_) {
    const double dt = arrival_time_s - prev_arrival_s_;
    dt_.add(dt);
    cusum_.add((size_kb - prev_size_kb_) * dt);
  }
  prev_arrival_s_ = arrival_time_s;
  prev_size_kb_ = size_kb;
  has_prev_ = true;
}

void WindowAccumulator::features_into(std::vector<double>& out) const {
  out.clear();
  out.reserve(window_feature_names().size());
  append_stats(rtt_min_, out);
  append_stats(rtt_avg_, out);
  append_stats(rtt_max_, out);
  append_stats(bdp_kb_, out);
  append_stats(bif_avg_kb_, out);
  append_stats(bif_max_kb_, out);
  append_stats(loss_, out);
  append_stats(retrans_, out);
  append_stats(size_kb_, out);
  append_stats(dt_, out);
  append_stats(goodput_, out);
  out.push_back(static_cast<double>(chunks()));
  out.push_back(bytes_kb_);
  out.push_back(cusum_.value());
}

void SessionWindows::start(const WindowConfig& config,
                           double session_start_s) {
  config_ = config;
  anchor_ = session_start_s;
  open_.clear();
}

void SessionWindows::close_due(double now_s, std::vector<ClosedWindow>& out) {
  if (!enabled()) return;
  // Close condition is end <= now: a tick exactly at a window end closes
  // it (the pinned boundary semantics — see the header comment).
  while (!open_.empty() && window_end(open_.front().index) <= now_s) {
    InFlight& w = open_.front();
    ClosedWindow closed;
    closed.index = w.index;
    closed.start_s = window_start(w.index);
    closed.end_s = window_end(w.index);
    closed.final_window = false;
    closed.acc = std::move(w.acc);
    out.push_back(std::move(closed));
    open_.pop_front();
  }
}

void SessionWindows::add(double request_time_s, double arrival_time_s,
                         double size_bytes,
                         const net::TransportStats& transport) {
  if (!enabled()) return;
  const double hop = config_.hop();
  // The windows containing request time t are the indices i with
  // start(i) <= t < end(i), i.e. (t - anchor - length)/hop < i <=
  // (t - anchor)/hop. A chunk exactly at a window end is excluded from
  // that window (strict <) and included in the next — half-open
  // [start, end) intervals, the pinned boundary rule.
  const double rel = request_time_s - anchor_;
  double lo = std::floor((rel - config_.length_s) / hop) + 1.0;
  if (lo < 0.0) lo = 0.0;
  const double hi = std::floor(rel / hop);
  if (hi < lo) return;  // before the first window (cannot happen in-order)
  const auto i_lo = static_cast<std::uint64_t>(lo);
  const auto i_hi = static_cast<std::uint64_t>(hi);
  // Materialize the missing tail of [i_lo, i_hi]. In-order ingestion plus
  // close_due(t) before add(t) guarantee every open window's index is
  // already >= i_lo and <= previous i_hi, so the open set stays a
  // contiguous ascending run.
  std::uint64_t next = open_.empty() ? i_lo : open_.back().index + 1;
  if (next < i_lo) next = i_lo;
  for (std::uint64_t i = next; i <= i_hi; ++i) {
    open_.push_back(InFlight{i, WindowAccumulator{}});
  }
  for (InFlight& w : open_) {
    if (w.index >= i_lo) {
      w.acc.add(request_time_s, arrival_time_s, size_bytes, transport);
    }
  }
}

void SessionWindows::close_all(double session_end_s,
                               std::vector<ClosedWindow>& out) {
  if (!enabled()) return;
  for (InFlight& w : open_) {
    ClosedWindow closed;
    closed.index = w.index;
    closed.start_s = window_start(w.index);
    closed.end_s = session_end_s;
    closed.final_window = true;
    closed.acc = std::move(w.acc);
    out.push_back(std::move(closed));
  }
  open_.clear();
}

}  // namespace vqoe::window

#include "vqoe/sim/window_truth.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace vqoe::sim {

namespace {

/// Length of the overlap of [a0, a1) and [b0, b1).
double overlap(double a0, double a1, double b0, double b1) {
  const double lo = std::max(a0, b0);
  const double hi = std::min(a1, b1);
  return hi > lo ? hi - lo : 0.0;
}

}  // namespace

std::vector<WindowTruth> windowed_truth(const SessionResult& session,
                                        double length_s, double hop_s) {
  std::vector<WindowTruth> out;
  if (length_s <= 0.0 || session.total_duration_s <= 0.0) return out;
  const double hop = hop_s > 0.0 ? hop_s : length_s;
  const double session_end = session.total_duration_s;

  // The representation step function: video chunk k's rung is active from
  // its request until the next video request (the last until session end).
  const auto video = session.video_chunks();
  struct ActiveSpan {
    double start_s, end_s;
    Resolution rung;
  };
  std::vector<ActiveSpan> spans;
  spans.reserve(video.size());
  for (std::size_t k = 0; k < video.size(); ++k) {
    const double start = video[k]->request_time_s;
    const double end =
        k + 1 < video.size() ? video[k + 1]->request_time_s : session_end;
    if (end > start) spans.push_back({start, end, video[k]->resolution});
  }

  for (std::uint64_t i = 0;; ++i) {
    const double start = static_cast<double>(i) * hop;
    if (start >= session_end) break;
    WindowTruth w;
    w.index = i;
    w.start_s = start;
    w.end_s = start + length_s;
    if (w.end_s >= session_end) {
      w.end_s = session_end;
      w.final_window = true;
    }
    const double span = w.end_s - w.start_s;
    if (span <= 0.0) continue;

    for (const StallEvent& stall : session.stalls) {
      w.stall_s += overlap(stall.start_s, stall.start_s + stall.duration_s,
                           w.start_s, w.end_s);
    }
    w.rebuffering_ratio = std::min(1.0, w.stall_s / span);

    // Chunk membership mirrors the monitor: request time in [start, end).
    Resolution prev = Resolution::p144;
    bool has_prev = false;
    for (const ChunkEvent* c : video) {
      if (c->request_time_s < w.start_s || c->request_time_s >= w.end_s) {
        continue;
      }
      ++w.chunk_count;
      if (has_prev && c->resolution != prev) ++w.switch_count;
      prev = c->resolution;
      has_prev = true;
    }

    std::array<double, 6> rung_s{};  // seconds per Resolution value
    double weighted = 0.0;
    for (const ActiveSpan& s : spans) {
      const double t = overlap(s.start_s, s.end_s, w.start_s, w.end_s);
      if (t <= 0.0) continue;
      w.active_s += t;
      weighted += static_cast<double>(height(s.rung)) * t;
      rung_s[static_cast<std::size_t>(s.rung)] += t;
    }
    if (w.active_s > 0.0) {
      w.average_height = weighted / w.active_s;
      const auto best = std::max_element(rung_s.begin(), rung_s.end());
      w.representation =
          static_cast<Resolution>(best - rung_s.begin());
    }
    out.push_back(w);
  }
  return out;
}

}  // namespace vqoe::sim

#include "vqoe/sim/video.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace vqoe::sim {

namespace {

struct RungInfo {
  Resolution res;
  int height;
  double bitrate_bps;
};

constexpr std::array<RungInfo, kNumResolutions> kLadder{{
    {Resolution::p144, 144, 110e3},
    {Resolution::p240, 240, 250e3},
    {Resolution::p360, 360, 520e3},
    {Resolution::p480, 480, 1050e3},
    {Resolution::p720, 720, 2500e3},
    {Resolution::p1080, 1080, 4500e3},
}};

const RungInfo& info(Resolution r) {
  return kLadder[static_cast<std::size_t>(r)];
}

}  // namespace

int height(Resolution r) { return info(r).height; }

double nominal_bitrate_bps(Resolution r) { return info(r).bitrate_bps; }

std::string to_string(Resolution r) { return std::to_string(info(r).height) + "p"; }

Resolution resolution_from_height(int h) {
  for (const RungInfo& rung : kLadder) {
    if (rung.height == h) return rung.res;
  }
  throw std::invalid_argument{"resolution_from_height: unknown height " +
                              std::to_string(h)};
}

const Representation& VideoDescription::at(Resolution r) const {
  for (const Representation& rep : ladder) {
    if (rep.resolution == r) return rep;
  }
  throw std::out_of_range{"VideoDescription: ladder lacks " + to_string(r)};
}

const Representation& VideoDescription::best_under(double budget_bps) const {
  if (ladder.empty()) throw std::out_of_range{"VideoDescription: empty ladder"};
  const Representation* best = &ladder.front();
  for (const Representation& rep : ladder) {
    if (rep.bitrate_bps <= budget_bps &&
        rep.bitrate_bps >= best->bitrate_bps) {
      best = &rep;
    }
  }
  return *best;
}

Catalog::Catalog(std::size_t size, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  // Log-normal with median ~150 s, mean ~180 s: sigma 0.6.
  std::lognormal_distribution<double> duration(std::log(150.0), 0.6);
  std::uniform_real_distribution<double> encode_var(0.85, 1.15);
  videos_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    VideoDescription v;
    v.video_id = "vid-" + std::to_string(i);
    v.duration_s = std::clamp(duration(rng), 30.0, 900.0);
    v.segment_duration_s = 5.0;
    for (const RungInfo& rung : kLadder) {
      v.ladder.push_back({rung.res, rung.bitrate_bps * encode_var(rng)});
    }
    videos_.push_back(std::move(v));
  }
}

const VideoDescription& Catalog::sample(std::mt19937_64& rng) const {
  if (videos_.empty()) throw std::out_of_range{"Catalog: empty"};
  std::uniform_int_distribution<std::size_t> pick(0, videos_.size() - 1);
  return videos_[pick(rng)];
}

}  // namespace vqoe::sim

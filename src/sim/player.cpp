#include "vqoe/sim/player.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

// GCC's -Wmaybe-uninitialized mistakes the disengaged std::optional
// `open_stall_` for an uninitialized double once Playback is inlined into
// play() (GCC PR80635); every read is guarded by has_value().
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace vqoe::sim {

namespace {

constexpr double kMediaEps = 1e-6;

// Shared playback/buffer bookkeeping for both players: wall clock, playout
// buffer, stall accounting, ON-OFF pacing and abandonment.
class Playback {
 public:
  Playback(const PlayerConfig& cfg, net::TcpModel& tcp, SessionResult& out)
      : cfg_(cfg), tcp_(tcp), out_(out) {}

  [[nodiscard]] double now() const { return t_; }
  [[nodiscard]] double buffer_s() const { return buffer_; }
  [[nodiscard]] bool playing() const { return playing_; }
  [[nodiscard]] bool stalled() const { return open_stall_.has_value(); }
  /// True once playback has started at least once (start-up phase over).
  [[nodiscard]] bool has_started() const { return started_; }

  /// Wall time advances by `dt` while a download occupies the link; playback
  /// consumes the buffer and may run dry (opening a stall).
  void elapse(double dt) {
    if (playing_) {
      if (buffer_ >= dt) {
        buffer_ -= dt;
        played_ += dt;
      } else {
        played_ += buffer_;
        open_stall_ = t_ + buffer_;
        buffer_ = 0.0;
        playing_ = false;
      }
    }
    t_ += dt;
  }

  /// A downloaded segment adds media to the buffer.
  void add_media(double seg_s) { buffer_ += seg_s; }

  /// Plays out buffered media down to `keep_s` before the next download
  /// (the pause preceding a representation switch: the player finishes the
  /// old-rung content it already holds, then starts the new rung's own
  /// start-up phase). No-op while not playing.
  void drain_to(double keep_s) {
    if (!playing_ || buffer_ <= keep_s) return;
    const double dt = buffer_ - keep_s;
    t_ += dt;
    played_ += dt;
    buffer_ = keep_s;
    tcp_.idle(dt);
  }

  /// Starts or resumes playback when the relevant threshold is reached.
  /// @param all_downloaded with nothing left to fetch, any buffered media
  ///        resumes playback immediately.
  void maybe_start(bool all_downloaded) {
    if (playing_) return;
    const double threshold = played_ == 0.0 && !open_stall_
                                 ? cfg_.startup_buffer_s
                                 : cfg_.resume_buffer_s;
    if (buffer_ + kMediaEps >= threshold || (all_downloaded && buffer_ > 0.0)) {
      playing_ = true;
      started_ = true;
      if (open_stall_) {
        out_.stalls.push_back({*open_stall_, t_ - *open_stall_});
        open_stall_.reset();
      } else if (played_ == 0.0) {
        out_.startup_delay_s = t_;
      }
    }
  }

  /// ON-OFF pacing: when the buffer exceeds the high watermark the download
  /// pauses (OFF period).
  /// @param drain_to_low true (progressive): classic bursty ON-OFF — stay
  ///        OFF until the buffer drains to the low watermark, then burst.
  ///        false (HAS): per-segment pacing — trim to the high watermark,
  ///        so steady-state requests are spaced one segment apart.
  void pace(bool drain_to_low) {
    if (!playing_ || buffer_ <= cfg_.high_watermark_s) return;
    const double target = drain_to_low ? cfg_.low_watermark_s : cfg_.high_watermark_s;
    const double off = buffer_ - target;
    t_ += off;
    played_ += off;
    buffer_ = target;
    tcp_.idle(off);
  }

  /// True when the viewer gives up on a session that keeps rebuffering.
  [[nodiscard]] bool should_abandon() const {
    if (t_ <= 0.0) return false;
    double stall = 0.0;
    for (const StallEvent& s : out_.stalls) stall += s.duration_s;
    if (open_stall_) stall += t_ - *open_stall_;
    return played_ > 0.0 && stall / t_ > cfg_.abandon_rr;
  }

  /// Ends the session: plays out any remaining buffer (or cuts off when
  /// abandoned) and fills in the result totals.
  void finish(bool abandoned) {
    if (abandoned) {
      if (open_stall_) {
        out_.stalls.push_back({*open_stall_, t_ - *open_stall_});
        open_stall_.reset();
      }
      out_.abandoned = true;
      out_.total_duration_s = t_;
      out_.played_media_s = played_;
      return;
    }
    maybe_start(/*all_downloaded=*/true);
    played_ += buffer_;
    out_.total_duration_s = t_ + buffer_;
    buffer_ = 0.0;
    out_.played_media_s = played_;
  }

  /// Signals that playback was just interrupted and the next requests should
  /// use the recovery ramp. (Query-and-clear latch.)
  [[nodiscard]] bool take_stall_latch() {
    const bool v = stall_latch_;
    stall_latch_ = false;
    return v;
  }
  void arm_stall_latch() { stall_latch_ = true; }

  void on_chunk_downloaded() {
    if (!playing_ && open_stall_ && !stall_latch_armed_once_) {
      // First download completing inside a stall arms the recovery ramp.
      arm_stall_latch();
      stall_latch_armed_once_ = true;
    }
    if (playing_) stall_latch_armed_once_ = false;
  }

 private:
  const PlayerConfig& cfg_;
  net::TcpModel& tcp_;
  SessionResult& out_;
  double t_ = 0.0;
  double buffer_ = 0.0;
  double played_ = 0.0;
  bool playing_ = false;
  bool started_ = false;
  std::optional<double> open_stall_;
  bool stall_latch_ = false;
  bool stall_latch_armed_once_ = false;
};

}  // namespace

double SessionResult::stall_total_s() const {
  double total = 0.0;
  for (const StallEvent& s : stalls) total += s.duration_s;
  return total;
}

double SessionResult::rebuffering_ratio() const {
  if (total_duration_s <= 0.0) return 0.0;
  return std::min(1.0, stall_total_s() / total_duration_s);
}

std::vector<const ChunkEvent*> SessionResult::video_chunks() const {
  std::vector<const ChunkEvent*> out;
  out.reserve(chunks.size());
  for (const ChunkEvent& c : chunks) {
    if (!c.is_audio) out.push_back(&c);
  }
  return out;
}

double SessionResult::average_height() const {
  const auto video = video_chunks();
  if (video.empty()) return 0.0;
  // Weight each chunk by the media time it carries, approximated by its
  // share of bytes at its rung's bitrate.
  double weighted = 0.0;
  double weight = 0.0;
  for (const ChunkEvent* c : video) {
    const double media_s = static_cast<double>(c->size_bytes) * 8.0 /
                           nominal_bitrate_bps(c->resolution);
    weighted += static_cast<double>(height(c->resolution)) * media_s;
    weight += media_s;
  }
  return weight > 0.0 ? weighted / weight : 0.0;
}

std::size_t SessionResult::switch_count() const {
  const auto video = video_chunks();
  std::size_t switches = 0;
  for (std::size_t i = 1; i < video.size(); ++i) {
    if (video[i]->resolution != video[i - 1]->resolution) ++switches;
  }
  return switches;
}

double SessionResult::switch_amplitude() const {
  const auto video = video_chunks();
  if (video.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < video.size(); ++i) {
    total += std::abs(static_cast<int>(video[i]->resolution) -
                      static_cast<int>(video[i - 1]->resolution));
  }
  return total / static_cast<double>(video.size() - 1);
}

SessionResult HasPlayer::play(const VideoDescription& video,
                              net::ChannelModel& channel,
                              std::uint64_t seed) const {
  SessionResult out;
  out.video_id = video.video_id;
  out.adaptive = true;

  std::mt19937_64 rng{seed};
  net::TcpModel tcp{seed ^ 0x9e3779b97f4a7c15ULL};
  Playback pb{config_, tcp, out};
  ThroughputEstimator estimator;
  AbrController abr{config_.abr};
  // Segment sizes at a fixed rung are stable to within a few percent (CBR-
  // leaning encodes); content-driven variation lives in the ladder bitrates.
  std::uniform_real_distribution<double> encode_noise(0.98, 1.02);

  Resolution current = std::min(config_.abr.initial, config_.abr.max_resolution);
  const std::vector<double>* ramp = &config_.startup_ramp_segments_s;
  std::size_t ramp_idx = 0;  // fast-start ramp at session begin
  int segments_since_switch = 0;
  double media_downloaded = 0.0;
  double audio_downloaded = 0.0;
  bool abandoned = false;

  while (media_downloaded + kMediaEps < video.duration_s) {
    // ABR decision for the next segment.
    const Resolution next =
        abr.decide(video, estimator, pb.buffer_s(), current,
                   segments_since_switch, /*in_startup=*/!pb.has_started());
    if (next != current) {
      // A switch starts a new start-up phase at the new rung (Section 4.3):
      // the player plays out most of the old-rung buffer, then re-buffers
      // at the new quality starting from the smallest useful segments.
      pb.drain_to(config_.switch_keep_buffer_s);
      current = next;
      ramp = &config_.switch_ramp_segments_s;
      ramp_idx = 0;
      segments_since_switch = 0;
    }
    if (pb.take_stall_latch()) {
      ramp = &config_.recovery_ramp_segments_s;  // recover with small chunks
      ramp_idx = 0;
    }

    double seg_s =
        ramp_idx < ramp->size() ? (*ramp)[ramp_idx] : video.segment_duration_s;
    ++ramp_idx;
    seg_s = std::min(seg_s, video.duration_s - media_downloaded);
    seg_s = std::max(seg_s, 0.25);

    double bitrate = video.at(current).bitrate_bps;
    if (!config_.separate_audio) bitrate += video.audio_bitrate_bps;  // muxed
    const auto size_bytes = static_cast<std::uint64_t>(
        std::max(1.0, bitrate * seg_s / 8.0 * encode_noise(rng)));

    const net::ChannelState ch = channel.at(pb.now());
    const net::DownloadResult dl = tcp.download(size_bytes, ch);

    ChunkEvent ev;
    ev.request_time_s = pb.now();
    ev.arrival_time_s = pb.now() + dl.duration_s;
    ev.size_bytes = size_bytes;
    ev.resolution = current;
    ev.is_audio = false;
    ev.transport = dl.stats;
    out.chunks.push_back(ev);

    pb.elapse(dl.duration_s);
    pb.add_media(seg_s);
    media_downloaded += seg_s;
    ++segments_since_switch;
    // Short downloads under-report the path rate (slow start); weight them
    // down in the estimate.
    estimator.observe(dl.goodput_bps, std::min(1.0, dl.duration_s / 3.0));
    pb.on_chunk_downloaded();

    // Separated audio: keep the audio buffer level with the video buffer.
    while (config_.separate_audio &&
           audio_downloaded + config_.audio_segment_s / 2.0 < media_downloaded &&
           audio_downloaded + kMediaEps < video.duration_s) {
      const double audio_s =
          std::min(config_.audio_segment_s, video.duration_s - audio_downloaded);
      const auto audio_bytes = static_cast<std::uint64_t>(
          std::max(1.0, video.audio_bitrate_bps * audio_s / 8.0));
      const net::ChannelState ach = channel.at(pb.now());
      const net::DownloadResult adl = tcp.download(audio_bytes, ach);
      ChunkEvent aev;
      aev.request_time_s = pb.now();
      aev.arrival_time_s = pb.now() + adl.duration_s;
      aev.size_bytes = audio_bytes;
      aev.resolution = current;
      aev.is_audio = true;
      aev.transport = adl.stats;
      out.chunks.push_back(aev);
      pb.elapse(adl.duration_s);
      audio_downloaded += audio_s;
    }

    pb.maybe_start(media_downloaded + kMediaEps >= video.duration_s);
    pb.pace(/*drain_to_low=*/false);

    if (pb.should_abandon()) {
      std::bernoulli_distribution leave(0.7);
      if (leave(rng)) {
        abandoned = true;
        break;
      }
    }
  }

  pb.finish(abandoned);
  return out;
}

SessionResult ProgressivePlayer::play(const VideoDescription& video,
                                      Resolution rep,
                                      net::ChannelModel& channel,
                                      std::uint64_t seed) const {
  SessionResult out;
  out.video_id = video.video_id;
  out.adaptive = false;

  std::mt19937_64 rng{seed};
  net::TcpModel tcp{seed ^ 0xc2b2ae3d27d4eb4fULL};
  Playback pb{config_, tcp, out};
  std::uniform_real_distribution<double> encode_noise(0.95, 1.05);

  // Audio is muxed into the progressive file.
  const double bitrate =
      video.at(rep).bitrate_bps + video.audio_bitrate_bps;
  const double total_bytes = bitrate * video.duration_s / 8.0;
  const double steady_burst_bytes =
      bitrate * config_.progressive_burst_media_s / 8.0;

  double downloaded_bytes = 0.0;
  double burst = steady_burst_bytes;
  bool abandoned = false;

  while (downloaded_bytes + 1.0 < total_bytes) {
    if (pb.take_stall_latch()) {
      // Small recovery ranges refill the buffer fast after a stall.
      burst = bitrate * config_.progressive_recovery_media_s / 8.0;
    }
    const auto size_bytes = static_cast<std::uint64_t>(std::max(
        1.0,
        std::min(burst * encode_noise(rng), total_bytes - downloaded_bytes)));
    const double seg_s = static_cast<double>(size_bytes) * 8.0 / bitrate;

    const net::ChannelState ch = channel.at(pb.now());
    const net::DownloadResult dl = tcp.download(size_bytes, ch);

    ChunkEvent ev;
    ev.request_time_s = pb.now();
    ev.arrival_time_s = pb.now() + dl.duration_s;
    ev.size_bytes = size_bytes;
    ev.resolution = rep;
    ev.is_audio = false;
    ev.transport = dl.stats;
    out.chunks.push_back(ev);

    pb.elapse(dl.duration_s);
    pb.add_media(seg_s);
    downloaded_bytes += static_cast<double>(size_bytes);
    pb.on_chunk_downloaded();

    // Range bursts grow back toward the steady size after recovery.
    if (burst < steady_burst_bytes) {
      burst = std::min(steady_burst_bytes, burst * 2.0);
    }

    pb.maybe_start(downloaded_bytes + 1.0 >= total_bytes);
    pb.pace(/*drain_to_low=*/true);

    if (pb.should_abandon()) {
      std::bernoulli_distribution leave(0.7);
      if (leave(rng)) {
        abandoned = true;
        break;
      }
    }
  }

  pb.finish(abandoned);
  return out;
}

}  // namespace vqoe::sim

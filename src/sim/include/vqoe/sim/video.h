// Video content model: representation ladders and catalogs.
//
// The dataset of Section 3 is YouTube: DASH representations at the standard
// resolutions 144p/240p/360p/480p/720p/1080p ("in our dataset all the
// observed resolutions take only a few standard values"), ~5 s media
// segments, and an average session duration around 180 seconds. This header
// models that content side: a bitrate ladder, a video description, and a
// seeded catalog generator with realistic duration spread.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace vqoe::sim {

/// The resolution rungs observed in the paper's dataset.
enum class Resolution : std::uint8_t { p144, p240, p360, p480, p720, p1080 };

inline constexpr int kNumResolutions = 6;

/// Vertical pixel count (144, 240, ...). This is the unit of the paper's
/// average-representation labelling rule (LD < 360 <= SD <= 480 < HD).
[[nodiscard]] int height(Resolution r);

/// Typical encoded video bitrate of a rung, in bits per second.
[[nodiscard]] double nominal_bitrate_bps(Resolution r);

/// Display name ("144p", ...).
[[nodiscard]] std::string to_string(Resolution r);

/// Resolution with the given height; throws std::invalid_argument otherwise.
[[nodiscard]] Resolution resolution_from_height(int h);

/// One encoding of a video.
struct Representation {
  Resolution resolution = Resolution::p360;
  double bitrate_bps = 0.0;  ///< actual encode bitrate (content-dependent)
};

/// A playable item with its encoding ladder.
struct VideoDescription {
  std::string video_id;            ///< opaque content identifier
  double duration_s = 180.0;       ///< media length
  double segment_duration_s = 5.0; ///< HAS segment length (media seconds)
  double audio_bitrate_bps = 128e3;
  /// Ascending ladder; traditional (progressive) playback uses exactly one
  /// entry of it.
  std::vector<Representation> ladder;

  /// Representation carrying a given resolution; throws std::out_of_range
  /// when the ladder does not include it.
  [[nodiscard]] const Representation& at(Resolution r) const;

  /// Highest rung whose bitrate is <= `budget_bps` (falls back to the
  /// lowest rung).
  [[nodiscard]] const Representation& best_under(double budget_bps) const;
};

/// Seeded random catalog: durations log-normal around ~180 s (clamped to
/// [30, 900] s), full six-rung ladders with +-15% content-dependent bitrate
/// variation.
class Catalog {
 public:
  Catalog(std::size_t size, std::uint64_t seed);

  [[nodiscard]] const std::vector<VideoDescription>& videos() const { return videos_; }

  /// Uniformly random item.
  [[nodiscard]] const VideoDescription& sample(std::mt19937_64& rng) const;

 private:
  std::vector<VideoDescription> videos_;
};

}  // namespace vqoe::sim

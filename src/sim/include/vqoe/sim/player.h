// Video player simulation: HTTP Adaptive Streaming and traditional
// progressive streaming.
//
// Reproduces the delivery mechanics Section 2.1 of the paper describes and
// Section 4 exploits for detection:
//
//  * start-up phase: the buffer is filled as fast as possible before
//    playback starts (fast start with short initial segments);
//  * steady state: ON-OFF pacing once the buffer reaches its high
//    watermark;
//  * stalls: the buffer drains to zero when throughput is below the media
//    bitrate, playback pauses, the player requests *small* chunks to refill
//    quickly (the chunk-size signature of Fig. 1), and resumes at a
//    threshold;
//  * representation switches (HAS only): the ABR picks a new rung and a new
//    start-up ramp begins, shrinking chunk sizes and inter-arrival times
//    before they grow back (the Δsize/Δt signature of Fig. 3);
//  * progressive sessions download one fixed representation with
//    range-request bursts (pacing chunks), which is what the operator proxy
//    logs for the 97% of sessions that were not adaptive.
//
// Both players consume a net::ChannelModel and a net::TcpModel and emit a
// SessionResult: the per-chunk log (what an operator sees) plus the ground
// truth (what the paper extracts from URIs and playback reports).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vqoe/net/channel.h"
#include "vqoe/net/tcp.h"
#include "vqoe/sim/abr.h"
#include "vqoe/sim/video.h"

namespace vqoe::sim {

/// One HTTP media object download as observed at the proxy, with the ground
/// truth (resolution, audio flag) that is only visible in cleartext.
struct ChunkEvent {
  double request_time_s = 0.0;  ///< session-relative request timestamp
  double arrival_time_s = 0.0;  ///< last byte at the client ("chunk time")
  std::uint64_t size_bytes = 0;
  Resolution resolution = Resolution::p360;  ///< ground truth (URI itag)
  bool is_audio = false;                     ///< ground truth (URI mime)
  net::TransportStats transport;
};

/// One rebuffering event (ground truth from playback reports).
struct StallEvent {
  double start_s = 0.0;
  double duration_s = 0.0;
};

/// Player tunables shared by both delivery modes.
struct PlayerConfig {
  double startup_buffer_s = 4.0;  ///< playback starts at this buffer level
  double resume_buffer_s = 2.5;   ///< playback resumes after a stall at this
  double high_watermark_s = 30.0; ///< ON-OFF pacing: pause download above
  double low_watermark_s = 24.0;  ///< ... and resume download below this
  AbrConfig abr;                  ///< HAS only
  /// Media seconds per segment during the session-start fast-start ramp.
  /// Moderately short segments: the point of fast start is requesting
  /// back-to-back, not tiny objects.
  std::vector<double> startup_ramp_segments_s = {2.5, 3.5};
  /// Media seconds per segment when re-buffering after a representation
  /// switch (the new rung's own start-up phase, Section 4.3).
  std::vector<double> switch_ramp_segments_s = {1.0, 1.5, 2.5, 3.5};
  /// Media seconds per segment while refilling after a buffer outage. The
  /// player grabs the smallest useful pieces first so playback resumes as
  /// soon as possible — the distinctly small chunks of Fig. 1.
  std::vector<double> recovery_ramp_segments_s = {0.5, 1.0, 1.75, 2.5, 3.5};
  /// On a representation switch the player plays the old-rung buffer down
  /// to this horizon before fetching the new rung (Section 4.3: "a new
  /// start-up phase is initiated for the new representation"). The drain
  /// produces the inter-arrival spike of Fig. 3; the subsequent fast-start
  /// ramp produces the small growing chunks.
  double switch_keep_buffer_s = 4.0;
  /// Progressive mode: steady-state range-request burst, expressed in media
  /// seconds. YouTube's traditional delivery throttled the stream to a small
  /// multiple of the playback rate, so burst *bytes* scale with the encode
  /// bitrate — just like adaptive segments do.
  double progressive_burst_media_s = 6.0;
  /// Progressive mode: first recovery burst after a stall, media seconds
  /// (doubles back up to the steady burst).
  double progressive_recovery_media_s = 0.5;
  /// Sessions whose rebuffering ratio exceeds this while playing are
  /// abandoned (Krishnan & Sitaraman viewer-behaviour effect the paper
  /// cites for its RR = 0.1 severity threshold).
  double abandon_rr = 0.45;
  /// HAS audio delivery. Muxed (default) folds the audio bitrate into every
  /// video segment — the dominant YouTube mobile format of the paper's
  /// measurement window. When true, audio ships as separate periodic
  /// segments (DASH separated streams).
  bool separate_audio = false;
  /// Audio segment length when separate_audio is set (media seconds).
  double audio_segment_s = 30.0;
};

/// Everything the simulator knows about one finished session.
struct SessionResult {
  std::string video_id;
  bool adaptive = true;
  std::vector<ChunkEvent> chunks;   ///< chronological
  std::vector<StallEvent> stalls;   ///< chronological, closed
  double startup_delay_s = 0.0;
  double total_duration_s = 0.0;    ///< first request -> end of playback
  double played_media_s = 0.0;
  bool abandoned = false;

  /// Ground-truth rebuffering ratio (eq. 1): Σ stall durations / session
  /// duration. 0 for degenerate zero-length sessions.
  [[nodiscard]] double rebuffering_ratio() const;
  [[nodiscard]] double stall_total_s() const;

  /// Media-time-weighted mean height of the video chunks — the μ of the
  /// paper's RQ labelling rule.
  [[nodiscard]] double average_height() const;

  /// Number of representation changes between consecutive video chunks.
  [[nodiscard]] std::size_t switch_count() const;

  /// Switch amplitude A of eq. 2: mean absolute rung distance between
  /// consecutive video segments; 0 when fewer than two video chunks.
  [[nodiscard]] double switch_amplitude() const;

  /// Video-only view of the chunk log (audio filtered out).
  [[nodiscard]] std::vector<const ChunkEvent*> video_chunks() const;
};

/// HTTP Adaptive Streaming player (DASH-like).
class HasPlayer {
 public:
  explicit HasPlayer(PlayerConfig config) : config_(std::move(config)) {}

  /// Simulates one full session of `video` over `channel`.
  /// @param seed private randomness (encoder noise, abandonment draw).
  [[nodiscard]] SessionResult play(const VideoDescription& video,
                                   net::ChannelModel& channel,
                                   std::uint64_t seed) const;

  [[nodiscard]] const PlayerConfig& config() const { return config_; }

 private:
  PlayerConfig config_;
};

/// Traditional progressive-download player: one representation, range
/// request bursts, ON-OFF pacing.
class ProgressivePlayer {
 public:
  explicit ProgressivePlayer(PlayerConfig config) : config_(std::move(config)) {}

  /// Simulates one session at the fixed representation `rep`.
  [[nodiscard]] SessionResult play(const VideoDescription& video,
                                   Resolution rep, net::ChannelModel& channel,
                                   std::uint64_t seed) const;

  [[nodiscard]] const PlayerConfig& config() const { return config_; }

 private:
  PlayerConfig config_;
};

}  // namespace vqoe::sim

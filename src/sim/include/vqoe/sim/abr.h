// Adaptive bitrate (ABR) control.
//
// Section 2.1: "The quality profile of the next segment is determined as a
// function of the throughput with which the previous segment was downloaded
// and the available seconds of playback in the buffer." This header provides
// exactly that controller plus the throughput estimator it feeds on. The
// controller is deliberately a classic rate-and-buffer hybrid (not a single
// vendor's algorithm): the paper's detectors must generalize across
// adaptation logics, and the workload generator can vary the controller's
// aggressiveness per session.
#pragma once

#include <cstddef>

#include "vqoe/sim/video.h"

namespace vqoe::sim {

/// Harmonic-mean-flavoured EWMA throughput estimator over observed chunk
/// goodputs. Harmonic weighting makes the estimate conservative after slow
/// chunks, matching player behaviour.
class ThroughputEstimator {
 public:
  /// @param alpha EWMA weight of the newest observation, in (0, 1].
  explicit ThroughputEstimator(double alpha = 0.35);

  /// Records one chunk download's goodput (bits/second, > 0).
  /// @param reliability in (0, 1]: down-weights observations from short
  ///        downloads, whose goodput is dominated by slow start rather than
  ///        by the path capacity. Clamped into [0.05, 1].
  void observe(double goodput_bps, double reliability = 1.0);

  /// Current estimate; 0 until the first observation.
  [[nodiscard]] double estimate_bps() const;

  [[nodiscard]] std::size_t observations() const { return n_; }

 private:
  double alpha_;
  double inv_rate_ewma_ = 0.0;  // EWMA of 1/goodput (harmonic domain)
  std::size_t n_ = 0;
};

/// Tunables of the hybrid ABR controller.
struct AbrConfig {
  /// Fraction of the throughput estimate the chosen bitrate may use.
  double safety_factor = 0.8;
  /// Below this buffer level (seconds) the controller panics one rung down.
  double panic_buffer_s = 6.0;
  /// Up-switch hysteresis: the next rung's bitrate must fit the budget with
  /// this extra margin before switching up.
  double up_margin = 1.25;
  /// Minimum segments between consecutive up-switches (dwell).
  int min_dwell_segments = 8;
  /// During start-up, only drop the rung when it overshoots the budget by
  /// this factor (fast-start segments systematically under-report
  /// throughput, so the controller must not trust them blindly).
  double startup_drop_factor = 1.3;
  /// Start-up rung before any throughput knowledge exists.
  Resolution initial = Resolution::p240;
  /// Cap (user/player setting, data-saver plans, small screens).
  Resolution max_resolution = Resolution::p1080;
};

/// Rate-and-buffer hybrid controller with up-switch hysteresis and dwell:
/// picks the highest sustainable rung, steps up one rung at a time, drops
/// immediately when the current rung stops being sustainable.
class AbrController {
 public:
  explicit AbrController(AbrConfig config) : config_(config) {}

  /// Decides the representation of the next segment.
  /// @param video          content being played (supplies the ladder).
  /// @param estimator      throughput knowledge so far.
  /// @param buffer_s       seconds of media currently buffered.
  /// @param current        representation of the previous segment.
  /// @param segments_since_switch segments downloaded since the last
  ///        representation change (dwell bookkeeping).
  /// @param in_startup     true until playback has started for the first
  ///        time (the fast-start phase).
  [[nodiscard]] Resolution decide(const VideoDescription& video,
                                  const ThroughputEstimator& estimator,
                                  double buffer_s, Resolution current,
                                  int segments_since_switch,
                                  bool in_startup) const;

  [[nodiscard]] const AbrConfig& config() const { return config_; }

 private:
  AbrConfig config_;
};

}  // namespace vqoe::sim

// Windowed ground truth from a simulated session — the labels behind the
// mid-session (vqoe::window) evaluation.
//
// The paper labels QoE per session; the windowed monitors report per
// window. To evaluate them, the simulator's ground truth must be sliced
// the same way the monitor slices the traffic: per window, what fraction
// of the wall clock was spent stalled (eq. 1 restricted to the window) and
// which representation was actually playing.
//
// Windows are half-open [i*hop, i*hop + length) intervals of the
// session-relative clock (anchor 0 = first request — the same anchor
// window::SessionWindows uses when the monitor sees the session's first
// record), emitted for every index whose start lies inside the session
// and truncated at the session end — matching the monitor's final_window
// rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vqoe/sim/player.h"

namespace vqoe::sim {

/// Ground truth of one window of a session.
struct WindowTruth {
  std::uint64_t index = 0;
  double start_s = 0.0;
  double end_s = 0.0;        ///< truncated at the session end when final
  bool final_window = false; ///< end_s was clipped to the session duration

  /// Stall seconds overlapping [start_s, end_s).
  double stall_s = 0.0;
  /// stall_s / (end_s - start_s): the window's rebuffering ratio.
  double rebuffering_ratio = 0.0;

  /// Video chunks whose request time falls in [start_s, end_s).
  std::size_t chunk_count = 0;
  /// Representation changes between consecutive video chunks requested
  /// inside the window.
  std::size_t switch_count = 0;
  /// Time-weighted mean height of the representation *playing* during the
  /// window: each video chunk's rung is active from its request until the
  /// next video chunk's request (the last until the session end). 0 when
  /// nothing was active (window before the first video request).
  double average_height = 0.0;
  /// The rung active for the longest span of the window — the "current
  /// representation" label. Meaningless when active_s == 0.
  Resolution representation = Resolution::p144;
  /// Seconds of the window during which some rung was active.
  double active_s = 0.0;
};

/// Slices `session` into windowed ground truth. `hop_s <= 0` means tumbling
/// (hop = length). Returns an empty vector for `length_s <= 0` or a
/// zero-duration session.
[[nodiscard]] std::vector<WindowTruth> windowed_truth(
    const SessionResult& session, double length_s, double hop_s = 0.0);

}  // namespace vqoe::sim

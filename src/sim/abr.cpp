#include "vqoe/sim/abr.h"

#include <algorithm>
#include <stdexcept>

namespace vqoe::sim {

ThroughputEstimator::ThroughputEstimator(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument{"ThroughputEstimator: alpha out of (0,1]"};
  }
}

void ThroughputEstimator::observe(double goodput_bps, double reliability) {
  if (goodput_bps <= 0.0) {
    throw std::invalid_argument{"ThroughputEstimator: goodput must be > 0"};
  }
  const double inv = 1.0 / goodput_bps;
  if (n_ == 0) {
    inv_rate_ewma_ = inv;
  } else {
    const double a = alpha_ * std::clamp(reliability, 0.05, 1.0);
    inv_rate_ewma_ = a * inv + (1.0 - a) * inv_rate_ewma_;
  }
  ++n_;
}

double ThroughputEstimator::estimate_bps() const {
  if (n_ == 0 || inv_rate_ewma_ <= 0.0) return 0.0;
  return 1.0 / inv_rate_ewma_;
}

Resolution AbrController::decide(const VideoDescription& video,
                                 const ThroughputEstimator& estimator,
                                 double buffer_s, Resolution current,
                                 int segments_since_switch,
                                 bool in_startup) const {
  current = std::min(current, config_.max_resolution);
  if (estimator.observations() == 0) {
    return std::min(config_.initial, config_.max_resolution);
  }

  const double budget = estimator.estimate_bps() * config_.safety_factor;
  const double current_bitrate = video.at(current).bitrate_bps;

  if (in_startup) {
    // Fast-start segments under-report throughput; only bail out of the
    // start-up rung when it is clearly unsustainable.
    if (current_bitrate > budget * config_.startup_drop_factor &&
        current > Resolution::p144) {
      return static_cast<Resolution>(static_cast<int>(current) - 1);
    }
    return current;
  }

  if (buffer_s < config_.panic_buffer_s && current > Resolution::p144 &&
      current_bitrate > budget) {
    // Panic: the buffer is thin and the rung is unsustainable — drop all
    // the way to the throughput pick.
    return std::min(video.best_under(budget).resolution, current);
  }

  if (current_bitrate > budget && current > Resolution::p144) {
    // Unsustainable: step down one rung (gradual downscale).
    return static_cast<Resolution>(static_cast<int>(current) - 1);
  }

  // Sustainable: consider one rung up, with hysteresis and dwell.
  if (current < config_.max_resolution &&
      segments_since_switch >= config_.min_dwell_segments) {
    const auto next = static_cast<Resolution>(static_cast<int>(current) + 1);
    if (video.at(next).bitrate_bps * config_.up_margin <= budget) {
      return next;
    }
  }
  return current;
}

}  // namespace vqoe::sim

// Burst reassembly: recovering HTTP transactions from flow slices.
//
// A video chunk download appears on the wire as a downstream byte burst
// bounded by quiet periods (the player's pacing / think time). This module
// segments each flow's slice sequence into bursts and renders them back as
// pseudo weblog records so the rest of the framework — session
// reconstruction, feature construction, detectors — runs unchanged on
// flow-level input. Timing precision (and with it feature quality) is
// limited by the export granularity; bench/ext_flow_view quantifies the
// cost.
#pragma once

#include <span>
#include <vector>

#include "vqoe/flow/export.h"

namespace vqoe::flow {

struct BurstOptions {
  /// A gap of at least this many seconds with no downstream bytes ends the
  /// current burst. Must be >= the export slice to be meaningful.
  double quiet_gap_s = 2.0;
  /// Bursts smaller than this are dropped (keep-alives, control chatter).
  std::uint64_t min_burst_bytes = 4'000;
};

/// One recovered transaction-like burst.
struct Burst {
  FlowKey key;
  double start_s = 0.0;  ///< start of the first contributing slice
  double end_s = 0.0;    ///< end of the last contributing slice
  std::uint64_t bytes = 0;
};

/// Segments flow slices (any order, any number of flows) into per-flow
/// bursts, time-ascending per flow.
[[nodiscard]] std::vector<Burst> segment_bursts(
    std::span<const FlowSlice> slices, const BurstOptions& options = {});

/// Renders bursts as media-like weblog records (host and subscriber from
/// the flow key; no URI metadata, transport annotations zeroed) so
/// session::reconstruct and the detectors consume them directly. This is
/// the flow-level analogue of the encrypted proxy view.
[[nodiscard]] std::vector<trace::WeblogRecord> bursts_to_weblogs(
    std::span<const Burst> bursts);

}  // namespace vqoe::flow

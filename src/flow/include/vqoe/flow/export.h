// Flow-record export: the NetFlow/IPFIX view of video traffic.
//
// The paper's vantage point is an HTTP proxy that logs one record per
// transaction. Many operators only have flow-level export: per-connection
// byte/packet counters sampled on a fixed interval. This module synthesizes
// that view from proxy weblogs — each HTTP transaction's response bytes are
// spread over its transfer window and accumulated into time-aligned slices
// of the underlying (persistent) connection — so the degraded-observability
// experiment (bench/ext_flow_view) can ask: how much QoE visibility
// survives when the operator sees flows instead of transactions?
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "vqoe/trace/weblog.h"

namespace vqoe::flow {

/// Connection identity as a flow exporter sees it (5-tuple reduced to what
/// matters here: subscriber, server, connection instance).
struct FlowKey {
  std::string subscriber_id;
  std::string server_host;
  std::uint32_t connection_id = 0;  ///< increments when the connection re-opens

  [[nodiscard]] auto operator<=>(const FlowKey&) const = default;
};

/// One export interval of one flow.
struct FlowSlice {
  FlowKey key;
  double start_s = 0.0;  ///< slice window [start, start + slice_s)
  double end_s = 0.0;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
  std::uint32_t packets_down = 0;
  std::uint32_t packets_up = 0;
};

struct FlowExportOptions {
  /// Export granularity: counters are accumulated per this interval. 0.1 s
  /// approximates a packet tap; 1-2 s is typical router export.
  double slice_s = 1.0;
  /// Connection idle timeout: a transaction starting after this much
  /// silence on the same (subscriber, host) pair opens a new connection.
  double idle_timeout_s = 15.0;
  /// MSS used to derive packet counts from byte counts.
  double mss_bytes = 1448.0;
};

/// Converts proxy weblogs into flow slices. Response bytes are spread
/// uniformly over each transaction's transfer window; request/ACK overhead
/// appears as upstream bytes. Slices are returned grouped by flow (stable
/// key order), time-ascending within each flow, and only cover intervals
/// with traffic.
[[nodiscard]] std::vector<FlowSlice> export_flows(
    std::span<const trace::WeblogRecord> records,
    const FlowExportOptions& options = {});

}  // namespace vqoe::flow

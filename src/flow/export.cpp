#include "vqoe/flow/export.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace vqoe::flow {

namespace {

struct SliceAccumulator {
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
};

}  // namespace

std::vector<FlowSlice> export_flows(std::span<const trace::WeblogRecord> records,
                                    const FlowExportOptions& options) {
  // Sort record pointers by time so connection idle-timeout bookkeeping is
  // well defined regardless of input order.
  std::vector<const trace::WeblogRecord*> sorted;
  sorted.reserve(records.size());
  for (const auto& r : records) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const trace::WeblogRecord* a, const trace::WeblogRecord* b) {
                     return a->timestamp_s < b->timestamp_s;
                   });

  // Connection instances per (subscriber, host); each open connection owns
  // its own slice accumulator so the hot loop never touches string keys.
  struct FlowData {
    FlowKey key;
    std::map<std::int64_t, SliceAccumulator> slices;
  };
  struct ConnState {
    std::uint32_t connection_id = 0;
    double last_activity_s = -1e18;
    std::size_t flow_index = 0;
  };
  std::map<std::pair<std::string, std::string>, ConnState> connections;
  std::vector<FlowData> flows;

  const double slice = std::max(options.slice_s, 1e-3);
  for (const trace::WeblogRecord* r : sorted) {
    ConnState& conn = connections[{r->subscriber_id, r->host}];
    if (conn.last_activity_s < -1e17 ||
        r->timestamp_s - conn.last_activity_s > options.idle_timeout_s) {
      ++conn.connection_id;  // TCP connection re-opened
      conn.flow_index = flows.size();
      flows.push_back(
          {FlowKey{r->subscriber_id, r->host, conn.connection_id}, {}});
    }
    conn.last_activity_s = std::max(conn.last_activity_s, r->arrival_time_s());
    auto& flow_slices = flows[conn.flow_index].slices;

    // Upstream: the HTTP request plus ~1 ACK per 2 MSS of response.
    const double request_bytes =
        450.0 + static_cast<double>(r->object_size_bytes) /
                    (2.0 * options.mss_bytes) * 66.0;
    const auto req_idx =
        static_cast<std::int64_t>(std::floor(r->timestamp_s / slice));
    flow_slices[req_idx].bytes_up += static_cast<std::uint64_t>(request_bytes);

    // Downstream: response bytes spread uniformly over the transfer window.
    const double t0 = r->timestamp_s;
    const double t1 = std::max(r->arrival_time_s(), t0 + 1e-6);
    const double span_s = t1 - t0;
    const auto first =
        static_cast<std::int64_t>(std::floor(t0 / slice));
    const auto last = static_cast<std::int64_t>(std::floor((t1 - 1e-9) / slice));
    for (std::int64_t idx = first; idx <= last; ++idx) {
      const double window_start = std::max(t0, static_cast<double>(idx) * slice);
      const double window_end =
          std::min(t1, static_cast<double>(idx + 1) * slice);
      const double share = (window_end - window_start) / span_s;
      flow_slices[idx].bytes_down += static_cast<std::uint64_t>(
          std::llround(share * static_cast<double>(r->object_size_bytes)));
    }
  }

  std::vector<FlowSlice> out;
  std::size_t total = 0;
  for (const FlowData& flow : flows) total += flow.slices.size();
  out.reserve(total);
  for (const FlowData& flow : flows) {
    for (const auto& [idx, acc] : flow.slices) {
      if (acc.bytes_down == 0 && acc.bytes_up == 0) continue;
      FlowSlice s;
      s.key = flow.key;
      s.start_s = static_cast<double>(idx) * slice;
      s.end_s = s.start_s + slice;
      s.bytes_down = acc.bytes_down;
      s.bytes_up = acc.bytes_up;
      s.packets_down = static_cast<std::uint32_t>(
          std::ceil(static_cast<double>(acc.bytes_down) / options.mss_bytes));
      s.packets_up = static_cast<std::uint32_t>(
          std::ceil(static_cast<double>(acc.bytes_up) / 66.0));
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace vqoe::flow

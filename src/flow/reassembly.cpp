#include "vqoe/flow/reassembly.h"

#include <algorithm>
#include <map>
#include <vector>

namespace vqoe::flow {

std::vector<Burst> segment_bursts(std::span<const FlowSlice> slices,
                                  const BurstOptions& options) {
  // Sort once by (flow, time); one linear scan then segments every flow.
  std::vector<const FlowSlice*> sorted;
  sorted.reserve(slices.size());
  for (const FlowSlice& s : slices) {
    if (s.bytes_down == 0) continue;  // upstream-only chatter
    sorted.push_back(&s);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FlowSlice* a, const FlowSlice* b) {
                     if (a->key != b->key) return a->key < b->key;
                     return a->start_s < b->start_s;
                   });

  std::vector<Burst> bursts;
  Burst current;
  bool open = false;
  auto close = [&]() {
    if (open && current.bytes >= options.min_burst_bytes) {
      bursts.push_back(current);
    }
    open = false;
  };
  for (const FlowSlice* s : sorted) {
    const bool same_flow = open && s->key == current.key;
    if (open &&
        (!same_flow || s->start_s - current.end_s >= options.quiet_gap_s)) {
      close();
    }
    if (!open) {
      current = Burst{};
      current.key = s->key;
      current.start_s = s->start_s;
      open = true;
    }
    current.end_s = std::max(current.end_s, s->end_s);
    current.bytes += s->bytes_down;
  }
  close();
  return bursts;
}

std::vector<trace::WeblogRecord> bursts_to_weblogs(std::span<const Burst> bursts) {
  std::vector<trace::WeblogRecord> out;
  out.reserve(bursts.size());
  for (const Burst& b : bursts) {
    trace::WeblogRecord r;
    r.subscriber_id = b.key.subscriber_id;
    r.host = b.key.server_host;
    r.timestamp_s = b.start_s;
    r.transaction_time_s = std::max(1e-3, b.end_s - b.start_s);
    r.object_size_bytes = b.bytes;
    r.kind = trace::RecordKind::media;
    r.encrypted = true;  // flow export never sees URIs
    out.push_back(std::move(r));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const trace::WeblogRecord& a, const trace::WeblogRecord& b) {
                     return a.timestamp_s < b.timestamp_s;
                   });
  return out;
}

}  // namespace vqoe::flow

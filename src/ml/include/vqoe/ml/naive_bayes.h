// Gaussian Naive Bayes classifier.
//
// A period-appropriate baseline (Weka's default toolbox next to Random
// Forest): per-class independent Gaussians over each feature. Used by the
// classifier-comparison ablation of the Table 3 bench to show what the
// paper's Random Forest choice buys over simpler learners.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "vqoe/ml/dataset.h"

namespace vqoe::ml {

/// Per-class feature Gaussians with Laplace-smoothed priors. Features with
/// zero in-class variance get a small floor so unseen values do not produce
/// -inf log-likelihoods.
class GaussianNaiveBayes {
 public:
  GaussianNaiveBayes() = default;

  /// Fits class priors and per-class feature means/variances.
  static GaussianNaiveBayes fit(const Dataset& data);

  /// Most probable class for one raw feature vector.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Unnormalized per-class log posteriors (prior + likelihood).
  [[nodiscard]] std::vector<double> log_posterior(
      std::span<const double> features) const;

  [[nodiscard]] bool trained() const { return !priors_.empty(); }
  [[nodiscard]] std::size_t num_classes() const { return priors_.size(); }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> priors_;  // log priors per class
  // Row-major [class][feature] means and variances.
  std::vector<double> means_;
  std::vector<double> variances_;
  std::size_t cols_ = 0;
};

}  // namespace vqoe::ml

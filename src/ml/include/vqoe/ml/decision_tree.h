// CART-style classification tree with Gini impurity splits.
//
// Trained on a quantile-binned view of the data (binning.h) for speed;
// prediction works on raw feature vectors because every internal node stores
// the raw-value threshold corresponding to its bin split. Supports random
// feature subsampling per node (mtry), which is what turns a bag of these
// trees into the Random Forest of Breiman (2001) used throughout the paper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <random>
#include <span>
#include <vector>

#include "vqoe/ml/binning.h"
#include "vqoe/ml/dataset.h"

namespace vqoe::ml {

/// Hyper-parameters shared by DecisionTree and RandomForest.
struct TreeParams {
  int max_depth = 24;                ///< Hard depth cap (root is depth 0).
  std::size_t min_samples_leaf = 2;  ///< Minimum rows on each side of a split.
  std::size_t min_samples_split = 4; ///< Do not split nodes smaller than this.
  /// Features examined per node. 0 means "all" for a standalone tree and
  /// floor(sqrt(cols)) inside a forest.
  int mtry = 0;
};

/// A trained classification tree. Immutable after training.
class DecisionTree {
 public:
  /// Training/persistence node layout. Inference-oriented consumers
  /// (CompactForest) read this through nodes()/leaf_probas() and compile
  /// their own representation.
  struct Node {
    std::int32_t feature = -1;   ///< -1 marks a leaf.
    double threshold = 0.0;      ///< go left when x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t proba_offset = -1;  ///< leaves: index into leaf_probas().
  };

  DecisionTree() = default;

  /// Fits a tree on the rows of `data` given by `row_indices` (duplicates
  /// allowed — bootstrap samples pass repeated indices). `binned` must have
  /// been built from the same dataset.
  ///
  /// @param rng used only when params.mtry restricts the features per node.
  static DecisionTree fit(const Dataset& data, const BinnedMatrix& binned,
                          std::span<const std::size_t> row_indices,
                          const TreeParams& params, std::mt19937_64& rng,
                          std::size_t num_classes);

  /// Class-probability estimate for one raw feature vector (the class
  /// frequencies of the leaf the example falls in).
  [[nodiscard]] std::span<const double> predict_proba(
      std::span<const double> features) const;

  /// argmax of predict_proba (ties broken toward the lower class index).
  [[nodiscard]] int predict(std::span<const double> features) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::span<const Node> nodes() const { return nodes_; }
  /// Concatenated per-leaf class distributions Node::proba_offset indexes.
  [[nodiscard]] std::span<const double> leaf_probas() const { return probas_; }
  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] int depth() const;
  [[nodiscard]] bool trained() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

  /// Total Gini impurity decrease contributed by each feature column
  /// (unnormalized); basis for the forest's feature importance.
  [[nodiscard]] const std::vector<double>& impurity_importance() const {
    return importance_;
  }

  /// Writes the tree in the line-based text format of model_io.h.
  void save(std::ostream& os) const;
  /// Reads a tree written by save(). Throws std::runtime_error on malformed
  /// input.
  static DecisionTree load(std::istream& is);

  /// Human-readable indented dump ("feature <= threshold" per split, class
  /// distribution per leaf) for model inspection. Feature/class names are
  /// optional; indices are printed when absent.
  [[nodiscard]] std::string to_text(
      std::span<const std::string> feature_names = {},
      std::span<const std::string> class_names = {}) const;

 private:
  std::vector<Node> nodes_;
  std::vector<double> probas_;  ///< concatenated per-leaf class distributions
  std::vector<double> importance_;
  std::size_t num_classes_ = 0;
};

}  // namespace vqoe::ml

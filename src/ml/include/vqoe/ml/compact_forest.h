// Flattened, cache-optimized inference representation of a RandomForest.
//
// DecisionTree's pointer-style layout (32-byte nodes, two explicit child
// indices, double thresholds, per-leaf double distributions) is what
// training wants; serving wants the opposite. CompactForest::compile()
// renumbers every tree depth-first left-first and packs the whole forest
// into structure-of-arrays form inside ONE allocation:
//
//   threshold[i]   float    split value of node i
//   feature[i]     int32    split column; < 0 marks a leaf, and the leaf's
//                           class-distribution offset is recovered as
//                           ~feature[i] (the sign-bit space carries it)
//   right[i]       uint32   forest-global index of the right child; the
//                           left child is implicit at i + 1 because of the
//                           depth-first left-first numbering
//   probas[..]     float    per-leaf class distributions, in leaf
//                           visitation order (num_classes() each)
//   roots[t]       uint32   forest-global root index of tree t
//
// A root-to-leaf walk therefore touches three parallel 4-byte streams that
// advance mostly by +1, instead of chasing 32-byte nodes scattered over
// num_trees heap blocks — and the left-branch step is branch-light
// (idx + 1 vs a loaded index). Single-row predict() does no heap work;
// the batch kernels walk row-blocks x tree-tiles so a tile's node arrays
// stay in L1/L2 across the whole row block (rows partitioned on vqoe::par,
// votes accumulated per row in tree order, so results are bit-identical to
// single-row calls and to every thread count).
//
// compile() validates tree shape — in-bounds children and feature indices,
// in-bounds leaf distributions, no cycles or shared subtrees — and throws
// instead of mirroring a malformed tree into the flat arrays; a walk over
// a compiled forest cannot go out of bounds or fail to terminate.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vqoe/ml/dataset.h"

namespace vqoe::ml {

class RandomForest;

/// Immutable inference-only forest. Cheap to copy relative to the trees it
/// was compiled from; prediction is const and thread-compatible.
class CompactForest {
 public:
  CompactForest() = default;

  /// Flattens a trained forest. Throws std::invalid_argument when the
  /// forest is untrained or any tree is malformed (out-of-range child,
  /// feature or probability index; cycle; shared subtree).
  static CompactForest compile(const RandomForest& forest);

  /// Majority (probability-summed) vote for one row. No heap traffic.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Normalized class probabilities for one row, written into `out`
  /// (size must be num_classes()). No heap traffic.
  void predict_proba_into(std::span<const double> features,
                          std::span<double> out) const;

  /// Blocked batch prediction over every dataset row (row width must match
  /// num_features(); name checking is the caller's concern). Rows are
  /// partitioned across the vqoe::par pool.
  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const;

  /// Row-major normalized probabilities (rows() x num_classes()), computed
  /// with the same blocked kernel.
  [[nodiscard]] std::vector<double> predict_proba_all(const Dataset& data) const;

  [[nodiscard]] bool compiled() const { return num_trees_ > 0; }
  [[nodiscard]] std::size_t num_trees() const { return num_trees_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }
  [[nodiscard]] std::size_t node_count() const { return num_nodes_; }
  /// Size of the one backing allocation in bytes.
  [[nodiscard]] std::size_t bytes() const {
    return arena_.size() * sizeof(std::uint32_t);
  }

 private:
  // The arena is a single uint32 buffer; floats live in it via bit_cast
  // (same size and alignment, no aliasing UB). Offsets index into it.
  [[nodiscard]] float threshold(std::size_t i) const {
    return std::bit_cast<float>(arena_[threshold_off_ + i]);
  }
  [[nodiscard]] std::int32_t feature(std::size_t i) const {
    return static_cast<std::int32_t>(arena_[feature_off_ + i]);
  }
  [[nodiscard]] std::uint32_t right(std::size_t i) const {
    return arena_[right_off_ + i];
  }
  [[nodiscard]] float proba(std::size_t i) const {
    return std::bit_cast<float>(arena_[proba_off_ + i]);
  }
  [[nodiscard]] std::uint32_t root(std::size_t t) const {
    return arena_[roots_off_ + t];
  }

  /// Index of the leaf the (float-narrowed) row reaches in the tree
  /// rooted at `idx`.
  [[nodiscard]] std::size_t walk(const float* row, std::size_t idx) const;

  /// Sums unnormalized votes for one row over all trees, in tree order.
  /// Narrows the row to float once (matching the stored thresholds) so no
  /// walk step widens on its dependency chain; every compact path narrows
  /// identically, keeping single-row and batch results bit-identical.
  void accumulate(std::span<const double> features,
                  std::span<double> votes) const;

  /// Core walk kernel: votes for one row over trees [t0, t1), accumulated
  /// in ascending tree order. Keeps four branch-free tree walks in
  /// flight, each slot refilling itself from its own strided queue of
  /// trees the moment it reaches a leaf, so four serial node-load chains
  /// overlap for the whole range.
  void accumulate_trees(const float* row, std::size_t t0, std::size_t t1,
                        std::span<double> votes) const;

  /// The blocked kernel: votes for rows [lo, hi) of `data`, accumulated in
  /// tree order per row into `votes` ((hi-lo) x num_classes(), zeroed).
  void accumulate_block(const Dataset& data, std::size_t lo, std::size_t hi,
                        std::span<double> votes) const;

  void check_width(const Dataset& data, const char* caller) const;

  std::vector<std::uint32_t> arena_;  ///< the forest's one allocation
  std::size_t threshold_off_ = 0;
  std::size_t feature_off_ = 0;
  std::size_t right_off_ = 0;
  std::size_t proba_off_ = 0;
  std::size_t roots_off_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t num_trees_ = 0;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
};

}  // namespace vqoe::ml

// AdaBoost.SAMME over shallow CART trees.
//
// The third period-appropriate learner of the classifier-comparison
// ablation (Weka shipped AdaBoostM1; SAMME is its multi-class form). Weak
// learners are depth-limited trees from decision_tree.h trained on weighted
// bootstrap resamples (boosting by resampling).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "vqoe/ml/dataset.h"
#include "vqoe/ml/decision_tree.h"

namespace vqoe::ml {

struct AdaBoostParams {
  int rounds = 60;     ///< boosting iterations (weak learners)
  int max_depth = 2;   ///< weak learner depth
  std::uint64_t seed = 1;
};

/// Multi-class AdaBoost (SAMME): each round fits a weak tree on a
/// weight-proportional resample, earns a stage weight
/// α = ln((1-ε)/ε) + ln(K-1), and re-weights misclassified examples by
/// e^α. Rounds with ε >= (K-1)/K are discarded and re-drawn; training stops
/// early when a weak learner is perfect.
class AdaBoost {
 public:
  AdaBoost() = default;

  static AdaBoost fit(const Dataset& data, const AdaBoostParams& params = {});

  /// Weighted vote over the weak learners.
  [[nodiscard]] int predict(std::span<const double> features) const;

  [[nodiscard]] std::size_t rounds_used() const { return learners_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] bool trained() const { return !learners_.empty(); }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

 private:
  std::vector<DecisionTree> learners_;
  std::vector<double> alphas_;
  std::vector<std::string> feature_names_;
  std::size_t num_classes_ = 0;
};

}  // namespace vqoe::ml

// Model-agnostic permutation feature importance.
//
// Complements the Gini importances of random_forest.h and the information
// gains of Tables 2/5 with the standard held-out measure: how much accuracy
// a model loses when one feature column is shuffled. Works with any
// predictor exposing predict(span<const double>) -> int.
#pragma once

#include <functional>
#include <random>
#include <span>
#include <vector>

#include "vqoe/ml/dataset.h"

namespace vqoe::ml {

/// Accuracy of a generic predictor over a dataset.
[[nodiscard]] double predictor_accuracy(
    const std::function<int(std::span<const double>)>& predict,
    const Dataset& data);

/// Mean accuracy drop per feature when that column is permuted across the
/// rows of `data` (repeated `repeats` times, averaged). Values can be
/// slightly negative for useless features; larger = more important.
///
/// Columns are evaluated concurrently on the vqoe::par pool: `predict`
/// must be safe to call from several threads at once (a const trained
/// model is; a stateful closure is not). All permutations are drawn from
/// `rng` up front in (column, repeat) order, so results and the RNG state
/// after the call match the sequential implementation exactly.
[[nodiscard]] std::vector<double> permutation_importance(
    const std::function<int(std::span<const double>)>& predict,
    const Dataset& data, std::mt19937_64& rng, int repeats = 3);

}  // namespace vqoe::ml

// Stratified k-fold cross-validation.
//
// The paper's models are assessed with 10-fold cross-validation (Section 4),
// training each fold on class-balanced data and testing on the untouched
// fold so that reported precision/recall reflect the true class skew.
#pragma once

#include <functional>
#include <random>
#include <vector>

#include "vqoe/ml/dataset.h"
#include "vqoe/ml/metrics.h"
#include "vqoe/ml/random_forest.h"

namespace vqoe::ml {

/// Partition of [0, rows) into k stratified folds: every fold holds roughly
/// the same class mix as the whole dataset.
[[nodiscard]] std::vector<std::vector<std::size_t>> stratified_folds(
    const Dataset& data, int k, std::mt19937_64& rng);

struct CrossValidationOptions {
  int folds = 10;
  /// Balance the training portion of every fold by undersampling, as the
  /// paper does before training.
  bool balance_training = true;
  std::uint64_t seed = 7;
};

/// Cross-validates a Random Forest configuration on `data` and returns the
/// confusion matrix accumulated over all held-out folds.
[[nodiscard]] ConfusionMatrix cross_validate(const Dataset& data,
                                             const ForestParams& forest_params,
                                             const CrossValidationOptions& options = {});

/// Generic variant: `train` receives the (possibly balanced) training set
/// and must return a predictor usable as `predict(features) -> int`.
[[nodiscard]] ConfusionMatrix cross_validate_with(
    const Dataset& data,
    const std::function<std::function<int(std::span<const double>)>(const Dataset&)>& train,
    const CrossValidationOptions& options = {});

}  // namespace vqoe::ml

// Tabular dataset with named feature columns and integer class labels.
//
// This is the interchange type between the feature-construction layer
// (src/core/features.*) and the learning algorithms. The paper trains on
// class-balanced data and evaluates on the original distribution
// (Section 4.1, "Training and Testing the Predictive Model"), so the class
// offers stratified splitting and balancing primitives in addition to basic
// row/column selection.
#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace vqoe::ml {

/// Row-major numeric dataset. Invariants: every row has exactly
/// `feature_names().size()` values, `labels().size() == rows()`, and every
/// label is in [0, num_classes()).
class Dataset {
 public:
  Dataset() = default;

  /// @param feature_names column names (must be unique; checked).
  /// @param class_names   display names of the label values; label `i`
  ///                      refers to class_names[i].
  Dataset(std::vector<std::string> feature_names,
          std::vector<std::string> class_names);

  /// Appends one example. Throws std::invalid_argument when the row width
  /// does not match or the label is out of range.
  void add(std::vector<double> row, int label);

  [[nodiscard]] std::size_t rows() const { return labels_.size(); }
  [[nodiscard]] std::size_t cols() const { return feature_names_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return class_names_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }

  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }

  /// Index of a feature column by name; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t feature_index(const std::string& name) const;

  [[nodiscard]] std::span<const double> row(std::size_t i) const;
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }
  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return x_[row * cols() + col];
  }

  /// One full feature column, materialized.
  [[nodiscard]] std::vector<double> column(std::size_t col) const;

  /// Number of examples carrying each label, indexed by label value.
  [[nodiscard]] std::vector<std::size_t> class_counts() const;

  /// New dataset containing only the named feature columns (ground-truth
  /// labels are preserved). Order of `names` defines the new column order.
  [[nodiscard]] Dataset project(std::span<const std::string> names) const;

  /// New dataset containing the given rows (indices may repeat, enabling
  /// bootstrap resampling and oversampling).
  [[nodiscard]] Dataset select_rows(std::span<const std::size_t> indices) const;

  /// Balances classes by random undersampling: every class is reduced to the
  /// size of the smallest non-empty class. Mirrors the paper's "balance the
  /// number of instances among the three classes before training".
  [[nodiscard]] Dataset balanced_undersample(std::mt19937_64& rng) const;

  /// Balances classes by random oversampling (with replacement) to the size
  /// of the largest class.
  [[nodiscard]] Dataset balanced_oversample(std::mt19937_64& rng) const;

  /// Stratified split into a training and a test set. `test_fraction` of
  /// each class (rounded down, at least 1 when the class has >= 2 examples)
  /// goes to the test set.
  [[nodiscard]] std::pair<Dataset, Dataset> stratified_split(
      double test_fraction, std::mt19937_64& rng) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
  std::vector<double> x_;  // row-major, rows() x cols()
  std::vector<int> labels_;
};

}  // namespace vqoe::ml

// k-nearest-neighbours classifier with z-score feature normalization.
//
// The second baseline of the classifier-comparison ablation. Brute-force
// search is intentional: at the corpus sizes of the benches it is fast
// enough, and exactness keeps the comparison clean.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "vqoe/ml/dataset.h"

namespace vqoe::ml {

class KnnClassifier {
 public:
  KnnClassifier() = default;

  /// Stores the (z-score normalized) training set.
  /// @param k neighbourhood size; clamped to the training size. Must be >= 1.
  static KnnClassifier fit(const Dataset& data, int k = 5);

  /// Majority vote over the k nearest training examples (Euclidean distance
  /// in normalized space; ties toward the lower class index).
  [[nodiscard]] int predict(std::span<const double> features) const;

  [[nodiscard]] bool trained() const { return !labels_.empty(); }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> x_;  // normalized, row-major
  std::vector<int> labels_;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  std::size_t cols_ = 0;
  std::size_t num_classes_ = 0;
  int k_ = 5;
};

}  // namespace vqoe::ml

// Random Forest classifier (Breiman 2001).
//
// The paper's stall-detection and average-representation models are both
// Random Forests ("we use Machine Learning and in particular the Random
// Forest algorithm and 10-fold cross-validation", Section 4). This
// implementation bags histogram-based CART trees with per-node feature
// subsampling and offers out-of-bag accuracy and Gini feature importances.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "vqoe/ml/dataset.h"
#include "vqoe/ml/decision_tree.h"

namespace vqoe::ml {

class CompactForest;

struct ForestParams {
  int num_trees = 60;
  TreeParams tree;       ///< tree.mtry == 0 selects floor(sqrt(cols)).
  std::uint64_t seed = 1;
  bool compute_oob = false;  ///< track out-of-bag votes during fit()
};

// Training and batch prediction run on the vqoe::par pool (VQOE_THREADS /
// par::set_threads). Each tree draws its bootstrap and per-node feature
// subsets from an RNG derived from (seed, tree index), and all reductions
// (importance, OOB votes) are merged in tree order, so the fitted forest —
// down to the bytes save() writes — is identical for every thread count.

/// A trained forest. Copyable; prediction is const and thread-compatible.
class RandomForest {
 public:
  RandomForest() = default;

  /// Fits `params.num_trees` trees on bootstrap resamples of `data`.
  static RandomForest fit(const Dataset& data, const ForestParams& params);

  /// Majority (probability-averaged) vote over all trees.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Averaged class-probability vector (size == num_classes()).
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;

  /// Allocation-free predict_proba: writes the normalized distribution into
  /// `out` (size must be num_classes()). Streaming callers keep one scratch
  /// buffer per monitor/shard instead of constructing a vector per session.
  void predict_proba_into(std::span<const double> features,
                          std::span<double> out) const;

  /// Predicts every row of a dataset that has the same column layout as the
  /// training data (checked by name). Rows are partitioned across the
  /// vqoe::par pool; each worker reuses one vote buffer for its whole
  /// partition (no per-row allocation).
  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const;

  /// Averaged class-probability vectors for every row, row-major
  /// (rows() * num_classes()), computed like predict_all.
  [[nodiscard]] std::vector<double> predict_proba_all(const Dataset& data) const;

  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  [[nodiscard]] bool trained() const { return !trees_.empty(); }
  [[nodiscard]] const std::vector<DecisionTree>& trees() const { return trees_; }

  /// The flattened inference representation (compact_forest.h), compiled
  /// and cached by fit() and load(); null only on a default-constructed
  /// forest. Shared (immutable) across copies of this forest.
  [[nodiscard]] const CompactForest* compact() const { return compact_.get(); }

  /// Routes predict/predict_proba/predict_all through the cached
  /// CompactForest (default) or the legacy tree-walking path. The off
  /// switch exists for benchmarking the layouts against each other.
  void set_use_compact(bool use) { use_compact_ = use; }
  [[nodiscard]] bool use_compact() const { return use_compact_; }

  /// Out-of-bag accuracy estimate; present only when params.compute_oob.
  [[nodiscard]] std::optional<double> oob_accuracy() const { return oob_accuracy_; }

  /// Mean decrease in Gini impurity per feature, normalized to sum to 1
  /// (all-zero if no split was ever made).
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// Persists the trained forest as line-based text (train offline once,
  /// load on the monitoring path — the paper's Section 8 deployment).
  void save(std::ostream& os) const;
  /// Loads a forest written by save(). Throws std::runtime_error on
  /// malformed input.
  static RandomForest load(std::istream& is);

 private:
  /// Sums unnormalized tree votes for one row into `votes` (zeroed by the
  /// caller, size num_classes()).
  void accumulate_votes(std::span<const double> features,
                        std::span<double> votes) const;

  /// Compiles and caches the CompactForest; fit()/load() epilogue. Throws
  /// std::invalid_argument when a loaded tree is malformed in a way the
  /// per-tree bounds checks cannot see (cycles, shared subtrees).
  void compile_compact();

  [[nodiscard]] bool compact_active() const {
    return use_compact_ && compact_ != nullptr;
  }

  std::vector<DecisionTree> trees_;
  std::vector<std::string> feature_names_;
  std::vector<double> importance_raw_;
  std::size_t num_classes_ = 0;
  std::optional<double> oob_accuracy_;
  std::shared_ptr<const CompactForest> compact_;
  bool use_compact_ = true;
};

}  // namespace vqoe::ml

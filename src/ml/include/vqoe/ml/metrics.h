// Classifier evaluation metrics.
//
// The paper reports every model as a table of per-class TP Rate, FP Rate,
// Precision and Recall plus a weighted average row (Tables 3, 6, 8, 10) and
// a row-normalized confusion matrix (Tables 4, 7, 9, 11). ConfusionMatrix
// reproduces exactly those quantities.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vqoe::ml {

/// Accumulates (actual, predicted) label pairs and derives the metrics the
/// paper tabulates.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::vector<std::string> class_names);

  /// Records one prediction. Labels must be in [0, num_classes()).
  void add(int actual, int predicted);

  /// Merges another matrix over the same classes.
  void merge(const ConfusionMatrix& other);

  [[nodiscard]] std::size_t num_classes() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& class_names() const { return names_; }

  /// Raw count of examples with the given actual label predicted as given.
  [[nodiscard]] std::size_t count(int actual, int predicted) const;

  /// Number of examples whose actual label is `c` (row sum).
  [[nodiscard]] std::size_t support(int c) const;

  /// Total number of recorded examples.
  [[nodiscard]] std::size_t total() const;

  /// Overall accuracy: trace / total. 0 when empty.
  [[nodiscard]] double accuracy() const;

  /// TP rate of class c (== recall): TP / actual positives.
  [[nodiscard]] double tp_rate(int c) const;

  /// FP rate of class c: FP / actual negatives.
  [[nodiscard]] double fp_rate(int c) const;

  /// Precision of class c: TP / predicted positives (0 when never predicted).
  [[nodiscard]] double precision(int c) const;

  /// Recall of class c (synonym of tp_rate, kept for table fidelity).
  [[nodiscard]] double recall(int c) const { return tp_rate(c); }

  /// Support-weighted averages, as in the paper's "weighted avg." rows.
  [[nodiscard]] double weighted_tp_rate() const;
  [[nodiscard]] double weighted_fp_rate() const;
  [[nodiscard]] double weighted_precision() const;
  [[nodiscard]] double weighted_recall() const;

  /// Row-normalized cell: fraction of class `actual` predicted as
  /// `predicted` (the percentage shown in the paper's confusion matrices).
  [[nodiscard]] double row_fraction(int actual, int predicted) const;

  /// Renders the per-class metric table (TP rate / FP rate / precision /
  /// recall + weighted average) in the paper's layout.
  [[nodiscard]] std::string metrics_table() const;

  /// Renders the row-normalized confusion matrix as percentages.
  [[nodiscard]] std::string confusion_table() const;

 private:
  [[nodiscard]] double weighted(double (ConfusionMatrix::*metric)(int) const) const;

  std::vector<std::string> names_;
  std::vector<std::size_t> counts_;  // row-major num_classes x num_classes
};

}  // namespace vqoe::ml

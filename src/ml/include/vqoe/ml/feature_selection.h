// Information-gain ranking and correlation-based feature subset selection.
//
// Section 4 of the paper reduces its constructed feature sets (70 features
// for stall detection, 210 for average representation) with Weka's
// "CfsSubsetEval" evaluator driven by a "Best First" search, then reports
// each selected feature's information gain (Tables 2 and 5). This header
// provides the same machinery:
//
//  * information_gain()      — IG(class; feature) with equal-frequency
//                              discretization of the numeric feature,
//  * symmetric_uncertainty() — the normalized correlation measure CFS uses,
//  * CfsEvaluator            — the subset merit
//                              k·r̄_cf / sqrt(k + k(k-1)·r̄_ff)
//                              (Hall 1999) with memoized pairwise terms,
//  * best_first_select()     — greedy forward Best First search with a
//                              stale-expansion stopping rule.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "vqoe/ml/dataset.h"

namespace vqoe::ml {

/// Number of equal-frequency bins used when discretizing numeric features
/// for entropy computations.
inline constexpr int kDiscretizationBins = 10;

/// Shannon entropy (log base 2) of a discrete sample given as category
/// counts. Zero counts are ignored.
[[nodiscard]] double entropy(std::span<const std::size_t> counts);

/// Discretizes a numeric column into at most `bins` equal-frequency bins and
/// returns the per-row bin index. Constant columns map to a single bin.
[[nodiscard]] std::vector<int> discretize_equal_frequency(
    std::span<const double> values, int bins = kDiscretizationBins);

/// Information gain IG(Y; X) = H(Y) - H(Y|X) in bits, where X is the
/// discretized feature column `col` and Y the class label.
[[nodiscard]] double information_gain(const Dataset& data, std::size_t col,
                                      int bins = kDiscretizationBins);

/// Information gain between two discrete variables given as per-row codes.
/// Both vectors must have equal length.
[[nodiscard]] double information_gain(std::span<const int> x,
                                      std::span<const int> y);

/// Symmetric uncertainty SU(X, Y) = 2·IG / (H(X) + H(Y)) in [0, 1];
/// 0 when either variable is constant.
[[nodiscard]] double symmetric_uncertainty(std::span<const int> x,
                                           std::span<const int> y);

/// Ranks every feature of the dataset by information gain, descending.
/// Returns (feature name, gain) pairs — the format of Tables 2 and 5.
[[nodiscard]] std::vector<std::pair<std::string, double>> rank_by_information_gain(
    const Dataset& data, int bins = kDiscretizationBins);

/// Correlation-based Feature Selection merit function over a dataset.
/// Feature-feature and feature-class correlations are symmetric
/// uncertainties over discretized columns and are computed lazily and cached
/// (the representation model's 210 features imply ~22k pairs).
class CfsEvaluator {
 public:
  explicit CfsEvaluator(const Dataset& data, int bins = kDiscretizationBins);

  /// Merit of a feature subset (column indices). Empty subsets score 0.
  [[nodiscard]] double merit(std::span<const std::size_t> subset) const;

  [[nodiscard]] double feature_class_correlation(std::size_t col) const;
  [[nodiscard]] double feature_feature_correlation(std::size_t a, std::size_t b) const;

  [[nodiscard]] std::size_t num_features() const { return codes_.size(); }

 private:
  std::vector<std::vector<int>> codes_;  // discretized feature columns
  std::vector<int> class_codes_;
  mutable std::vector<double> class_corr_;        // -1 = not yet computed
  mutable std::vector<double> pair_corr_;         // upper triangle, -1 = unset
  [[nodiscard]] std::size_t pair_index(std::size_t a, std::size_t b) const;
};

struct BestFirstOptions {
  /// Stop after this many consecutive expansions without merit improvement
  /// (Weka's default searchTermination is 5).
  int max_stale = 5;
  /// Optional hard cap on subset size (0 = unlimited).
  std::size_t max_subset = 0;
};

/// Greedy forward Best First search maximizing CFS merit. Returns the
/// selected column indices in the order they were added.
[[nodiscard]] std::vector<std::size_t> best_first_select(
    const CfsEvaluator& eval, const BestFirstOptions& options = {});

/// Convenience wrapper: runs CFS + Best First on `data` and returns the
/// selected feature *names*, ordered by descending information gain (the
/// presentation order of the paper's tables).
[[nodiscard]] std::vector<std::string> cfs_best_first_feature_names(
    const Dataset& data, const BestFirstOptions& options = {});

}  // namespace vqoe::ml

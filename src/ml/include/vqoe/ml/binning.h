// Quantile binning of feature columns.
//
// The tree learner (decision_tree.h) finds splits by scanning per-bin class
// histograms instead of sorting rows at every node, which keeps Random
// Forest training tractable at the paper's dataset scale (hundreds of
// thousands of sessions x hundreds of constructed features). Columns are
// discretized once per training set into at most `max_bins` equal-frequency
// bins; raw split thresholds are recovered from the stored bin boundaries so
// that trained trees predict directly on raw feature vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "vqoe/ml/dataset.h"

namespace vqoe::ml {

/// Column-major matrix of bin indices plus the raw-value boundaries that
/// separate consecutive bins.
class BinnedMatrix {
 public:
  static constexpr int kDefaultMaxBins = 48;

  /// Discretizes every column of `d` into equal-frequency bins.
  /// `max_bins` must be in [2, 256].
  static BinnedMatrix build(const Dataset& d, int max_bins = kDefaultMaxBins);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Bin index of (row, col); in [0, bin_count(col)).
  [[nodiscard]] std::uint8_t bin(std::size_t row, std::size_t col) const {
    return bins_[col * rows_ + row];
  }

  /// Number of distinct bins of a column (1 for constant columns).
  [[nodiscard]] int bin_count(std::size_t col) const {
    return static_cast<int>(boundaries_[col].size()) + 1;
  }

  /// Raw-value threshold associated with the split "bin <= b": values
  /// x <= threshold(col, b) fall in bins 0..b. Valid for b in
  /// [0, bin_count(col) - 2].
  [[nodiscard]] double threshold(std::size_t col, int b) const {
    return boundaries_[col][static_cast<std::size_t>(b)];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> bins_;               // column-major
  std::vector<std::vector<double>> boundaries_;  // per column, ascending
};

}  // namespace vqoe::ml

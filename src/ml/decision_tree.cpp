#include "vqoe/ml/decision_tree.h"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>
#include <istream>
#include <string>
#include <stdexcept>

namespace vqoe::ml {

namespace {

// Gini impurity of a class-count histogram with `total` samples.
double gini(std::span<const std::uint32_t> counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (std::uint32_t c : counts) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

struct BuildFrame {
  std::size_t begin;
  std::size_t end;
  int depth;
  std::int32_t node_index;
};

}  // namespace

DecisionTree DecisionTree::fit(const Dataset& data, const BinnedMatrix& binned,
                               std::span<const std::size_t> row_indices,
                               const TreeParams& params, std::mt19937_64& rng,
                               std::size_t num_classes) {
  if (binned.rows() != data.rows() || binned.cols() != data.cols()) {
    throw std::invalid_argument{"DecisionTree::fit: binned matrix mismatch"};
  }
  if (row_indices.empty()) {
    throw std::invalid_argument{"DecisionTree::fit: empty training sample"};
  }

  DecisionTree tree;
  tree.num_classes_ = num_classes;
  tree.importance_.assign(data.cols(), 0.0);

  const std::size_t ncls = num_classes;
  const std::size_t ncols = data.cols();
  const int mtry_all = static_cast<int>(ncols);
  int mtry = params.mtry;
  if (mtry <= 0 || mtry > mtry_all) mtry = mtry_all;

  // Workspace: the row indices are partitioned in place as the tree grows.
  std::vector<std::size_t> rows(row_indices.begin(), row_indices.end());
  std::vector<std::size_t> feature_pool(ncols);
  std::iota(feature_pool.begin(), feature_pool.end(), 0);

  // Per-node scratch: class counts per bin for the feature being scanned.
  constexpr int kMaxBins = 256;
  std::vector<std::uint32_t> bin_counts(static_cast<std::size_t>(kMaxBins) * ncls);
  std::vector<std::uint32_t> node_counts(ncls);
  std::vector<std::uint32_t> left_counts(ncls);

  std::vector<BuildFrame> stack;
  tree.nodes_.emplace_back();
  stack.push_back({0, rows.size(), 0, 0});

  auto make_leaf = [&](std::int32_t node_index, std::size_t begin, std::size_t end) {
    Node& node = tree.nodes_[static_cast<std::size_t>(node_index)];
    node.feature = -1;
    node.proba_offset = static_cast<std::int32_t>(tree.probas_.size());
    std::fill(node_counts.begin(), node_counts.end(), 0);
    for (std::size_t i = begin; i < end; ++i) {
      node_counts[static_cast<std::size_t>(data.label(rows[i]))]++;
    }
    const double total = static_cast<double>(end - begin);
    for (std::size_t c = 0; c < ncls; ++c) {
      tree.probas_.push_back(static_cast<double>(node_counts[c]) / total);
    }
  };

  while (!stack.empty()) {
    const BuildFrame frame = stack.back();
    stack.pop_back();
    const std::size_t n = frame.end - frame.begin;

    std::fill(node_counts.begin(), node_counts.end(), 0);
    for (std::size_t i = frame.begin; i < frame.end; ++i) {
      node_counts[static_cast<std::size_t>(data.label(rows[i]))]++;
    }
    const double node_total = static_cast<double>(n);
    const double node_gini = gini(node_counts, node_total);

    const bool pure = std::count_if(node_counts.begin(), node_counts.end(),
                                    [](std::uint32_t c) { return c > 0; }) <= 1;
    if (pure || frame.depth >= params.max_depth || n < params.min_samples_split) {
      make_leaf(frame.node_index, frame.begin, frame.end);
      continue;
    }

    // Sample candidate features without replacement (partial Fisher-Yates).
    for (int f = 0; f < mtry; ++f) {
      std::uniform_int_distribution<std::size_t> pick(static_cast<std::size_t>(f),
                                                      ncols - 1);
      std::swap(feature_pool[static_cast<std::size_t>(f)], feature_pool[pick(rng)]);
    }

    double best_gain = 1e-12;
    std::size_t best_feature = 0;
    int best_bin = -1;

    for (int f = 0; f < mtry; ++f) {
      const std::size_t col = feature_pool[static_cast<std::size_t>(f)];
      const int nbins = binned.bin_count(col);
      if (nbins < 2) continue;

      std::fill(bin_counts.begin(),
                bin_counts.begin() + static_cast<std::ptrdiff_t>(
                                         static_cast<std::size_t>(nbins) * ncls),
                0u);
      for (std::size_t i = frame.begin; i < frame.end; ++i) {
        const std::size_t r = rows[i];
        const auto b = static_cast<std::size_t>(binned.bin(r, col));
        bin_counts[b * ncls + static_cast<std::size_t>(data.label(r))]++;
      }

      std::fill(left_counts.begin(), left_counts.end(), 0);
      std::size_t left_n = 0;
      for (int b = 0; b + 1 < nbins; ++b) {
        for (std::size_t c = 0; c < ncls; ++c) {
          const std::uint32_t cnt = bin_counts[static_cast<std::size_t>(b) * ncls + c];
          left_counts[c] += cnt;
          left_n += cnt;
        }
        if (left_n < params.min_samples_leaf) continue;
        const std::size_t right_n = n - left_n;
        if (right_n < params.min_samples_leaf) break;

        double right_sum_sq = 0.0;
        double left_sum_sq = 0.0;
        for (std::size_t c = 0; c < ncls; ++c) {
          const double lc = static_cast<double>(left_counts[c]);
          const double rc = static_cast<double>(node_counts[c]) - lc;
          left_sum_sq += lc * lc;
          right_sum_sq += rc * rc;
        }
        const double ln = static_cast<double>(left_n);
        const double rn = static_cast<double>(right_n);
        const double gini_left = 1.0 - left_sum_sq / (ln * ln);
        const double gini_right = 1.0 - right_sum_sq / (rn * rn);
        const double gain =
            node_gini - (ln / node_total) * gini_left - (rn / node_total) * gini_right;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = col;
          best_bin = b;
        }
      }
    }

    if (best_bin < 0) {
      make_leaf(frame.node_index, frame.begin, frame.end);
      continue;
    }

    // Partition rows in place: bins <= best_bin go left.
    const auto mid_it = std::partition(
        rows.begin() + static_cast<std::ptrdiff_t>(frame.begin),
        rows.begin() + static_cast<std::ptrdiff_t>(frame.end),
        [&](std::size_t r) {
          return static_cast<int>(binned.bin(r, best_feature)) <= best_bin;
        });
    const auto mid =
        static_cast<std::size_t>(mid_it - rows.begin());
    // Degenerate partitions cannot happen: the scan guaranteed both sides
    // hold >= min_samples_leaf rows.

    tree.importance_[best_feature] += best_gain * node_total;

    const auto left_index = static_cast<std::int32_t>(tree.nodes_.size());
    tree.nodes_.emplace_back();
    const auto right_index = static_cast<std::int32_t>(tree.nodes_.size());
    tree.nodes_.emplace_back();

    Node& node = tree.nodes_[static_cast<std::size_t>(frame.node_index)];
    node.feature = static_cast<std::int32_t>(best_feature);
    node.threshold = binned.threshold(best_feature, best_bin);
    node.left = left_index;
    node.right = right_index;

    stack.push_back({frame.begin, mid, frame.depth + 1, left_index});
    stack.push_back({mid, frame.end, frame.depth + 1, right_index});
  }

  return tree;
}

std::span<const double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  const Node* node = &nodes_.front();
  while (node->feature >= 0) {
    const double v = features[static_cast<std::size_t>(node->feature)];
    node = &nodes_[static_cast<std::size_t>(v <= node->threshold ? node->left
                                                                 : node->right)];
  }
  return {probas_.data() + node->proba_offset, num_classes_};
}

int DecisionTree::predict(std::span<const double> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

std::size_t DecisionTree::leaf_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.feature < 0; }));
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flat node array.
  std::vector<std::pair<std::int32_t, int>> stack{{0, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.feature >= 0) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return max_depth;
}


void DecisionTree::save(std::ostream& os) const {
  os << "tree " << nodes_.size() << ' ' << probas_.size() << ' '
     << num_classes_ << ' ' << importance_.size() << '\n';
  os.precision(17);
  for (const Node& n : nodes_) {
    os << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
       << ' ' << n.proba_offset << '\n';
  }
  for (std::size_t i = 0; i < probas_.size(); ++i) {
    os << probas_[i] << (i + 1 == probas_.size() ? '\n' : ' ');
  }
  if (probas_.empty()) os << '\n';
  for (std::size_t i = 0; i < importance_.size(); ++i) {
    os << importance_[i] << (i + 1 == importance_.size() ? '\n' : ' ');
  }
  if (importance_.empty()) os << '\n';
}

DecisionTree DecisionTree::load(std::istream& is) {
  std::string tag;
  std::size_t nodes = 0, probas = 0, classes = 0, importance = 0;
  if (!(is >> tag >> nodes >> probas >> classes >> importance) || tag != "tree") {
    throw std::runtime_error{"DecisionTree::load: bad header"};
  }
  // A hand-edited model file must not be able to drive prediction into
  // undefined behaviour: reject empty trees (predict dereferences the
  // root) and any child / probability index that points outside the
  // arrays being loaded.
  if (nodes == 0) throw std::runtime_error{"DecisionTree::load: empty tree"};
  if (classes == 0) throw std::runtime_error{"DecisionTree::load: zero classes"};
  if (nodes > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::runtime_error{"DecisionTree::load: node count overflows index"};
  }
  DecisionTree tree;
  tree.num_classes_ = classes;
  tree.nodes_.resize(nodes);
  for (Node& n : tree.nodes_) {
    if (!(is >> n.feature >> n.threshold >> n.left >> n.right >>
          n.proba_offset)) {
      throw std::runtime_error{"DecisionTree::load: truncated nodes"};
    }
  }
  tree.probas_.resize(probas);
  for (double& p : tree.probas_) {
    if (!(is >> p)) throw std::runtime_error{"DecisionTree::load: truncated probas"};
  }
  tree.importance_.resize(importance);
  for (double& v : tree.importance_) {
    if (!(is >> v)) {
      throw std::runtime_error{"DecisionTree::load: truncated importance"};
    }
  }
  const auto node_limit = static_cast<std::int32_t>(nodes);
  for (const Node& n : tree.nodes_) {
    if (n.feature >= 0) {
      if (n.left < 0 || n.left >= node_limit || n.right < 0 ||
          n.right >= node_limit) {
        throw std::runtime_error{"DecisionTree::load: child index out of range"};
      }
    } else {
      if (n.proba_offset < 0 ||
          static_cast<std::size_t>(n.proba_offset) + classes > probas) {
        throw std::runtime_error{
            "DecisionTree::load: leaf probability offset out of range"};
      }
    }
  }
  return tree;
}


std::string DecisionTree::to_text(std::span<const std::string> feature_names,
                                  std::span<const std::string> class_names) const {
  std::string out;
  if (nodes_.empty()) return out;
  auto feature_label = [&](std::int32_t f) {
    const auto idx = static_cast<std::size_t>(f);
    return idx < feature_names.size() ? feature_names[idx]
                                      : "f" + std::to_string(f);
  };
  // Depth-first with explicit stack; right child pushed first so the left
  // branch prints immediately under its parent.
  std::vector<std::pair<std::int32_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<std::size_t>(idx)];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    if (node.feature < 0) {
      out += "leaf:";
      for (std::size_t c = 0; c < num_classes_; ++c) {
        const double p = probas_[static_cast<std::size_t>(node.proba_offset) + c];
        out += ' ';
        out += c < class_names.size() ? class_names[c] : std::to_string(c);
        out += '=';
        char buf[16];
        std::snprintf(buf, sizeof buf, "%.2f", p);
        out += buf;
      }
      out += '\n';
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, " <= %.6g\n", node.threshold);
      out += feature_label(node.feature);
      out += buf;
      stack.push_back({node.right, depth + 1});
      stack.push_back({node.left, depth + 1});
    }
  }
  return out;
}

}  // namespace vqoe::ml

#include "vqoe/ml/importance.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "vqoe/par/parallel.h"

namespace vqoe::ml {

double predictor_accuracy(
    const std::function<int(std::span<const double>)>& predict,
    const Dataset& data) {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.rows());
}

std::vector<double> permutation_importance(
    const std::function<int(std::span<const double>)>& predict,
    const Dataset& data, std::mt19937_64& rng, int repeats) {
  if (repeats < 1) {
    throw std::invalid_argument{"permutation_importance: repeats must be >= 1"};
  }
  const double baseline = predictor_accuracy(predict, data);
  std::vector<double> importance(data.cols(), 0.0);

  // The permutations are drawn sequentially from the caller's RNG — in the
  // same (column, repeat) order the sequential implementation used, so the
  // caller-visible stream advances identically — and only the accuracy
  // evaluation fans out per column. Per-column accuracy is an integer
  // count, so the result is bit-identical for any thread count.
  const auto n_repeats = static_cast<std::size_t>(repeats);
  std::vector<std::vector<std::size_t>> perms(data.cols() * n_repeats);
  for (auto& perm : perms) {
    perm.resize(data.rows());
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
  }

  par::WorkerLocal<std::vector<double>> scratch;
  par::parallel_for(
      0, data.cols(), 1, [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        std::vector<double>& row = scratch.at(slot);
        row.resize(data.cols());
        for (std::size_t col = lo; col < hi; ++col) {
          double drop = 0.0;
          for (std::size_t r = 0; r < n_repeats; ++r) {
            const auto& perm = perms[col * n_repeats + r];
            std::size_t correct = 0;
            for (std::size_t i = 0; i < data.rows(); ++i) {
              const auto original = data.row(i);
              std::copy(original.begin(), original.end(), row.begin());
              row[col] = data.at(perm[i], col);
              if (predict(row) == data.label(i)) ++correct;
            }
            drop += baseline - static_cast<double>(correct) /
                                   static_cast<double>(data.rows());
          }
          importance[col] = drop / static_cast<double>(repeats);
        }
      });
  return importance;
}

}  // namespace vqoe::ml

#include "vqoe/ml/importance.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace vqoe::ml {

double predictor_accuracy(
    const std::function<int(std::span<const double>)>& predict,
    const Dataset& data) {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.rows());
}

std::vector<double> permutation_importance(
    const std::function<int(std::span<const double>)>& predict,
    const Dataset& data, std::mt19937_64& rng, int repeats) {
  if (repeats < 1) {
    throw std::invalid_argument{"permutation_importance: repeats must be >= 1"};
  }
  const double baseline = predictor_accuracy(predict, data);
  std::vector<double> importance(data.cols(), 0.0);

  std::vector<std::size_t> perm(data.rows());
  std::vector<double> row(data.cols());
  for (std::size_t col = 0; col < data.cols(); ++col) {
    double drop = 0.0;
    for (int r = 0; r < repeats; ++r) {
      std::iota(perm.begin(), perm.end(), 0);
      std::shuffle(perm.begin(), perm.end(), rng);
      std::size_t correct = 0;
      for (std::size_t i = 0; i < data.rows(); ++i) {
        const auto original = data.row(i);
        std::copy(original.begin(), original.end(), row.begin());
        row[col] = data.at(perm[i], col);
        if (predict(row) == data.label(i)) ++correct;
      }
      drop += baseline - static_cast<double>(correct) /
                             static_cast<double>(data.rows());
    }
    importance[col] = drop / static_cast<double>(repeats);
  }
  return importance;
}

}  // namespace vqoe::ml

#include "vqoe/ml/adaboost.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "vqoe/ml/binning.h"

namespace vqoe::ml {

AdaBoost AdaBoost::fit(const Dataset& data, const AdaBoostParams& params) {
  if (data.empty()) throw std::invalid_argument{"AdaBoost::fit: empty dataset"};
  if (params.rounds <= 0) {
    throw std::invalid_argument{"AdaBoost::fit: rounds must be > 0"};
  }

  AdaBoost model;
  model.feature_names_ = data.feature_names();
  model.num_classes_ = data.num_classes();
  const double k = static_cast<double>(data.num_classes());
  const std::size_t n = data.rows();

  const BinnedMatrix binned = BinnedMatrix::build(data);
  TreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.mtry = 0;  // weak learners see all features

  std::mt19937_64 rng{params.seed};
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  std::vector<std::size_t> sample(n);

  int failed_rounds = 0;
  for (int round = 0; static_cast<int>(model.learners_.size()) < params.rounds;
       ++round) {
    if (failed_rounds > 10) break;  // cannot find a useful weak learner

    // Boosting by resampling: draw a bootstrap proportional to weights.
    std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
    for (std::size_t i = 0; i < n; ++i) sample[i] = pick(rng);

    DecisionTree learner = DecisionTree::fit(data, binned, sample, tree_params,
                                             rng, model.num_classes_);

    // Weighted training error of this learner.
    double error = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (learner.predict(data.row(i)) != data.label(i)) error += weights[i];
    }

    if (error <= 1e-12) {
      // Perfect learner: dominate the vote and stop.
      model.learners_.push_back(std::move(learner));
      model.alphas_.push_back(10.0 + std::log(k - 1.0 + 1e-12));
      break;
    }
    if (error >= (k - 1.0) / k) {
      ++failed_rounds;  // worse than chance: discard and retry
      continue;
    }
    failed_rounds = 0;

    const double alpha =
        std::log((1.0 - error) / error) + std::log(std::max(1.0, k - 1.0));
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (learner.predict(data.row(i)) != data.label(i)) {
        weights[i] *= std::exp(alpha);
      }
      total += weights[i];
    }
    for (double& w : weights) w /= total;

    model.learners_.push_back(std::move(learner));
    model.alphas_.push_back(alpha);
  }

  if (model.learners_.empty()) {
    // Degenerate data (e.g. single class): keep one unweighted learner so
    // predict() still works.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    model.learners_.push_back(DecisionTree::fit(data, binned, all, tree_params,
                                                rng, model.num_classes_));
    model.alphas_.push_back(1.0);
  }
  return model;
}

int AdaBoost::predict(std::span<const double> features) const {
  if (!trained()) throw std::logic_error{"AdaBoost: not trained"};
  std::vector<double> votes(num_classes_, 0.0);
  for (std::size_t i = 0; i < learners_.size(); ++i) {
    votes[static_cast<std::size_t>(learners_[i].predict(features))] +=
        alphas_[i];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace vqoe::ml

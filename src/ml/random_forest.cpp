#include "vqoe/ml/random_forest.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "vqoe/ml/binning.h"
#include "vqoe/ml/compact_forest.h"
#include "vqoe/par/parallel.h"

namespace vqoe::ml {

namespace {

int argmax_class(std::span<const double> votes) {
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

/// Per-worker training scratch, reused across every tree a worker fits.
struct FitScratch {
  std::vector<std::size_t> bootstrap;
  std::vector<char> in_bag;
};

}  // namespace

RandomForest RandomForest::fit(const Dataset& data, const ForestParams& params) {
  if (data.empty()) throw std::invalid_argument{"RandomForest::fit: empty dataset"};
  if (params.num_trees <= 0) {
    throw std::invalid_argument{"RandomForest::fit: num_trees must be > 0"};
  }

  RandomForest forest;
  forest.feature_names_ = data.feature_names();
  forest.num_classes_ = data.num_classes();
  forest.importance_raw_.assign(data.cols(), 0.0);

  const BinnedMatrix binned = BinnedMatrix::build(data);

  TreeParams tree_params = params.tree;
  if (tree_params.mtry <= 0) {
    tree_params.mtry = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(data.cols()))));
  }

  const std::size_t n = data.rows();
  const std::size_t ncls = forest.num_classes_;
  const auto num_trees = static_cast<std::size_t>(params.num_trees);
  forest.trees_.resize(num_trees);

  // Trees are embarrassingly parallel: tree t draws its bootstrap and its
  // per-node feature subsets from an RNG seeded by (params.seed, t), so
  // the grown forest never depends on the schedule. OOB votes are written
  // to a per-tree buffer and merged below in strict tree order, which
  // keeps the floating-point sums bit-identical for any thread count.
  std::vector<std::vector<double>> oob_per_tree;
  if (params.compute_oob) oob_per_tree.resize(num_trees);
  par::WorkerLocal<FitScratch> scratch;

  const auto fit_one = [&](std::size_t lo, std::size_t hi, std::size_t slot) {
    FitScratch& s = scratch.at(slot);
    s.bootstrap.resize(n);
    s.in_bag.resize(n);
    for (std::size_t t = lo; t < hi; ++t) {
      std::mt19937_64 rng{par::derive_seed(params.seed, t)};
      std::uniform_int_distribution<std::size_t> pick_row(0, n - 1);
      std::fill(s.in_bag.begin(), s.in_bag.end(), 0);
      for (std::size_t i = 0; i < n; ++i) {
        s.bootstrap[i] = pick_row(rng);
        s.in_bag[s.bootstrap[i]] = 1;
      }
      forest.trees_[t] = DecisionTree::fit(data, binned, s.bootstrap,
                                           tree_params, rng, ncls);
      if (params.compute_oob) {
        auto& votes = oob_per_tree[t];
        votes.assign(n * ncls, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          if (s.in_bag[i]) continue;
          const auto proba = forest.trees_[t].predict_proba(data.row(i));
          for (std::size_t c = 0; c < ncls; ++c) votes[i * ncls + c] = proba[c];
        }
      }
    }
  };

  // OOB buffers cost n*classes doubles per tree; fitting in fixed-size
  // blocks (merge + release after each) bounds peak memory at large corpus
  // sizes. Block boundaries are thread-count independent.
  std::vector<double> oob_votes;
  if (params.compute_oob) oob_votes.assign(n * ncls, 0.0);
  const std::size_t block = params.compute_oob ? 32 : num_trees;
  for (std::size_t base = 0; base < num_trees; base += block) {
    const std::size_t limit = std::min(num_trees, base + block);
    par::parallel_for(base, limit, 1, fit_one);
    if (params.compute_oob) {
      for (std::size_t t = base; t < limit; ++t) {
        const auto& votes = oob_per_tree[t];
        for (std::size_t i = 0; i < oob_votes.size(); ++i) oob_votes[i] += votes[i];
        oob_per_tree[t] = {};
      }
    }
  }

  for (const DecisionTree& tree : forest.trees_) {
    const auto& imp = tree.impurity_importance();
    for (std::size_t c = 0; c < imp.size(); ++c) forest.importance_raw_[c] += imp[c];
  }

  if (params.compute_oob) {
    std::size_t correct = 0, counted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row_votes =
          std::span{oob_votes.data() + i * forest.num_classes_, forest.num_classes_};
      const double total =
          std::accumulate(row_votes.begin(), row_votes.end(), 0.0);
      if (total == 0.0) continue;  // row was in every bag
      const int pred = static_cast<int>(
          std::max_element(row_votes.begin(), row_votes.end()) - row_votes.begin());
      ++counted;
      if (pred == data.label(i)) ++correct;
    }
    if (counted > 0) {
      forest.oob_accuracy_ =
          static_cast<double>(correct) / static_cast<double>(counted);
    }
  }
  forest.compile_compact();
  return forest;
}

void RandomForest::compile_compact() {
  compact_ = std::make_shared<const CompactForest>(CompactForest::compile(*this));
}

void RandomForest::accumulate_votes(std::span<const double> features,
                                    std::span<double> votes) const {
  for (const DecisionTree& tree : trees_) {
    const auto proba = tree.predict_proba(features);
    for (std::size_t c = 0; c < votes.size(); ++c) votes[c] += proba[c];
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  std::vector<double> votes(num_classes_, 0.0);
  predict_proba_into(features, votes);
  return votes;
}

void RandomForest::predict_proba_into(std::span<const double> features,
                                      std::span<double> out) const {
  if (out.size() != num_classes_) {
    throw std::invalid_argument{
        "RandomForest::predict_proba_into: output span size mismatch"};
  }
  if (compact_active()) {
    compact_->predict_proba_into(features, out);
    return;
  }
  std::fill(out.begin(), out.end(), 0.0);
  accumulate_votes(features, out);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
}

int RandomForest::predict(std::span<const double> features) const {
  if (compact_active()) return compact_->predict(features);
  // Max-vote into a stack buffer: normalizing and heap-allocating a proba
  // vector per call dominated the old single-row hot path.
  std::array<double, 16> stack_votes{};
  std::vector<double> heap_votes;
  std::span<double> votes;
  if (num_classes_ <= stack_votes.size()) {
    votes = std::span{stack_votes.data(), num_classes_};
  } else {
    heap_votes.assign(num_classes_, 0.0);
    votes = heap_votes;
  }
  accumulate_votes(features, votes);
  return argmax_class(votes);
}

std::vector<int> RandomForest::predict_all(const Dataset& data) const {
  if (data.feature_names() != feature_names_) {
    throw std::invalid_argument{
        "RandomForest::predict_all: feature layout differs from training"};
  }
  if (compact_active()) return compact_->predict_all(data);
  std::vector<int> out(data.rows());
  par::WorkerLocal<std::vector<double>> votes;
  par::parallel_for(
      0, data.rows(), 64, [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        auto& buf = votes.at(slot);
        buf.resize(num_classes_);
        for (std::size_t i = lo; i < hi; ++i) {
          std::fill(buf.begin(), buf.end(), 0.0);
          accumulate_votes(data.row(i), buf);
          out[i] = argmax_class(buf);
        }
      });
  return out;
}

std::vector<double> RandomForest::predict_proba_all(const Dataset& data) const {
  if (data.feature_names() != feature_names_) {
    throw std::invalid_argument{
        "RandomForest::predict_proba_all: feature layout differs from training"};
  }
  if (compact_active()) return compact_->predict_proba_all(data);
  std::vector<double> out(data.rows() * num_classes_, 0.0);
  par::parallel_for(
      0, data.rows(), 64, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::span<double> row{out.data() + i * num_classes_, num_classes_};
          accumulate_votes(data.row(i), row);
          const double total = std::accumulate(row.begin(), row.end(), 0.0);
          if (total > 0.0) {
            for (double& v : row) v /= total;
          }
        }
      });
  return out;
}

std::vector<double> RandomForest::feature_importance() const {
  std::vector<double> imp = importance_raw_;
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}


void RandomForest::save(std::ostream& os) const {
  os << "vqoe-forest v1\n";
  os << "classes " << num_classes_ << '\n';
  os << "features " << feature_names_.size() << '\n';
  for (const std::string& name : feature_names_) os << name << '\n';
  os.precision(17);
  os << "importance";
  for (double v : importance_raw_) os << ' ' << v;
  os << '\n';
  os << "oob " << (oob_accuracy_ ? *oob_accuracy_ : -1.0) << '\n';
  os << "trees " << trees_.size() << '\n';
  for (const DecisionTree& tree : trees_) tree.save(os);
}

RandomForest RandomForest::load(std::istream& is) {
  std::string word, version;
  if (!(is >> word >> version) || word != "vqoe-forest" || version != "v1") {
    throw std::runtime_error{"RandomForest::load: bad header"};
  }
  RandomForest forest;
  std::size_t n_features = 0, n_trees = 0;
  if (!(is >> word >> forest.num_classes_) || word != "classes") {
    throw std::runtime_error{"RandomForest::load: missing classes"};
  }
  if (!(is >> word >> n_features) || word != "features") {
    throw std::runtime_error{"RandomForest::load: missing features"};
  }
  forest.feature_names_.resize(n_features);
  for (std::string& name : forest.feature_names_) {
    if (!(is >> name)) throw std::runtime_error{"RandomForest::load: truncated names"};
  }
  if (!(is >> word) || word != "importance") {
    throw std::runtime_error{"RandomForest::load: missing importance"};
  }
  forest.importance_raw_.resize(n_features);
  for (double& v : forest.importance_raw_) {
    if (!(is >> v)) throw std::runtime_error{"RandomForest::load: truncated importance"};
  }
  double oob = -1.0;
  if (!(is >> word >> oob) || word != "oob") {
    throw std::runtime_error{"RandomForest::load: missing oob"};
  }
  if (oob >= 0.0) forest.oob_accuracy_ = oob;
  if (!(is >> word >> n_trees) || word != "trees") {
    throw std::runtime_error{"RandomForest::load: missing trees"};
  }
  forest.trees_.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    forest.trees_.push_back(DecisionTree::load(is));
    if (forest.trees_.back().num_classes() != forest.num_classes_) {
      throw std::runtime_error{"RandomForest::load: tree class mismatch"};
    }
  }
  // Compiling also cross-checks what the per-tree loads cannot: feature
  // indices against this forest's column count, and graph shape (a cyclic
  // hand-edited tree would otherwise hang prediction).
  if (forest.trained()) {
    try {
      forest.compile_compact();
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error{std::string{"RandomForest::load: "} + e.what()};
    }
  }
  return forest;
}

}  // namespace vqoe::ml

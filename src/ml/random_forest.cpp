#include "vqoe/ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "vqoe/ml/binning.h"

namespace vqoe::ml {

RandomForest RandomForest::fit(const Dataset& data, const ForestParams& params) {
  if (data.empty()) throw std::invalid_argument{"RandomForest::fit: empty dataset"};
  if (params.num_trees <= 0) {
    throw std::invalid_argument{"RandomForest::fit: num_trees must be > 0"};
  }

  RandomForest forest;
  forest.feature_names_ = data.feature_names();
  forest.num_classes_ = data.num_classes();
  forest.importance_raw_.assign(data.cols(), 0.0);

  const BinnedMatrix binned = BinnedMatrix::build(data);

  TreeParams tree_params = params.tree;
  if (tree_params.mtry <= 0) {
    tree_params.mtry = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(data.cols()))));
  }

  std::mt19937_64 rng{params.seed};
  const std::size_t n = data.rows();
  std::uniform_int_distribution<std::size_t> pick_row(0, n - 1);

  // OOB bookkeeping: per-row class vote sums from trees that did not train
  // on that row.
  std::vector<double> oob_votes;
  std::vector<char> in_bag(n, 0);
  if (params.compute_oob) oob_votes.assign(n * forest.num_classes_, 0.0);

  std::vector<std::size_t> bootstrap(n);
  forest.trees_.reserve(static_cast<std::size_t>(params.num_trees));
  for (int t = 0; t < params.num_trees; ++t) {
    std::fill(in_bag.begin(), in_bag.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      bootstrap[i] = pick_row(rng);
      in_bag[bootstrap[i]] = 1;
    }
    DecisionTree tree = DecisionTree::fit(data, binned, bootstrap, tree_params,
                                          rng, forest.num_classes_);
    const auto& imp = tree.impurity_importance();
    for (std::size_t c = 0; c < imp.size(); ++c) forest.importance_raw_[c] += imp[c];

    if (params.compute_oob) {
      for (std::size_t i = 0; i < n; ++i) {
        if (in_bag[i]) continue;
        const auto proba = tree.predict_proba(data.row(i));
        for (std::size_t c = 0; c < forest.num_classes_; ++c) {
          oob_votes[i * forest.num_classes_ + c] += proba[c];
        }
      }
    }
    forest.trees_.push_back(std::move(tree));
  }

  if (params.compute_oob) {
    std::size_t correct = 0, counted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row_votes =
          std::span{oob_votes.data() + i * forest.num_classes_, forest.num_classes_};
      const double total =
          std::accumulate(row_votes.begin(), row_votes.end(), 0.0);
      if (total == 0.0) continue;  // row was in every bag
      const int pred = static_cast<int>(
          std::max_element(row_votes.begin(), row_votes.end()) - row_votes.begin());
      ++counted;
      if (pred == data.label(i)) ++correct;
    }
    if (counted > 0) {
      forest.oob_accuracy_ =
          static_cast<double>(correct) / static_cast<double>(counted);
    }
  }
  return forest;
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  std::vector<double> votes(num_classes_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto proba = tree.predict_proba(features);
    for (std::size_t c = 0; c < num_classes_; ++c) votes[c] += proba[c];
  }
  const double total = std::accumulate(votes.begin(), votes.end(), 0.0);
  if (total > 0.0) {
    for (double& v : votes) v /= total;
  }
  return votes;
}

int RandomForest::predict(std::span<const double> features) const {
  const auto proba = predict_proba(features);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) -
                          proba.begin());
}

std::vector<int> RandomForest::predict_all(const Dataset& data) const {
  if (data.feature_names() != feature_names_) {
    throw std::invalid_argument{
        "RandomForest::predict_all: feature layout differs from training"};
  }
  std::vector<int> out;
  out.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) out.push_back(predict(data.row(i)));
  return out;
}

std::vector<double> RandomForest::feature_importance() const {
  std::vector<double> imp = importance_raw_;
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}


void RandomForest::save(std::ostream& os) const {
  os << "vqoe-forest v1\n";
  os << "classes " << num_classes_ << '\n';
  os << "features " << feature_names_.size() << '\n';
  for (const std::string& name : feature_names_) os << name << '\n';
  os.precision(17);
  os << "importance";
  for (double v : importance_raw_) os << ' ' << v;
  os << '\n';
  os << "oob " << (oob_accuracy_ ? *oob_accuracy_ : -1.0) << '\n';
  os << "trees " << trees_.size() << '\n';
  for (const DecisionTree& tree : trees_) tree.save(os);
}

RandomForest RandomForest::load(std::istream& is) {
  std::string word, version;
  if (!(is >> word >> version) || word != "vqoe-forest" || version != "v1") {
    throw std::runtime_error{"RandomForest::load: bad header"};
  }
  RandomForest forest;
  std::size_t n_features = 0, n_trees = 0;
  if (!(is >> word >> forest.num_classes_) || word != "classes") {
    throw std::runtime_error{"RandomForest::load: missing classes"};
  }
  if (!(is >> word >> n_features) || word != "features") {
    throw std::runtime_error{"RandomForest::load: missing features"};
  }
  forest.feature_names_.resize(n_features);
  for (std::string& name : forest.feature_names_) {
    if (!(is >> name)) throw std::runtime_error{"RandomForest::load: truncated names"};
  }
  if (!(is >> word) || word != "importance") {
    throw std::runtime_error{"RandomForest::load: missing importance"};
  }
  forest.importance_raw_.resize(n_features);
  for (double& v : forest.importance_raw_) {
    if (!(is >> v)) throw std::runtime_error{"RandomForest::load: truncated importance"};
  }
  double oob = -1.0;
  if (!(is >> word >> oob) || word != "oob") {
    throw std::runtime_error{"RandomForest::load: missing oob"};
  }
  if (oob >= 0.0) forest.oob_accuracy_ = oob;
  if (!(is >> word >> n_trees) || word != "trees") {
    throw std::runtime_error{"RandomForest::load: missing trees"};
  }
  forest.trees_.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    forest.trees_.push_back(DecisionTree::load(is));
    if (forest.trees_.back().num_classes() != forest.num_classes_) {
      throw std::runtime_error{"RandomForest::load: tree class mismatch"};
    }
  }
  return forest;
}

}  // namespace vqoe::ml

#include "vqoe/ml/binning.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vqoe::ml {

BinnedMatrix BinnedMatrix::build(const Dataset& d, int max_bins) {
  if (max_bins < 2 || max_bins > 256) {
    throw std::invalid_argument{"BinnedMatrix: max_bins out of [2,256]"};
  }
  BinnedMatrix m;
  m.rows_ = d.rows();
  m.cols_ = d.cols();
  m.bins_.assign(m.rows_ * m.cols_, 0);
  m.boundaries_.resize(m.cols_);

  std::vector<double> sorted;
  for (std::size_t c = 0; c < m.cols_; ++c) {
    sorted = d.column(c);
    std::sort(sorted.begin(), sorted.end());

    // Candidate boundaries at equal-frequency quantiles; midpoints between
    // adjacent distinct values keep thresholds strictly between data points.
    auto& bounds = m.boundaries_[c];
    bounds.clear();
    if (!sorted.empty() && sorted.front() != sorted.back()) {
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t idx = static_cast<std::size_t>(
            static_cast<double>(b) * static_cast<double>(sorted.size()) /
            static_cast<double>(max_bins));
        if (idx == 0 || idx >= sorted.size()) continue;
        const double lo = sorted[idx - 1];
        const double hi = sorted[idx];
        if (hi > lo) {
          const double cut = lo + (hi - lo) / 2.0;
          if (bounds.empty() || cut > bounds.back()) bounds.push_back(cut);
        }
      }
      // Ensure distinct extremes still split when quantile cuts collapsed
      // (heavily skewed columns).
      if (bounds.empty()) {
        bounds.push_back(sorted.front() + (sorted.back() - sorted.front()) / 2.0);
      }
    }

    for (std::size_t r = 0; r < m.rows_; ++r) {
      const double v = d.at(r, c);
      const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
      m.bins_[c * m.rows_ + r] =
          static_cast<std::uint8_t>(it - bounds.begin());
    }
  }
  return m;
}

}  // namespace vqoe::ml

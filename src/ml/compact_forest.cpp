#include "vqoe/ml/compact_forest.h"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "vqoe/ml/random_forest.h"
#include "vqoe/par/parallel.h"

namespace vqoe::ml {

namespace {

[[noreturn]] void compile_error(const std::string& what) {
  throw std::invalid_argument{"CompactForest::compile: " + what};
}

int argmax_class(std::span<const double> votes) {
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

/// Node-array budget per tree tile of the blocked batch kernel: a tile's
/// threshold/feature/right/proba streams should stay L2-resident across
/// the whole 64-row block, so the tile width adapts to the per-tree
/// footprint (few wide-tiled shallow trees up to 64, deep corpus-scale
/// trees down to 4).
constexpr std::size_t kTileBudgetBytes = 256 * 1024;
/// Rows per parallel_for chunk (= rows sharing one tree tile sweep). The
/// whole model is streamed through cache once per row block, so larger
/// blocks amortize tile loads further; 256 rows of the widest feature set
/// still sit far under the tile budget.
constexpr std::size_t kRowBlock = 256;
/// Widest row converted on the stack; wider rows (none in this codebase —
/// the paper's large feature set is 210 columns) fall back to one heap
/// buffer per call.
constexpr std::size_t kMaxStackFeatures = 512;

/// Depth-first left-first visitation order over one tree, validating the
/// shape on the way: every child index in bounds, every split feature in
/// [0, num_features), every leaf distribution inside the proba array, and
/// no node reached twice (cycles and shared subtrees both surface as a
/// revisit on some DFS path).
std::vector<std::int32_t> dfs_order(const DecisionTree& tree,
                                    std::size_t num_features,
                                    std::size_t num_classes) {
  const auto nodes = tree.nodes();
  if (nodes.empty()) compile_error("empty tree");
  const auto limit = static_cast<std::int32_t>(nodes.size());

  std::vector<std::int32_t> order;
  order.reserve(nodes.size());
  std::vector<char> seen(nodes.size(), 0);
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const std::int32_t idx = stack.back();
    stack.pop_back();
    if (idx < 0 || idx >= limit) compile_error("child index out of range");
    if (seen[static_cast<std::size_t>(idx)]) {
      compile_error("cycle or shared subtree");
    }
    seen[static_cast<std::size_t>(idx)] = 1;
    order.push_back(idx);

    const DecisionTree::Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.feature >= 0) {
      if (static_cast<std::size_t>(node.feature) >= num_features) {
        compile_error("split feature out of range");
      }
      // Right first so the left child pops next and lands at parent + 1.
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      if (node.proba_offset < 0 ||
          static_cast<std::size_t>(node.proba_offset) + num_classes >
              tree.leaf_probas().size()) {
        compile_error("leaf probability offset out of range");
      }
    }
  }
  return order;
}

}  // namespace

CompactForest CompactForest::compile(const RandomForest& forest) {
  if (!forest.trained()) compile_error("untrained forest");
  const auto& trees = forest.trees();
  const std::size_t ncls = forest.num_classes();
  const std::size_t ncols = forest.feature_names().size();
  if (ncls == 0) compile_error("zero classes");

  // Pass 1: validate every tree and size the arena off the reachable node
  // set (a hand-edited model file may carry orphan nodes; they are not
  // mirrored into the flat arrays).
  std::vector<std::vector<std::int32_t>> orders;
  orders.reserve(trees.size());
  std::size_t total_nodes = 0;
  std::size_t total_leaves = 0;
  for (const DecisionTree& tree : trees) {
    orders.push_back(dfs_order(tree, ncols, ncls));
    total_nodes += orders.back().size();
    for (const std::int32_t old : orders.back()) {
      if (tree.nodes()[static_cast<std::size_t>(old)].feature < 0) {
        ++total_leaves;
      }
    }
  }

  const std::size_t total_probas = total_leaves * ncls;
  constexpr auto kMaxIndex =
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
  if (total_nodes > kMaxIndex || total_probas > kMaxIndex) {
    compile_error("forest too large for 32-bit indices");
  }

  CompactForest out;
  out.num_trees_ = trees.size();
  out.num_classes_ = ncls;
  out.num_features_ = ncols;
  out.num_nodes_ = total_nodes;
  out.threshold_off_ = 0;
  out.feature_off_ = total_nodes;
  out.right_off_ = 2 * total_nodes;
  out.proba_off_ = 3 * total_nodes;
  out.roots_off_ = 3 * total_nodes + total_probas;
  out.arena_.assign(out.roots_off_ + trees.size(), 0u);  // the one allocation

  // Pass 2: emit each tree in DFS order. `pos[old]` is a node's tree-local
  // new index, so child links resolve to base + pos once the order is known.
  std::vector<std::size_t> pos;
  std::size_t base = 0;
  std::size_t proba_cursor = 0;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const auto nodes = trees[t].nodes();
    const auto probas = trees[t].leaf_probas();
    const auto& order = orders[t];
    out.arena_[out.roots_off_ + t] = static_cast<std::uint32_t>(base);

    pos.assign(nodes.size(), 0);
    for (std::size_t k = 0; k < order.size(); ++k) {
      pos[static_cast<std::size_t>(order[k])] = k;
    }

    for (std::size_t k = 0; k < order.size(); ++k) {
      const DecisionTree::Node& node =
          nodes[static_cast<std::size_t>(order[k])];
      const std::size_t i = base + k;
      if (node.feature >= 0) {
        out.arena_[out.threshold_off_ + i] =
            std::bit_cast<std::uint32_t>(static_cast<float>(node.threshold));
        out.arena_[out.feature_off_ + i] =
            static_cast<std::uint32_t>(node.feature);
        out.arena_[out.right_off_ + i] = static_cast<std::uint32_t>(
            base + pos[static_cast<std::size_t>(node.right)]);
      } else {
        out.arena_[out.feature_off_ + i] = static_cast<std::uint32_t>(
            ~static_cast<std::int32_t>(proba_cursor));
        for (std::size_t c = 0; c < ncls; ++c) {
          out.arena_[out.proba_off_ + proba_cursor + c] =
              std::bit_cast<std::uint32_t>(static_cast<float>(
                  probas[static_cast<std::size_t>(node.proba_offset) + c]));
        }
        proba_cursor += ncls;
      }
    }
    base += order.size();
  }
  return out;
}

std::size_t CompactForest::walk(const float* row, std::size_t idx) const {
  std::int32_t f = feature(idx);
  while (f >= 0) {
    idx = row[static_cast<std::size_t>(f)] <= threshold(idx) ? idx + 1
                                                             : right(idx);
    f = feature(idx);
  }
  return idx;
}

void CompactForest::accumulate_trees(const float* row, std::size_t t0,
                                     std::size_t t1,
                                     std::span<double> votes) const {
  // A single walk is one serial dependent-load chain (node -> child ->
  // grandchild) punctuated by data-dependent direction branches that
  // mispredict on real splits. Walking four trees of the same row in
  // lockstep overlaps four such chains, and the step itself is branch-free
  // — no chain's in-flight loads are ever flushed by another's
  // misprediction: finished trees park on their leaf under a sign mask
  // (the dummy feature-0 load and discarded select are harmless — leaf
  // threshold and right lanes are zero-initialized), and the direction
  // select is a mask blend rather than a ?: the compiler would lower to a
  // skip-branch. Votes are added in ascending tree order after the group
  // drains, so results are bit-identical to one-tree-at-a-time
  // accumulation.
  constexpr std::size_t kWay = 4;
  const std::size_t ncls = votes.size();
  std::size_t t = t0;
  for (; t + kWay <= t1; t += kWay) {
    std::uint32_t cur[kWay];
    for (std::size_t w = 0; w < kWay; ++w) cur[w] = root(t + w);
    for (bool active = true; active;) {
      active = false;
      for (std::size_t w = 0; w < kWay; ++w) {
        const std::uint32_t at = cur[w];
        const std::int32_t f = feature(at);
        const auto parked = static_cast<std::uint32_t>(f >> 31);
        const auto fi = static_cast<std::size_t>(f & ~(f >> 31));
        const auto go_right = static_cast<std::uint32_t>(right(at));
        const auto take_left = static_cast<std::uint32_t>(
            -static_cast<std::int32_t>(row[fi] <= threshold(at)));
        const std::uint32_t next =
            ((at + 1) & take_left) | (go_right & ~take_left);
        cur[w] = (at & parked) | (next & ~parked);
        active |= parked == 0;
      }
    }
    for (std::size_t w = 0; w < kWay; ++w) {
      const auto off = static_cast<std::size_t>(~feature(cur[w]));
      for (std::size_t c = 0; c < ncls; ++c) votes[c] += proba(off + c);
    }
  }
  for (; t < t1; ++t) {
    const std::size_t leaf = walk(row, root(t));
    const auto off = static_cast<std::size_t>(~feature(leaf));
    for (std::size_t c = 0; c < ncls; ++c) votes[c] += proba(off + c);
  }
}

void CompactForest::accumulate(std::span<const double> features,
                               std::span<double> votes) const {
  // Thresholds are stored as float, so the row is narrowed to float once
  // here and every walk compares float-to-float — no per-step widening on
  // the serial dependency chain. Every compact path (single-row, batch,
  // reloaded) narrows identically, which is what keeps them bit-identical
  // to each other.
  float stack_row[kMaxStackFeatures];
  std::vector<float> heap_row(
      features.size() > kMaxStackFeatures ? features.size() : 0);
  float* row = heap_row.empty() ? stack_row : heap_row.data();
  for (std::size_t c = 0; c < features.size(); ++c) {
    row[c] = static_cast<float>(features[c]);
  }
  accumulate_trees(row, 0, num_trees_, votes);
}

int CompactForest::predict(std::span<const double> features) const {
  std::array<double, 16> stack_votes{};
  std::vector<double> heap_votes;
  std::span<double> votes;
  if (num_classes_ <= stack_votes.size()) {
    votes = std::span{stack_votes.data(), num_classes_};
  } else {
    heap_votes.assign(num_classes_, 0.0);
    votes = heap_votes;
  }
  accumulate(features, votes);
  return argmax_class(votes);
}

void CompactForest::predict_proba_into(std::span<const double> features,
                                       std::span<double> out) const {
  if (out.size() != num_classes_) {
    throw std::invalid_argument{
        "CompactForest::predict_proba_into: output span size mismatch"};
  }
  std::fill(out.begin(), out.end(), 0.0);
  accumulate(features, out);
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
}

void CompactForest::accumulate_block(const Dataset& data, std::size_t lo,
                                     std::size_t hi,
                                     std::span<double> votes) const {
  // Interleaved tiles: each tree tile is swept over the whole row block
  // before the next tile, so the tile's threshold/feature/right streams
  // stay cache-hot across all 64 rows instead of being evicted and
  // re-missed once per row (the legacy walk's behavior when the model
  // outgrows L2). Within a row, accumulate_trees walks the tile's trees
  // four at a time in branch-free lockstep. Per row, tiles and in-tile
  // trees ascend — votes accumulate in tree order, identical to
  // accumulate() whatever the tile width.
  const std::size_t ncls = num_classes_;
  const std::size_t per_tree = bytes() / std::max<std::size_t>(num_trees_, 1);
  const std::size_t tile =
      std::clamp<std::size_t>(kTileBudgetBytes / std::max<std::size_t>(
                                                     per_tree, 1),
                              4, 64) &
      ~std::size_t{3};  // multiple of the lockstep width: no mid-tile tails
  float stack_row[kMaxStackFeatures];
  std::vector<float> heap_row(
      num_features_ > kMaxStackFeatures ? num_features_ : 0);
  float* row = heap_row.empty() ? stack_row : heap_row.data();
  for (std::size_t t0 = 0; t0 < num_trees_; t0 += tile) {
    const std::size_t t1 = std::min(num_trees_, t0 + tile);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto src = data.row(i);
      for (std::size_t c = 0; c < num_features_; ++c) {
        row[c] = static_cast<float>(src[c]);
      }
      accumulate_trees(row, t0, t1,
                       std::span{votes.data() + (i - lo) * ncls, ncls});
    }
  }
}

void CompactForest::check_width(const Dataset& data, const char* caller) const {
  if (!compiled()) {
    throw std::logic_error{std::string{caller} + ": forest not compiled"};
  }
  if (data.cols() != num_features_) {
    throw std::invalid_argument{std::string{caller} +
                                ": row width differs from compilation"};
  }
}

std::vector<int> CompactForest::predict_all(const Dataset& data) const {
  check_width(data, "CompactForest::predict_all");
  std::vector<int> out(data.rows());
  par::WorkerLocal<std::vector<double>> scratch;
  par::parallel_for(
      0, data.rows(), kRowBlock,
      [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        auto& votes = scratch.at(slot);
        votes.assign((hi - lo) * num_classes_, 0.0);
        accumulate_block(data, lo, hi, votes);
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = argmax_class(
              std::span{votes.data() + (i - lo) * num_classes_, num_classes_});
        }
      });
  return out;
}

std::vector<double> CompactForest::predict_proba_all(const Dataset& data) const {
  check_width(data, "CompactForest::predict_proba_all");
  std::vector<double> out(data.rows() * num_classes_, 0.0);
  par::parallel_for(
      0, data.rows(), kRowBlock,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        // Output rows double as the vote accumulators: zero-initialized,
        // per-row disjoint, normalized in place after the block sweep.
        accumulate_block(
            data, lo, hi,
            std::span{out.data() + lo * num_classes_, (hi - lo) * num_classes_});
        for (std::size_t i = lo; i < hi; ++i) {
          const std::span row{out.data() + i * num_classes_, num_classes_};
          const double total = std::accumulate(row.begin(), row.end(), 0.0);
          if (total > 0.0) {
            for (double& v : row) v /= total;
          }
        }
      });
  return out;
}

}  // namespace vqoe::ml

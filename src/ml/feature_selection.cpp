#include "vqoe/ml/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

namespace vqoe::ml {

double entropy(std::span<const std::size_t> counts) {
  const auto total_sz = std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  if (total_sz == 0) return 0.0;
  const double total = static_cast<double>(total_sz);
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<int> discretize_equal_frequency(std::span<const double> values,
                                            int bins) {
  if (bins < 1) throw std::invalid_argument{"discretize: bins must be >= 1"};
  std::vector<int> codes(values.size(), 0);
  if (values.empty()) return codes;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() == sorted.back()) return codes;  // constant column

  std::vector<double> cuts;
  for (int b = 1; b < bins; ++b) {
    const std::size_t idx = static_cast<std::size_t>(
        static_cast<double>(b) * static_cast<double>(sorted.size()) /
        static_cast<double>(bins));
    if (idx == 0 || idx >= sorted.size()) continue;
    const double lo = sorted[idx - 1];
    const double hi = sorted[idx];
    if (hi > lo) {
      const double cut = lo + (hi - lo) / 2.0;
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    codes[i] = static_cast<int>(
        std::upper_bound(cuts.begin(), cuts.end(), values[i]) - cuts.begin());
  }
  return codes;
}

namespace {

// Joint and marginal entropies of two discrete code vectors.
struct JointEntropy {
  double hx = 0.0;
  double hy = 0.0;
  double hxy = 0.0;
};

JointEntropy joint_entropy(std::span<const int> x, std::span<const int> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument{"joint_entropy: size mismatch"};
  }
  std::map<int, std::size_t> cx, cy;
  std::map<std::pair<int, int>, std::size_t> cxy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cx[x[i]]++;
    cy[y[i]]++;
    cxy[{x[i], y[i]}]++;
  }
  auto ent = [&](auto& m) {
    std::vector<std::size_t> counts;
    counts.reserve(m.size());
    for (const auto& [k, v] : m) counts.push_back(v);
    return entropy(counts);
  };
  return {ent(cx), ent(cy), ent(cxy)};
}

}  // namespace

double information_gain(std::span<const int> x, std::span<const int> y) {
  const auto j = joint_entropy(x, y);
  // IG = H(Y) - H(Y|X) = H(X) + H(Y) - H(X,Y)
  return std::max(0.0, j.hx + j.hy - j.hxy);
}

double symmetric_uncertainty(std::span<const int> x, std::span<const int> y) {
  const auto j = joint_entropy(x, y);
  const double denom = j.hx + j.hy;
  if (denom <= 0.0) return 0.0;
  const double ig = std::max(0.0, j.hx + j.hy - j.hxy);
  return 2.0 * ig / denom;
}

double information_gain(const Dataset& data, std::size_t col, int bins) {
  const auto codes = discretize_equal_frequency(data.column(col), bins);
  return information_gain(codes, data.labels());
}

std::vector<std::pair<std::string, double>> rank_by_information_gain(
    const Dataset& data, int bins) {
  std::vector<std::pair<std::string, double>> ranked;
  ranked.reserve(data.cols());
  for (std::size_t c = 0; c < data.cols(); ++c) {
    ranked.emplace_back(data.feature_names()[c], information_gain(data, c, bins));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

CfsEvaluator::CfsEvaluator(const Dataset& data, int bins) {
  codes_.reserve(data.cols());
  for (std::size_t c = 0; c < data.cols(); ++c) {
    codes_.push_back(discretize_equal_frequency(data.column(c), bins));
  }
  class_codes_ = data.labels();
  class_corr_.assign(data.cols(), -1.0);
  pair_corr_.assign(data.cols() * (data.cols() + 1) / 2, -1.0);
}

std::size_t CfsEvaluator::pair_index(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  // Index into the upper triangle (including diagonal) stored row by row.
  return a * codes_.size() - a * (a + 1) / 2 + b;
}

double CfsEvaluator::feature_class_correlation(std::size_t col) const {
  double& cached = class_corr_[col];
  if (cached < 0.0) {
    cached = symmetric_uncertainty(codes_[col], class_codes_);
  }
  return cached;
}

double CfsEvaluator::feature_feature_correlation(std::size_t a, std::size_t b) const {
  double& cached = pair_corr_[pair_index(a, b)];
  if (cached < 0.0) {
    cached = a == b ? 1.0 : symmetric_uncertainty(codes_[a], codes_[b]);
  }
  return cached;
}

double CfsEvaluator::merit(std::span<const std::size_t> subset) const {
  if (subset.empty()) return 0.0;
  const double k = static_cast<double>(subset.size());
  double sum_cf = 0.0;
  double sum_ff = 0.0;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    sum_cf += feature_class_correlation(subset[i]);
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      sum_ff += feature_feature_correlation(subset[i], subset[j]);
    }
  }
  const double mean_cf = sum_cf / k;
  const double mean_ff =
      subset.size() > 1 ? sum_ff / (k * (k - 1.0) / 2.0) : 0.0;
  const double denom = std::sqrt(k + k * (k - 1.0) * mean_ff);
  if (denom <= 0.0) return 0.0;
  return k * mean_cf / denom;
}

std::vector<std::size_t> best_first_select(const CfsEvaluator& eval,
                                           const BestFirstOptions& options) {
  std::vector<std::size_t> current;
  double best_merit = 0.0;
  std::vector<std::size_t> best_subset;
  int stale = 0;

  const std::size_t n = eval.num_features();
  std::vector<char> in_subset(n, 0);

  while (stale < options.max_stale) {
    if (options.max_subset != 0 && current.size() >= options.max_subset) break;

    double step_best = -1.0;
    std::size_t step_feature = n;
    std::vector<std::size_t> candidate = current;
    candidate.push_back(0);
    for (std::size_t f = 0; f < n; ++f) {
      if (in_subset[f]) continue;
      candidate.back() = f;
      const double m = eval.merit(candidate);
      if (m > step_best) {
        step_best = m;
        step_feature = f;
      }
    }
    if (step_feature == n) break;  // no feature left to add

    current.push_back(step_feature);
    in_subset[step_feature] = 1;
    if (step_best > best_merit + 1e-12) {
      best_merit = step_best;
      best_subset = current;
      stale = 0;
    } else {
      ++stale;
    }
  }
  return best_subset;
}

std::vector<std::string> cfs_best_first_feature_names(
    const Dataset& data, const BestFirstOptions& options) {
  const CfsEvaluator eval{data};
  auto selected = best_first_select(eval, options);
  // Present in descending information-gain order, as in Tables 2 and 5.
  std::vector<std::pair<double, std::size_t>> gains;
  gains.reserve(selected.size());
  for (std::size_t col : selected) {
    gains.emplace_back(information_gain(data, col), col);
  }
  std::stable_sort(gains.begin(), gains.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> names;
  names.reserve(gains.size());
  for (const auto& [gain, col] : gains) names.push_back(data.feature_names()[col]);
  return names;
}

}  // namespace vqoe::ml

#include "vqoe/ml/cross_validation.h"

#include <algorithm>
#include <stdexcept>

namespace vqoe::ml {

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       int k,
                                                       std::mt19937_64& rng) {
  if (k < 2) throw std::invalid_argument{"stratified_folds: k must be >= 2"};
  std::vector<std::vector<std::size_t>> by_class(data.num_classes());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(i);
  }
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  std::size_t next = 0;
  for (auto& cls : by_class) {
    std::shuffle(cls.begin(), cls.end(), rng);
    for (std::size_t idx : cls) {
      folds[next % static_cast<std::size_t>(k)].push_back(idx);
      ++next;
    }
  }
  return folds;
}

ConfusionMatrix cross_validate_with(
    const Dataset& data,
    const std::function<std::function<int(std::span<const double>)>(const Dataset&)>& train,
    const CrossValidationOptions& options) {
  std::mt19937_64 rng{options.seed};
  const auto folds = stratified_folds(data, options.folds, rng);

  ConfusionMatrix cm{data.class_names()};
  for (std::size_t f = 0; f < folds.size(); ++f) {
    std::vector<std::size_t> train_idx;
    for (std::size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      train_idx.insert(train_idx.end(), folds[g].begin(), folds[g].end());
    }
    Dataset train_set = data.select_rows(train_idx);
    if (options.balance_training) {
      train_set = train_set.balanced_undersample(rng);
    }
    if (train_set.empty()) continue;
    const auto predictor = train(train_set);
    for (std::size_t idx : folds[f]) {
      cm.add(data.label(idx), predictor(data.row(idx)));
    }
  }
  return cm;
}

ConfusionMatrix cross_validate(const Dataset& data,
                               const ForestParams& forest_params,
                               const CrossValidationOptions& options) {
  return cross_validate_with(
      data,
      [&forest_params](const Dataset& train_set) {
        auto forest = RandomForest::fit(train_set, forest_params);
        return [forest = std::move(forest)](std::span<const double> x) {
          return forest.predict(x);
        };
      },
      options);
}

}  // namespace vqoe::ml

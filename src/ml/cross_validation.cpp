#include "vqoe/ml/cross_validation.h"

#include <algorithm>
#include <stdexcept>

#include "vqoe/par/parallel.h"

namespace vqoe::ml {

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       int k,
                                                       std::mt19937_64& rng) {
  if (k < 2) throw std::invalid_argument{"stratified_folds: k must be >= 2"};
  std::vector<std::vector<std::size_t>> by_class(data.num_classes());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(i);
  }
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  std::size_t next = 0;
  for (auto& cls : by_class) {
    std::shuffle(cls.begin(), cls.end(), rng);
    for (std::size_t idx : cls) {
      folds[next % static_cast<std::size_t>(k)].push_back(idx);
      ++next;
    }
  }
  return folds;
}

ConfusionMatrix cross_validate_with(
    const Dataset& data,
    const std::function<std::function<int(std::span<const double>)>(const Dataset&)>& train,
    const CrossValidationOptions& options) {
  std::mt19937_64 rng{options.seed};
  const auto folds = stratified_folds(data, options.folds, rng);

  // Folds are independent given the partition: each gets its own RNG
  // stream (derived from the options seed and the fold index) for the
  // balancing undersample, trains as a task on the vqoe::par pool, and
  // the per-fold confusions are merged in fold order — so the accumulated
  // matrix is identical for any thread count.
  std::vector<ConfusionMatrix> fold_cms(folds.size(),
                                        ConfusionMatrix{data.class_names()});
  par::parallel_for(
      0, folds.size(), 1, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t f = lo; f < hi; ++f) {
          std::vector<std::size_t> train_idx;
          for (std::size_t g = 0; g < folds.size(); ++g) {
            if (g == f) continue;
            train_idx.insert(train_idx.end(), folds[g].begin(), folds[g].end());
          }
          Dataset train_set = data.select_rows(train_idx);
          if (options.balance_training) {
            std::mt19937_64 fold_rng{par::derive_seed(options.seed, f)};
            train_set = train_set.balanced_undersample(fold_rng);
          }
          if (train_set.empty()) continue;
          const auto predictor = train(train_set);
          for (std::size_t idx : folds[f]) {
            fold_cms[f].add(data.label(idx), predictor(data.row(idx)));
          }
        }
      });

  ConfusionMatrix cm{data.class_names()};
  for (const ConfusionMatrix& fold_cm : fold_cms) cm.merge(fold_cm);
  return cm;
}

ConfusionMatrix cross_validate(const Dataset& data,
                               const ForestParams& forest_params,
                               const CrossValidationOptions& options) {
  return cross_validate_with(
      data,
      [&forest_params](const Dataset& train_set) {
        auto forest = RandomForest::fit(train_set, forest_params);
        return [forest = std::move(forest)](std::span<const double> x) {
          return forest.predict(x);
        };
      },
      options);
}

}  // namespace vqoe::ml

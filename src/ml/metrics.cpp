#include "vqoe/ml/metrics.h"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace vqoe::ml {

ConfusionMatrix::ConfusionMatrix(std::vector<std::string> class_names)
    : names_(std::move(class_names)), counts_(names_.size() * names_.size(), 0) {
  if (names_.empty()) {
    throw std::invalid_argument{"ConfusionMatrix: need at least one class"};
  }
}

void ConfusionMatrix::add(int actual, int predicted) {
  const auto k = num_classes();
  if (actual < 0 || predicted < 0 || static_cast<std::size_t>(actual) >= k ||
      static_cast<std::size_t>(predicted) >= k) {
    throw std::invalid_argument{"ConfusionMatrix::add: label out of range"};
  }
  counts_[static_cast<std::size_t>(actual) * k + static_cast<std::size_t>(predicted)]++;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.names_ != names_) {
    throw std::invalid_argument{"ConfusionMatrix::merge: class mismatch"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  return counts_[static_cast<std::size_t>(actual) * num_classes() +
                 static_cast<std::size_t>(predicted)];
}

std::size_t ConfusionMatrix::support(int c) const {
  std::size_t s = 0;
  for (std::size_t j = 0; j < num_classes(); ++j) s += count(c, static_cast<int>(j));
  return s;
}

std::size_t ConfusionMatrix::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::size_t{0});
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t trace = 0;
  for (std::size_t c = 0; c < num_classes(); ++c) trace += count(static_cast<int>(c), static_cast<int>(c));
  return static_cast<double>(trace) / static_cast<double>(n);
}

double ConfusionMatrix::tp_rate(int c) const {
  const std::size_t pos = support(c);
  if (pos == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(pos);
}

double ConfusionMatrix::fp_rate(int c) const {
  const std::size_t n = total();
  const std::size_t pos = support(c);
  const std::size_t neg = n - pos;
  if (neg == 0) return 0.0;
  std::size_t fp = 0;
  for (std::size_t a = 0; a < num_classes(); ++a) {
    if (static_cast<int>(a) == c) continue;
    fp += count(static_cast<int>(a), c);
  }
  return static_cast<double>(fp) / static_cast<double>(neg);
}

double ConfusionMatrix::precision(int c) const {
  std::size_t predicted = 0;
  for (std::size_t a = 0; a < num_classes(); ++a) predicted += count(static_cast<int>(a), c);
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(predicted);
}

double ConfusionMatrix::weighted(double (ConfusionMatrix::*metric)(int) const) const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t c = 0; c < num_classes(); ++c) {
    acc += (this->*metric)(static_cast<int>(c)) *
           static_cast<double>(support(static_cast<int>(c)));
  }
  return acc / static_cast<double>(n);
}

double ConfusionMatrix::weighted_tp_rate() const { return weighted(&ConfusionMatrix::tp_rate); }
double ConfusionMatrix::weighted_fp_rate() const { return weighted(&ConfusionMatrix::fp_rate); }
double ConfusionMatrix::weighted_precision() const { return weighted(&ConfusionMatrix::precision); }
double ConfusionMatrix::weighted_recall() const { return weighted(&ConfusionMatrix::recall); }

double ConfusionMatrix::row_fraction(int actual, int predicted) const {
  const std::size_t s = support(actual);
  if (s == 0) return 0.0;
  return static_cast<double>(count(actual, predicted)) / static_cast<double>(s);
}

namespace {

std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace

std::string ConfusionMatrix::metrics_table() const {
  std::size_t w = 14;
  for (const auto& n : names_) w = std::max(w, n.size() + 2);
  std::ostringstream os;
  os << pad("Class", w) << pad("TP Rate", 10) << pad("FP Rate", 10)
     << pad("Precision", 11) << pad("Recall", 8) << '\n';
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const int ci = static_cast<int>(c);
    os << pad(names_[c], w) << pad(fmt(tp_rate(ci)), 10) << pad(fmt(fp_rate(ci)), 10)
       << pad(fmt(precision(ci)), 11) << pad(fmt(recall(ci)), 8) << '\n';
  }
  os << pad("weighted avg.", w) << pad(fmt(weighted_tp_rate()), 10)
     << pad(fmt(weighted_fp_rate()), 10) << pad(fmt(weighted_precision()), 11)
     << pad(fmt(weighted_recall()), 8) << '\n';
  return os.str();
}

std::string ConfusionMatrix::confusion_table() const {
  std::size_t w = 16;
  for (const auto& n : names_) w = std::max(w, n.size() + 2);
  std::ostringstream os;
  os << pad("actual \\ pred", w);
  for (const auto& n : names_) os << pad(n, w);
  os << '\n';
  for (std::size_t a = 0; a < num_classes(); ++a) {
    os << pad(names_[a], w);
    for (std::size_t p = 0; p < num_classes(); ++p) {
      os << pad(fmt(100.0 * row_fraction(static_cast<int>(a), static_cast<int>(p)), 2) + "%", w);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace vqoe::ml

#include "vqoe/ml/knn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vqoe::ml {

KnnClassifier KnnClassifier::fit(const Dataset& data, int k) {
  if (data.empty()) throw std::invalid_argument{"KnnClassifier::fit: empty dataset"};
  if (k < 1) throw std::invalid_argument{"KnnClassifier::fit: k must be >= 1"};

  KnnClassifier model;
  model.feature_names_ = data.feature_names();
  model.cols_ = data.cols();
  model.num_classes_ = data.num_classes();
  model.k_ = std::min<int>(k, static_cast<int>(data.rows()));
  model.labels_ = data.labels();

  // z-score parameters.
  model.mean_.assign(model.cols_, 0.0);
  model.inv_std_.assign(model.cols_, 1.0);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < model.cols_; ++f) model.mean_[f] += row[f];
  }
  for (double& m : model.mean_) m /= static_cast<double>(data.rows());
  std::vector<double> var(model.cols_, 0.0);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < model.cols_; ++f) {
      const double d = row[f] - model.mean_[f];
      var[f] += d * d;
    }
  }
  for (std::size_t f = 0; f < model.cols_; ++f) {
    const double v = var[f] / static_cast<double>(data.rows());
    model.inv_std_[f] = v > 1e-12 ? 1.0 / std::sqrt(v) : 0.0;  // constant -> ignore
  }

  model.x_.resize(data.rows() * model.cols_);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (std::size_t f = 0; f < model.cols_; ++f) {
      model.x_[i * model.cols_ + f] =
          (row[f] - model.mean_[f]) * model.inv_std_[f];
    }
  }
  return model;
}

int KnnClassifier::predict(std::span<const double> features) const {
  if (!trained()) throw std::logic_error{"KnnClassifier: not trained"};
  if (features.size() != cols_) {
    throw std::invalid_argument{"KnnClassifier: feature width mismatch"};
  }
  std::vector<double> query(cols_);
  for (std::size_t f = 0; f < cols_; ++f) {
    query[f] = (features[f] - mean_[f]) * inv_std_[f];
  }

  // Keep the k best (distance, label) pairs with a simple partial sort —
  // n is the training size, k is tiny.
  std::vector<std::pair<double, int>> distances;
  distances.reserve(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    double d2 = 0.0;
    const double* row = x_.data() + i * cols_;
    for (std::size_t f = 0; f < cols_; ++f) {
      const double d = query[f] - row[f];
      d2 += d * d;
    }
    distances.emplace_back(d2, labels_[i]);
  }
  const auto kth = distances.begin() + k_;
  std::nth_element(distances.begin(), kth - 1, distances.end());

  std::vector<int> votes(num_classes_, 0);
  for (auto it = distances.begin(); it != kth; ++it) {
    votes[static_cast<std::size_t>(it->second)]++;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace vqoe::ml

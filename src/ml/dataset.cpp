#include "vqoe/ml/dataset.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace vqoe::ml {

Dataset::Dataset(std::vector<std::string> feature_names,
                 std::vector<std::string> class_names)
    : feature_names_(std::move(feature_names)),
      class_names_(std::move(class_names)) {
  std::unordered_set<std::string> seen;
  for (const auto& n : feature_names_) {
    if (!seen.insert(n).second) {
      throw std::invalid_argument{"Dataset: duplicate feature name: " + n};
    }
  }
}

void Dataset::add(std::vector<double> row, int label) {
  if (row.size() != cols()) {
    throw std::invalid_argument{"Dataset::add: row width mismatch"};
  }
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes()) {
    throw std::invalid_argument{"Dataset::add: label out of range"};
  }
  x_.insert(x_.end(), row.begin(), row.end());
  labels_.push_back(label);
}

std::size_t Dataset::feature_index(const std::string& name) const {
  const auto it = std::find(feature_names_.begin(), feature_names_.end(), name);
  if (it == feature_names_.end()) {
    throw std::out_of_range{"Dataset: no feature named " + name};
  }
  return static_cast<std::size_t>(it - feature_names_.begin());
}

std::span<const double> Dataset::row(std::size_t i) const {
  return {x_.data() + i * cols(), cols()};
}

std::vector<double> Dataset::column(std::size_t col) const {
  std::vector<double> out;
  out.reserve(rows());
  for (std::size_t r = 0; r < rows(); ++r) out.push_back(at(r, col));
  return out;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (int y : labels_) counts[static_cast<std::size_t>(y)]++;
  return counts;
}

Dataset Dataset::project(std::span<const std::string> names) const {
  std::vector<std::size_t> idx;
  idx.reserve(names.size());
  for (const auto& n : names) idx.push_back(feature_index(n));

  Dataset out{{names.begin(), names.end()}, class_names_};
  std::vector<double> row_buf(names.size());
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < idx.size(); ++c) row_buf[c] = at(r, idx[c]);
    out.add(row_buf, labels_[r]);
  }
  return out;
}

Dataset Dataset::select_rows(std::span<const std::size_t> indices) const {
  Dataset out{feature_names_, class_names_};
  for (std::size_t i : indices) {
    const auto r = row(i);
    out.add({r.begin(), r.end()}, labels_[i]);
  }
  return out;
}

namespace {

std::vector<std::vector<std::size_t>> indices_by_class(const Dataset& d) {
  std::vector<std::vector<std::size_t>> by_class(d.num_classes());
  for (std::size_t i = 0; i < d.rows(); ++i) {
    by_class[static_cast<std::size_t>(d.label(i))].push_back(i);
  }
  return by_class;
}

}  // namespace

Dataset Dataset::balanced_undersample(std::mt19937_64& rng) const {
  auto by_class = indices_by_class(*this);
  std::size_t target = rows();
  for (const auto& c : by_class) {
    if (!c.empty()) target = std::min(target, c.size());
  }
  std::vector<std::size_t> keep;
  for (auto& c : by_class) {
    std::shuffle(c.begin(), c.end(), rng);
    keep.insert(keep.end(), c.begin(),
                c.begin() + static_cast<std::ptrdiff_t>(std::min(c.size(), target)));
  }
  std::shuffle(keep.begin(), keep.end(), rng);
  return select_rows(keep);
}

Dataset Dataset::balanced_oversample(std::mt19937_64& rng) const {
  auto by_class = indices_by_class(*this);
  std::size_t target = 0;
  for (const auto& c : by_class) target = std::max(target, c.size());
  std::vector<std::size_t> keep;
  for (const auto& c : by_class) {
    if (c.empty()) continue;
    keep.insert(keep.end(), c.begin(), c.end());
    std::uniform_int_distribution<std::size_t> pick(0, c.size() - 1);
    for (std::size_t i = c.size(); i < target; ++i) keep.push_back(c[pick(rng)]);
  }
  std::shuffle(keep.begin(), keep.end(), rng);
  return select_rows(keep);
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double test_fraction,
                                                      std::mt19937_64& rng) const {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    throw std::invalid_argument{"stratified_split: fraction out of [0,1]"};
  }
  auto by_class = indices_by_class(*this);
  std::vector<std::size_t> train_idx, test_idx;
  for (auto& c : by_class) {
    std::shuffle(c.begin(), c.end(), rng);
    std::size_t n_test =
        static_cast<std::size_t>(test_fraction * static_cast<double>(c.size()));
    if (n_test == 0 && c.size() >= 2 && test_fraction > 0.0) n_test = 1;
    test_idx.insert(test_idx.end(), c.begin(),
                    c.begin() + static_cast<std::ptrdiff_t>(n_test));
    train_idx.insert(train_idx.end(),
                     c.begin() + static_cast<std::ptrdiff_t>(n_test), c.end());
  }
  std::shuffle(train_idx.begin(), train_idx.end(), rng);
  std::shuffle(test_idx.begin(), test_idx.end(), rng);
  return {select_rows(train_idx), select_rows(test_idx)};
}

}  // namespace vqoe::ml

#include "vqoe/ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vqoe::ml {

GaussianNaiveBayes GaussianNaiveBayes::fit(const Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument{"GaussianNaiveBayes::fit: empty dataset"};
  }
  GaussianNaiveBayes model;
  model.feature_names_ = data.feature_names();
  model.cols_ = data.cols();
  const std::size_t k = data.num_classes();
  const std::size_t d = data.cols();

  const auto counts = data.class_counts();
  model.priors_.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    // Laplace-smoothed prior: classes absent from training keep a floor.
    model.priors_[c] = std::log(
        (static_cast<double>(counts[c]) + 1.0) /
        (static_cast<double>(data.rows()) + static_cast<double>(k)));
  }

  model.means_.assign(k * d, 0.0);
  model.variances_.assign(k * d, 0.0);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto c = static_cast<std::size_t>(data.label(i));
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) model.means_[c * d + f] += row[f];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (std::size_t f = 0; f < d; ++f) {
      model.means_[c * d + f] /= static_cast<double>(counts[c]);
    }
  }
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto c = static_cast<std::size_t>(data.label(i));
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = row[f] - model.means_[c * d + f];
      model.variances_[c * d + f] += delta * delta;
    }
  }
  // Variance floor: a fraction of the pooled feature variance (plus an
  // absolute epsilon) keeps degenerate features usable.
  std::vector<double> pooled(d, 0.0);
  for (std::size_t f = 0; f < d; ++f) {
    double mean_all = 0.0;
    for (std::size_t i = 0; i < data.rows(); ++i) mean_all += data.at(i, f);
    mean_all /= static_cast<double>(data.rows());
    for (std::size_t i = 0; i < data.rows(); ++i) {
      const double delta = data.at(i, f) - mean_all;
      pooled[f] += delta * delta;
    }
    pooled[f] /= static_cast<double>(data.rows());
  }
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t f = 0; f < d; ++f) {
      double& var = model.variances_[c * d + f];
      if (counts[c] > 1) var /= static_cast<double>(counts[c]);
      var = std::max({var, 1e-3 * pooled[f], 1e-9});
    }
  }
  return model;
}

std::vector<double> GaussianNaiveBayes::log_posterior(
    std::span<const double> features) const {
  if (!trained()) throw std::logic_error{"GaussianNaiveBayes: not trained"};
  if (features.size() != cols_) {
    throw std::invalid_argument{"GaussianNaiveBayes: feature width mismatch"};
  }
  std::vector<double> posterior(priors_);
  constexpr double kLog2Pi = 1.8378770664093453;
  for (std::size_t c = 0; c < priors_.size(); ++c) {
    for (std::size_t f = 0; f < cols_; ++f) {
      const double mean = means_[c * cols_ + f];
      const double var = variances_[c * cols_ + f];
      const double delta = features[f] - mean;
      posterior[c] += -0.5 * (kLog2Pi + std::log(var) + delta * delta / var);
    }
  }
  return posterior;
}

int GaussianNaiveBayes::predict(std::span<const double> features) const {
  const auto posterior = log_posterior(features);
  return static_cast<int>(
      std::max_element(posterior.begin(), posterior.end()) - posterior.begin());
}

}  // namespace vqoe::ml

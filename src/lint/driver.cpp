// Tree walker and baseline plumbing for vqoe::lint.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "vqoe/lint/lint.h"

namespace vqoe::lint {
namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slash_path(const fs::path& p) {
  return p.generic_string();  // forward slashes on every platform
}

std::string read_file(const fs::path& p) {
  std::ifstream in{p, std::ios::binary};
  if (!in) throw std::runtime_error{"vqoe_lint: cannot read " + p.string()};
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// For src/<mod>/<name>.cpp whose own header src/<mod>/include/vqoe/<mod>/
/// <name>.h exists, the IWYU-lite rule pins the first include to it.
std::string self_include_for(const fs::path& root, const std::string& rel) {
  const fs::path p{rel};
  if (p.extension() != ".cpp") return {};
  auto it = p.begin();
  if (it == p.end() || *it != "src") return {};
  ++it;
  if (it == p.end()) return {};
  const std::string mod = it->string();
  const std::string header = p.stem().string() + ".h";
  const std::string candidate = "vqoe/" + mod + "/" + header;
  if (fs::exists(root / "src" / mod / "include" / candidate)) return candidate;
  return {};
}

}  // namespace

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
         f.message;
}

std::string baseline_key(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ":" + f.rule;
}

TreeReport analyze_tree(const TreeOptions& options) {
  std::vector<std::string> files;
  for (const std::string& rel : options.paths) {
    const fs::path full = options.root / rel;
    if (fs::is_regular_file(full)) {
      files.push_back(slash_path(rel));
      continue;
    }
    if (!fs::is_directory(full)) {
      throw std::runtime_error{"vqoe_lint: no such path: " + full.string()};
    }
    for (const auto& entry : fs::recursive_directory_iterator{full}) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      files.push_back(
          slash_path(fs::relative(entry.path(), options.root)));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  TreeReport report;
  for (const std::string& rel : files) {
    const bool excluded =
        std::any_of(options.excludes.begin(), options.excludes.end(),
                    [&rel](const std::string& prefix) {
                      return rel.starts_with(prefix);
                    });
    if (excluded) continue;
    ++report.files_scanned;
    FileInput input;
    input.path = rel;
    input.source = read_file(options.root / rel);
    input.expected_first_include = self_include_for(options.root, rel);
    std::vector<Finding> file_findings = analyze(input);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(file_findings.begin()),
                           std::make_move_iterator(file_findings.end()));
  }
  return report;
}

std::vector<std::string> load_baseline(const std::filesystem::path& path) {
  std::ifstream in{path};
  std::vector<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line.front() == '#') continue;
    keys.push_back(line);
  }
  return keys;
}

std::size_t apply_baseline(std::vector<Finding>& findings,
                           const std::vector<std::string>& keys) {
  const std::set<std::string> baseline{keys.begin(), keys.end()};
  std::set<std::string> matched;
  std::erase_if(findings, [&](const Finding& f) {
    const std::string key = baseline_key(f);
    if (!baseline.count(key)) return false;
    matched.insert(key);
    return true;
  });
  return baseline.size() - matched.size();
}

std::string write_baseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out =
      "# vqoe_lint baseline: grandfathered findings (file:line:rule).\n"
      "# Regenerate with: vqoe_lint --write-baseline=.vqoe-lint-baseline\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

}  // namespace vqoe::lint

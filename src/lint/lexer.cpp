#include "vqoe/lint/lint.h"

#include <cctype>

namespace vqoe::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string{s.substr(b, e - b)};
}

// Literal prefixes that may glue onto a quote: u8"x", L'\0', LR"(x)".
bool is_literal_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L" || id == "R" ||
         id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

// Two- and three-char operators worth keeping whole for token walk-backs.
constexpr const char* kMultiOps[] = {
    "...", "->*", "<<=", ">>=", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (is_ident_start(c)) {
        identifier_or_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal(pos_, false);
        continue;
      }
      if (c == '\'') {
        char_literal(pos_);
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void line_comment() {
    const int start = line_;
    const std::size_t body = pos_ + 2;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        {start, start, trim(src_.substr(body, pos_ - body))});
  }

  void block_comment() {
    const int start = line_;
    const std::size_t body = pos_ + 2;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    const std::size_t end = pos_;
    if (pos_ < src_.size()) pos_ += 2;
    out_.comments.push_back({start, line_, trim(src_.substr(body, end - body))});
  }

  // A preprocessor logical line, joining backslash continuations. Embedded
  // // and /* comments are cut off (a /* spanning past the line end is
  // consumed so the main loop does not re-lex its tail as code).
  void directive() {
    const int start = line_;
    std::string text;
    ++pos_;  // '#'
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      text += c;
      ++pos_;
    }
    const std::string joined = trim(text);
    std::size_t i = 0;
    while (i < joined.size() && is_ident_char(joined[i])) ++i;
    out_.directives.push_back(
        {start, joined.substr(0, i), trim(joined.substr(i))});
  }

  void identifier_or_literal() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    const std::string_view id = src_.substr(start, pos_ - start);
    if (pos_ < src_.size() && is_literal_prefix(id)) {
      if (src_[pos_] == '"') {
        string_literal(start, id.back() == 'R');
        return;
      }
      if (src_[pos_] == '\'') {
        char_literal(start);
        return;
      }
    }
    out_.tokens.push_back({TokenKind::identifier, std::string{id}, line_});
  }

  void number() {
    const std::size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back(
        {TokenKind::number, std::string{src_.substr(start, pos_ - start)},
         line_});
  }

  void string_literal(std::size_t start, bool raw) {
    const int at = line_;
    ++pos_;  // opening quote
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src_.find(closer, pos_);
      if (end == std::string_view::npos) {
        pos_ = src_.size();
      } else {
        for (std::size_t i = pos_; i < end; ++i) {
          if (src_[i] == '\n') ++line_;
        }
        pos_ = end + closer.size();
      }
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
        if (src_[pos_] == '\\') ++pos_;
        if (pos_ < src_.size()) ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    }
    out_.tokens.push_back(
        {TokenKind::string_lit, std::string{src_.substr(start, pos_ - start)},
         at});
  }

  void char_literal(std::size_t start) {
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\') ++pos_;
      if (pos_ < src_.size()) ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    out_.tokens.push_back(
        {TokenKind::char_lit, std::string{src_.substr(start, pos_ - start)},
         line_});
  }

  void punct() {
    for (const char* op : kMultiOps) {
      const std::string_view sv{op};
      if (src_.substr(pos_).starts_with(sv)) {
        out_.tokens.push_back({TokenKind::punct, std::string{sv}, line_});
        pos_ += sv.size();
        return;
      }
    }
    out_.tokens.push_back(
        {TokenKind::punct, std::string(1, src_[pos_]), line_});
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view source) { return Lexer{source}.run(); }

}  // namespace vqoe::lint

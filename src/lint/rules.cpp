// Rule implementations for vqoe::lint. Each rule walks the token stream
// produced by lexer.cpp; scoping by path prefix mirrors the contracts in
// DESIGN.md section 5f:
//
//   determinism        src/{par,ml,workload,sim,ts,core}
//   unchecked-syscall  src/wire
//   swallowed-exception, header-hygiene, banned-api   everywhere
#include <algorithm>
#include <initializer_list>
#include <set>
#include <string_view>
#include <tuple>

#include "vqoe/lint/lint.h"

namespace vqoe::lint {
namespace {

using sv = std::string_view;

bool starts_with_any(sv path, std::initializer_list<sv> prefixes) {
  for (sv p : prefixes) {
    if (path.starts_with(p)) return true;
  }
  return false;
}

bool is_header(sv path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

bool in_determinism_scope(sv path) {
  return starts_with_any(path, {"src/par/", "src/ml/", "src/workload/",
                                "src/sim/", "src/ts/", "src/core/",
                                "src/window/"});
}

bool in_syscall_scope(sv path) { return path.starts_with("src/wire/"); }

const Token* tok_at(const std::vector<Token>& ts, std::ptrdiff_t i) {
  return i >= 0 && i < static_cast<std::ptrdiff_t>(ts.size()) ? &ts[i]
                                                              : nullptr;
}

bool is(const Token* t, sv text) { return t && t->text == text; }

bool is_member_access(const Token* prev) {
  return is(prev, ".") || is(prev, "->");
}

struct RuleSink {
  const FileInput* input;
  std::vector<Finding>* out;
  void add(int line, sv rule, std::string message) {
    out->push_back({input->path, line, std::string{rule}, std::move(message)});
  }
};

// --- rule: determinism ------------------------------------------------------
// The batch modules promise bit-identical output for any thread count and
// any host; ambient entropy and wall clocks break that silently. RNG must
// be an explicitly seeded generator whose seed flows from par::derive_seed.

void check_determinism(const LexedFile& lf, RuleSink& sink) {
  static const std::set<sv> kCalls = {"rand",    "srand",    "rand_r",
                                      "drand48", "lrand48",  "mrand48",
                                      "random",  "setlocale"};
  static const std::set<sv> kTypes = {"random_device", "system_clock"};
  const auto& ts = lf.tokens;
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(ts.size()); ++i) {
    const Token& t = ts[i];
    if (t.kind != TokenKind::identifier) continue;
    const Token* prev = tok_at(ts, i - 1);
    const Token* next = tok_at(ts, i + 1);
    if (is_member_access(prev)) continue;  // x.random(), r->time(...)
    if (kTypes.count(t.text)) {
      sink.add(t.line, "determinism",
               "'" + t.text +
                   "' is non-deterministic; seed an explicit generator via "
                   "par::derive_seed instead");
      continue;
    }
    if (kCalls.count(t.text) && is(next, "(")) {
      sink.add(t.line, "determinism",
               "call to '" + t.text +
                   "' is non-deterministic or locale-dependent; randomness "
                   "must flow from par::derive_seed");
      continue;
    }
    if (t.text == "time" && is(next, "(")) {
      sink.add(t.line, "determinism",
               "wall-clock 'time(...)' in a deterministic module; thread "
               "timestamps through the record stream instead");
      continue;
    }
    if (t.text == "locale" && is(prev, "::") && is(tok_at(ts, i - 2), "std")) {
      sink.add(t.line, "determinism",
               "'std::locale' makes parsing host-dependent; the batch "
               "modules must parse byte-identically everywhere");
    }
  }
}

// --- rule: unchecked-syscall ------------------------------------------------
// Spool durability is an end-to-end claim: every write/fsync/close on the
// durable path must surface its error. A discarded return value — either
// at statement position or behind a (void) cast — needs an explicit
// suppression documenting why best-effort is correct there.

void check_unchecked_syscall(const LexedFile& lf, RuleSink& sink) {
  static const std::set<sv> kSyscalls = {
      "read",  "write", "pread", "pwrite",    "close", "fsync",
      "fdatasync", "poll",  "send",  "recv", "ftruncate"};
  // Tokens before a call start that mean the result is consumed.
  static const std::set<sv> kConsumed = {
      "=",  "(",  ",", "return", "!",  "==", "!=", "<",  ">",  "<=",
      ">=", "&&", "||", "?",     "+",  "-",  "*",  "/",  "%",  "&",
      "|",  "^",  "<<", ">>",    "+=", "-=", "*=", "/=", "while"};
  const auto& ts = lf.tokens;
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(ts.size()); ++i) {
    const Token& t = ts[i];
    if (t.kind != TokenKind::identifier || !kSyscalls.count(t.text)) continue;
    if (!is(tok_at(ts, i + 1), "(")) continue;

    // Only `::close(...)`-style global-qualified calls are considered:
    // src/wire calls POSIX with explicit `::` everywhere (the idiom this
    // rule relies on), and a bare `close(...)` is indistinguishable at
    // token level from a member call or overload (e.g. Probe::send).
    const Token* before = tok_at(ts, i - 1);
    if (!is(before, "::")) continue;
    const Token* scope = tok_at(ts, i - 2);
    if (scope && scope->kind == TokenKind::identifier) {
      continue;  // Foo::close — member definition or qualified member call
    }
    const std::ptrdiff_t start = i - 1;  // the `::`
    before = tok_at(ts, start - 1);

    // (void)-cast discard, with or without the `!` idiom.
    std::ptrdiff_t j = start - 1;
    if (is(tok_at(ts, j), "!")) --j;
    if (is(tok_at(ts, j), ")") && is(tok_at(ts, j - 1), "void") &&
        is(tok_at(ts, j - 2), "(")) {
      sink.add(t.line, "unchecked-syscall",
               "result of '" + t.text +
                   "' discarded via (void) cast; check it or carry a "
                   "vqoe-lint suppression explaining why best-effort is "
                   "correct here");
      continue;
    }
    if (before && kConsumed.count(sv{before->text})) continue;
    if (is(before, ";") || is(before, "{") || is(before, "}") ||
        is(before, ")") || is(before, "else") || is(before, ":")) {
      sink.add(t.line, "unchecked-syscall",
               "return value of '" + t.text +
                   "' is not checked; the wire durability contract requires "
                   "every syscall result to be consumed");
    }
  }
}

// --- rule: swallowed-exception ----------------------------------------------
// `catch (...)` must rethrow, record (any non-empty body), or carry an
// explicit suppression — an empty handler erases the only evidence a
// durability or determinism violation ever happened.

void check_swallowed_exception(const LexedFile& lf, RuleSink& sink) {
  const auto& ts = lf.tokens;
  for (std::ptrdiff_t i = 0;
       i + 4 < static_cast<std::ptrdiff_t>(ts.size()); ++i) {
    if (!(is(&ts[i], "catch") && is(&ts[i + 1], "(") && is(&ts[i + 2], "...") &&
          is(&ts[i + 3], ")") && is(&ts[i + 4], "{"))) {
      continue;
    }
    const int catch_line = ts[i].line;
    std::ptrdiff_t j = i + 5;
    int depth = 1;
    bool empty = true;
    for (; j < static_cast<std::ptrdiff_t>(ts.size()) && depth > 0; ++j) {
      if (is(&ts[j], "{")) ++depth;
      else if (is(&ts[j], "}")) --depth;
      if (depth > 0) empty = false;
    }
    if (!empty) continue;  // rethrows or records something
    sink.add(catch_line, "swallowed-exception",
             "'catch (...)' swallows the exception; rethrow, record the "
             "failure, or add 'vqoe-lint: allow(swallowed-exception): why'");
  }
}

// --- rule: header-hygiene ---------------------------------------------------

void check_header_hygiene(const LexedFile& lf, const FileInput& input,
                          RuleSink& sink) {
  const sv path{input.path};
  if (is_header(path)) {
    bool guarded = false;
    for (const PpDirective& d : lf.directives) {
      if (d.name == "pragma" && d.rest.starts_with("once")) {
        guarded = true;
        break;
      }
    }
    if (!guarded && lf.directives.size() >= 2 &&
        lf.directives[0].name == "ifndef" &&
        lf.directives[1].name == "define" &&
        !lf.directives[0].rest.empty() &&
        lf.directives[1].rest.starts_with(lf.directives[0].rest)) {
      guarded = true;
    }
    if (!guarded) {
      sink.add(1, "header-hygiene",
               "header lacks '#pragma once' (or a classic include guard)");
    }
    const auto& ts = lf.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].text == "using" && ts[i + 1].text == "namespace") {
        sink.add(ts[i].line, "header-hygiene",
                 "'using namespace' in a header leaks into every includer");
      }
    }
  }
  if (!input.expected_first_include.empty()) {
    for (const PpDirective& d : lf.directives) {
      if (d.name != "include") continue;
      std::string target = d.rest;
      if (target.size() >= 2 && (target.front() == '"' || target.front() == '<')) {
        target = target.substr(1, target.size() - 2);
      }
      if (target != input.expected_first_include) {
        sink.add(d.line, "header-hygiene",
                 "first include must be the file's own header \"" +
                     input.expected_first_include +
                     "\" so the header is proven self-contained");
      }
      break;  // only the first include matters
    }
  }
}

// --- rule: banned-api -------------------------------------------------------

void check_banned_api(const LexedFile& lf, const FileInput& input,
                      RuleSink& sink) {
  static const std::set<sv> kUnbounded = {"sprintf", "vsprintf", "gets",
                                          "strcpy", "strcat"};
  static const std::set<sv> kAscii = {"atoi", "atol", "atoll", "atof"};
  static const std::set<sv> kStrto = {"strtol",  "strtoul",  "strtoll",
                                      "strtoull", "strtof",  "strtod",
                                      "strtold", "strtoimax", "strtoumax"};
  const bool arena_file =
      sv{input.path}.find("arena") != sv::npos;
  const auto& ts = lf.tokens;

  auto errno_near = [&ts](int line) {
    return std::any_of(ts.begin(), ts.end(), [line](const Token& t) {
      return t.text == "errno" && t.line >= line - 12 && t.line <= line + 12;
    });
  };

  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(ts.size()); ++i) {
    const Token& t = ts[i];
    if (t.kind != TokenKind::identifier) continue;
    const Token* prev = tok_at(ts, i - 1);
    const Token* next = tok_at(ts, i + 1);
    if (t.text == "new") {
      if (!arena_file) {
        sink.add(t.line, "banned-api",
                 "raw 'new' outside an arena; use std::make_unique / "
                 "containers, or suppress with the owning arena's rationale");
      }
      continue;
    }
    if (t.text == "delete") {
      if (is(prev, "=")) continue;  // deleted special member
      if (!arena_file) {
        sink.add(t.line, "banned-api",
                 "raw 'delete' outside an arena; prefer RAII ownership");
      }
      continue;
    }
    if (is_member_access(prev)) continue;
    if (!is(next, "(")) continue;
    if (kUnbounded.count(t.text)) {
      sink.add(t.line, "banned-api",
               "'" + t.text + "' is unbounded; use the snprintf family");
      continue;
    }
    if (kAscii.count(t.text)) {
      sink.add(t.line, "banned-api",
               "'" + t.text +
                   "' has undefined behavior on overflow and no error "
                   "reporting; use std::from_chars");
      continue;
    }
    if (kStrto.count(t.text) && !errno_near(t.line)) {
      sink.add(t.line, "banned-api",
               "'" + t.text +
                   "' without an errno check cannot detect overflow; check "
                   "errno or use std::from_chars");
    }
  }
}

// --- suppression filtering --------------------------------------------------

// swallowed-exception findings may be suppressed from inside the catch
// block, so give them a wider window: catch line .. catch line + 3.
bool suppressed(const Finding& f, const std::vector<Suppression>& sups) {
  for (const Suppression& s : sups) {
    if (s.rule != "*" && s.rule != f.rule) continue;
    if (s.line == f.line || s.line + 1 == f.line) return true;
    if (f.rule == "swallowed-exception" && s.line > f.line &&
        s.line <= f.line + 3) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Suppression> find_suppressions(
    const std::vector<CommentTok>& comments) {
  std::vector<Suppression> out;
  for (const CommentTok& c : comments) {
    sv text{c.text};
    std::size_t at = text.find("vqoe-lint:");
    while (at != sv::npos) {
      const std::size_t open = text.find("allow(", at);
      if (open == sv::npos) break;
      const std::size_t close = text.find(')', open);
      if (close == sv::npos) break;
      std::string rule{text.substr(open + 6, close - open - 6)};
      out.push_back({c.line, std::move(rule)});
      at = text.find("vqoe-lint:", close);
    }
  }
  return out;
}

std::vector<Finding> analyze(const FileInput& input) {
  const LexedFile lf = lex(input.source);
  std::vector<Finding> findings;
  RuleSink sink{&input, &findings};

  if (in_determinism_scope(input.path)) check_determinism(lf, sink);
  if (in_syscall_scope(input.path)) check_unchecked_syscall(lf, sink);
  check_swallowed_exception(lf, sink);
  check_header_hygiene(lf, input, sink);
  check_banned_api(lf, input, sink);

  const std::vector<Suppression> sups = find_suppressions(lf.comments);
  std::erase_if(findings,
                [&sups](const Finding& f) { return suppressed(f, sups); });
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

}  // namespace vqoe::lint

// vqoe::lint — project-invariant static analysis (DESIGN.md section 5f).
//
// A dependency-free, token-level C++ analyzer that machine-checks the
// contracts the compiler cannot: bit-identical determinism at any thread
// count (no wall clocks or ambient RNG in the batch modules — randomness
// must flow from par::derive_seed), checked-syscall durability in the
// wire spool/transport, no silently swallowed exceptions, header hygiene,
// and a short list of banned C APIs. It is deliberately *not* a compiler
// front-end: a lexer that understands comments, literals and preprocessor
// lines is enough to enforce these rules with zero false positives on
// this codebase, and it keeps the tool fast enough to run on every ctest
// invocation (label `lint`).
//
// Findings print as `file:line: rule: message`. Two escape hatches:
//
//  * inline suppression — `// vqoe-lint: allow(rule): reason` on the
//    finding's line, the line above it, or (for swallowed-exception)
//    inside the catch block. The reason is mandatory by convention: a
//    suppression is a reviewed claim that the invariant holds anyway.
//  * a checked-in baseline file of `file:line:rule` keys for grandfathered
//    findings; `vqoe_lint --write-baseline` regenerates it and CI fails
//    on any finding outside it (zero-new-findings gate).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace vqoe::lint {

// --- lexer -----------------------------------------------------------------

enum class TokenKind {
  identifier,  // also keywords: `new`, `delete`, `catch`, ...
  number,
  string_lit,  // includes raw strings; text is the undecoded spelling
  char_lit,
  punct,       // multi-char operators kept whole: :: -> ... == != <= >= && ||
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;
};

struct CommentTok {
  int line = 0;      // first line of the comment
  int end_line = 0;  // last line (block comments may span several)
  std::string text;  // without the // or /* */ markers, trimmed
};

struct PpDirective {
  int line = 0;
  std::string name;  // "include", "pragma", "ifndef", "define", ...
  std::string rest;  // remainder of the (continuation-joined) line, trimmed
};

struct LexedFile {
  std::vector<Token> tokens;          // comments and preprocessor excluded
  std::vector<CommentTok> comments;
  std::vector<PpDirective> directives;
};

/// Tokenizes C++ source. Never throws on malformed input: an unterminated
/// literal or comment simply ends at EOF — rule checks degrade gracefully.
LexedFile lex(std::string_view source);

// --- findings & suppressions ----------------------------------------------

struct Finding {
  std::string file;  // repo-relative path, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

/// `path:line: rule: message` — the printed form.
std::string format(const Finding& f);

/// `path:line:rule` — the baseline key (stable across message rewording).
std::string baseline_key(const Finding& f);

struct Suppression {
  int line = 0;
  std::string rule;  // "*" suppresses every rule on that line
};

/// Extracts `vqoe-lint: allow(rule)` markers from comments.
std::vector<Suppression> find_suppressions(const std::vector<CommentTok>& cs);

// --- analysis --------------------------------------------------------------

/// One file to analyze. `path` controls rule scoping (determinism rules
/// fire only under src/{par,ml,workload,sim,ts,core}, syscall rules only
/// under src/wire) so fixtures can opt into any scope by choosing a path.
struct FileInput {
  std::string path;
  std::string source;
  /// Non-empty for an implementation file whose own header exists:
  /// the first #include must be exactly this (IWYU-lite self-containment).
  std::string expected_first_include;
};

/// Runs every applicable rule; inline suppressions already applied.
/// Findings come back in (line, rule) order.
std::vector<Finding> analyze(const FileInput& input);

// --- tree driver -----------------------------------------------------------

struct TreeOptions {
  std::filesystem::path root;
  std::vector<std::string> paths;     // relative to root; dirs or files
  std::vector<std::string> excludes;  // relative path prefixes to skip
};

struct TreeReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;  // lets a clean run prove it covered the tree
};

/// Walks .h/.hpp/.cpp/.cc files under root/paths (sorted, deterministic),
/// wiring up the self-include expectation for src/<mod>/<name>.cpp files.
TreeReport analyze_tree(const TreeOptions& options);

// --- baseline --------------------------------------------------------------

/// Loads baseline keys (one per line, `#` comments and blanks ignored).
/// A missing file is an empty baseline, not an error.
std::vector<std::string> load_baseline(const std::filesystem::path& path);

/// Removes findings whose key appears in the baseline. Returns the number
/// of baseline keys that matched nothing (stale entries).
std::size_t apply_baseline(std::vector<Finding>& findings,
                           const std::vector<std::string>& keys);

/// Serializes findings as sorted baseline keys, one per line.
std::string write_baseline(const std::vector<Finding>& findings);

}  // namespace vqoe::lint

#include "vqoe/net/tcp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vqoe::net {

namespace {

// Binomial(n, p) via geometric skips between successes. Equivalent in law to
// std::binomial_distribution, but never calls lgamma — glibc's lgamma writes
// the process-global `signgam`, which races when downloads are simulated
// concurrently on the vqoe::par runtime. Expected cost is O(n*p + 1) log
// evaluations; p is clamped to <= 0.5 upstream.
std::uint64_t sample_binomial(std::uint64_t n, double p, std::mt19937_64& rng) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double log_q = std::log1p(-p);
  std::uniform_real_distribution<double> unit(
      std::numeric_limits<double>::min(), 1.0);
  const double limit = static_cast<double>(n);
  double position = 0.0;
  std::uint64_t successes = 0;
  while (true) {
    position += std::floor(std::log(unit(rng)) / log_q) + 1.0;
    if (position > limit) return successes;
    ++successes;
  }
}

}  // namespace

DownloadResult TcpModel::download(std::uint64_t size_bytes, const ChannelState& ch) {
  if (size_bytes == 0) throw std::invalid_argument{"TcpModel::download: empty object"};

  const double rtt_s = ch.rtt_ms / 1000.0;
  const double bdp_bytes = ch.bandwidth_bps * rtt_s / 8.0;

  // Per-download effective loss probability: the channel's rate plus bursty
  // per-transfer variation.
  std::lognormal_distribution<double> loss_spread(0.0, 0.6);
  const double p = std::clamp(ch.loss_rate * loss_spread(rng_), 1e-6, 0.5);

  // Mathis et al. steady-state cap: rate <= MSS/RTT * C/sqrt(p).
  constexpr double kMathisC = 1.22;
  const double mathis_bps = kMssBytes * 8.0 / rtt_s * kMathisC / std::sqrt(p);
  const double sustain_bps = std::min(ch.bandwidth_bps, mathis_bps);
  const double target_cwnd = std::max(kMssBytes, sustain_bps * rtt_s / 8.0);

  // Slow start: cwnd doubles every RTT until it reaches the sustainable
  // window or the object is finished.
  double remaining = static_cast<double>(size_bytes);
  double elapsed = rtt_s;  // HTTP request + first-byte latency
  double cwnd = std::max(kMssBytes, cwnd_bytes_);
  double bif_time_integral = 0.0;  // integral of bytes-in-flight over time
  double transfer_time = 0.0;
  double bif_max = std::min(cwnd, remaining);

  while (remaining > 0.0 && cwnd < target_cwnd) {
    const double in_flight = std::min(remaining, cwnd);
    // One RTT delivers one window during slow start.
    elapsed += rtt_s;
    transfer_time += rtt_s;
    bif_time_integral += in_flight * rtt_s;
    bif_max = std::max(bif_max, in_flight);
    remaining -= in_flight;
    cwnd = std::min(target_cwnd, cwnd * 2.0);
  }
  if (remaining > 0.0) {
    // Congestion-avoidance plateau: sustained rate, full window in flight.
    const double in_flight = std::min(target_cwnd, remaining);
    const double step = remaining * 8.0 / sustain_bps;
    elapsed += step;
    transfer_time += step;
    bif_time_integral += in_flight * step;
    bif_max = std::max(bif_max, in_flight);
    remaining = 0.0;
  }
  cwnd_bytes_ = cwnd;

  DownloadResult r;
  r.duration_s = elapsed;
  const double transfer_s = std::max(elapsed - rtt_s, 1e-6);
  r.goodput_bps = static_cast<double>(size_bytes) * 8.0 / transfer_s;

  // Queuing delay from standing data at the bottleneck: the excess of the
  // window over the BDP drains at link rate.
  const double excess_bytes = std::max(0.0, bif_max - bdp_bytes);
  const double queue_ms = excess_bytes * 8.0 / ch.bandwidth_bps * 1000.0;

  std::normal_distribution<double> jitter(1.0, 0.05);
  TransportStats& s = r.stats;
  s.rtt_min_ms = ch.rtt_ms * std::max(0.7, jitter(rng_) - 0.08);
  s.rtt_avg_ms = (ch.rtt_ms + 0.5 * queue_ms) * std::max(0.75, jitter(rng_));
  s.rtt_avg_ms = std::max(s.rtt_avg_ms, s.rtt_min_ms);
  std::lognormal_distribution<double> spike(0.25, 0.25);
  s.rtt_max_ms = std::max(s.rtt_avg_ms, (ch.rtt_ms + queue_ms) * spike(rng_));
  s.bdp_bytes = bdp_bytes;
  s.bif_avg_bytes = transfer_time > 0.0 ? bif_time_integral / transfer_time
                                        : std::min(cwnd, static_cast<double>(size_bytes));
  s.bif_avg_bytes = std::clamp(s.bif_avg_bytes, 0.0, bif_max);
  s.bif_max_bytes = bif_max;

  // Packet loss realized over the packets of this object.
  const auto packets = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(size_bytes) / kMssBytes));
  const double lost = static_cast<double>(sample_binomial(packets, p, rng_));
  s.loss_pct = 100.0 * lost / static_cast<double>(packets);
  // Retransmissions: every loss plus occasional spurious/timeout retransmits.
  std::uniform_real_distribution<double> extra(1.0, 1.35);
  s.retrans_pct = std::min(100.0, s.loss_pct * extra(rng_));
  return r;
}

void TcpModel::idle(double dt) {
  if (dt >= kIdleResetS) cwnd_bytes_ = kInitialWindowBytes;
}

void TcpModel::reset() { cwnd_bytes_ = kInitialWindowBytes; }

}  // namespace vqoe::net

#include "vqoe/net/cell.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vqoe::net {

double offered_load_erlangs(const CellConfig& config) {
  return config.mean_arrivals_per_s * config.mean_holding_s;
}

CellLoadChannel::CellLoadChannel(CellConfig config, double radio_quality,
                                 std::uint64_t seed)
    : config_(config), radio_quality_(radio_quality), rng_(seed) {
  if (radio_quality <= 0.0 || radio_quality > 1.0) {
    throw std::invalid_argument{"CellLoadChannel: radio_quality out of (0,1]"};
  }
  if (config.capacity_bps <= 0.0) {
    throw std::invalid_argument{"CellLoadChannel: capacity must be > 0"};
  }
  // Start the background population at its stationary mean (Poisson with
  // mean = offered load) so short sessions see a representative cell.
  std::poisson_distribution<int> stationary(
      std::max(0.0, offered_load_erlangs(config)));
  active_ = stationary(rng_);
  std::normal_distribution<double> unit(0.0, 1.0);
  jitter_dev_ = unit(rng_);
}

void CellLoadChannel::advance_to(double time_s) {
  // Next-event simulation of the M/M/inf background population: the total
  // event rate in state n is λ + n·μ.
  const double mu =
      config_.mean_holding_s > 0.0 ? 1.0 / config_.mean_holding_s : 0.0;
  while (true) {
    const double rate = config_.mean_arrivals_per_s + active_ * mu;
    if (rate <= 0.0) {
      next_event_s_ = time_s;  // frozen population
      return;
    }
    if (next_event_s_ == 0.0 && last_time_ == 0.0) {
      std::exponential_distribution<double> first(rate);
      next_event_s_ = first(rng_);
    }
    if (time_s < next_event_s_) return;
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    const bool arrival =
        coin(rng_) < config_.mean_arrivals_per_s / rate;
    active_ += arrival ? 1 : (active_ > 0 ? -1 : 0);
    std::exponential_distribution<double> gap(config_.mean_arrivals_per_s +
                                              active_ * mu);
    next_event_s_ += gap(rng_);
  }
}

ChannelState CellLoadChannel::at(double time_s) {
  advance_to(time_s);
  const double dt = std::max(0.0, time_s - last_time_);
  last_time_ = std::max(last_time_, time_s);
  // Short-term fading jitter (AR(1), 8 s e-folding).
  const double rho = std::exp(-dt / 8.0);
  std::normal_distribution<double> noise(0.0, std::sqrt(1.0 - rho * rho));
  jitter_dev_ = rho * jitter_dev_ + noise(rng_);

  ChannelState s;
  const double share =
      config_.capacity_bps / (1.0 + static_cast<double>(active_));
  s.bandwidth_bps =
      std::max(8e3, share * radio_quality_ * std::exp(0.15 * jitter_dev_));
  s.rtt_ms = config_.base_rtt_ms +
             config_.rtt_per_user_ms * static_cast<double>(active_);
  s.loss_rate = std::clamp(
      config_.base_loss + config_.loss_per_user * static_cast<double>(active_),
      0.0, 0.5);
  return s;
}

}  // namespace vqoe::net

#include "vqoe/net/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vqoe::net {

namespace {

// Advances a standardized AR(1) deviation process from `dev` across `dt`
// seconds with e-folding time `tau`, drawing innovation noise from `rng`.
double ar1_step(double dev, double dt, double tau, std::mt19937_64& rng) {
  if (dt <= 0.0) return dev;
  const double rho = std::exp(-dt / tau);
  std::normal_distribution<double> noise(0.0, std::sqrt(1.0 - rho * rho));
  return rho * dev + noise(rng);
}

ChannelState realize(const NetworkProfile& p, double bw_dev, double rtt_dev,
                     double loss_scale, double rtt_scale) {
  ChannelState s;
  // Log-normal-ish bandwidth: strictly positive, CV-controlled spread.
  s.bandwidth_bps = p.mean_bandwidth_bps * std::exp(p.bandwidth_cv * bw_dev -
                                                    0.5 * p.bandwidth_cv * p.bandwidth_cv);
  s.bandwidth_bps = std::max(s.bandwidth_bps, 8e3);  // floor: 8 kbit/s
  s.rtt_ms = p.base_rtt_ms * rtt_scale *
             std::exp(p.rtt_jitter_cv * rtt_dev -
                      0.5 * p.rtt_jitter_cv * p.rtt_jitter_cv);
  s.rtt_ms = std::max(s.rtt_ms, 5.0);
  s.loss_rate =
      std::clamp(p.loss_rate * loss_scale * std::exp(-0.5 * bw_dev), 0.0, 0.5);
  return s;
}

// Paths differ far more across users than a profile's mean suggests: RED
// policies, bufferbloat, middleboxes and peering all move loss and RTT by
// orders of magnitude between subscribers in the *same* radio regime. These
// per-connection scales are what keeps QoS metrics from trivially
// identifying the regime (and with it the QoE class).
double sample_loss_scale(std::mt19937_64& rng) {
  std::lognormal_distribution<double> d(0.0, 1.0);
  return d(rng);
}

double sample_rtt_scale(std::mt19937_64& rng) {
  std::lognormal_distribution<double> d(0.0, 0.55);
  return d(rng);
}

}  // namespace

GaussMarkovChannel::GaussMarkovChannel(NetworkProfile profile, std::uint64_t seed,
                                       double correlation_s)
    : profile_(std::move(profile)), rng_(seed), correlation_s_(correlation_s) {
  if (correlation_s <= 0.0) {
    throw std::invalid_argument{"GaussMarkovChannel: correlation must be > 0"};
  }
  std::normal_distribution<double> unit(0.0, 1.0);
  bw_dev_ = unit(rng_);
  rtt_dev_ = unit(rng_);
  loss_scale_ = sample_loss_scale(rng_);
  rtt_scale_ = sample_rtt_scale(rng_);
}

ChannelState GaussMarkovChannel::at(double time_s) {
  const double dt = std::max(0.0, time_s - last_time_);
  last_time_ = std::max(last_time_, time_s);
  bw_dev_ = ar1_step(bw_dev_, dt, correlation_s_, rng_);
  rtt_dev_ = ar1_step(rtt_dev_, dt, correlation_s_, rng_);
  return realize(profile_, bw_dev_, rtt_dev_, loss_scale_, rtt_scale_);
}

MobilityChannel::MobilityChannel(std::vector<NetworkProfile> states,
                                 std::uint64_t seed)
    : states_(std::move(states)), rng_(seed) {
  if (states_.empty()) {
    throw std::invalid_argument{"MobilityChannel: need at least one state"};
  }
  std::uniform_int_distribution<std::size_t> pick(0, states_.size() - 1);
  current_ = pick(rng_);
  std::exponential_distribution<double> dwell(1.0 / states_[current_].mean_dwell_s);
  next_transition_s_ = dwell(rng_);
  std::normal_distribution<double> unit(0.0, 1.0);
  bw_dev_ = unit(rng_);
  rtt_dev_ = unit(rng_);
  loss_scale_ = sample_loss_scale(rng_);
  rtt_scale_ = sample_rtt_scale(rng_);
}

void MobilityChannel::advance_to(double time_s) {
  while (states_.size() > 1 && time_s >= next_transition_s_) {
    // Uniform jump to a different state.
    std::uniform_int_distribution<std::size_t> pick(0, states_.size() - 2);
    std::size_t next = pick(rng_);
    if (next >= current_) ++next;
    current_ = next;
    std::exponential_distribution<double> dwell(1.0 / states_[current_].mean_dwell_s);
    next_transition_s_ += dwell(rng_);
    // Handover: decorrelate the jitter processes.
    std::normal_distribution<double> unit(0.0, 1.0);
    bw_dev_ = unit(rng_);
    rtt_dev_ = unit(rng_);
  }
}

ChannelState MobilityChannel::at(double time_s) {
  advance_to(time_s);
  const double dt = std::max(0.0, time_s - last_time_);
  last_time_ = std::max(last_time_, time_s);
  bw_dev_ = ar1_step(bw_dev_, dt, 6.0, rng_);
  rtt_dev_ = ar1_step(rtt_dev_, dt, 6.0, rng_);
  return realize(states_[current_], bw_dev_, rtt_dev_, loss_scale_, rtt_scale_);
}

const std::string& MobilityChannel::regime() const { return states_[current_].name; }

std::unique_ptr<ChannelModel> make_channel(const NetworkProfile& profile,
                                           std::uint64_t seed) {
  return std::make_unique<GaussMarkovChannel>(profile, seed);
}

std::unique_ptr<ChannelModel> make_commute_channel(std::uint64_t seed) {
  return std::make_unique<MobilityChannel>(commute_states(), seed);
}

}  // namespace vqoe::net

#include "vqoe/net/profile.h"

namespace vqoe::net {

NetworkProfile profile_static_good() {
  return {.name = "static_good",
          .mean_bandwidth_bps = 9e6,
          .bandwidth_cv = 0.18,
          .base_rtt_ms = 52.0,
          .rtt_jitter_cv = 0.10,
          .loss_rate = 0.002,
          .mean_dwell_s = 600.0};
}

NetworkProfile profile_cell_fair() {
  return {.name = "cell_fair",
          .mean_bandwidth_bps = 3.2e6,
          .bandwidth_cv = 0.25,
          .base_rtt_ms = 72.0,
          .rtt_jitter_cv = 0.20,
          .loss_rate = 0.005,
          .mean_dwell_s = 180.0};
}

NetworkProfile profile_cell_congested() {
  return {.name = "cell_congested",
          .mean_bandwidth_bps = 1.1e6,
          .bandwidth_cv = 0.40,
          .base_rtt_ms = 105.0,
          .rtt_jitter_cv = 0.35,
          .loss_rate = 0.010,
          .mean_dwell_s = 120.0};
}

NetworkProfile profile_cell_poor() {
  return {.name = "cell_poor",
          .mean_bandwidth_bps = 0.45e6,
          .bandwidth_cv = 0.50,
          .base_rtt_ms = 140.0,
          .rtt_jitter_cv = 0.45,
          .loss_rate = 0.018,
          .mean_dwell_s = 90.0};
}

NetworkProfile profile_cell_outage() {
  return {.name = "cell_outage",
          .mean_bandwidth_bps = 0.12e6,
          .bandwidth_cv = 0.60,
          .base_rtt_ms = 220.0,
          .rtt_jitter_cv = 0.55,
          .loss_rate = 0.035,
          .mean_dwell_s = 20.0};
}

std::vector<NetworkProfile> commute_states() {
  auto fair = profile_cell_fair();
  fair.mean_dwell_s = 45.0;
  auto congested = profile_cell_congested();
  congested.mean_dwell_s = 40.0;
  auto poor = profile_cell_poor();
  poor.mean_dwell_s = 35.0;
  auto outage = profile_cell_outage();
  outage.mean_dwell_s = 12.0;
  return {fair, congested, poor, outage};
}

}  // namespace vqoe::net

// Shared-cell load model.
//
// The paper's motivation is operator-side: capacity planning and radio
// resource allocation (Section 1). The stand-alone channel models in
// channel.h treat each session's radio conditions as exogenous; this header
// adds the load coupling an operator actually plans against: a cell of
// finite capacity shared with a fluctuating population of background users.
//
// Background users form a birth-death process (Poisson arrivals, exponential
// holding times — an M/M/inf cell); the foreground session's share of the
// cell is capacity / (1 + N(t)) scaled by its own radio quality, RTT
// inflates with queue depth, and loss rises mildly under contention. The
// ext_cell_load bench sweeps the offered load to produce the QoE-vs-load
// planning curve.
#pragma once

#include <random>

#include "vqoe/net/channel.h"

namespace vqoe::net {

struct CellConfig {
  double capacity_bps = 30e6;        ///< total downlink capacity of the cell
  double mean_arrivals_per_s = 0.05; ///< background session arrival rate λ
  double mean_holding_s = 120.0;     ///< background session duration 1/μ
  double base_rtt_ms = 70.0;
  double rtt_per_user_ms = 6.0;      ///< queueing delay added per active user
  double base_loss = 0.003;
  double loss_per_user = 0.0015;     ///< contention loss added per active user
};

/// Offered load in Erlangs (λ/μ — the expected number of concurrent
/// background users).
[[nodiscard]] double offered_load_erlangs(const CellConfig& config);

/// Channel view of one foreground session attached to a loaded cell.
/// The background population evolves lazily as time advances.
class CellLoadChannel final : public ChannelModel {
 public:
  /// @param radio_quality per-user link efficiency in (0, 1]: edge-of-cell
  ///        users extract less of their share.
  CellLoadChannel(CellConfig config, double radio_quality, std::uint64_t seed);

  ChannelState at(double time_s) override;
  [[nodiscard]] const std::string& regime() const override { return regime_; }

  /// Background users currently active (after the last at() call).
  [[nodiscard]] int active_users() const { return active_; }

 private:
  void advance_to(double time_s);

  CellConfig config_;
  double radio_quality_;
  std::mt19937_64 rng_;
  std::string regime_ = "shared_cell";
  int active_ = 0;
  double next_event_s_ = 0.0;
  double last_time_ = 0.0;
  double jitter_dev_ = 0.0;
};

}  // namespace vqoe::net

// Time-varying link models.
//
// A ChannelModel answers "what does the path look like at time t?" for the
// streaming simulator. Two concrete models cover the paper's two data
// collection settings:
//
//  * GaussMarkovChannel — a single NetworkProfile with AR(1)-correlated
//    bandwidth and RTT fluctuation: the static users that dominate the
//    cleartext weblog corpus (Section 3).
//  * MobilityChannel — a continuous-time Markov chain over several profiles
//    (cell handovers while commuting) with Gauss-Markov jitter inside each
//    state: the instrumented commuting handset of Section 5.2.
#pragma once

#include <memory>
#include <random>
#include <vector>

#include "vqoe/net/profile.h"

namespace vqoe::net {

/// Instantaneous path state seen by one flow.
struct ChannelState {
  double bandwidth_bps = 0.0;  ///< available bandwidth for this flow
  double rtt_ms = 0.0;         ///< current base RTT (before queuing)
  double loss_rate = 0.0;      ///< segment loss probability
};

/// Interface: link state as a (stochastic, stateful) function of time.
/// Calls must pass non-decreasing timestamps.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// State of the path at `time_s` (seconds from session start).
  virtual ChannelState at(double time_s) = 0;

  /// Name of the regime currently governing the channel (profile name).
  [[nodiscard]] virtual const std::string& regime() const = 0;
};

/// AR(1) (Gauss-Markov) fluctuation around a single profile's means.
/// Correlation decays with elapsed time; the process is sampled lazily at
/// the query times.
class GaussMarkovChannel final : public ChannelModel {
 public:
  /// @param profile        regime to fluctuate around.
  /// @param seed           private RNG seed (simulations are reproducible).
  /// @param correlation_s  e-folding time of the AR(1) correlation.
  GaussMarkovChannel(NetworkProfile profile, std::uint64_t seed,
                     double correlation_s = 8.0);

  ChannelState at(double time_s) override;
  [[nodiscard]] const std::string& regime() const override { return profile_.name; }

 private:
  NetworkProfile profile_;
  std::mt19937_64 rng_;
  double correlation_s_;
  double last_time_ = 0.0;
  double bw_dev_ = 0.0;   // standardized deviation processes
  double rtt_dev_ = 0.0;
  double loss_scale_ = 1.0;  // per-connection QoS idiosyncrasy
  double rtt_scale_ = 1.0;
};

/// Continuous-time Markov chain over profiles with exponential dwell times;
/// within a state, behaves like GaussMarkovChannel.
class MobilityChannel final : public ChannelModel {
 public:
  /// @param states uniform next-state choice among the others; dwell time in
  ///               state i is Exp(mean = states[i].mean_dwell_s).
  MobilityChannel(std::vector<NetworkProfile> states, std::uint64_t seed);

  ChannelState at(double time_s) override;
  [[nodiscard]] const std::string& regime() const override;

 private:
  void advance_to(double time_s);

  std::vector<NetworkProfile> states_;
  std::mt19937_64 rng_;
  std::size_t current_ = 0;
  double next_transition_s_ = 0.0;
  double bw_dev_ = 0.0;
  double rtt_dev_ = 0.0;
  double loss_scale_ = 1.0;
  double rtt_scale_ = 1.0;
  double last_time_ = 0.0;
};

/// Convenience factory used by the workload generators.
[[nodiscard]] std::unique_ptr<ChannelModel> make_channel(
    const NetworkProfile& profile, std::uint64_t seed);
[[nodiscard]] std::unique_ptr<ChannelModel> make_commute_channel(std::uint64_t seed);

}  // namespace vqoe::net

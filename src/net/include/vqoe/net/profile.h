// Named network condition profiles.
//
// The paper's training corpus comes from a production cellular network whose
// sessions span everything from well-provisioned static users to commuters
// on degraded 3G cells (Section 5.2 deliberately over-samples the latter for
// the encrypted dataset). A NetworkProfile captures the first and second
// moments of one such regime; the channel models in channel.h turn profiles
// into time-varying link state.
#pragma once

#include <string>
#include <vector>

namespace vqoe::net {

/// Stationary description of one radio/network regime.
struct NetworkProfile {
  std::string name;

  double mean_bandwidth_bps = 4e6;  ///< long-run available bandwidth
  double bandwidth_cv = 0.2;        ///< coefficient of variation of bandwidth

  double base_rtt_ms = 60.0;        ///< propagation + scheduling RTT
  double rtt_jitter_cv = 0.15;      ///< relative RTT jitter

  double loss_rate = 0.002;         ///< random segment loss probability

  /// Mean sojourn time in this regime when used as a mobility state.
  double mean_dwell_s = 60.0;
};

/// Fixed home/office WiFi or well-provisioned LTE: high bandwidth, low
/// jitter. Sessions here virtually never stall and sustain HD.
[[nodiscard]] NetworkProfile profile_static_good();

/// Average urban cellular: SD-capable, occasional quality switches.
[[nodiscard]] NetworkProfile profile_cell_fair();

/// Busy-hour congested cell: throughput below SD bitrates, elevated loss and
/// queuing RTT — the regime where mild stalling concentrates.
[[nodiscard]] NetworkProfile profile_cell_congested();

/// Edge-of-coverage / overloaded 3G: severe stalling territory.
[[nodiscard]] NetworkProfile profile_cell_poor();

/// Deep outage-like conditions (tunnels, basements) used as a transient
/// mobility state.
[[nodiscard]] NetworkProfile profile_cell_outage();

/// The mobility mix of Section 5.2's commuting user: alternates fair, poor,
/// congested and near-outage cells with short dwell times.
[[nodiscard]] std::vector<NetworkProfile> commute_states();

}  // namespace vqoe::net

// Chunk-level TCP transfer model.
//
// The operator proxy of Section 3.1 annotates every HTTP transaction with
// transport-layer statistics: min/avg/max RTT, bandwidth-delay product,
// average and maximum bytes-in-flight, packet loss % and retransmission %.
// TcpModel reproduces those annotations for a simulated chunk download:
// slow start from the connection's current congestion window, a
// Mathis-equation loss cap on the sustained rate, queue-induced RTT
// inflation, and window restart after idle (the OFF periods of ON-OFF
// pacing reset cwnd, which is why recovery chunks after a stall download
// slower than steady-state chunks of the same size).
#pragma once

#include <cstdint>
#include <random>

#include "vqoe/net/channel.h"

namespace vqoe::net {

/// The per-transaction transport annotations of Table 1 (left column),
/// excluding chunk size/time which the player layer owns.
struct TransportStats {
  double rtt_min_ms = 0.0;
  double rtt_avg_ms = 0.0;
  double rtt_max_ms = 0.0;
  double bdp_bytes = 0.0;       ///< link capacity x RTT
  double bif_avg_bytes = 0.0;   ///< mean bytes-in-flight (cwnd) during transfer
  double bif_max_bytes = 0.0;   ///< peak bytes-in-flight
  double loss_pct = 0.0;        ///< lost packets / packets sent x 100
  double retrans_pct = 0.0;     ///< retransmitted / sent x 100 (>= loss_pct)
};

/// Outcome of one simulated HTTP object download.
struct DownloadResult {
  double duration_s = 0.0;   ///< request sent -> last byte received
  double goodput_bps = 0.0;  ///< size / (duration - request RTT)
  TransportStats stats;
};

/// Stateful per-connection transfer simulator. The congestion window
/// persists across downloads on the same (persistent) connection and decays
/// back to the initial window after sufficiently long idle gaps.
class TcpModel {
 public:
  static constexpr double kMssBytes = 1460.0;
  static constexpr double kInitialWindowBytes = 10 * kMssBytes;
  /// Idle time after which RFC 5681-style congestion window validation
  /// collapses cwnd back to the initial window.
  static constexpr double kIdleResetS = 1.0;

  explicit TcpModel(std::uint64_t seed) : rng_(seed) {}

  /// Simulates downloading `size_bytes` under channel state `ch`.
  /// `size_bytes` must be > 0.
  DownloadResult download(std::uint64_t size_bytes, const ChannelState& ch);

  /// Notifies the model that the connection stayed idle for `dt` seconds
  /// (the OFF part of an ON-OFF cycle, or a stall).
  void idle(double dt);

  /// Starts a fresh connection (new video session / server switch).
  void reset();

  [[nodiscard]] double cwnd_bytes() const { return cwnd_bytes_; }

 private:
  std::mt19937_64 rng_;
  double cwnd_bytes_ = kInitialWindowBytes;
};

}  // namespace vqoe::net

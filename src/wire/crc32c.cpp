#include "vqoe/wire/crc32c.h"

#include <array>

namespace vqoe::wire {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

struct Tables {
  // table[0] is the classic byte table; tables 1..7 let the hot loop fold
  // eight input bytes per iteration (slicing-by-8).
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;

  while (size >= 8) {
    // Fold the current crc into the first four bytes, then index all eight
    // slice tables; byte order of the loads does not matter because each
    // byte meets its own table.
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size--) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace vqoe::wire

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>

#include <deque>
#include <limits>
#include <memory>

#include "vqoe/wire/crc32c.h"
#include "vqoe/wire/spool.h"
#include "vqoe/wire/transport.h"
#include "wire_io.h"

namespace vqoe::wire {

using detail::get_u32;
using detail::put_u32;
using detail::put_u64;

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Per-probe connection state. The rx buffer is bounded by the ack window:
/// a probe never has more than `ack_window` unacknowledged frames in
/// flight, and acks are withheld until the merge has consumed a frame.
struct Collector::Conn {
  detail::ScopedFd fd;
  bool hello_done = false;
  bool refused = false;   ///< version negotiation failed
  bool finished = false;  ///< FIN received, stream complete
  bool dead = false;      ///< socket error / EOF / protocol violation
  std::vector<std::uint8_t> in;
  std::size_t in_off = 0;
  std::vector<std::uint8_t> out;  ///< hello-ack + ack stream
  std::size_t out_off = 0;
  std::deque<trace::WeblogRecord> pending;  ///< decoded, not yet merged
  std::deque<std::uint32_t> frame_records;  ///< unconsumed records per frame
  std::uint64_t frames_consumed = 0;
  std::uint64_t frames_ack_sent = 0;
  double last_key = -std::numeric_limits<double>::infinity();
  bool saw_record = false;
};

Collector::Collector(CollectorConfig config) : config_(config) {
  if (config_.ack_window == 0) config_.ack_window = 1;

  detail::ScopedFd listener{::socket(AF_INET, SOCK_STREAM, 0)};
  if (listener.get() < 0) detail::throw_errno("cannot create listen socket");
  const int one = 1;
  (void)::setsockopt(listener.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listener.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    detail::throw_errno("cannot bind collector port " +
                        std::to_string(config_.port));
  }
  if (::listen(listener.get(), 64) != 0) {
    detail::throw_errno("cannot listen on collector socket");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    detail::throw_errno("cannot read collector port");
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listener.get());

  if (::pipe(wake_fds_) != 0) detail::throw_errno("cannot create wake pipe");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  listen_fd_ = listener.release();
}

Collector::~Collector() {
  stop();
  // Best-effort teardown: these fds carry no durable state (the spool tee
  // is closed by its own writer), so a failed close has nothing to lose.
  // vqoe-lint: allow(unchecked-syscall): listener close, no durable data
  if (listen_fd_ >= 0) ::close(listen_fd_);
  // vqoe-lint: allow(unchecked-syscall): wake-pipe close, no durable data
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  // vqoe-lint: allow(unchecked-syscall): wake-pipe close, no durable data
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void Collector::stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fds_[1] >= 0) {
    const std::uint8_t byte = 1;
    // EAGAIN on the non-blocking wake pipe means a wake is already
    // pending — exactly what we want, so the result is discarded.
    // vqoe-lint: allow(unchecked-syscall): wake already pending on EAGAIN
    (void)!::write(wake_fds_[1], &byte, 1);
  }
}

CollectorStats Collector::run(const Sink& sink) {
  CollectorStats stats;
  std::vector<std::unique_ptr<Conn>> conns;
  std::size_t hello_count = 0;   // successfully negotiated probes
  std::size_t failed_count = 0;  // refused or errored connections
  std::vector<trace::WeblogRecord> tee_buf;
  const std::size_t tee_batch =
      config_.tee_batch_records == 0 ? 512 : config_.tee_batch_records;

  auto fail_conn = [&](Conn& c) {
    ++stats.protocol_errors;
    ++failed_count;
    c.dead = true;
    c.finished = true;
    // The stream's integrity is gone; whatever was buffered but not yet
    // merged must not reach the engine.
    c.pending.clear();
    c.frame_records.clear();
  };

  auto parse = [&](Conn& c) {
    for (;;) {
      const std::size_t avail = c.in.size() - c.in_off;
      const std::uint8_t* p = c.in.data() + c.in_off;

      if (!c.hello_done) {
        if (avail < kHelloBytes) break;
        if (get_u32(p) != kHelloMagic) {
          fail_conn(c);
          return;
        }
        const std::uint8_t peer_min = p[4];
        const std::uint8_t peer_max = p[5];
        c.in_off += kHelloBytes;
        c.hello_done = true;

        const std::uint8_t version =
            peer_max < kWireVersionMax ? peer_max : kWireVersionMax;
        const std::uint8_t floor =
            peer_min > kWireVersionMin ? peer_min : kWireVersionMin;
        std::uint8_t ack[kHelloAckBytes] = {};
        put_u32(kHelloAckMagic, ack);
        if (version < floor) {
          // No overlap: answer version 0 and drop the connection.
          c.out.insert(c.out.end(), ack, ack + sizeof ack);
          c.refused = true;
          c.finished = true;
          ++stats.protocol_errors;
          ++failed_count;
          return;
        }
        ack[4] = version;
        put_u32(config_.ack_window, ack + 8);
        c.out.insert(c.out.end(), ack, ack + sizeof ack);
        ++hello_count;
        continue;
      }

      if (c.finished) {
        if (avail > 0) fail_conn(c);  // bytes after FIN
        return;
      }
      if (avail < kFrameHeaderBytes) break;
      const std::uint32_t payload_len = get_u32(p);
      const std::uint32_t crc = get_u32(p + 4);
      if (payload_len == 0) {
        if (crc != 0) {
          fail_conn(c);
          return;
        }
        c.in_off += kFrameHeaderBytes;
        c.finished = true;
        ++stats.probes_completed;
        continue;
      }
      if (payload_len > kMaxFramePayloadBytes) {
        fail_conn(c);
        return;
      }
      if (avail < kFrameHeaderBytes + payload_len) break;
      const std::uint8_t* payload = p + kFrameHeaderBytes;
      if (crc32c(payload, payload_len) != crc) {
        fail_conn(c);
        return;
      }
      std::vector<trace::WeblogRecord> records;
      try {
        records = decode_batch(payload, payload_len, kWireVersionMax);
      } catch (const WireError&) {
        fail_conn(c);
        return;
      }
      c.in_off += kFrameHeaderBytes + payload_len;
      ++stats.frames_received;
      stats.records_received += records.size();
      if (records.empty()) {
        ++c.frames_consumed;  // nothing to merge; ack immediately
        continue;
      }
      for (auto& r : records) {
        // Each probe must stream in merge-key order or the k-way merge
        // cannot reconstruct a globally sorted feed.
        const double key = merge_key_of(r, config_.merge_key);
        if (c.saw_record && key < c.last_key) {
          fail_conn(c);
          return;
        }
        c.saw_record = true;
        c.last_key = key;
        c.pending.push_back(std::move(r));
      }
      c.frame_records.push_back(static_cast<std::uint32_t>(records.size()));
    }
    // Compact the rx buffer once the parsed prefix dominates it.
    if (c.in_off > (64u << 10) && c.in_off * 2 > c.in.size()) {
      c.in.erase(c.in.begin(),
                 c.in.begin() + static_cast<std::ptrdiff_t>(c.in_off));
      c.in_off = 0;
    }
  };

  auto flush_tee = [&] {
    if (config_.tee != nullptr && !tee_buf.empty()) {
      config_.tee->append(tee_buf);
      tee_buf.clear();
    }
  };

  auto merge_step = [&] {
    // Gate: every live (negotiated, unfinished) probe must have a record
    // buffered — otherwise a not-yet-received record could belong earlier
    // in time than anything we would emit. With expected_probes set, no
    // record moves before the full set of probes has joined.
    if (config_.expected_probes > 0 &&
        hello_count + failed_count < config_.expected_probes) {
      return;
    }
    for (;;) {
      Conn* best = nullptr;
      double best_key = 0.0;
      for (auto& cp : conns) {
        Conn& c = *cp;
        if (!c.hello_done || c.refused) continue;
        if (c.pending.empty()) {
          if (!c.finished) return;  // must wait for this probe
          continue;
        }
        const double key = merge_key_of(c.pending.front(), config_.merge_key);
        if (best == nullptr || key < best_key) {
          best = &c;
          best_key = key;
        }
      }
      if (best == nullptr) return;

      trace::WeblogRecord record = std::move(best->pending.front());
      best->pending.pop_front();
      if (!best->frame_records.empty() && --best->frame_records.front() == 0) {
        best->frame_records.pop_front();
        ++best->frames_consumed;
      }
      if (config_.tee != nullptr) {
        tee_buf.push_back(record);
        if (tee_buf.size() >= tee_batch) flush_tee();
      }
      sink(record);
      ++stats.records_emitted;
    }
  };

  auto queue_acks = [&](Conn& c) {
    if (c.dead || c.frames_consumed == c.frames_ack_sent) return;
    std::uint8_t ack[8];
    put_u64(c.frames_consumed, ack);
    c.out.insert(c.out.end(), ack, ack + sizeof ack);
    c.frames_ack_sent = c.frames_consumed;
  };

  auto try_write = [&](Conn& c) {
    while (c.out_off < c.out.size()) {
      const ssize_t n =
          ::send(c.fd.get(), c.out.data() + c.out_off, c.out.size() - c.out_off,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (!c.finished) fail_conn(c);
        c.dead = true;
        return;
      }
      c.out_off += static_cast<std::size_t>(n);
    }
    if (c.out_off == c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    }
  };

  std::vector<pollfd> pfds;
  std::vector<Conn*> pfd_conns;

  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    const bool accepting = config_.expected_probes == 0 ||
                           stats.probes_connected < config_.expected_probes;
    if (accepting) pfds.push_back({listen_fd_, POLLIN, 0});
    for (auto& cp : conns) {
      Conn& c = *cp;
      short events = 0;
      if (!c.dead && !c.finished) events |= POLLIN;
      if (!c.dead && c.out_off < c.out.size()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({c.fd.get(), events, 0});
      pfd_conns.push_back(&c);
    }

    int rc;
    do {
      rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 200);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) detail::throw_errno("collector poll failed");

    if (pfds[0].revents & POLLIN) {
      std::uint8_t drain[64];
      while (::read(wake_fds_[0], drain, sizeof drain) > 0) {
      }
    }

    if (accepting && (pfds[1].revents & POLLIN)) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        detail::set_nodelay(fd);
        auto conn = std::make_unique<Conn>();
        conn->fd.reset(fd);
        conns.push_back(std::move(conn));
        ++stats.probes_connected;
        if (config_.expected_probes > 0 &&
            stats.probes_connected >= config_.expected_probes) {
          break;
        }
      }
    }

    const std::size_t conn_pfds_begin = accepting ? 2 : 1;
    for (std::size_t i = conn_pfds_begin; i < pfds.size(); ++i) {
      Conn& c = *pfd_conns[i - conn_pfds_begin];
      if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        for (;;) {
          std::uint8_t buf[64 << 10];
          const ssize_t n = ::recv(c.fd.get(), buf, sizeof buf, MSG_DONTWAIT);
          if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            fail_conn(c);
            break;
          }
          if (n == 0) {
            // EOF before FIN is a truncated stream.
            if (!c.finished) fail_conn(c);
            c.dead = true;
            break;
          }
          stats.bytes_received += static_cast<std::uint64_t>(n);
          c.in.insert(c.in.end(), buf, buf + n);
          if (static_cast<std::size_t>(n) < sizeof buf) break;
        }
        if (!c.dead) parse(c);
      }
    }

    merge_step();

    for (auto& cp : conns) {
      queue_acks(*cp);
      if (!cp->dead && cp->out_off < cp->out.size()) try_write(*cp);
    }

    // Retire connections whose stream is fully merged and acknowledged.
    std::erase_if(conns, [](const std::unique_ptr<Conn>& cp) {
      const Conn& c = *cp;
      if (c.dead) return c.pending.empty();
      return c.finished && c.pending.empty() && c.out_off >= c.out.size() &&
             c.frames_consumed == c.frames_ack_sent;
    });

    if (config_.expected_probes > 0 &&
        stats.probes_completed + failed_count >= config_.expected_probes &&
        conns.empty()) {
      break;
    }
  }

  flush_tee();
  return stats;
}

}  // namespace vqoe::wire

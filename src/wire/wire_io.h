// Internal POSIX socket helpers shared by probe.cpp and collector.cpp.
// Not installed; everything here is an implementation detail of the
// transport layer.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace vqoe::wire::detail {

[[noreturn]] inline void throw_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

inline void put_u32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

inline void put_u64(std::uint64_t v, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

/// Blocking full send; MSG_NOSIGNAL so a dead peer surfaces as an error
/// instead of SIGPIPE.
inline void send_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket send failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Blocking full receive. Throws on error or premature EOF.
inline void recv_all(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket recv failed");
    }
    if (n == 0) throw std::runtime_error{"peer closed connection"};
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

inline void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  void reset(int fd = -1) {
    // Sockets only — durable descriptors (the spool) use checked ::close.
    // vqoe-lint: allow(unchecked-syscall): socket close, no durable data
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }
  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace vqoe::wire::detail

// Probe → collector record transport.
//
// The deployment split of Section 3 (and of Schmitt et al.'s production
// system, PAPERS.md): passive probes at network vantage points ship
// per-transaction records to a central service that runs the trained
// models. This header is that wire: a Probe streams framed record batches
// over TCP; a Collector accepts N probes with one poll(2) loop, k-way
// merges the per-probe streams back into one globally time-sorted feed and
// hands each record to a caller-supplied sink (normally
// engine::MonitorEngine::ingest), optionally tee-ing the merged feed to a
// SpoolWriter for replay.
//
// Protocol (version negotiated per connection, all integers little-endian):
//   hello      probe → collector   "VQOW", u8 min_ver, u8 max_ver, u16 rsvd
//   hello-ack  collector → probe   "VQOA", u8 version (0 = refused),
//                                  u8 rsvd, u16 rsvd, u32 ack_window
//   data frame probe → collector   u32 payload_len, u32 crc32c(payload),
//                                  payload = record batch (codec.h);
//                                  payload_len == 0 is end-of-stream
//   ack        collector → probe   u64 cumulative data frames consumed
//
// Backpressure is the ack window: the collector acknowledges a frame only
// once every record in it has been handed to the sink, and a probe never
// has more than `ack_window` unacknowledged frames in flight — a slow
// merge (or a slow engine behind it) therefore propagates back to every
// probe as bounded buffering, not unbounded queueing. DESIGN.md §5e.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vqoe/trace/weblog.h"
#include "vqoe/wire/codec.h"

namespace vqoe::wire {

class SpoolWriter;

inline constexpr std::uint32_t kHelloMagic = 0x574F5156u;     // "VQOW" LE
inline constexpr std::uint32_t kHelloAckMagic = 0x414F5156u;  // "VQOA" LE
inline constexpr std::size_t kHelloBytes = 8;
inline constexpr std::size_t kHelloAckBytes = 12;

/// The field the collector merges per-probe streams by. The key must match
/// the order each probe's stream is sorted in: replayed corpora (and the
/// engine's watermark clock) ride the request timestamp; a live proxy that
/// logs a transaction when it *completes* emits records in arrival-time
/// order instead.
enum class MergeKey : std::uint8_t { timestamp, arrival_time };

[[nodiscard]] inline double merge_key_of(const trace::WeblogRecord& r,
                                         MergeKey key) {
  return key == MergeKey::timestamp ? r.timestamp_s : r.arrival_time_s();
}

/// Stable FNV-1a assignment of a subscriber to one of `probes` vantage
/// points. Partitioning a feed this way keeps every subscriber's records
/// on one probe, so per-subscriber arrival order survives the k-way merge
/// regardless of how the probes' streams interleave.
[[nodiscard]] inline std::size_t probe_of_subscriber(
    std::string_view subscriber, std::size_t probes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : subscriber) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % (probes ? probes : 1));
}

/// The subset of `records` probe `probe_index` of `probe_count` would see,
/// in feed order.
[[nodiscard]] std::vector<trace::WeblogRecord> partition_for_probe(
    const std::vector<trace::WeblogRecord>& records, std::size_t probe_index,
    std::size_t probe_count);

// --- Probe ----------------------------------------------------------------

struct ProbeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Records per data frame.
  std::size_t batch_records = 256;
  /// Replay pacing: 0 = unthrottled, 1 = real time, N = N× faster than
  /// real time (record timestamps mapped onto the wall clock).
  double speed = 0.0;
};

struct ProbeStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t records_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t ack_stalls = 0;  ///< sends that waited on the ack window
};

/// One probe connection. Construction connects and negotiates the wire
/// version; send() streams records (splitting into frames, pacing, and
/// blocking on the ack window); finish() sends end-of-stream and waits for
/// the final acknowledgement. Not thread-safe.
class Probe {
 public:
  explicit Probe(ProbeOptions options);
  ~Probe();

  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;

  void send(const trace::WeblogRecord* records, std::size_t count);
  void send(const std::vector<trace::WeblogRecord>& records) {
    send(records.data(), records.size());
  }

  /// End of stream: FIN frame, then waits until the collector has
  /// acknowledged every data frame. Idempotent.
  void finish();

  [[nodiscard]] std::uint8_t version() const { return version_; }
  [[nodiscard]] const ProbeStats& stats() const { return stats_; }

 private:
  void send_frame(const std::uint8_t* payload, std::size_t size);
  void drain_acks(bool block);
  void throttle(const trace::WeblogRecord& record);

  ProbeOptions options_;
  int fd_ = -1;
  std::uint8_t version_ = 0;
  std::uint32_t ack_window_ = 0;
  std::uint64_t frames_acked_ = 0;
  bool finished_ = false;
  ProbeStats stats_;
  std::vector<std::uint8_t> frame_;
  std::uint8_t ack_partial_[8];
  std::size_t ack_partial_len_ = 0;
  // Pacing state: the first sent record pins stream time to wall time.
  bool pacing_pinned_ = false;
  double pace_t0_s_ = 0.0;
  std::chrono::steady_clock::time_point pace_wall0_;
};

// --- Collector ------------------------------------------------------------

struct CollectorConfig {
  /// 0 binds an ephemeral port; read it back with port().
  std::uint16_t port = 0;
  /// When > 0, run() returns after this many probes have connected and
  /// finished their streams; 0 serves until stop().
  std::size_t expected_probes = 0;
  /// Max unacknowledged data frames per probe (sent in the hello-ack).
  std::uint32_t ack_window = 8;
  MergeKey merge_key = MergeKey::timestamp;
  /// Optional tee: every record is appended (in merged order) before the
  /// sink sees it, so the feed can be replayed after a crash. Borrowed.
  SpoolWriter* tee = nullptr;
  /// Records per tee frame.
  std::size_t tee_batch_records = 512;
};

struct CollectorStats {
  std::uint64_t probes_connected = 0;
  std::uint64_t probes_completed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t records_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t records_emitted = 0;
  std::uint64_t protocol_errors = 0;  ///< rejected/failed connections
};

/// poll(2)-based collector server. run() owns the calling thread until the
/// expected probes finish (or stop() is called from another thread) and
/// invokes `sink` for every record in merged order — single-threaded, so
/// the sink may drive engine ingest directly.
class Collector {
 public:
  explicit Collector(CollectorConfig config);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  using Sink = std::function<void(const trace::WeblogRecord&)>;

  /// The bound listen port (useful with config.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  CollectorStats run(const Sink& sink);

  /// Thread-safe, idempotent: makes run() drain what it can and return.
  void stop();

 private:
  struct Conn;
  struct Loop;

  CollectorConfig config_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
};

}  // namespace vqoe::wire

// Durable record spool — the append-only capture log between a probe and
// everything downstream.
//
// A vantage point that loses its uplink (or whose collector restarts) must
// not lose traffic, so the probe's first write is local: record batches are
// appended to segment files as length-prefixed frames, each carrying a
// CRC32C over its payload, with a batched fsync policy and size-based
// segment rotation. The reader streams the spool back and distinguishes
// the two corruption shapes a log can have:
//
//   * a *torn tail* — the final frame of the final segment is incomplete
//     because the writer died mid-append. Everything before it is valid;
//     the reader stops cleanly and reports `torn_tail()`.
//   * *mid-file corruption* — a complete frame whose CRC does not match,
//     or damage anywhere that is not the final segment's tail. That data
//     was durable and is now wrong; the reader raises WireError with the
//     segment and byte offset rather than silently skipping.
//
// Segment layout (all little-endian):
//   header   "VQOS" magic, u8 version, u8 flags(0), u16 reserved
//   frame*   u32 payload_len, u32 crc32c(payload), payload = record batch
//
// A zero-byte final segment (crash between create and header write) reads
// as empty. A segment whose header advertises a version outside this
// build's range fails with a version-skew error. DESIGN.md section 5e.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <vector>

#include "vqoe/trace/weblog.h"
#include "vqoe/wire/codec.h"

namespace vqoe::wire {

inline constexpr std::uint32_t kSpoolMagic = 0x534F5156u;  // "VQOS" LE
inline constexpr std::size_t kSpoolHeaderBytes = 8;

struct SpoolWriterOptions {
  /// Rotate to a new segment once the current one reaches this size.
  std::uint64_t segment_bytes = 64ull << 20;
  /// fsync after this many appended frames (and always on rotation and
  /// close). 0 defers durability entirely to rotation/close.
  std::size_t sync_every_frames = 64;
  std::uint8_t version = kWireVersionMax;
};

/// Append-only writer. One frame per append() call; not thread-safe (one
/// spool belongs to one capture loop).
class SpoolWriter {
 public:
  /// Creates `dir` if needed and opens the first segment. Throws
  /// std::runtime_error / WireError on I/O failure or a bad version.
  explicit SpoolWriter(std::filesystem::path dir,
                       SpoolWriterOptions options = {});
  ~SpoolWriter();

  SpoolWriter(const SpoolWriter&) = delete;
  SpoolWriter& operator=(const SpoolWriter&) = delete;

  /// Appends one frame holding `count` records.
  void append(const trace::WeblogRecord* records, std::size_t count);
  void append(const std::vector<trace::WeblogRecord>& records) {
    append(records.data(), records.size());
  }

  /// Forces the current segment to disk (write + fsync).
  void sync();

  /// Syncs and closes the current segment. Idempotent; the destructor
  /// calls it (swallowing errors — call close() to observe them).
  void close();

  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] std::size_t segments() const { return segment_index_; }
  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

 private:
  void open_segment();
  void rotate_if_needed();

  std::filesystem::path dir_;
  SpoolWriterOptions options_;
  int fd_ = -1;
  std::size_t segment_index_ = 0;  ///< segments opened so far
  std::uint64_t segment_bytes_ = 0;
  std::size_t frames_since_sync_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint8_t> scratch_;
};

/// Streaming reader over a spool directory (segments in rotation order) or
/// a single segment file.
class SpoolReader {
 public:
  /// Throws std::runtime_error when the path does not exist or holds no
  /// segments (a directory with zero matching files).
  explicit SpoolReader(const std::filesystem::path& path);

  /// Produces the next record. Returns false at the clean end of the spool
  /// (including after a torn tail). Throws WireError on mid-file
  /// corruption, CRC mismatch, or version skew.
  bool next(trace::WeblogRecord& out);

  /// Reads every remaining record.
  [[nodiscard]] std::vector<trace::WeblogRecord> read_all();

  /// True once the reader stopped at an incomplete final frame.
  [[nodiscard]] bool torn_tail() const { return torn_tail_; }
  [[nodiscard]] std::uint64_t frames_read() const { return frames_; }
  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  [[nodiscard]] std::size_t segments_read() const { return segment_; }

 private:
  bool open_next_segment();
  bool fill_batch();
  [[noreturn]] void corrupt(const std::string& what, std::uint64_t offset);

  std::vector<std::filesystem::path> segments_;
  std::size_t segment_ = 0;  ///< segments fully or partially consumed
  std::ifstream in_;
  std::uint64_t segment_offset_ = 0;
  std::uint8_t segment_version_ = 0;
  std::deque<trace::WeblogRecord> batch_;
  bool torn_tail_ = false;
  bool done_ = false;
  std::uint64_t frames_ = 0;
  std::uint64_t records_ = 0;
  std::vector<std::uint8_t> payload_;
};

/// Convenience: all records of a spool in one call.
[[nodiscard]] std::vector<trace::WeblogRecord> read_spool(
    const std::filesystem::path& path);

}  // namespace vqoe::wire

// Durable record spool — the append-only capture log between a probe and
// everything downstream.
//
// A vantage point that loses its uplink (or whose collector restarts) must
// not lose traffic, so the probe's first write is local: record batches are
// appended to segment files as length-prefixed frames, each carrying a
// CRC32C over its payload, with a batched fsync policy and size-based
// segment rotation. The reader streams the spool back and distinguishes
// the two corruption shapes a log can have:
//
//   * a *torn tail* — the final frame of the final segment is incomplete
//     because the writer died mid-append. Everything before it is valid;
//     the reader stops cleanly and reports `torn_tail()`.
//   * *mid-file corruption* — a complete frame whose CRC does not match,
//     or damage anywhere that is not the final segment's tail. That data
//     was durable and is now wrong; the reader raises WireError with the
//     segment and byte offset rather than silently skipping.
//
// Segment layout (all little-endian):
//   header   "VQOS" magic, u8 version, u8 flags(payload tag), u16 reserved
//   frame*   u32 payload_len, u32 crc32c(payload), payload
//
// The header's flags byte tags what the frame payloads decode as:
// kSpoolPayloadRecords (0, weblog record batches — every spool written
// before the tag existed) or kSpoolPayloadWindowVerdicts (1, the live
// verdict stream of vqoe::window). Readers check the tag so a spool of one
// payload type cannot be silently misread as another. The framing layer
// itself is payload-agnostic: SpoolWriter::append_frame / SpoolFrameReader
// move raw payloads, and the record- and verdict-level APIs sit on top.
//
// A zero-byte final segment (crash between create and header write) reads
// as empty. A segment whose header advertises a version outside this
// build's range fails with a version-skew error. DESIGN.md section 5e.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <vector>

#include "vqoe/trace/weblog.h"
#include "vqoe/wire/codec.h"

namespace vqoe::wire {

inline constexpr std::uint32_t kSpoolMagic = 0x534F5156u;  // "VQOS" LE
inline constexpr std::size_t kSpoolHeaderBytes = 8;

/// Payload tags carried in the segment header's flags byte.
inline constexpr std::uint8_t kSpoolPayloadRecords = 0;
inline constexpr std::uint8_t kSpoolPayloadWindowVerdicts = 1;

struct SpoolWriterOptions {
  /// Rotate to a new segment once the current one reaches this size.
  std::uint64_t segment_bytes = 64ull << 20;
  /// fsync after this many appended frames (and always on rotation and
  /// close). 0 defers durability entirely to rotation/close.
  std::size_t sync_every_frames = 64;
  std::uint8_t version = kWireVersionMax;
  /// Payload tag written into every segment header (see above). Readers
  /// reject segments whose tag does not match what they decode.
  std::uint8_t flags = kSpoolPayloadRecords;
};

/// Append-only writer. One frame per append() call; not thread-safe (one
/// spool belongs to one capture loop).
class SpoolWriter {
 public:
  /// Creates `dir` if needed and opens the first segment. Throws
  /// std::runtime_error / WireError on I/O failure or a bad version.
  explicit SpoolWriter(std::filesystem::path dir,
                       SpoolWriterOptions options = {});
  ~SpoolWriter();

  SpoolWriter(const SpoolWriter&) = delete;
  SpoolWriter& operator=(const SpoolWriter&) = delete;

  /// Appends one frame holding `count` records.
  void append(const trace::WeblogRecord* records, std::size_t count);
  void append(const std::vector<trace::WeblogRecord>& records) {
    append(records.data(), records.size());
  }

  /// Appends one frame with an arbitrary pre-encoded payload (the
  /// record-batch append() is built on the same framing). The payload is
  /// length-prefixed and CRC'd like any other frame; the record counter
  /// does not move. Payload-typed writers (window::VerdictSpoolWriter)
  /// use this with a matching `flags` tag.
  void append_frame(const std::uint8_t* payload, std::size_t size);

  /// Forces the current segment to disk (write + fsync).
  void sync();

  /// Syncs and closes the current segment. Idempotent; the destructor
  /// calls it (swallowing errors — call close() to observe them).
  void close();

  [[nodiscard]] std::uint64_t frames_written() const { return frames_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] std::size_t segments() const { return segment_index_; }
  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

 private:
  void open_segment();
  void rotate_if_needed();
  void write_frame_scratch();  ///< frames scratch_ (header space reserved)

  std::filesystem::path dir_;
  SpoolWriterOptions options_;
  int fd_ = -1;
  std::size_t segment_index_ = 0;  ///< segments opened so far
  std::uint64_t segment_bytes_ = 0;
  std::size_t frames_since_sync_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint8_t> scratch_;
};

/// Streaming frame-level reader over a spool directory (segments in
/// rotation order) or a single segment file: validates magic, version,
/// payload tag and CRC, and applies the torn-tail-vs-hard-corruption
/// distinction above. Payload decoding is the caller's job (SpoolReader
/// for record batches, window::VerdictSpoolReader for verdicts).
class SpoolFrameReader {
 public:
  /// Throws std::runtime_error when the path does not exist or holds no
  /// segments. `expected_flags` is the payload tag the caller decodes;
  /// a segment with a different tag raises WireError (payload mismatch).
  explicit SpoolFrameReader(const std::filesystem::path& path,
                            std::uint8_t expected_flags = kSpoolPayloadRecords);

  /// Produces the next frame payload. Returns false at the clean end of
  /// the spool (including after a torn tail). Throws WireError on mid-file
  /// corruption, CRC mismatch, version skew, or a payload-tag mismatch.
  bool next_frame(std::vector<std::uint8_t>& payload);

  /// True once the reader stopped at an incomplete final frame.
  [[nodiscard]] bool torn_tail() const { return torn_tail_; }
  [[nodiscard]] std::uint64_t frames_read() const { return frames_; }
  [[nodiscard]] std::size_t segments_read() const { return segment_; }
  /// Version byte of the segment the last frame came from.
  [[nodiscard]] std::uint8_t segment_version() const { return segment_version_; }

  /// Path of the segment being consumed and the in-segment byte offset of
  /// the last returned frame's payload — for callers attributing decode
  /// errors to a durable location.
  [[nodiscard]] const std::filesystem::path& current_segment() const;
  [[nodiscard]] std::uint64_t frame_payload_offset() const {
    return frame_payload_offset_;
  }

  /// Raises the standard corruption error for the current segment.
  [[noreturn]] void corrupt(const std::string& what, std::uint64_t offset) const;

 private:
  bool open_next_segment();

  std::vector<std::filesystem::path> segments_;
  std::size_t segment_ = 0;  ///< segments fully or partially consumed
  std::uint8_t expected_flags_ = kSpoolPayloadRecords;
  std::ifstream in_;
  std::uint64_t segment_offset_ = 0;
  std::uint64_t frame_payload_offset_ = 0;
  std::uint8_t segment_version_ = 0;
  bool torn_tail_ = false;
  bool done_ = false;
  std::uint64_t frames_ = 0;
};

/// Streaming record reader: SpoolFrameReader plus record-batch decoding.
class SpoolReader {
 public:
  /// Throws std::runtime_error when the path does not exist or holds no
  /// segments (a directory with zero matching files).
  explicit SpoolReader(const std::filesystem::path& path);

  /// Produces the next record. Returns false at the clean end of the spool
  /// (including after a torn tail). Throws WireError on mid-file
  /// corruption, CRC mismatch, or version skew.
  bool next(trace::WeblogRecord& out);

  /// Reads every remaining record.
  [[nodiscard]] std::vector<trace::WeblogRecord> read_all();

  /// True once the reader stopped at an incomplete final frame.
  [[nodiscard]] bool torn_tail() const { return frames_.torn_tail(); }
  [[nodiscard]] std::uint64_t frames_read() const { return frames_.frames_read(); }
  [[nodiscard]] std::uint64_t records_read() const { return records_; }
  [[nodiscard]] std::size_t segments_read() const { return frames_.segments_read(); }

 private:
  bool fill_batch();

  SpoolFrameReader frames_;
  std::deque<trace::WeblogRecord> batch_;
  std::uint64_t records_ = 0;
  std::vector<std::uint8_t> payload_;
};

/// Convenience: all records of a spool in one call.
[[nodiscard]] std::vector<trace::WeblogRecord> read_spool(
    const std::filesystem::path& path);

}  // namespace vqoe::wire

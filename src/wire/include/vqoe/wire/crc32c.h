// CRC32C (Castagnoli) — the frame checksum of the wire format.
//
// Every spool frame and every TCP data frame carries a CRC32C over its
// payload bytes (DESIGN.md section 5e): the spool uses it to tell a torn
// tail (incomplete write at crash) from mid-file corruption, the collector
// uses it to reject damaged frames instead of misparsing them. Software
// slicing-by-8 implementation, no hardware dependency; tables are built
// once at first use.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vqoe::wire {

/// CRC32C of `size` bytes, continuing from `seed` (0 for a fresh
/// checksum). crc32c(p, n) == crc32c(p + k, n - k, crc32c(p, k)).
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t size,
                                   std::uint32_t seed = 0);

}  // namespace vqoe::wire

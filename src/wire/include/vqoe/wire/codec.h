// Binary record codec — the wire encoding of trace::WeblogRecord.
//
// trace::csv hands datasets across process boundaries as text; operator
// deployments ship per-transaction records continuously from edge probes
// to a central inference service (Schmitt et al., PAPERS.md), where a
// compact, exact encoding matters: doubles travel as raw IEEE-754 bits so
// a decode(encode(r)) round trip is bit-identical (CSV is not), lengths
// and small integers are LEB128 varints, and the cleartext URI metadata
// (session id, itag, playback-report payload) lives in an optional trailer
// that the encrypted view simply omits — an encrypted record costs zero
// bytes for the fields TLS hides.
//
// The format is versioned (kWireVersionMin..kWireVersionMax supported by
// this build); spool segment headers and the probe/collector hello carry
// the version explicitly, and every decode validates exhaustively —
// unknown flag bits, out-of-range enums, oversized strings and truncated
// buffers raise WireError with the byte offset instead of misparsing.
// Layout details: DESIGN.md section 5e.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "vqoe/trace/weblog.h"

namespace vqoe::wire {

/// Versions this build can encode and decode. A peer (or spool segment)
/// advertising only versions outside this range is rejected.
inline constexpr std::uint8_t kWireVersionMin = 1;
inline constexpr std::uint8_t kWireVersionMax = 1;

/// Decode-side sanity bounds: no legitimate record carries strings or
/// batches anywhere near these, so hitting one means corrupt input.
inline constexpr std::size_t kMaxStringBytes = 1u << 20;
inline constexpr std::size_t kMaxBatchRecords = 1u << 22;

/// Frame container shared by the spool log and the TCP transport:
/// u32 payload_len, u32 crc32c(payload), payload = record batch. Payloads
/// larger than the bound are rejected on read — no configuration writes
/// them, so a bigger length prefix means corrupt or hostile input.
inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr std::uint32_t kMaxFramePayloadBytes = 64u << 20;

/// Malformed wire bytes. `offset()` is the byte position (within the
/// buffer handed to the decoder) where validation failed.
class WireError : public std::runtime_error {
 public:
  WireError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte offset " +
                           std::to_string(offset) + ")"),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// True when `version` is one this build speaks.
[[nodiscard]] constexpr bool version_supported(std::uint8_t version) {
  return version >= kWireVersionMin && version <= kWireVersionMax;
}

/// LEB128 varint append / read. get_varint throws WireError on truncation
/// or a value wider than 64 bits.
void put_varint(std::uint64_t value, std::vector<std::uint8_t>& out);
[[nodiscard]] std::uint64_t get_varint(const std::uint8_t* data,
                                       std::size_t size, std::size_t& offset);

/// Appends one record in the given format version. Throws WireError when
/// `version` is unsupported or a field exceeds the format bounds.
void encode_record(const trace::WeblogRecord& record, std::uint8_t version,
                   std::vector<std::uint8_t>& out);

/// Decodes one record starting at `offset`, advancing `offset` past it.
/// Throws WireError on any malformed input.
[[nodiscard]] trace::WeblogRecord decode_record(const std::uint8_t* data,
                                                std::size_t size,
                                                std::size_t& offset,
                                                std::uint8_t version);

/// Batch payload: varint record count followed by that many records. This
/// is the payload of every spool frame and every TCP data frame.
void encode_batch(const trace::WeblogRecord* records, std::size_t count,
                  std::uint8_t version, std::vector<std::uint8_t>& out);
inline void encode_batch(const std::vector<trace::WeblogRecord>& records,
                         std::uint8_t version,
                         std::vector<std::uint8_t>& out) {
  encode_batch(records.data(), records.size(), version, out);
}

/// Decodes a full batch payload. Trailing bytes after the last record are
/// a framing violation and raise WireError.
[[nodiscard]] std::vector<trace::WeblogRecord> decode_batch(
    const std::uint8_t* data, std::size_t size, std::uint8_t version);

}  // namespace vqoe::wire

#include "vqoe/wire/codec.h"

#include <bit>
#include <cstring>

namespace vqoe::wire {
namespace {

// Record flag byte (version 1). Unknown bits are a decode error: a flag we
// do not understand means a format we do not speak, and carrying on would
// misparse everything after it.
constexpr std::uint8_t kFlagEncrypted = 1u << 0;
constexpr std::uint8_t kFlagCached = 1u << 1;
constexpr std::uint8_t kFlagMetadata = 1u << 2;
constexpr std::uint8_t kKnownFlags = kFlagEncrypted | kFlagCached | kFlagMetadata;

// Metadata trailer flag byte.
constexpr std::uint8_t kMetaAudio = 1u << 0;
constexpr std::uint8_t kKnownMetaFlags = kMetaAudio;

constexpr std::uint8_t kMaxRecordKind =
    static_cast<std::uint8_t>(trace::RecordKind::playback_report);

void put_u64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(double d, std::vector<std::uint8_t>& out) {
  put_u64(std::bit_cast<std::uint64_t>(d), out);
}

std::uint64_t get_u64(const std::uint8_t* data, std::size_t size,
                      std::size_t& offset) {
  if (offset > size || size - offset < 8) {
    throw WireError{"truncated fixed64", offset};
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[offset + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  offset += 8;
  return v;
}

double get_f64(const std::uint8_t* data, std::size_t size,
               std::size_t& offset) {
  return std::bit_cast<double>(get_u64(data, size, offset));
}

void put_string(const std::string& s, std::vector<std::uint8_t>& out) {
  if (s.size() > kMaxStringBytes) {
    throw WireError{"string exceeds wire bound", out.size()};
  }
  put_varint(s.size(), out);
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(const std::uint8_t* data, std::size_t size,
                       std::size_t& offset) {
  const std::size_t at = offset;
  const std::uint64_t len = get_varint(data, size, offset);
  if (len > kMaxStringBytes) throw WireError{"string length out of bounds", at};
  if (len > size - offset) throw WireError{"truncated string", offset};
  std::string s(reinterpret_cast<const char*>(data + offset),
                static_cast<std::size_t>(len));
  offset += static_cast<std::size_t>(len);
  return s;
}

/// Non-negative int fields (itag height, report stall count) travel as
/// varints; negative values would be a record-construction bug, not a
/// representable state.
void put_nonneg(int v, const char* field, std::vector<std::uint8_t>& out) {
  if (v < 0) {
    throw WireError{std::string{"negative "} + field + " not encodable",
                    out.size()};
  }
  put_varint(static_cast<std::uint64_t>(v), out);
}

int get_nonneg_int(const std::uint8_t* data, std::size_t size,
                   std::size_t& offset, const char* field) {
  const std::size_t at = offset;
  const std::uint64_t v = get_varint(data, size, offset);
  if (v > static_cast<std::uint64_t>(INT32_MAX)) {
    throw WireError{std::string{field} + " out of int range", at};
  }
  return static_cast<int>(v);
}

[[nodiscard]] bool has_metadata(const trace::WeblogRecord& r) {
  return !r.session_id.empty() || r.itag_height != 0 || r.is_audio ||
         r.report_stall_count != 0 || r.report_stall_duration_s != 0.0;
}

void check_version(std::uint8_t version, std::size_t offset) {
  if (!version_supported(version)) {
    throw WireError{"unsupported wire version " + std::to_string(version),
                    offset};
  }
}

}  // namespace

void put_varint(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(const std::uint8_t* data, std::size_t size,
                         std::size_t& offset) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (offset >= size) throw WireError{"truncated varint", offset};
    const std::uint8_t byte = data[offset++];
    const std::uint64_t low = byte & 0x7Fu;
    if (shift == 63 && low > 1) {
      throw WireError{"varint overflows 64 bits", offset - 1};
    }
    value |= low << shift;
    if (!(byte & 0x80u)) return value;
  }
  throw WireError{"varint longer than 10 bytes", offset};
}

void encode_record(const trace::WeblogRecord& record, std::uint8_t version,
                   std::vector<std::uint8_t>& out) {
  check_version(version, out.size());

  std::uint8_t flags = 0;
  if (record.encrypted) flags |= kFlagEncrypted;
  if (record.served_from_cache) flags |= kFlagCached;
  const bool meta = has_metadata(record);
  if (meta) flags |= kFlagMetadata;
  out.push_back(flags);

  const auto kind = static_cast<std::uint8_t>(record.kind);
  if (kind > kMaxRecordKind) {
    throw WireError{"record kind out of range", out.size()};
  }
  out.push_back(kind);

  put_string(record.subscriber_id, out);
  put_f64(record.timestamp_s, out);
  put_f64(record.transaction_time_s, out);
  put_varint(record.object_size_bytes, out);
  put_string(record.host, out);

  put_f64(record.transport.rtt_min_ms, out);
  put_f64(record.transport.rtt_avg_ms, out);
  put_f64(record.transport.rtt_max_ms, out);
  put_f64(record.transport.bdp_bytes, out);
  put_f64(record.transport.bif_avg_bytes, out);
  put_f64(record.transport.bif_max_bytes, out);
  put_f64(record.transport.loss_pct, out);
  put_f64(record.transport.retrans_pct, out);

  if (meta) {
    std::uint8_t meta_flags = 0;
    if (record.is_audio) meta_flags |= kMetaAudio;
    out.push_back(meta_flags);
    put_string(record.session_id, out);
    put_nonneg(record.itag_height, "itag_height", out);
    put_nonneg(record.report_stall_count, "report_stall_count", out);
    put_f64(record.report_stall_duration_s, out);
  }
}

trace::WeblogRecord decode_record(const std::uint8_t* data, std::size_t size,
                                  std::size_t& offset, std::uint8_t version) {
  check_version(version, offset);
  if (offset >= size) throw WireError{"truncated record", offset};

  const std::uint8_t flags = data[offset++];
  if (flags & ~kKnownFlags) throw WireError{"unknown record flags", offset - 1};

  if (offset >= size) throw WireError{"truncated record kind", offset};
  const std::uint8_t kind = data[offset++];
  if (kind > kMaxRecordKind) {
    throw WireError{"record kind out of range", offset - 1};
  }

  trace::WeblogRecord r;
  r.encrypted = (flags & kFlagEncrypted) != 0;
  r.served_from_cache = (flags & kFlagCached) != 0;
  r.kind = static_cast<trace::RecordKind>(kind);

  r.subscriber_id = get_string(data, size, offset);
  r.timestamp_s = get_f64(data, size, offset);
  r.transaction_time_s = get_f64(data, size, offset);
  r.object_size_bytes = get_varint(data, size, offset);
  r.host = get_string(data, size, offset);

  r.transport.rtt_min_ms = get_f64(data, size, offset);
  r.transport.rtt_avg_ms = get_f64(data, size, offset);
  r.transport.rtt_max_ms = get_f64(data, size, offset);
  r.transport.bdp_bytes = get_f64(data, size, offset);
  r.transport.bif_avg_bytes = get_f64(data, size, offset);
  r.transport.bif_max_bytes = get_f64(data, size, offset);
  r.transport.loss_pct = get_f64(data, size, offset);
  r.transport.retrans_pct = get_f64(data, size, offset);

  if (flags & kFlagMetadata) {
    if (offset >= size) throw WireError{"truncated metadata flags", offset};
    const std::uint8_t meta_flags = data[offset++];
    if (meta_flags & ~kKnownMetaFlags) {
      throw WireError{"unknown metadata flags", offset - 1};
    }
    r.is_audio = (meta_flags & kMetaAudio) != 0;
    r.session_id = get_string(data, size, offset);
    r.itag_height = get_nonneg_int(data, size, offset, "itag_height");
    r.report_stall_count =
        get_nonneg_int(data, size, offset, "report_stall_count");
    r.report_stall_duration_s = get_f64(data, size, offset);
  }
  return r;
}

void encode_batch(const trace::WeblogRecord* records, std::size_t count,
                  std::uint8_t version, std::vector<std::uint8_t>& out) {
  check_version(version, out.size());
  if (count > kMaxBatchRecords) {
    throw WireError{"batch exceeds record bound", out.size()};
  }
  put_varint(count, out);
  for (std::size_t i = 0; i < count; ++i) {
    encode_record(records[i], version, out);
  }
}

std::vector<trace::WeblogRecord> decode_batch(const std::uint8_t* data,
                                              std::size_t size,
                                              std::uint8_t version) {
  std::size_t offset = 0;
  const std::uint64_t count = get_varint(data, size, offset);
  if (count > kMaxBatchRecords) {
    throw WireError{"batch record count out of bounds", 0};
  }
  std::vector<trace::WeblogRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    records.push_back(decode_record(data, size, offset, version));
  }
  if (offset != size) {
    throw WireError{"trailing bytes after batch", offset};
  }
  return records;
}

}  // namespace vqoe::wire

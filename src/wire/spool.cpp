#include "vqoe/wire/spool.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "vqoe/wire/crc32c.h"

namespace vqoe::wire {
namespace {

std::string segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "spool-%06zu.vqs", index);
  return buf;
}

[[noreturn]] void throw_errno(const std::string& what,
                              const std::filesystem::path& path) {
  throw std::runtime_error{what + " " + path.string() + ": " +
                           std::strerror(errno)};
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::filesystem::path& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("cannot write spool segment", path);
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void put_u32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

}  // namespace

// --- SpoolWriter ----------------------------------------------------------

SpoolWriter::SpoolWriter(std::filesystem::path dir, SpoolWriterOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (!version_supported(options_.version)) {
    throw WireError{"unsupported spool version " +
                        std::to_string(options_.version),
                    0};
  }
  std::filesystem::create_directories(dir_);
  open_segment();
}

SpoolWriter::~SpoolWriter() {
  // Destructor path: we cannot throw, but we must not swallow either — a
  // failed fsync/close here means the tail of the log may not be durable.
  // Record the failure loudly; callers who need the error as a value call
  // close() themselves before destruction (the durable path).
  try {
    close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vqoe::wire: spool close failed in destructor: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr,
                 "vqoe::wire: spool close failed in destructor: unknown "
                 "exception\n");
  }
}

void SpoolWriter::open_segment() {
  const auto path = dir_ / segment_name(segment_index_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("cannot open spool segment", path);
  ++segment_index_;

  std::uint8_t header[kSpoolHeaderBytes] = {};
  put_u32(kSpoolMagic, header);
  header[4] = options_.version;
  header[5] = options_.flags;
  write_all(fd_, header, sizeof header, path);
  segment_bytes_ = sizeof header;
  bytes_ += sizeof header;
  frames_since_sync_ = 0;
}

void SpoolWriter::rotate_if_needed() {
  if (segment_bytes_ < options_.segment_bytes) return;
  sync();
  if (::close(fd_) != 0) throw_errno("cannot close spool segment", dir_);
  fd_ = -1;
  open_segment();
}

// Frames whatever sits in scratch_ past the reserved header bytes. One
// frame, one write(2): a crash mid-append leaves at most a torn tail,
// never an interleaved or reordered frame.
void SpoolWriter::write_frame_scratch() {
  const std::size_t payload = scratch_.size() - kFrameHeaderBytes;
  if (payload > kMaxFramePayloadBytes) {
    throw WireError{"frame payload exceeds wire bound", 0};
  }
  put_u32(static_cast<std::uint32_t>(payload), scratch_.data());
  put_u32(crc32c(scratch_.data() + kFrameHeaderBytes, payload),
          scratch_.data() + 4);
  write_all(fd_, scratch_.data(), scratch_.size(), dir_);

  segment_bytes_ += scratch_.size();
  bytes_ += scratch_.size();
  ++frames_;
  if (options_.sync_every_frames != 0 &&
      ++frames_since_sync_ >= options_.sync_every_frames) {
    sync();
  }
}

void SpoolWriter::append(const trace::WeblogRecord* records,
                         std::size_t count) {
  if (count == 0) return;
  if (fd_ < 0) throw std::runtime_error{"spool writer is closed"};
  rotate_if_needed();

  scratch_.clear();
  scratch_.resize(kFrameHeaderBytes);
  encode_batch(records, count, options_.version, scratch_);
  write_frame_scratch();
  records_ += count;
}

void SpoolWriter::append_frame(const std::uint8_t* payload, std::size_t size) {
  if (size == 0) return;
  if (fd_ < 0) throw std::runtime_error{"spool writer is closed"};
  rotate_if_needed();

  scratch_.clear();
  scratch_.resize(kFrameHeaderBytes);
  scratch_.insert(scratch_.end(), payload, payload + size);
  write_frame_scratch();
}

void SpoolWriter::sync() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0) throw_errno("cannot fsync spool segment", dir_);
  frames_since_sync_ = 0;
}

void SpoolWriter::close() {
  if (fd_ < 0) return;
  sync();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) throw_errno("cannot close spool segment", dir_);
}

// --- SpoolFrameReader -------------------------------------------------------

SpoolFrameReader::SpoolFrameReader(const std::filesystem::path& path,
                                   std::uint8_t expected_flags)
    : expected_flags_(expected_flags) {
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::directory_iterator{path}) {
      if (!entry.is_regular_file()) continue;
      const auto name = entry.path().filename().string();
      if (name.starts_with("spool-") && name.ends_with(".vqs")) {
        segments_.push_back(entry.path());
      }
    }
    std::sort(segments_.begin(), segments_.end());
    if (segments_.empty()) {
      throw std::runtime_error{"no spool segments in " + path.string()};
    }
  } else if (std::filesystem::is_regular_file(path)) {
    segments_.push_back(path);
  } else {
    throw std::runtime_error{"no such spool: " + path.string()};
  }
}

const std::filesystem::path& SpoolFrameReader::current_segment() const {
  return segments_[segment_ == 0 ? 0 : segment_ - 1];
}

void SpoolFrameReader::corrupt(const std::string& what,
                               std::uint64_t offset) const {
  throw WireError{what + " in " + current_segment().string(),
                  static_cast<std::size_t>(offset)};
}

bool SpoolFrameReader::open_next_segment() {
  while (segment_ < segments_.size()) {
    const auto& path = segments_[segment_];
    const bool final_segment = segment_ + 1 == segments_.size();
    ++segment_;

    in_.close();
    in_.clear();
    in_.open(path, std::ios::binary);
    if (!in_) {
      throw std::runtime_error{"cannot open spool segment " + path.string()};
    }
    segment_offset_ = 0;

    std::uint8_t header[kSpoolHeaderBytes];
    in_.read(reinterpret_cast<char*>(header), sizeof header);
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got == 0) continue;  // zero-byte segment: created, never written
    if (got < sizeof header) {
      // A partial header can only be the writer dying between segment
      // creation and the header landing — recoverable at the tail only.
      if (final_segment) {
        torn_tail_ = true;
        continue;
      }
      corrupt("torn segment header before final segment", got);
    }
    if (get_u32(header) != kSpoolMagic) corrupt("bad spool magic", 0);
    if (!version_supported(header[4])) {
      corrupt("spool version skew: segment has version " +
                  std::to_string(header[4]) + ", this build speaks " +
                  std::to_string(kWireVersionMin) + ".." +
                  std::to_string(kWireVersionMax),
              4);
    }
    if (header[5] != expected_flags_) {
      corrupt("spool payload mismatch: segment is tagged " +
                  std::to_string(header[5]) + ", this reader decodes " +
                  std::to_string(expected_flags_),
              5);
    }
    segment_version_ = header[4];
    segment_offset_ = sizeof header;
    return true;
  }
  return false;
}

bool SpoolFrameReader::next_frame(std::vector<std::uint8_t>& payload) {
  for (;;) {
    if (done_) return false;
    if (!in_.is_open()) {
      if (!open_next_segment()) {
        done_ = true;
        return false;
      }
    }

    const bool final_segment = segment_ == segments_.size();
    std::uint8_t header[kFrameHeaderBytes];
    in_.read(reinterpret_cast<char*>(header), sizeof header);
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got == 0) {
      in_.close();  // clean end of this segment
      continue;
    }
    if (got < sizeof header) {
      if (!final_segment) {
        corrupt("torn frame header before final segment",
                segment_offset_ + got);
      }
      torn_tail_ = true;
      done_ = true;
      return false;
    }

    const std::uint32_t payload_len = get_u32(header);
    const std::uint32_t expected_crc = get_u32(header + 4);
    if (payload_len == 0 || payload_len > kMaxFramePayloadBytes) {
      corrupt("frame length out of bounds", segment_offset_);
    }

    payload.resize(payload_len);
    in_.read(reinterpret_cast<char*>(payload.data()), payload_len);
    const auto payload_got = static_cast<std::size_t>(in_.gcount());
    if (payload_got < payload_len) {
      if (!final_segment) {
        corrupt("torn frame payload before final segment",
                segment_offset_ + kFrameHeaderBytes + payload_got);
      }
      torn_tail_ = true;
      done_ = true;
      return false;
    }

    if (crc32c(payload.data(), payload_len) != expected_crc) {
      corrupt("frame CRC mismatch", segment_offset_);
    }

    frame_payload_offset_ = segment_offset_ + kFrameHeaderBytes;
    segment_offset_ += kFrameHeaderBytes + payload_len;
    ++frames_;
    return true;
  }
}

// --- SpoolReader ----------------------------------------------------------

SpoolReader::SpoolReader(const std::filesystem::path& path)
    : frames_(path, kSpoolPayloadRecords) {}

bool SpoolReader::fill_batch() {
  while (batch_.empty()) {
    if (!frames_.next_frame(payload_)) return false;
    std::vector<trace::WeblogRecord> records;
    try {
      records = decode_batch(payload_.data(), payload_.size(),
                             frames_.segment_version());
    } catch (const WireError& e) {
      frames_.corrupt(std::string{"undecodable frame payload: "} + e.what(),
                      frames_.frame_payload_offset() + e.offset());
    }
    records_ += records.size();
    for (auto& r : records) batch_.push_back(std::move(r));
  }
  return true;
}

bool SpoolReader::next(trace::WeblogRecord& out) {
  if (!fill_batch()) return false;
  out = std::move(batch_.front());
  batch_.pop_front();
  return true;
}

std::vector<trace::WeblogRecord> SpoolReader::read_all() {
  std::vector<trace::WeblogRecord> all;
  trace::WeblogRecord r;
  while (next(r)) all.push_back(std::move(r));
  return all;
}

std::vector<trace::WeblogRecord> read_spool(
    const std::filesystem::path& path) {
  SpoolReader reader{path};
  return reader.read_all();
}

}  // namespace vqoe::wire

#include <arpa/inet.h>
#include <poll.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "vqoe/wire/crc32c.h"
#include "vqoe/wire/transport.h"
#include "wire_io.h"

namespace vqoe::wire {

using detail::get_u32;
using detail::get_u64;
using detail::put_u32;
using detail::send_all;

Probe::Probe(ProbeOptions options) : options_(std::move(options)) {
  detail::ScopedFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (fd.get() < 0) detail::throw_errno("cannot create probe socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error{"bad collector address: " + options_.host};
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    detail::throw_errno("cannot connect to collector " + options_.host + ":" +
                        std::to_string(options_.port));
  }
  detail::set_nodelay(fd.get());

  std::uint8_t hello[kHelloBytes] = {};
  put_u32(kHelloMagic, hello);
  hello[4] = kWireVersionMin;
  hello[5] = kWireVersionMax;
  send_all(fd.get(), hello, sizeof hello);

  std::uint8_t ack[kHelloAckBytes];
  detail::recv_all(fd.get(), ack, sizeof ack);
  if (get_u32(ack) != kHelloAckMagic) {
    throw WireError{"bad hello-ack magic from collector", 0};
  }
  version_ = ack[4];
  if (version_ == 0 || !version_supported(version_)) {
    throw WireError{"collector refused wire version (offered " +
                        std::to_string(kWireVersionMin) + ".." +
                        std::to_string(kWireVersionMax) + ")",
                    4};
  }
  ack_window_ = get_u32(ack + 8);
  if (ack_window_ == 0) {
    throw WireError{"collector advertised a zero ack window", 8};
  }
  fd_ = fd.release();
}

Probe::~Probe() {
  // No implicit finish(): destructing an unfinished probe must not block
  // on the collector. The abrupt close reads as a truncated stream there.
  // vqoe-lint: allow(unchecked-syscall): socket close, no durable data
  if (fd_ >= 0) ::close(fd_);
}

void Probe::drain_acks(bool block) {
  for (;;) {
    if (block) {
      pollfd pfd{fd_, POLLIN, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, -1);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) detail::throw_errno("probe poll failed");
    }
    std::uint8_t buf[256];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, block ? 0 : MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (!block && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      detail::throw_errno("probe ack recv failed");
    }
    if (n == 0) {
      throw std::runtime_error{"collector closed connection mid-stream"};
    }
    for (ssize_t i = 0; i < n; ++i) {
      ack_partial_[ack_partial_len_++] = buf[i];
      if (ack_partial_len_ == sizeof ack_partial_) {
        ack_partial_len_ = 0;
        // Acks are cumulative; keep the highest seen.
        frames_acked_ = std::max(frames_acked_, get_u64(ack_partial_));
      }
    }
    return;
  }
}

void Probe::send_frame(const std::uint8_t* payload, std::size_t size) {
  // Ack-window backpressure: block until the collector has consumed all
  // but window-1 of our in-flight frames.
  bool stalled = false;
  drain_acks(/*block=*/false);
  while (stats_.frames_sent - frames_acked_ >= ack_window_) {
    stalled = true;
    drain_acks(/*block=*/true);
  }
  if (stalled) ++stats_.ack_stalls;

  std::uint8_t header[kFrameHeaderBytes];
  put_u32(static_cast<std::uint32_t>(size), header);
  put_u32(crc32c(payload, size), header + 4);
  send_all(fd_, header, sizeof header);
  if (size > 0) send_all(fd_, payload, size);
  stats_.bytes_sent += sizeof header + size;
}

void Probe::throttle(const trace::WeblogRecord& record) {
  if (options_.speed <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  if (!pacing_pinned_) {
    pacing_pinned_ = true;
    pace_t0_s_ = record.timestamp_s;
    pace_wall0_ = now;
    return;
  }
  const double stream_elapsed_s = record.timestamp_s - pace_t0_s_;
  if (stream_elapsed_s <= 0.0) return;
  const auto target =
      pace_wall0_ + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(stream_elapsed_s /
                                                      options_.speed));
  if (target > now) std::this_thread::sleep_until(target);
}

void Probe::send(const trace::WeblogRecord* records, std::size_t count) {
  if (fd_ < 0 || finished_) {
    throw std::runtime_error{"probe stream already finished"};
  }
  const std::size_t batch =
      options_.batch_records == 0 ? 256 : options_.batch_records;
  for (std::size_t begin = 0; begin < count; begin += batch) {
    const std::size_t n = std::min(batch, count - begin);
    throttle(records[begin]);
    frame_.clear();
    encode_batch(records + begin, n, version_, frame_);
    if (frame_.size() > kMaxFramePayloadBytes) {
      throw WireError{"frame payload exceeds wire bound", 0};
    }
    send_frame(frame_.data(), frame_.size());
    ++stats_.frames_sent;
    stats_.records_sent += n;
  }
}

void Probe::finish() {
  if (fd_ < 0 || finished_) return;
  finished_ = true;
  send_frame(nullptr, 0);  // FIN
  while (frames_acked_ < stats_.frames_sent) drain_acks(/*block=*/true);
}

std::vector<trace::WeblogRecord> partition_for_probe(
    const std::vector<trace::WeblogRecord>& records, std::size_t probe_index,
    std::size_t probe_count) {
  std::vector<trace::WeblogRecord> subset;
  for (const auto& r : records) {
    if (probe_of_subscriber(r.subscriber_id, probe_count) == probe_index) {
      subset.push_back(r);
    }
  }
  return subset;
}

}  // namespace vqoe::wire

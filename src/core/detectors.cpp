#include "vqoe/core/detectors.h"

#include <algorithm>
#include <stdexcept>

#include "vqoe/ml/feature_selection.h"
#include "vqoe/ts/cusum.h"

namespace vqoe::core {

namespace {

template <typename Label>
ml::Dataset build_dataset(std::span<const std::vector<ChunkObs>> sessions,
                          std::span<const Label> labels,
                          const std::vector<std::string>& feature_names,
                          std::vector<double> (*extract)(std::span<const ChunkObs>),
                          const std::vector<std::string>& class_names) {
  if (sessions.size() != labels.size()) {
    throw std::invalid_argument{"build_dataset: sessions/labels size mismatch"};
  }
  ml::Dataset data{feature_names, class_names};
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    data.add(extract(sessions[i]), static_cast<int>(labels[i]));
  }
  return data;
}

// Shared train logic of the two forest detectors: optional CFS feature
// selection (or a fixed feature list), class balancing, forest fit.
struct TrainedForest {
  ml::RandomForest forest;
  std::vector<std::string> selected;
};

TrainedForest train_forest(const ml::Dataset& data,
                           const ForestDetectorConfig& config) {
  TrainedForest out;
  if (!config.fixed_features.empty()) {
    out.selected = config.fixed_features;
  } else if (config.feature_selection) {
    out.selected = ml::cfs_best_first_feature_names(data);
    if (out.selected.empty()) out.selected = data.feature_names();
  } else {
    out.selected = data.feature_names();
  }

  ml::Dataset projected = data.project(out.selected);
  if (config.balance_training) {
    std::mt19937_64 rng{config.seed};
    projected = projected.balanced_undersample(rng);
  }
  out.forest = ml::RandomForest::fit(projected, config.forest);
  return out;
}

std::vector<std::size_t> selection_indices(
    const std::vector<std::string>& all,
    const std::vector<std::string>& selected) {
  std::vector<std::size_t> idx;
  idx.reserve(selected.size());
  for (const std::string& name : selected) {
    const auto it = std::find(all.begin(), all.end(), name);
    if (it == all.end()) {
      throw std::invalid_argument{"unknown feature in selection: " + name};
    }
    idx.push_back(static_cast<std::size_t>(it - all.begin()));
  }
  return idx;
}

std::vector<double> project_vector(std::span<const double> full,
                                   std::span<const std::size_t> idx) {
  std::vector<double> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(full[i]);
  return out;
}

/// project_vector into a reused buffer (the scratch classify path).
void project_into(std::span<const double> full,
                  std::span<const std::size_t> idx, std::vector<double>& out) {
  out.resize(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = full[idx[i]];
}

}  // namespace

ml::Dataset build_stall_dataset(std::span<const std::vector<ChunkObs>> sessions,
                                std::span<const StallLabel> labels) {
  return build_dataset(sessions, labels, stall_feature_names(), &stall_features,
                       stall_class_names());
}

ml::Dataset build_representation_dataset(
    std::span<const std::vector<ChunkObs>> sessions,
    std::span<const ReprLabel> labels) {
  return build_dataset(sessions, labels, representation_feature_names(),
                       &representation_features, repr_class_names());
}

StallDetector StallDetector::train(const ml::Dataset& data,
                                   const ForestDetectorConfig& config) {
  StallDetector d;
  auto trained = train_forest(data, config);
  d.forest_ = std::move(trained.forest);
  d.selected_ = std::move(trained.selected);
  d.selected_idx_ = selection_indices(stall_feature_names(), d.selected_);
  return d;
}

StallLabel StallDetector::classify(std::span<const ChunkObs> chunks) const {
  return classify_features(stall_features(chunks));
}

StallLabel StallDetector::classify(std::span<const ChunkObs> chunks,
                                   DetectorScratch& scratch) const {
  if (!trained()) throw std::logic_error{"StallDetector: not trained"};
  stall_features_into(chunks, scratch.features);
  project_into(scratch.features, selected_idx_, scratch.projected);
  return static_cast<StallLabel>(forest_.predict(scratch.projected));
}

StallLabel StallDetector::classify(std::span<const ChunkObs> chunks,
                                   DetectorScratch& scratch,
                                   double& confidence) const {
  const StallLabel label = classify(chunks, scratch);
  scratch.proba.resize(forest_.num_classes());
  forest_.predict_proba_into(scratch.projected, scratch.proba);
  confidence = scratch.proba[static_cast<std::size_t>(label)];
  return label;
}

StallLabel StallDetector::classify_features(std::span<const double> features) const {
  if (!trained()) throw std::logic_error{"StallDetector: not trained"};
  const auto projected = project_vector(features, selected_idx_);
  return static_cast<StallLabel>(forest_.predict(projected));
}

StallDetector StallDetector::from_parts(ml::RandomForest forest,
                                         std::vector<std::string> selected) {
  if (forest.feature_names() != selected) {
    throw std::invalid_argument{
        "StallDetector::from_parts: forest/selection layout mismatch"};
  }
  StallDetector d;
  d.selected_idx_ = selection_indices(stall_feature_names(), selected);
  d.forest_ = std::move(forest);
  d.selected_ = std::move(selected);
  return d;
}

RepresentationDetector RepresentationDetector::train(
    const ml::Dataset& data, const ForestDetectorConfig& config) {
  RepresentationDetector d;
  auto trained = train_forest(data, config);
  d.forest_ = std::move(trained.forest);
  d.selected_ = std::move(trained.selected);
  d.selected_idx_ = selection_indices(representation_feature_names(), d.selected_);
  return d;
}

ReprLabel RepresentationDetector::classify(std::span<const ChunkObs> chunks) const {
  return classify_features(representation_features(chunks));
}

ReprLabel RepresentationDetector::classify(std::span<const ChunkObs> chunks,
                                           DetectorScratch& scratch) const {
  if (!trained()) {
    throw std::logic_error{"RepresentationDetector: not trained"};
  }
  representation_features_into(chunks, scratch.features);
  project_into(scratch.features, selected_idx_, scratch.projected);
  return static_cast<ReprLabel>(forest_.predict(scratch.projected));
}

ReprLabel RepresentationDetector::classify(std::span<const ChunkObs> chunks,
                                           DetectorScratch& scratch,
                                           double& confidence) const {
  const ReprLabel label = classify(chunks, scratch);
  scratch.proba.resize(forest_.num_classes());
  forest_.predict_proba_into(scratch.projected, scratch.proba);
  confidence = scratch.proba[static_cast<std::size_t>(label)];
  return label;
}

ReprLabel RepresentationDetector::classify_features(
    std::span<const double> features) const {
  if (!trained()) throw std::logic_error{"RepresentationDetector: not trained"};
  const auto projected = project_vector(features, selected_idx_);
  return static_cast<ReprLabel>(forest_.predict(projected));
}

RepresentationDetector RepresentationDetector::from_parts(
    ml::RandomForest forest, std::vector<std::string> selected) {
  if (forest.feature_names() != selected) {
    throw std::invalid_argument{
        "RepresentationDetector::from_parts: forest/selection layout mismatch"};
  }
  RepresentationDetector d;
  d.selected_idx_ = selection_indices(representation_feature_names(), selected);
  d.forest_ = std::move(forest);
  d.selected_ = std::move(selected);
  return d;
}

double SwitchDetector::score(std::span<const ChunkObs> chunks) const {
  const auto signal = switch_signal(chunks, config_.skip_initial_s);
  if (signal.size() < 2) return 0.0;
  return ts::cusum_std(signal);
}

double SwitchDetector::calibrate_threshold(
    std::span<const double> scores_without_switches,
    std::span<const double> scores_with_switches) {
  // Sweep candidate thresholds at every observed score; maximize balanced
  // accuracy (mean of the two per-population accuracies).
  std::vector<double> candidates;
  candidates.reserve(scores_without_switches.size() + scores_with_switches.size());
  candidates.insert(candidates.end(), scores_without_switches.begin(),
                    scores_without_switches.end());
  candidates.insert(candidates.end(), scores_with_switches.begin(),
                    scores_with_switches.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  double best_threshold = 0.0;
  double best_score = -1.0;
  for (const double t : candidates) {
    const auto below = static_cast<double>(
        std::count_if(scores_without_switches.begin(), scores_without_switches.end(),
                      [t](double s) { return s <= t; }));
    const auto above = static_cast<double>(
        std::count_if(scores_with_switches.begin(), scores_with_switches.end(),
                      [t](double s) { return s > t; }));
    const double balanced =
        0.5 * below / std::max<std::size_t>(1, scores_without_switches.size()) +
        0.5 * above / std::max<std::size_t>(1, scores_with_switches.size());
    if (balanced > best_score) {
      best_score = balanced;
      best_threshold = t;
    }
  }
  return best_threshold;
}

}  // namespace vqoe::core

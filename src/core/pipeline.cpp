#include "vqoe/core/pipeline.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "vqoe/par/parallel.h"
#include "vqoe/session/reconstruct.h"

namespace vqoe::core {

std::vector<SessionRecord> sessions_from_corpus(const workload::Corpus& corpus) {
  const auto groups = trace::group_by_session_id(corpus.weblogs);
  std::map<std::string, const trace::SessionGroundTruth*> truth_by_id;
  for (const trace::SessionGroundTruth& t : corpus.truths) {
    truth_by_id[t.session_id] = &t;
  }

  std::vector<SessionRecord> out;
  out.reserve(groups.size());
  for (const auto& [session_id, records] : groups) {
    const auto it = truth_by_id.find(session_id);
    if (it == truth_by_id.end()) continue;
    SessionRecord rec;
    rec.chunks = chunks_from_weblogs(records);
    if (rec.chunks.empty()) continue;
    rec.truth = *it->second;
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<SessionRecord> sessions_from_encrypted(
    std::span<const trace::WeblogRecord> encrypted_records,
    std::span<const trace::SessionGroundTruth> truths,
    const session::ReconstructionOptions& options) {
  const auto reconstructed = session::reconstruct(encrypted_records, options);
  const auto matches = session::match_ground_truth(reconstructed, truths);

  std::vector<SessionRecord> out;
  for (std::size_t i = 0; i < reconstructed.size(); ++i) {
    if (!matches[i]) continue;
    SessionRecord rec;
    rec.chunks = chunks_from_session(reconstructed[i]);
    if (rec.chunks.empty()) continue;
    rec.truth = truths[*matches[i]];
    out.push_back(std::move(rec));
  }
  return out;
}

QoePipeline QoePipeline::train(std::span<const SessionRecord> sessions,
                               const PipelineConfig& config) {
  if (sessions.empty()) {
    throw std::invalid_argument{"QoePipeline::train: no sessions"};
  }
  if (config.threads > 0) par::set_threads(config.threads);

  std::vector<std::vector<ChunkObs>> stall_sessions;
  std::vector<StallLabel> stall_labels;
  std::vector<std::vector<ChunkObs>> repr_sessions;
  std::vector<ReprLabel> repr_labels;
  for (const SessionRecord& rec : sessions) {
    stall_sessions.push_back(rec.chunks);
    stall_labels.push_back(stall_label(rec.truth));
    if (!config.representation_adaptive_only || rec.truth.adaptive) {
      repr_sessions.push_back(rec.chunks);
      repr_labels.push_back(repr_label(rec.truth));
    }
  }

  QoePipeline p;
  p.stall_ = StallDetector::train(build_stall_dataset(stall_sessions, stall_labels),
                                  config.stall);
  if (!repr_sessions.empty()) {
    p.repr_ = RepresentationDetector::train(
        build_representation_dataset(repr_sessions, repr_labels),
        config.representation);
  }
  p.switch_ = SwitchDetector{config.switches};
  return p;
}

QoePipeline QoePipeline::from_parts(StallDetector stall,
                                    RepresentationDetector repr,
                                    SwitchDetector switches) {
  QoePipeline p;
  p.stall_ = std::move(stall);
  p.repr_ = std::move(repr);
  p.switch_ = switches;
  return p;
}

QoeReport QoePipeline::assess(std::span<const ChunkObs> chunks) const {
  DetectorScratch scratch;
  return assess(chunks, scratch);
}

QoeReport QoePipeline::assess(std::span<const ChunkObs> chunks,
                              DetectorScratch& scratch) const {
  QoeReport report;
  report.stall = stall_.classify(chunks, scratch);
  if (repr_.trained()) report.representation = repr_.classify(chunks, scratch);
  report.switch_score = switch_.score(chunks);
  report.quality_switches = report.switch_score > switch_.config().threshold;
  return report;
}

QoePipeline::ScoredReport QoePipeline::assess_scored(
    std::span<const ChunkObs> chunks, DetectorScratch& scratch) const {
  ScoredReport scored;
  scored.report.stall = stall_.classify(chunks, scratch, scored.stall_confidence);
  if (repr_.trained()) {
    scored.report.representation =
        repr_.classify(chunks, scratch, scored.repr_confidence);
  }
  scored.report.switch_score = switch_.score(chunks);
  scored.report.quality_switches =
      scored.report.switch_score > switch_.config().threshold;
  return scored;
}

ml::ConfusionMatrix evaluate_stall(const StallDetector& detector,
                                   std::span<const SessionRecord> sessions) {
  ml::ConfusionMatrix cm{stall_class_names()};
  for (const SessionRecord& rec : sessions) {
    cm.add(static_cast<int>(stall_label(rec.truth)),
           static_cast<int>(detector.classify(rec.chunks)));
  }
  return cm;
}

ml::ConfusionMatrix evaluate_representation(
    const RepresentationDetector& detector,
    std::span<const SessionRecord> sessions, bool adaptive_only) {
  ml::ConfusionMatrix cm{repr_class_names()};
  for (const SessionRecord& rec : sessions) {
    if (adaptive_only && !rec.truth.adaptive) continue;
    cm.add(static_cast<int>(repr_label(rec.truth)),
           static_cast<int>(detector.classify(rec.chunks)));
  }
  return cm;
}

SwitchEvaluation evaluate_switch(const SwitchDetector& detector,
                                 std::span<const SessionRecord> sessions,
                                 bool adaptive_only) {
  SwitchEvaluation eval;
  std::size_t correct_without = 0;
  std::size_t correct_with = 0;
  for (const SessionRecord& rec : sessions) {
    if (adaptive_only && !rec.truth.adaptive) continue;
    const bool predicted = detector.detect(rec.chunks);
    const bool actual = variation_label(rec.truth) != VariationLabel::none;
    if (actual) {
      ++eval.sessions_with;
      if (predicted) ++correct_with;
    } else {
      ++eval.sessions_without;
      if (!predicted) ++correct_without;
    }
  }
  if (eval.sessions_without > 0) {
    eval.accuracy_without = static_cast<double>(correct_without) /
                            static_cast<double>(eval.sessions_without);
  }
  if (eval.sessions_with > 0) {
    eval.accuracy_with = static_cast<double>(correct_with) /
                         static_cast<double>(eval.sessions_with);
  }
  return eval;
}

}  // namespace vqoe::core

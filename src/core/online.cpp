#include "vqoe/core/online.h"

#include <algorithm>
#include <utility>

namespace vqoe::core {

OnlineMonitor::OnlineMonitor(const QoePipeline& pipeline,
                             OnlineMonitorConfig config)
    : pipeline_(pipeline), config_(config) {}

void OnlineMonitor::enqueue_closed_windows(OpenSession& session) {
  // The chunks of a closed window: request times in [start, end). Chunks
  // are appended in non-decreasing request-time order, so the span is
  // contiguous — and it is final: the window only closed because the
  // stream clock reached its end, so every future chunk's request time is
  // >= end. A final (session-close) window is truncated at the session end
  // and simply runs to the end of the chunk log.
  //
  // Tumbling windows (the default) partition the log, so each window's
  // span starts at the cursor where the previous one ended and holds
  // exactly the chunks its accumulator counted — O(1), no search. Gated
  // windows still advance the cursor: their chunks are consumed either
  // way. Sliding (hop < length) and gapped (hop > length) schedules break
  // the partition and recover spans by binary search instead.
  const bool tumbling = config_.window.hop() == config_.window.length_s;
  const auto log_size = static_cast<std::uint32_t>(session.chunks.size());
  for (const window::ClosedWindow& closed : closed_scratch_) {
    ++windows_closed_;
    std::uint32_t begin_chunk = 0;
    std::uint32_t end_chunk = 0;
    if (tumbling) {
      begin_chunk = session.span_cursor;
      end_chunk =
          closed.final_window
              ? log_size
              : begin_chunk + static_cast<std::uint32_t>(closed.acc.chunks());
      session.span_cursor = end_chunk;
      if (closed.acc.chunks() < config_.window.min_chunks) continue;
    } else {
      if (closed.acc.chunks() < config_.window.min_chunks) continue;
      const auto by_request = [](const ChunkObs& c, double t) {
        return c.request_time_s < t;
      };
      const auto begin = std::lower_bound(session.chunks.begin(),
                                          session.chunks.end(), closed.start_s,
                                          by_request);
      const auto end =
          closed.final_window
              ? session.chunks.end()
              : std::lower_bound(begin, session.chunks.end(), closed.end_s,
                                 by_request);
      begin_chunk = static_cast<std::uint32_t>(begin - session.chunks.begin());
      end_chunk = static_cast<std::uint32_t>(end - session.chunks.begin());
    }
    if (begin_chunk >= end_chunk) continue;  // defensive: empty span

    PendingWindow pending;
    pending.index = closed.index;
    pending.start_s = closed.start_s;
    pending.end_s = closed.end_s;
    pending.final_window = closed.final_window;
    pending.begin_chunk = begin_chunk;
    pending.end_chunk = end_chunk;
    pending.window_cusum = closed.acc.cusum_std();
    pending.mean_goodput_kbps = closed.acc.mean_goodput_kbps();
    session.pending.push_back(pending);
  }
  closed_scratch_.clear();
}

void OnlineMonitor::close_windows_due(OpenSession& session, double now_s) {
  if (!session.windows.enabled() || session.windows.in_flight() == 0) return;
  session.windows.close_due(now_s, closed_scratch_);
  if (!closed_scratch_.empty()) enqueue_closed_windows(session);
}

void OnlineMonitor::detach_pending(std::string_view subscriber,
                                   OpenSession& session) {
  if (session.pending.empty()) return;
  detached_.push_back({std::string(subscriber), std::move(session.chunks),
                       std::move(session.pending)});
}

void OnlineMonitor::score_pending(std::string_view subscriber,
                                  const PendingWindow& w,
                                  std::span<const ChunkObs> chunk_log) {
  const auto span = chunk_log.subspan(w.begin_chunk,
                                      w.end_chunk - w.begin_chunk);
  const QoePipeline::ScoredReport scored =
      pipeline_.assess_scored(span, scratch_);

  window::WindowVerdict verdict;
  verdict.subscriber_id = std::string(subscriber);
  verdict.window_index = w.index;
  verdict.start_s = w.start_s;
  verdict.end_s = w.end_s;
  verdict.chunk_count = static_cast<std::uint32_t>(span.size());
  verdict.final_window = w.final_window;
  verdict.stall = static_cast<std::uint8_t>(scored.report.stall);
  verdict.representation =
      static_cast<std::uint8_t>(scored.report.representation);
  verdict.quality_switches = scored.report.quality_switches;
  verdict.switch_score = scored.report.switch_score;
  verdict.stall_confidence = scored.stall_confidence;
  verdict.repr_confidence = scored.repr_confidence;
  verdict.window_cusum = w.window_cusum;
  verdict.mean_goodput_kbps = w.mean_goodput_kbps;
  verdicts_.push_back(std::move(verdict));
  ++verdicts_emitted_;
}

void OnlineMonitor::close(std::string_view subscriber,
                          std::vector<CompletedSession>& out) {
  const auto it = open_.find(subscriber);
  if (it == open_.end()) return;
  auto node = open_.extract(it);
  OpenSession& session = node.mapped();
  if (session.chunks.size() < config_.min_chunks || !session.saw_media) {
    ++discarded_;
    // Windows the session already closed still emit at the next harvest (a
    // live stream can't retract them — and whether the harvest ran before
    // or after this discard must not change the verdict stream); only the
    // would-be final windows vanish with the discarded session.
    detach_pending(node.key(), session);
    return;
  }
  // Windows whose nominal end precedes the session end close as regular
  // windows; the rest are emitted truncated (final_window) so the tail of
  // the session is covered.
  if (session.windows.enabled()) {
    close_windows_due(session, session.last_activity_s);
    session.windows.close_all(session.last_activity_s, closed_scratch_);
    if (!closed_scratch_.empty()) enqueue_closed_windows(session);
  }
  CompletedSession done;
  done.start_time_s = session.start_time_s;
  done.end_time_s = session.last_activity_s;
  done.chunk_count = session.chunks.size();
  done.report = pipeline_.assess(session.chunks, scratch_);
  // Only after the session-close assessment: detaching moves the chunk log
  // out of the session for the still-pending windows to alias.
  detach_pending(node.key(), session);
  done.subscriber_id = std::move(node.key());
  ++reported_;
  out.push_back(std::move(done));
}

std::vector<CompletedSession> OnlineMonitor::ingest(
    const trace::WeblogRecord& record) {
  std::vector<CompletedSession> completed;
  if (!config_.reconstruction.is_service(record.host)) return completed;

  const bool media =
      config_.reconstruction.is_cdn(record.host) &&
      record.object_size_bytes >= config_.reconstruction.min_media_bytes;
  const bool marker = config_.reconstruction.use_page_markers &&
                      config_.reconstruction.is_page_marker(record.host);

  auto it = open_.find(record.subscriber_id);
  if (it != open_.end()) {
    const OpenSession& session = it->second;
    // Step 3 of Section 5.2: a long silent gap ends the previous session.
    if (record.timestamp_s - session.last_activity_s >
        config_.reconstruction.idle_gap_s) {
      close(record.subscriber_id, completed);
      it = open_.end();
    } else if (marker && session.saw_media) {
      // Step 2: a fresh watch page while media was flowing.
      close(record.subscriber_id, completed);
      it = open_.end();
    }
  }
  if (it == open_.end()) {
    OpenSession fresh;
    fresh.start_time_s = record.timestamp_s;
    fresh.windows.start(config_.window, record.timestamp_s);
    it = open_.emplace(record.subscriber_id, std::move(fresh)).first;
  }

  OpenSession& session = it->second;
  // Windows due at this record's time close *before* the record is added:
  // a record exactly at a window end closes that window and belongs to the
  // next one (half-open [start, end) windows).
  close_windows_due(session, record.timestamp_s);
  session.last_activity_s =
      std::max(session.last_activity_s, record.arrival_time_s());
  if (media) {
    session.saw_media = true;
    ChunkObs chunk;
    chunk.request_time_s = record.timestamp_s;
    chunk.arrival_time_s = record.arrival_time_s();
    chunk.size_bytes = static_cast<double>(record.object_size_bytes);
    chunk.transport = record.transport;
    session.chunks.push_back(chunk);
    session.windows.add(chunk.request_time_s, chunk.arrival_time_s,
                        chunk.size_bytes, chunk.transport);
  }
  return completed;
}

std::vector<CompletedSession> OnlineMonitor::advance_to(double now_s) {
  std::vector<CompletedSession> completed;
  std::vector<std::string> expired;
  for (auto& [subscriber, session] : open_) {
    close_windows_due(session, now_s);
    if (now_s - session.last_activity_s > config_.reconstruction.idle_gap_s) {
      expired.push_back(subscriber);
    }
  }
  for (const std::string& subscriber : expired) close(subscriber, completed);
  return completed;
}

std::vector<CompletedSession> OnlineMonitor::flush() {
  std::vector<CompletedSession> completed;
  std::vector<std::string> all;
  all.reserve(open_.size());
  for (const auto& [subscriber, session] : open_) all.push_back(subscriber);
  for (const std::string& subscriber : all) close(subscriber, completed);
  return completed;
}

std::vector<window::WindowVerdict> OnlineMonitor::take_verdicts() {
  for (const DetachedWindows& detached : detached_) {
    for (const PendingWindow& pending : detached.windows) {
      score_pending(detached.subscriber_id, pending, detached.chunks);
    }
  }
  detached_.clear();
  if (config_.window.enabled()) {
    for (auto& [subscriber, session] : open_) {
      for (const PendingWindow& pending : session.pending) {
        score_pending(subscriber, pending, session.chunks);
      }
      session.pending.clear();
    }
  }
  return std::exchange(verdicts_, {});
}

}  // namespace vqoe::core

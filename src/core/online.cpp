#include "vqoe/core/online.h"

#include <algorithm>

namespace vqoe::core {

OnlineMonitor::OnlineMonitor(const QoePipeline& pipeline,
                             OnlineMonitorConfig config)
    : pipeline_(pipeline), config_(config) {}

void OnlineMonitor::close(std::string_view subscriber,
                          std::vector<CompletedSession>& out) {
  const auto it = open_.find(subscriber);
  if (it == open_.end()) return;
  auto node = open_.extract(it);
  const OpenSession& session = node.mapped();
  if (session.chunks.size() < config_.min_chunks || !session.saw_media) {
    ++discarded_;
    return;
  }
  CompletedSession done;
  done.subscriber_id = std::move(node.key());
  done.start_time_s = session.start_time_s;
  done.end_time_s = session.last_activity_s;
  done.chunk_count = session.chunks.size();
  done.report = pipeline_.assess(session.chunks, scratch_);
  ++reported_;
  out.push_back(std::move(done));
}

std::vector<CompletedSession> OnlineMonitor::ingest(
    const trace::WeblogRecord& record) {
  std::vector<CompletedSession> completed;
  if (!config_.reconstruction.is_service(record.host)) return completed;

  const bool media =
      config_.reconstruction.is_cdn(record.host) &&
      record.object_size_bytes >= config_.reconstruction.min_media_bytes;
  const bool marker = config_.reconstruction.use_page_markers &&
                      config_.reconstruction.is_page_marker(record.host);

  auto it = open_.find(record.subscriber_id);
  if (it != open_.end()) {
    const OpenSession& session = it->second;
    // Step 3 of Section 5.2: a long silent gap ends the previous session.
    if (record.timestamp_s - session.last_activity_s >
        config_.reconstruction.idle_gap_s) {
      close(record.subscriber_id, completed);
      it = open_.end();
    } else if (marker && session.saw_media) {
      // Step 2: a fresh watch page while media was flowing.
      close(record.subscriber_id, completed);
      it = open_.end();
    }
  }
  if (it == open_.end()) {
    OpenSession fresh;
    fresh.start_time_s = record.timestamp_s;
    it = open_.emplace(record.subscriber_id, std::move(fresh)).first;
  }

  OpenSession& session = it->second;
  session.last_activity_s =
      std::max(session.last_activity_s, record.arrival_time_s());
  if (media) {
    session.saw_media = true;
    ChunkObs chunk;
    chunk.request_time_s = record.timestamp_s;
    chunk.arrival_time_s = record.arrival_time_s();
    chunk.size_bytes = static_cast<double>(record.object_size_bytes);
    chunk.transport = record.transport;
    session.chunks.push_back(chunk);
  }
  return completed;
}

std::vector<CompletedSession> OnlineMonitor::advance_to(double now_s) {
  std::vector<CompletedSession> completed;
  std::vector<std::string> expired;
  for (const auto& [subscriber, session] : open_) {
    if (now_s - session.last_activity_s > config_.reconstruction.idle_gap_s) {
      expired.push_back(subscriber);
    }
  }
  for (const std::string& subscriber : expired) close(subscriber, completed);
  return completed;
}

std::vector<CompletedSession> OnlineMonitor::flush() {
  std::vector<CompletedSession> completed;
  std::vector<std::string> all;
  all.reserve(open_.size());
  for (const auto& [subscriber, session] : open_) all.push_back(subscriber);
  for (const std::string& subscriber : all) close(subscriber, completed);
  return completed;
}

}  // namespace vqoe::core

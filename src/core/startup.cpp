#include "vqoe/core/startup.h"

#include <algorithm>

#include "vqoe/ts/cusum.h"
#include "vqoe/ts/summary.h"

namespace vqoe::core {

double estimate_startup_delay(std::span<const ChunkObs> chunks,
                              const StartupEstimatorConfig& config) {
  if (chunks.size() < 3) return 0.0;

  std::vector<double> sizes, arrivals;
  sizes.reserve(chunks.size());
  for (const ChunkObs& c : chunks) {
    sizes.push_back(c.size_bytes);
    arrivals.push_back(c.arrival_time_s);
  }
  const auto dts = ts::deltas(arrivals);

  // Calibrate bytes -> media seconds from the steady state: in steady
  // pacing one chunk of media is consumed per inter-arrival interval.
  const double steady_dt = ts::percentile(dts, config.steady_dt_percentile);
  const double steady_size = ts::percentile(sizes, config.steady_size_percentile);
  if (steady_dt <= 0.0 || steady_size <= 0.0) return 0.0;
  const double media_s_per_byte = steady_dt / steady_size;

  const double t0 = chunks.front().request_time_s;
  double buffered_media_s = 0.0;
  for (const ChunkObs& c : chunks) {
    buffered_media_s += c.size_bytes * media_s_per_byte;
    // Media already consumed if playback had started at the threshold is
    // ignored: before start nothing is consumed, which is the window this
    // estimator cares about.
    if (buffered_media_s >= config.assumed_threshold_s) {
      return std::max(0.0, c.arrival_time_s - t0);
    }
  }
  // Buffer never reached the threshold (tiny or truncated session): the
  // start is bounded by the last arrival.
  return std::max(0.0, chunks.back().arrival_time_s - t0);
}

}  // namespace vqoe::core

#include "vqoe/core/model_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vqoe::core {

namespace {

void save_forest_detector(const char* tag, const ml::RandomForest& forest,
                          const std::vector<std::string>& selected,
                          std::ostream& os) {
  os << tag << " v1\n";
  os << "selected " << selected.size() << '\n';
  for (const std::string& name : selected) os << name << '\n';
  forest.save(os);
}

std::pair<ml::RandomForest, std::vector<std::string>> load_forest_detector(
    const char* tag, std::istream& is) {
  std::string word, version;
  if (!(is >> word >> version) || word != tag || version != "v1") {
    throw std::runtime_error{std::string{"model_io: expected header "} + tag};
  }
  std::size_t n = 0;
  if (!(is >> word >> n) || word != "selected") {
    throw std::runtime_error{"model_io: missing selected feature list"};
  }
  std::vector<std::string> selected(n);
  for (std::string& name : selected) {
    if (!(is >> name)) throw std::runtime_error{"model_io: truncated features"};
  }
  return {ml::RandomForest::load(is), std::move(selected)};
}

}  // namespace

void save(const StallDetector& detector, std::ostream& os) {
  if (!detector.trained()) {
    throw std::logic_error{"model_io: cannot save untrained StallDetector"};
  }
  save_forest_detector("vqoe-stall-detector", detector.forest(),
                       detector.selected_features(), os);
}

StallDetector load_stall_detector(std::istream& is) {
  auto [forest, selected] = load_forest_detector("vqoe-stall-detector", is);
  return StallDetector::from_parts(std::move(forest), std::move(selected));
}

void save(const RepresentationDetector& detector, std::ostream& os) {
  if (!detector.trained()) {
    throw std::logic_error{
        "model_io: cannot save untrained RepresentationDetector"};
  }
  save_forest_detector("vqoe-representation-detector", detector.forest(),
                       detector.selected_features(), os);
}

RepresentationDetector load_representation_detector(std::istream& is) {
  auto [forest, selected] =
      load_forest_detector("vqoe-representation-detector", is);
  return RepresentationDetector::from_parts(std::move(forest),
                                            std::move(selected));
}

void save(const SwitchDetector& detector, std::ostream& os) {
  os << "vqoe-switch-detector v1\n";
  os.precision(17);
  os << "threshold " << detector.config().threshold << '\n';
  os << "skip_initial_s " << detector.config().skip_initial_s << '\n';
}

SwitchDetector load_switch_detector(std::istream& is) {
  std::string word, version;
  if (!(is >> word >> version) || word != "vqoe-switch-detector" ||
      version != "v1") {
    throw std::runtime_error{"model_io: bad switch detector header"};
  }
  SwitchDetector::Config config;
  if (!(is >> word >> config.threshold) || word != "threshold") {
    throw std::runtime_error{"model_io: missing threshold"};
  }
  if (!(is >> word >> config.skip_initial_s) || word != "skip_initial_s") {
    throw std::runtime_error{"model_io: missing skip_initial_s"};
  }
  return SwitchDetector{config};
}

void save_pipeline(const QoePipeline& pipeline, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  auto open = [&](const char* name) {
    std::ofstream os{dir / name};
    if (!os) {
      throw std::runtime_error{"model_io: cannot write " + (dir / name).string()};
    }
    return os;
  };
  if (pipeline.stall_detector().trained()) {
    auto os = open("stall.model");
    save(pipeline.stall_detector(), os);
  }
  if (pipeline.representation_detector().trained()) {
    auto os = open("representation.model");
    save(pipeline.representation_detector(), os);
  }
  {
    auto os = open("switch.model");
    save(pipeline.switch_detector(), os);
  }
}

QoePipeline load_pipeline(const std::filesystem::path& dir) {
  StallDetector stall;
  {
    std::ifstream is{dir / "stall.model"};
    if (!is) {
      throw std::runtime_error{"model_io: missing " +
                               (dir / "stall.model").string()};
    }
    stall = load_stall_detector(is);
  }
  RepresentationDetector repr;
  if (std::ifstream is{dir / "representation.model"}; is) {
    repr = load_representation_detector(is);
  }
  SwitchDetector switches;
  if (std::ifstream is{dir / "switch.model"}; is) {
    switches = load_switch_detector(is);
  }
  return QoePipeline::from_parts(std::move(stall), std::move(repr), switches);
}

}  // namespace vqoe::core

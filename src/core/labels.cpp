#include "vqoe/core/labels.h"

namespace vqoe::core {

StallLabel stall_label_from_rr(double rebuffering_ratio) {
  if (rebuffering_ratio <= 0.0) return StallLabel::no_stalls;
  if (rebuffering_ratio <= kSevereRebufferingRatio) return StallLabel::mild_stalls;
  return StallLabel::severe_stalls;
}

ReprLabel repr_label_from_height(double mean_height) {
  if (mean_height < kSdMinHeight) return ReprLabel::ld;
  if (mean_height <= kSdMaxHeight) return ReprLabel::sd;
  return ReprLabel::hd;
}

VariationLabel variation_label(std::size_t switch_count, double switch_amplitude,
                               const VariationRule& rule) {
  const double var = static_cast<double>(switch_count) +
                     rule.amplitude_weight * switch_amplitude;
  if (var <= rule.mild_threshold) return VariationLabel::none;
  if (var <= rule.high_threshold) return VariationLabel::mild;
  return VariationLabel::high;
}

const std::vector<std::string>& stall_class_names() {
  static const std::vector<std::string> names{"no stalls", "mild stalls",
                                              "severe stalls"};
  return names;
}

const std::vector<std::string>& repr_class_names() {
  static const std::vector<std::string> names{"LD", "SD", "HD"};
  return names;
}

const std::vector<std::string>& variation_class_names() {
  static const std::vector<std::string> names{"no variation", "mild variation",
                                              "high variation"};
  return names;
}

StallLabel stall_label(const trace::SessionGroundTruth& truth) {
  return stall_label_from_rr(truth.rebuffering_ratio);
}

ReprLabel repr_label(const trace::SessionGroundTruth& truth) {
  return repr_label_from_height(truth.average_height);
}

VariationLabel variation_label(const trace::SessionGroundTruth& truth,
                               const VariationRule& rule) {
  return variation_label(truth.switch_count, truth.switch_amplitude, rule);
}

}  // namespace vqoe::core

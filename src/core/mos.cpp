#include "vqoe/core/mos.h"

#include <algorithm>

namespace vqoe::core {

namespace {

int level(double value, double low, double high) {
  if (value < low) return 0;
  if (value <= high) return 1;
  return 2;
}

double quality_adjustment(ReprLabel representation, bool switching,
                          const MosModel& model) {
  double penalty = 0.0;
  switch (representation) {
    case ReprLabel::ld:
      penalty += model.ld_penalty;
      break;
    case ReprLabel::sd:
      penalty += model.sd_penalty;
      break;
    case ReprLabel::hd:
      break;
  }
  if (switching) penalty += model.switching_penalty;
  return penalty;
}

double clamp_mos(double mos, const MosModel& model) {
  return std::clamp(mos, model.floor, model.ceil);
}

}  // namespace

int initial_delay_level(double initial_delay_s, const MosModel& model) {
  return level(initial_delay_s, model.initial_low_s, model.initial_high_s);
}

int stall_frequency_level(int stall_count, double duration_s,
                          const MosModel& model) {
  if (stall_count <= 0 || duration_s <= 0.0) return 0;
  const double hz = static_cast<double>(stall_count) / duration_s;
  return level(hz, model.frequency_low_hz, model.frequency_high_hz);
}

int stall_duration_level(double total_stall_s, int stall_count,
                         const MosModel& model) {
  if (stall_count <= 0) return 0;
  const double per_stall = total_stall_s / static_cast<double>(stall_count);
  return level(per_stall, model.duration_low_s, model.duration_high_s);
}

double mos_from_ground_truth(const trace::SessionGroundTruth& truth,
                             const MosModel& model) {
  const int l_ti = initial_delay_level(truth.startup_delay_s, model);
  const int l_fr =
      stall_frequency_level(truth.stall_count, truth.total_duration_s, model);
  const int l_td =
      stall_duration_level(truth.stall_duration_s, truth.stall_count, model);

  double mos = model.base - model.w_initial * l_ti -
               model.w_stall_frequency * l_fr - model.w_stall_duration * l_td;
  mos -= quality_adjustment(repr_label_from_height(truth.average_height),
                            variation_label(truth) != VariationLabel::none,
                            model);
  return clamp_mos(mos, model);
}

double mos_from_report(const QoeReport& report,
                       double startup_delay_estimate_s, const MosModel& model) {
  const int l_ti = initial_delay_level(startup_delay_estimate_s, model);
  int l_fr = 0;
  int l_td = 0;
  switch (report.stall) {
    case StallLabel::no_stalls:
      break;
    case StallLabel::mild_stalls:
      l_fr = 1;
      l_td = 1;
      break;
    case StallLabel::severe_stalls:
      l_fr = 2;
      l_td = 2;
      break;
  }
  double mos = model.base - model.w_initial * l_ti -
               model.w_stall_frequency * l_fr - model.w_stall_duration * l_td;
  mos -= quality_adjustment(report.representation, report.quality_switches,
                            model);
  return clamp_mos(mos, model);
}

}  // namespace vqoe::core

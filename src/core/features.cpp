#include "vqoe/core/features.h"

#include <algorithm>
#include <cmath>

#include "vqoe/ts/cusum.h"
#include "vqoe/ts/summary.h"

namespace vqoe::core {

namespace {

constexpr double kBytesPerKB = 1000.0;

// Per-chunk base metric series, session-relative.
struct MetricSeries {
  std::vector<double> rtt_min, rtt_avg, rtt_max;
  std::vector<double> bdp, bif_avg, bif_max;
  std::vector<double> loss, retrans;
  std::vector<double> chunk_size;  // KB
  std::vector<double> chunk_time;  // arrival relative to session start (s)
  std::vector<double> chunk_dt;    // inter-arrival times (s), n-1 values
  std::vector<double> goodput;     // kbit/s
};

MetricSeries extract_series(std::span<const ChunkObs> chunks) {
  MetricSeries m;
  const std::size_t n = chunks.size();
  const double t0 = n > 0 ? chunks.front().request_time_s : 0.0;
  m.rtt_min.reserve(n);
  for (const ChunkObs& c : chunks) {
    m.rtt_min.push_back(c.transport.rtt_min_ms);
    m.rtt_avg.push_back(c.transport.rtt_avg_ms);
    m.rtt_max.push_back(c.transport.rtt_max_ms);
    m.bdp.push_back(c.transport.bdp_bytes / kBytesPerKB);
    m.bif_avg.push_back(c.transport.bif_avg_bytes / kBytesPerKB);
    m.bif_max.push_back(c.transport.bif_max_bytes / kBytesPerKB);
    m.loss.push_back(c.transport.loss_pct);
    m.retrans.push_back(c.transport.retrans_pct);
    m.chunk_size.push_back(c.size_bytes / kBytesPerKB);
    m.chunk_time.push_back(c.arrival_time_s - t0);
    m.goodput.push_back(c.goodput_kbps());
  }
  m.chunk_dt = ts::deltas(m.chunk_time);
  return m;
}

// Running (cumulative) mean of a series.
std::vector<double> running_mean(std::span<const double> v) {
  std::vector<double> out;
  out.reserve(v.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc += v[i];
    out.push_back(acc / static_cast<double>(i + 1));
  }
  return out;
}

struct NamedSeries {
  std::string name;
  std::vector<double> values;
};

std::vector<NamedSeries> stall_metric_set(const MetricSeries& m) {
  return {
      {"rtt_min", m.rtt_min},       {"rtt_avg", m.rtt_avg},
      {"rtt_max", m.rtt_max},       {"bdp", m.bdp},
      {"bif_avg", m.bif_avg},       {"bif_max", m.bif_max},
      {"loss", m.loss},             {"retrans", m.retrans},
      {"chunk_size", m.chunk_size}, {"chunk_time", m.chunk_time},
  };
}

std::vector<NamedSeries> representation_metric_set(const MetricSeries& m) {
  return {
      {"rtt_min", m.rtt_min},
      {"rtt_avg", m.rtt_avg},
      {"rtt_max", m.rtt_max},
      {"bdp", m.bdp},
      {"bif_avg", m.bif_avg},
      {"bif_max", m.bif_max},
      {"loss", m.loss},
      {"retrans", m.retrans},
      {"chunk_size", m.chunk_size},
      {"chunk_dt", m.chunk_dt},
      {"chunk_avg_size", running_mean(m.chunk_size)},
      {"chunk_dsize", ts::deltas(m.chunk_size)},
      {"throughput_avg", running_mean(m.goodput)},
      {"cusum_throughput", ts::cusum_chart(m.goodput)},
  };
}

std::vector<std::string> make_names(std::span<const std::string> metrics,
                                    std::span<const ts::Statistic> stats) {
  std::vector<std::string> names;
  names.reserve(metrics.size() * stats.size());
  for (const std::string& metric : metrics) {
    for (const ts::Statistic& stat : stats) {
      names.push_back(metric + ":" + stat.name());
    }
  }
  return names;
}

void append_features(std::span<const NamedSeries> metrics,
                     std::span<const ts::Statistic> stats,
                     std::vector<double>& out) {
  out.clear();
  out.reserve(metrics.size() * stats.size());
  for (const NamedSeries& metric : metrics) {
    const auto values = ts::compute_all(stats, metric.values);
    out.insert(out.end(), values.begin(), values.end());
  }
}

const std::vector<std::string> kStallMetricNames = {
    "rtt_min", "rtt_avg", "rtt_max",    "bdp",        "bif_avg",
    "bif_max", "loss",    "retrans",    "chunk_size", "chunk_time"};

const std::vector<std::string> kReprMetricNames = {
    "rtt_min",        "rtt_avg",     "rtt_max",
    "bdp",            "bif_avg",     "bif_max",
    "loss",           "retrans",     "chunk_size",
    "chunk_dt",       "chunk_avg_size", "chunk_dsize",
    "throughput_avg", "cusum_throughput"};

}  // namespace

std::vector<ChunkObs> chunks_from_weblogs(
    std::span<const trace::WeblogRecord> records) {
  std::vector<ChunkObs> out;
  for (const trace::WeblogRecord& r : records) {
    if (r.kind != trace::RecordKind::media) continue;
    ChunkObs c;
    c.request_time_s = r.timestamp_s;
    c.arrival_time_s = r.arrival_time_s();
    c.size_bytes = static_cast<double>(r.object_size_bytes);
    c.transport = r.transport;
    out.push_back(c);
  }
  std::stable_sort(out.begin(), out.end(), [](const ChunkObs& a, const ChunkObs& b) {
    return a.request_time_s < b.request_time_s;
  });
  return out;
}

std::vector<ChunkObs> chunks_from_session(
    const session::ReconstructedSession& session) {
  return chunks_from_weblogs(session.media);
}

const std::vector<std::string>& stall_feature_names() {
  static const std::vector<std::string> names =
      make_names(kStallMetricNames, ts::stall_statistic_set());
  return names;
}

std::vector<double> stall_features(std::span<const ChunkObs> chunks) {
  std::vector<double> out;
  stall_features_into(chunks, out);
  return out;
}

void stall_features_into(std::span<const ChunkObs> chunks,
                         std::vector<double>& out) {
  const MetricSeries m = extract_series(chunks);
  append_features(stall_metric_set(m), ts::stall_statistic_set(), out);
}

const std::vector<std::string>& representation_feature_names() {
  static const std::vector<std::string> names =
      make_names(kReprMetricNames, ts::representation_statistic_set());
  return names;
}

std::vector<double> representation_features(std::span<const ChunkObs> chunks) {
  std::vector<double> out;
  representation_features_into(chunks, out);
  return out;
}

void representation_features_into(std::span<const ChunkObs> chunks,
                                  std::vector<double>& out) {
  const MetricSeries m = extract_series(chunks);
  append_features(representation_metric_set(m),
                  ts::representation_statistic_set(), out);
}

std::vector<double> switch_signal(std::span<const ChunkObs> chunks,
                                  double skip_initial_s) {
  if (chunks.empty()) return {};
  const double cutoff = chunks.front().request_time_s + skip_initial_s;
  std::vector<double> sizes_kb;
  std::vector<double> arrivals;
  for (const ChunkObs& c : chunks) {
    if (c.arrival_time_s < cutoff) continue;
    sizes_kb.push_back(c.size_bytes / kBytesPerKB);
    arrivals.push_back(c.arrival_time_s);
  }
  if (sizes_kb.size() < 3) return {};
  const auto dsize = ts::deltas(sizes_kb);
  const auto dt = ts::deltas(arrivals);
  return ts::product(dsize, dt);
}

}  // namespace vqoe::core
